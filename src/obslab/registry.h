// obslab metrics registry: lock-free instruments + pull collectors, with
// Prometheus text and JSON exposition.
//
// Two producer models feed one scrape:
//
//   * Instruments (Counter/Gauge/Histogram) are registered once and held
//     by handle; the hot path is a single relaxed atomic RMW on a cell
//     whose address never moves (slab-allocated), so always-on counting
//     costs what the existing telemetry counters cost — no locks, no
//     allocation, no exposition work until someone scrapes.
//   * Collectors are callbacks evaluated at scrape time. Everything the
//     repo already measures (dispatcher snapshot rows, netfront tenant
//     counters, faultlab sites, tracelab drops, breaker states) registers
//     as a collector, so the plane unifies existing telemetry without
//     touching its hot paths at all.
//
// Exposition follows the Prometheus text format: metric/label names are
// sanitized to [a-zA-Z0-9_:] (hostile bytes become '_'), label values
// escape backslash, double-quote and newline, HELP text escapes backslash
// and newline. Histograms expand into cumulative `_bucket{le=...}` series
// plus `_sum`/`_count`, with log2-nanosecond bucket bounds (the same
// buckets as graftd::LatencyHistogram, so live and offline percentiles
// agree). Counters are monotonic under concurrent scrape: every value is
// one relaxed load of a cell that only ever grows.
//
// Metric-name schema (EXPERIMENTS.md "obslab metric names"): everything
// this registry exports is prefixed `graftlab_`, counters end in `_total`,
// durations are `_ns`.

#ifndef GRAFTLAB_SRC_OBSLAB_REGISTRY_H_
#define GRAFTLAB_SRC_OBSLAB_REGISTRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obslab {

using Labels = std::vector<std::pair<std::string, std::string>>;

// Handle to a monotonic counter cell. Copyable; the registry owns the
// storage and must outlive every handle.
class Counter {
 public:
  Counter() = default;
  void Add(std::uint64_t n = 1) {
    if (cell_ != nullptr) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(std::int64_t v) {
    if (cell_ != nullptr) {
      cell_->store(v, std::memory_order_relaxed);
    }
  }
  void Add(std::int64_t n) {
    if (cell_ != nullptr) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

// Log2-nanosecond histogram, all-atomic so many threads record without
// coordination. Bucket i counts values of bit width i (same geometry as
// graftd::LatencyHistogram).
struct HistogramCells {
  static constexpr std::size_t kBuckets = 48;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};

  static std::size_t BucketFor(std::uint64_t v) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(v));
    return width < kBuckets ? width : kBuckets - 1;
  }
  static std::uint64_t BucketUpper(std::size_t i) {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }
};

class Histogram {
 public:
  Histogram() = default;
  void Record(std::uint64_t v) {
    if (cells_ == nullptr) {
      return;
    }
    cells_->buckets[HistogramCells::BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    cells_->count.fetch_add(1, std::memory_order_relaxed);
    cells_->sum.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return cells_ == nullptr ? 0 : cells_->count.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramCells* cells) : cells_(cells) {}
  HistogramCells* cells_ = nullptr;
};

// One scrape-time sample a collector contributes. Monotonic samples render
// as counters, others as gauges.
struct Sample {
  std::string name;
  Labels labels;
  double value = 0.0;
  bool monotonic = false;
};

class MetricsRegistry {
 public:
  using Collector = std::function<void(std::vector<Sample>&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is mutex-guarded and not for the hot path: register once,
  // carry the handle. Re-registering an identical (name, labels) pair
  // returns the existing cell, so independent subsystems can share a
  // counter without coordinating.
  Counter RegisterCounter(std::string name, Labels labels = {}, std::string help = "");
  Gauge RegisterGauge(std::string name, Labels labels = {}, std::string help = "");
  Histogram RegisterHistogram(std::string name, Labels labels = {}, std::string help = "");

  // Scrape-time pull source; evaluated (under the registry mutex) on every
  // exposition call. Keep collectors cheap and reentrant-free: a collector
  // must not call back into this registry.
  void AddCollector(Collector collector);

  // Exposition formats. Safe to call concurrently with instrument updates;
  // counter values are monotonically non-decreasing across scrapes.
  std::string PrometheusText() const;
  std::string Json() const;

  // Prometheus escaping helpers (exposed for tests).
  static std::string SanitizeName(std::string_view name);
  static void AppendEscapedLabelValue(std::string& out, std::string_view value);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind = Kind::kCounter;
    std::string name;  // sanitized
    Labels labels;
    std::string help;
    // Exactly one is live, slab-owned so handle addresses never move.
    std::unique_ptr<std::atomic<std::uint64_t>> counter;
    std::unique_ptr<std::atomic<std::int64_t>> gauge;
    std::unique_ptr<HistogramCells> histogram;
  };

  Instrument* FindOrNull(Kind kind, const std::string& name, const Labels& labels);
  // Renders instruments + collector samples grouped by metric name.
  void Collect(std::vector<Sample>& out, std::vector<const Instrument*>& hists) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::vector<Collector> collectors_;
};

}  // namespace obslab

#endif  // GRAFTLAB_SRC_OBSLAB_REGISTRY_H_
