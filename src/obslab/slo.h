// SLO watchdog: rolling-window tail-latency burn-rate evaluation per
// tenant.
//
// Each tenant with a target (TenantConfig::slo_p99_us > 0) gets a pair of
// atomic log2 histograms: producers record completion latencies into the
// current window lock-free; Evaluate() — called from any thread, typically
// a ticker or the scrape path — closes a window once it is older than
// `window`, computes its p99/p999 upper bounds, and scores it:
//
//   burning window  (p99 > slo_p99_us)  -> burn streak + 1
//   healthy window                      -> burn streak resets to 0
//
// The `graftlab_slo_burn` gauge exports the current streak length; once
// the streak reaches `burn_windows` the watchdog fires the snapshot hook
// exactly once per sustained episode ("slo_burn" flight-recorder snapshot)
// and re-arms only after a healthy window. Windows with fewer than
// `min_samples` completions are skipped — an idle tenant is not burning.
//
// All time comes from the injected Clock and Evaluate takes `now_ns`
// explicitly, so tests drive the whole state machine from a FakeClock
// without sleeping. This gauge is the per-tenant health signal ROADMAP
// open item 5's adaptive technology selection is slated to consume.

#ifndef GRAFTLAB_SRC_OBSLAB_SLO_H_
#define GRAFTLAB_SRC_OBSLAB_SLO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obslab/registry.h"

namespace obslab {

class SloWatchdog {
 public:
  struct Options {
    std::uint64_t window_ns = 1'000'000'000;  // window length
    std::uint32_t burn_windows = 3;           // sustained windows before the alarm
    std::uint64_t min_samples = 16;           // below this a window is not scored
  };

  SloWatchdog() : SloWatchdog(Options{}) {}
  explicit SloWatchdog(Options options);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  // Registers a tenant target; ids are the caller's (netfront tenant
  // index). slo_p99_us == 0 registers an unwatched tenant (records are
  // dropped cheaply). Call before recording starts.
  void AddTenant(std::size_t tenant_id, std::string name, double slo_p99_us,
                 double slo_p999_us = 0.0);

  // Hot path: one bucket fetch_add into the tenant's current window.
  void Record(std::size_t tenant_id, std::uint64_t elapsed_ns);

  // Closes and scores any window older than window_ns. Cheap when the
  // window is still open (one load per tenant). Call with the same
  // timebase Record's callers live on (dispatcher NowNs / clock now).
  void Evaluate(std::uint64_t now_ns);

  // Current consecutive burning windows for the tenant (the gauge value).
  std::uint32_t burn(std::size_t tenant_id) const;

  // Cumulative alarms fired (snapshot hook invocations).
  std::uint64_t alarms() const { return alarms_.load(std::memory_order_relaxed); }

  // Fired (outside all watchdog locks) when a tenant's burn streak reaches
  // burn_windows: arguments are the tenant name and the measured p99 of
  // the closing window, in microseconds.
  void set_alarm_hook(std::function<void(const std::string& tenant, double p99_us)> hook) {
    alarm_hook_ = std::move(hook);
  }

  // Exports graftlab_slo_burn{tenant=...} and
  // graftlab_slo_p99_us{tenant=...} (last closed window) as a collector.
  void RegisterWith(MetricsRegistry& registry);

 private:
  static constexpr std::size_t kBuckets = HistogramCells::kBuckets;

  struct Window {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    void Clear() {
      for (auto& bucket : buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      count.store(0, std::memory_order_relaxed);
    }
  };

  struct Tenant {
    std::string name;
    double slo_p99_us = 0.0;
    double slo_p999_us = 0.0;
    Window window;
    std::uint64_t window_start_ns = 0;       // guarded by eval_mu_
    std::atomic<std::uint32_t> burn{0};
    std::atomic<std::uint64_t> last_p99_us_milli{0};  // p99 in millionths-of-us x1e3
    bool alarmed = false;                    // guarded by eval_mu_
  };

  // p-th percentile upper bound (us) of a closed window snapshot.
  static double PercentileUs(const std::array<std::uint64_t, kBuckets>& counts,
                             std::uint64_t total, double p);

  const Options options_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::mutex eval_mu_;  // serializes window close/score
  std::atomic<std::uint64_t> alarms_{0};
  std::function<void(const std::string&, double)> alarm_hook_;
};

}  // namespace obslab

#endif  // GRAFTLAB_SRC_OBSLAB_SLO_H_
