// Fault flight recorder: a bounded overwrite-oldest ring of recent
// invocation outcomes, snapshotted to a "black box" file when something
// goes wrong.
//
// Unlike tracelab's SPSC rings (which drop new events when full — correct
// for a stream a collector is expected to drain), a flight recorder must
// keep the *most recent* history, so this ring overwrites the oldest slot.
// Writers claim a slot with one atomic fetch_add and publish through a
// per-slot sequence counter (odd while the write is in progress); the
// snapshot reader skips torn slots instead of blocking, so recording stays
// lock-free and a snapshot taken mid-dispatch is always safe. Two writers
// only collide on a slot when one stalls for a full ring lap — the reader
// then sees a torn or mixed record for that one slot and drops it.
//
// Trigger() writes one self-contained JSON file naming the triggering
// event, carrying the recent outcome ring, and — when a tracer is attached
// — embedding the tail of every thread's trace ring as a top-level
// "traceEvents" array, so the same file loads in Perfetto/chrome://tracing
// AND parses as the post-mortem record. Triggers are rate-limited
// (min_interval) and capped (max_snapshots) so a fault storm produces a
// handful of files, not a disk full; suppressed triggers are counted.
//
// Wired triggers (see obslab::Plane): supervisor breaker-open, quarantine,
// degraded entry and detach; netfront io-thread crash adoption; disk hard
// errors surfacing as kDiskFault completions; sustained SLO burn.

#ifndef GRAFTLAB_SRC_OBSLAB_FLIGHT_RECORDER_H_
#define GRAFTLAB_SRC_OBSLAB_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/graftd/clock.h"
#include "src/tracelab/trace.h"

namespace obslab {

class FlightRecorder {
 public:
  struct Options {
    std::size_t ring_size = 256;  // outcome records kept (rounded to pow2)
    std::string dir = ".";        // where snapshot files land
    // Minimum spacing between written snapshots; closer triggers are
    // counted as suppressed. 0 disables rate limiting.
    std::uint64_t min_interval_ns = 1'000'000'000;
    std::size_t max_snapshots = 8;  // hard cap on files per process
    std::size_t trace_tail = 256;   // trace events kept per thread
    const graftd::Clock* clock = graftd::RealClock::Instance();
  };

  // One recorded invocation outcome. status is the numeric
  // graftd::CompletionStatus (kept as a byte so this header needs no
  // dispatcher include); the snapshot names it via StatusName.
  struct Outcome {
    std::uint64_t ts_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t elapsed_ns = 0;
    std::uint32_t graft = 0;
    std::uint8_t status = 0;
  };

  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Hot path: lock-free, allocation-free.
  void RecordOutcome(std::uint32_t graft, std::uint8_t status, std::uint64_t elapsed_ns);

  // Optional: snapshots embed the tail of this tracer's rings. Attach
  // before recording starts; must outlive the recorder.
  void set_tracer(tracelab::Tracer* tracer) { tracer_ = tracer; }

  // Takes a snapshot named after the triggering event (plus an optional
  // numeric detail, e.g. the GraftId or tenant). Returns the file path, or
  // empty when rate-limited/capped. Thread-safe; concurrent triggers
  // serialize on the snapshot mutex.
  std::string Trigger(std::string_view event, std::uint64_t detail = 0);

  // The snapshot body Trigger writes (exposed so tests validate the JSON
  // without touching the filesystem).
  std::string SnapshotJson(std::string_view event, std::uint64_t detail);

  std::uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_suppressed() const {
    return snapshots_suppressed_.load(std::memory_order_relaxed);
  }
  std::uint64_t outcomes_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  // Stable copy of the ring, oldest first; torn slots skipped.
  std::vector<Outcome> RecentOutcomes() const;

  static const char* StatusName(std::uint8_t status);

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable
    Outcome outcome;
  };

  std::uint64_t NowNs() const;

  const Options options_;
  tracelab::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};

  std::mutex snapshot_mu_;
  std::uint64_t last_snapshot_ns_ = 0;
  std::atomic<std::uint64_t> snapshots_written_{0};
  std::atomic<std::uint64_t> snapshots_suppressed_{0};
};

}  // namespace obslab

#endif  // GRAFTLAB_SRC_OBSLAB_FLIGHT_RECORDER_H_
