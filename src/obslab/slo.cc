#include "src/obslab/slo.h"

namespace obslab {

SloWatchdog::SloWatchdog(Options options) : options_(options) {}

void SloWatchdog::AddTenant(std::size_t tenant_id, std::string name, double slo_p99_us,
                            double slo_p999_us) {
  std::lock_guard<std::mutex> lock(eval_mu_);
  if (tenants_.size() <= tenant_id) {
    tenants_.resize(tenant_id + 1);
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->name = std::move(name);
  tenant->slo_p99_us = slo_p99_us;
  tenant->slo_p999_us = slo_p999_us;
  tenants_[tenant_id] = std::move(tenant);
}

void SloWatchdog::Record(std::size_t tenant_id, std::uint64_t elapsed_ns) {
  if (tenant_id >= tenants_.size()) {
    return;
  }
  Tenant* tenant = tenants_[tenant_id].get();
  if (tenant == nullptr || tenant->slo_p99_us <= 0.0) {
    return;
  }
  tenant->window.buckets[HistogramCells::BucketFor(elapsed_ns)].fetch_add(
      1, std::memory_order_relaxed);
  tenant->window.count.fetch_add(1, std::memory_order_relaxed);
}

double SloWatchdog::PercentileUs(const std::array<std::uint64_t, kBuckets>& counts,
                                 std::uint64_t total, double p) {
  if (total == 0) {
    return 0.0;
  }
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) {
    rank = total - 1;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) {
      return static_cast<double>(HistogramCells::BucketUpper(i)) / 1e3;
    }
  }
  return 0.0;
}

void SloWatchdog::Evaluate(std::uint64_t now_ns) {
  // (tenant name, p99_us) alarms collected under the lock, fired after it
  // so a hook that writes a flight-recorder snapshot (file I/O) never
  // stalls concurrent Record/Evaluate callers.
  std::vector<std::pair<std::string, double>> pending;
  {
    std::lock_guard<std::mutex> lock(eval_mu_);
    for (auto& tenant_ptr : tenants_) {
      Tenant* tenant = tenant_ptr.get();
      if (tenant == nullptr || tenant->slo_p99_us <= 0.0) {
        continue;
      }
      if (tenant->window_start_ns == 0) {
        tenant->window_start_ns = now_ns;  // first sight of this tenant's clock
        continue;
      }
      if (now_ns - tenant->window_start_ns < options_.window_ns) {
        continue;  // window still open
      }
      // Close the window: snapshot then clear. Samples racing the clear are
      // lost to scoring — bounded by the race window, and never corrupting
      // (every cell is an independent atomic).
      std::array<std::uint64_t, kBuckets> counts;
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < kBuckets; ++i) {
        counts[i] = tenant->window.buckets[i].load(std::memory_order_relaxed);
        total += counts[i];
      }
      tenant->window.Clear();
      tenant->window_start_ns = now_ns;
      if (total < options_.min_samples) {
        continue;  // idle tenants neither burn nor heal
      }
      const double p99_us = PercentileUs(counts, total, 99.0);
      const double p999_us = PercentileUs(counts, total, 99.9);
      tenant->last_p99_us_milli.store(static_cast<std::uint64_t>(p99_us * 1e3),
                                      std::memory_order_relaxed);
      const bool burning = p99_us > tenant->slo_p99_us ||
                           (tenant->slo_p999_us > 0.0 && p999_us > tenant->slo_p999_us);
      if (!burning) {
        tenant->burn.store(0, std::memory_order_relaxed);
        tenant->alarmed = false;  // a healthy window re-arms the alarm
        continue;
      }
      const std::uint32_t streak =
          tenant->burn.fetch_add(1, std::memory_order_relaxed) + 1;
      if (streak >= options_.burn_windows && !tenant->alarmed) {
        tenant->alarmed = true;
        alarms_.fetch_add(1, std::memory_order_relaxed);
        if (alarm_hook_) {
          pending.emplace_back(tenant->name, p99_us);
        }
      }
    }
  }
  for (const auto& [tenant, p99_us] : pending) {
    alarm_hook_(tenant, p99_us);
  }
}

std::uint32_t SloWatchdog::burn(std::size_t tenant_id) const {
  if (tenant_id >= tenants_.size() || tenants_[tenant_id] == nullptr) {
    return 0;
  }
  return tenants_[tenant_id]->burn.load(std::memory_order_relaxed);
}

void SloWatchdog::RegisterWith(MetricsRegistry& registry) {
  registry.AddCollector([this](std::vector<Sample>& out) {
    for (const auto& tenant_ptr : tenants_) {
      const Tenant* tenant = tenant_ptr.get();
      if (tenant == nullptr || tenant->slo_p99_us <= 0.0) {
        continue;
      }
      out.push_back(Sample{"graftlab_slo_burn", Labels{{"tenant", tenant->name}},
                           static_cast<double>(tenant->burn.load(std::memory_order_relaxed)),
                           false});
      out.push_back(Sample{
          "graftlab_slo_p99_us", Labels{{"tenant", tenant->name}},
          static_cast<double>(tenant->last_p99_us_milli.load(std::memory_order_relaxed)) /
              1e3,
          false});
      out.push_back(Sample{"graftlab_slo_target_p99_us", Labels{{"tenant", tenant->name}},
                           tenant->slo_p99_us, false});
    }
    out.push_back(Sample{"graftlab_slo_alarms_total", {},
                         static_cast<double>(alarms_.load(std::memory_order_relaxed)),
                         true});
  });
}

}  // namespace obslab
