// obslab::Plane — the always-on observability plane, assembled.
//
// One object owns the four pieces (metrics registry, fault flight
// recorder, sampling profiler, SLO watchdog) and wires them over a
// graftd::Dispatcher:
//
//   * registry collectors expose every existing telemetry section —
//     per-graft counters and latency, supervision + breaker states,
//     vm_opcodes (including the elision certificate's checks_elided /
//     checks_retained rows), dispatch mechanics, faultlab injection
//     sites, tracelab drop counters — without touching their hot paths;
//   * the dispatcher's outcome hook feeds the flight ring, and a
//     kDiskFault completion triggers a "disk_hard_error" snapshot;
//   * the supervisor's event hook snapshots on breaker_open, quarantine,
//     degraded entry, and detach;
//   * the SLO watchdog's alarm hook snapshots on sustained burn.
//
// Dependency direction: obslab depends on graftd/tracelab/faultlab only.
// netfront integration goes through the std::function seams on
// ServerOptions — wire options.admin_metrics to [&]{ plane.Exposition },
// options.obs_event to OnServerEvent, options.obs_latency to
// OnTenantLatency, and register the server's FillTelemetry through
// AddNetfrontCollector — so the server never links against obslab.
//
// The `enabled` switch gates the hot-path hooks (outcome recording, SLO
// records) with one relaxed load; scraping works either way. The
// disabled cost is the bench/obs_overhead ≤1% gate, the enabled cost
// (with the profiler at 97 Hz) the ≤5% gate.

#ifndef GRAFTLAB_SRC_OBSLAB_PLANE_H_
#define GRAFTLAB_SRC_OBSLAB_PLANE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "src/faultlab/injector.h"
#include "src/graftd/dispatcher.h"
#include "src/obslab/flight_recorder.h"
#include "src/obslab/profiler.h"
#include "src/obslab/registry.h"
#include "src/obslab/slo.h"
#include "src/tracelab/trace.h"

namespace obslab {

// Exposition formats for the kAdminMetrics wire frame: the request
// payload's first byte selects one (empty payload = Prometheus text).
inline constexpr std::uint8_t kFormatPrometheus = 0;
inline constexpr std::uint8_t kFormatJson = 1;

struct PlaneOptions {
  bool enabled = true;
  FlightRecorder::Options recorder{};
  Profiler::Options profiler{};
  SloWatchdog::Options slo{};
};

class Plane {
 public:
  explicit Plane(PlaneOptions options = PlaneOptions{});

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  MetricsRegistry& registry() { return registry_; }
  FlightRecorder& recorder() { return recorder_; }
  Profiler& profiler() { return profiler_; }
  SloWatchdog& slo() { return slo_; }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Wires hooks and collectors over the dispatcher. Call after every
  // graft is registered and before the first Submit (the dispatcher's
  // attach contract). The dispatcher must outlive the plane's scrapes.
  void Attach(graftd::Dispatcher& dispatcher);

  // Optional extras; call alongside Attach.
  void AttachTracer(tracelab::Tracer* tracer);
  void AttachInjector(const faultlab::Injector* injector);

  // Registers a pull source for the "__netfront__" section (wire the
  // server's FillTelemetry here; the fill callback must outlive scrapes).
  void AddNetfrontCollector(std::function<void(graftd::NetfrontSection&)> fill);

  // --- netfront seams (plug into ServerOptions as std::functions) ---

  // ServerOptions::admin_metrics: one scrape in the requested format.
  std::string Exposition(std::uint8_t format);

  // ServerOptions::obs_event: front-end failure events ("io_thread_crash")
  // become flight-recorder snapshots.
  void OnServerEvent(const char* event);

  // ServerOptions::obs_latency: per-tenant completion latency feeds the
  // SLO windows; Evaluate() piggybacks on this feed (amortized, no timer
  // thread needed) and on every scrape.
  void OnTenantLatency(std::uint16_t tenant, std::uint64_t elapsed_ns);

  std::uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  std::uint64_t NowNs() const;

  std::atomic<bool> enabled_;
  MetricsRegistry registry_;
  FlightRecorder recorder_;
  Profiler profiler_;
  SloWatchdog slo_;
  const graftd::Clock* clock_;
  graftd::Dispatcher* dispatcher_ = nullptr;
  std::atomic<std::uint64_t> scrapes_{0};
  std::atomic<std::uint64_t> latency_feed_{0};
};

}  // namespace obslab

#endif  // GRAFTLAB_SRC_OBSLAB_PLANE_H_
