#include "src/obslab/registry.h"

#include <cstdio>

#include "src/tracelab/json_util.h"

namespace obslab {

namespace {

bool NameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool NameChar(char c) { return NameStartChar(c) || (c >= '0' && c <= '9'); }

void AppendHelpEscaped(std::string& out, std::string_view help) {
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void AppendDouble(std::string& out, double v) {
  // Integral values render without a fraction so counter scrapes are
  // trivially parseable (and diffable) as integers.
  if (v >= 0 && v < 9.2e18 && v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    out += std::to_string(static_cast<std::uint64_t>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void AppendLabels(std::string& out, const Labels& labels, const char* extra_key = nullptr,
                  const std::string& extra_value = std::string()) {
  if (labels.empty() && extra_key == nullptr) {
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += MetricsRegistry::SanitizeName(key);
    out += "=\"";
    MetricsRegistry::AppendEscapedLabelValue(out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) {
      out += ',';
    }
    out += extra_key;
    out += "=\"";
    out += extra_value;  // always a number or "+Inf"; nothing to escape
    out += '"';
  }
  out += '}';
}

const char* KindName(bool monotonic) { return monotonic ? "counter" : "gauge"; }

}  // namespace

std::string MetricsRegistry::SanitizeName(std::string_view name) {
  if (name.empty()) {
    return "_";
  }
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = i == 0 ? NameStartChar(c) : NameChar(c);
    out += ok ? c : '_';
  }
  return out;
}

void MetricsRegistry::AppendEscapedLabelValue(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;  // UTF-8 passes through byte-wise, per the format
    }
  }
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrNull(Kind kind, const std::string& name,
                                                         const Labels& labels) {
  for (const auto& instrument : instruments_) {
    if (instrument->kind == kind && instrument->name == name &&
        instrument->labels == labels) {
      return instrument.get();
    }
  }
  return nullptr;
}

Counter MetricsRegistry::RegisterCounter(std::string name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string sanitized = SanitizeName(name);
  if (Instrument* existing = FindOrNull(Kind::kCounter, sanitized, labels)) {
    return Counter(existing->counter.get());
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = Kind::kCounter;
  instrument->name = sanitized;
  instrument->labels = std::move(labels);
  instrument->help = std::move(help);
  instrument->counter = std::make_unique<std::atomic<std::uint64_t>>(0);
  Counter handle(instrument->counter.get());
  instruments_.push_back(std::move(instrument));
  return handle;
}

Gauge MetricsRegistry::RegisterGauge(std::string name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string sanitized = SanitizeName(name);
  if (Instrument* existing = FindOrNull(Kind::kGauge, sanitized, labels)) {
    return Gauge(existing->gauge.get());
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = Kind::kGauge;
  instrument->name = sanitized;
  instrument->labels = std::move(labels);
  instrument->help = std::move(help);
  instrument->gauge = std::make_unique<std::atomic<std::int64_t>>(0);
  Gauge handle(instrument->gauge.get());
  instruments_.push_back(std::move(instrument));
  return handle;
}

Histogram MetricsRegistry::RegisterHistogram(std::string name, Labels labels,
                                             std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string sanitized = SanitizeName(name);
  if (Instrument* existing = FindOrNull(Kind::kHistogram, sanitized, labels)) {
    return Histogram(existing->histogram.get());
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = Kind::kHistogram;
  instrument->name = sanitized;
  instrument->labels = std::move(labels);
  instrument->help = std::move(help);
  instrument->histogram = std::make_unique<HistogramCells>();
  Histogram handle(instrument->histogram.get());
  instruments_.push_back(std::move(instrument));
  return handle;
}

void MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::Collect(std::vector<Sample>& out,
                              std::vector<const Instrument*>& hists) const {
  for (const auto& instrument : instruments_) {
    switch (instrument->kind) {
      case Kind::kCounter:
        out.push_back(Sample{
            instrument->name, instrument->labels,
            static_cast<double>(instrument->counter->load(std::memory_order_relaxed)),
            true});
        break;
      case Kind::kGauge:
        out.push_back(Sample{
            instrument->name, instrument->labels,
            static_cast<double>(instrument->gauge->load(std::memory_order_relaxed)),
            false});
        break;
      case Kind::kHistogram:
        hists.push_back(instrument.get());
        break;
    }
  }
  for (const Collector& collector : collectors_) {
    const std::size_t before = out.size();
    collector(out);
    // Collector-provided names arrive unsanitized.
    for (std::size_t i = before; i < out.size(); ++i) {
      out[i].name = SanitizeName(out[i].name);
    }
  }
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  std::vector<const Instrument*> hists;
  Collect(samples, hists);

  std::string out;
  out.reserve(4096 + samples.size() * 64);

  // One HELP/TYPE block per metric name, samples grouped under the first
  // appearance so multi-label families stay legal exposition.
  std::vector<std::size_t> emitted(samples.size(), 0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (emitted[i] != 0) {
      continue;
    }
    const Sample& head = samples[i];
    out += "# TYPE ";
    out += head.name;
    out += ' ';
    out += KindName(head.monotonic);
    out += '\n';
    for (std::size_t j = i; j < samples.size(); ++j) {
      if (emitted[j] != 0 || samples[j].name != head.name) {
        continue;
      }
      emitted[j] = 1;
      out += samples[j].name;
      AppendLabels(out, samples[j].labels);
      out += ' ';
      AppendDouble(out, samples[j].value);
      out += '\n';
    }
  }

  for (const Instrument* hist : hists) {
    if (!hist->help.empty()) {
      out += "# HELP ";
      out += hist->name;
      out += ' ';
      AppendHelpEscaped(out, hist->help);
      out += '\n';
    }
    out += "# TYPE ";
    out += hist->name;
    out += " histogram\n";
    // Snapshot buckets first: concurrent recording may advance count
    // between loads, and `le="+Inf"` must equal _count, so _count is
    // derived from the bucket snapshot rather than read separately.
    std::uint64_t cumulative = 0;
    std::array<std::uint64_t, HistogramCells::kBuckets> counts;
    for (std::size_t b = 0; b < HistogramCells::kBuckets; ++b) {
      counts[b] = hist->histogram->buckets[b].load(std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < HistogramCells::kBuckets; ++b) {
      if (counts[b] == 0 && b + 1 != HistogramCells::kBuckets) {
        cumulative += counts[b];
        continue;  // keep the exposition small: only occupied buckets
      }
      cumulative += counts[b];
      out += hist->name;
      out += "_bucket";
      AppendLabels(out, hist->labels, "le",
                   b + 1 == HistogramCells::kBuckets
                       ? std::string("+Inf")
                       : std::to_string(HistogramCells::BucketUpper(b)));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += hist->name;
    out += "_sum";
    AppendLabels(out, hist->labels);
    out += ' ';
    out += std::to_string(hist->histogram->sum.load(std::memory_order_relaxed));
    out += '\n';
    out += hist->name;
    out += "_count";
    AppendLabels(out, hist->labels);
    out += ' ';
    out += std::to_string(cumulative);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> samples;
  std::vector<const Instrument*> hists;
  Collect(samples, hists);

  std::string out;
  out.reserve(4096 + samples.size() * 80);
  out += "{\"metrics\":[";
  bool first = true;
  const auto append_labels = [&out](const Labels& labels) {
    out += "\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : labels) {
      if (!first_label) {
        out += ',';
      }
      first_label = false;
      tracelab::AppendJsonString(out, key);
      out += ':';
      tracelab::AppendJsonString(out, value);
    }
    out += '}';
  };
  for (const Sample& sample : samples) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n  {\"name\":";
    tracelab::AppendJsonString(out, sample.name);
    out += ",\"type\":\"";
    out += KindName(sample.monotonic);
    out += "\",";
    append_labels(sample.labels);
    out += ",\"value\":";
    AppendDouble(out, sample.value);
    out += '}';
  }
  for (const Instrument* hist : hists) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n  {\"name\":";
    tracelab::AppendJsonString(out, hist->name);
    out += ",\"type\":\"histogram\",";
    append_labels(hist->labels);
    out += ",\"count\":";
    out += std::to_string(hist->histogram->count.load(std::memory_order_relaxed));
    out += ",\"sum\":";
    out += std::to_string(hist->histogram->sum.load(std::memory_order_relaxed));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < HistogramCells::kBuckets; ++b) {
      const std::uint64_t count = hist->histogram->buckets[b].load(std::memory_order_relaxed);
      cumulative += count;
      if (count == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += "{\"le\":";
      out += std::to_string(HistogramCells::BucketUpper(b));
      out += ",\"count\":";
      out += std::to_string(cumulative);
      out += '}';
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obslab
