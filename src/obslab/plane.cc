#include "src/obslab/plane.h"

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

namespace obslab {

namespace {

// How many OnTenantLatency calls between piggybacked SLO evaluations. The
// evaluation is one mutex + a per-tenant load when windows are still open,
// so amortizing over a few hundred completions keeps it out of the noise
// while still closing windows promptly under load (idle periods are
// covered by the evaluation every scrape performs).
constexpr std::uint64_t kEvalStride = 256;

const char* OutcomeLabel(std::size_t i) {
  // Index order matches the GraftCounters fields emitted below.
  static constexpr const char* kNames[] = {
      "ok",       "fault",           "preempt",          "disk_fault",
      "rejected_quarantined", "rejected_detached", "rejected_degraded", "expired"};
  return kNames[i];
}

// `registration` >= 0 adds a disambiguating label: re-registering a graft
// name (one configuration retired, another loaded under the same name)
// yields multiple registry rows with identical names, and emitting them
// under identical labels would fold independent counters into one series at
// the scrape consumer.
void EmitGraftRow(const graftd::TelemetrySnapshot::Row& row, std::int64_t registration,
                  std::vector<Sample>& out) {
  Labels graft{{"graft", row.name}};
  if (registration >= 0) {
    graft.emplace_back("registration", std::to_string(registration));
  }
  const graftd::GraftCounters& c = row.counters;
  out.push_back(Sample{"graftlab_graft_invocations_total", graft,
                       static_cast<double>(c.invocations), true});
  const std::uint64_t outcomes[] = {c.ok,
                                    c.faults,
                                    c.preempts,
                                    c.disk_faults,
                                    c.rejected_quarantined,
                                    c.rejected_detached,
                                    c.rejected_degraded,
                                    c.shed_expired};
  for (std::size_t i = 0; i < 8; ++i) {
    if (outcomes[i] == 0 && i != 0) {
      continue;  // keep the scrape lean; "ok" always present as the anchor
    }
    Labels labels = graft;
    labels.emplace_back("outcome", OutcomeLabel(i));
    out.push_back(Sample{"graftlab_graft_outcomes_total", std::move(labels),
                         static_cast<double>(outcomes[i]), true});
  }
  out.push_back(Sample{"graftlab_graft_fuel_used_total", graft,
                       static_cast<double>(c.fuel_used), true});
  if (c.latency.count() > 0) {
    out.push_back(
        Sample{"graftlab_graft_latency_p50_us", graft, c.latency.PercentileUs(50.0), false});
    out.push_back(
        Sample{"graftlab_graft_latency_p99_us", graft, c.latency.PercentileUs(99.0), false});
    out.push_back(Sample{"graftlab_graft_latency_p999_us", graft,
                         c.latency.PercentileUs(99.9), false});
  }
  // Per-opcode retire counts ride along unchanged — this is also where the
  // elision verifier's checks_elided / checks_retained certificates surface
  // (minnow grafts report them through the same ExecutionProfile table).
  for (const auto& [opcode, count] : c.vm_opcodes) {
    Labels labels = graft;
    labels.emplace_back("opcode", opcode);
    out.push_back(Sample{"graftlab_vm_opcode_total", std::move(labels),
                         static_cast<double>(count), true});
  }

  // Supervision: current graft state and breaker position as one-hot
  // samples (only the active state is emitted), histories as counters.
  const graftd::Supervisor::GraftStatus& s = row.supervision;
  Labels state_labels = graft;
  state_labels.emplace_back("state", graftd::GraftStateName(s.state));
  out.push_back(Sample{"graftlab_graft_state", std::move(state_labels), 1.0, false});
  Labels breaker_labels = graft;
  breaker_labels.emplace_back("state", graftd::BreakerStateName(s.breaker));
  out.push_back(Sample{"graftlab_breaker_state", std::move(breaker_labels), 1.0, false});
  out.push_back(Sample{"graftlab_graft_quarantines_total", graft,
                       static_cast<double>(s.quarantines), true});
  out.push_back(Sample{"graftlab_graft_readmissions_total", graft,
                       static_cast<double>(s.readmissions), true});
  out.push_back(Sample{"graftlab_graft_degradations_total", graft,
                       static_cast<double>(s.degradations), true});
  out.push_back(Sample{"graftlab_graft_recoveries_total", graft,
                       static_cast<double>(s.recoveries), true});
  out.push_back(Sample{"graftlab_breaker_opens_total", graft,
                       static_cast<double>(s.breaker_opens), true});
}

void EmitDispatch(const graftd::TelemetrySnapshot::DispatchStats& d,
                  std::vector<Sample>& out) {
  out.push_back(Sample{"graftlab_dispatch_inline_hits_total", {},
                       static_cast<double>(d.inline_hits), true});
  out.push_back(Sample{"graftlab_dispatch_inline_misses_total", {},
                       static_cast<double>(d.inline_misses), true});
  out.push_back(Sample{"graftlab_dispatch_shed_expired_total", {},
                       static_cast<double>(d.shed_expired), true});
  out.push_back(Sample{"graftlab_dispatch_workers", {},
                       static_cast<double>(d.workers.size()), false});
  std::uint64_t batches = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t parks = 0;
  for (const auto& worker : d.workers) {
    batches += worker.batches;
    dequeued += worker.dequeued;
    parks += worker.parks;
  }
  out.push_back(
      Sample{"graftlab_dispatch_batches_total", {}, static_cast<double>(batches), true});
  out.push_back(
      Sample{"graftlab_dispatch_dequeued_total", {}, static_cast<double>(dequeued), true});
  out.push_back(
      Sample{"graftlab_dispatch_parks_total", {}, static_cast<double>(parks), true});
}

}  // namespace

Plane::Plane(PlaneOptions options)
    : enabled_(options.enabled),
      recorder_(options.recorder),
      profiler_(options.profiler),
      slo_(options.slo),
      clock_(options.recorder.clock) {
  slo_.set_alarm_hook([this](const std::string& tenant, double p99_us) {
    recorder_.Trigger("slo_burn", static_cast<std::uint64_t>(p99_us));
    (void)tenant;
  });
  slo_.RegisterWith(registry_);
  profiler_.RegisterWith(registry_);
  // The plane's own health counters.
  registry_.AddCollector([this](std::vector<Sample>& out) {
    out.push_back(Sample{"graftlab_obs_enabled", {}, enabled() ? 1.0 : 0.0, false});
    out.push_back(Sample{"graftlab_scrapes_total", {},
                         static_cast<double>(scrapes_.load(std::memory_order_relaxed)),
                         true});
    out.push_back(Sample{"graftlab_flightrec_snapshots_total", {},
                         static_cast<double>(recorder_.snapshots_written()), true});
    out.push_back(Sample{"graftlab_flightrec_suppressed_total", {},
                         static_cast<double>(recorder_.snapshots_suppressed()), true});
    out.push_back(Sample{"graftlab_flightrec_outcomes_total", {},
                         static_cast<double>(recorder_.outcomes_recorded()), true});
  });
}

void Plane::Attach(graftd::Dispatcher& dispatcher) {
  dispatcher_ = &dispatcher;

  // Hot-path hooks: one enabled() load, then lock-free recording. The
  // kDiskFault trigger rides the outcome hook (the recorder's rate limiter
  // bounds a failing device to one snapshot per interval, not one per op).
  dispatcher.set_outcome_hook([this](graftd::GraftId graft,
                                     graftd::CompletionStatus status,
                                     std::uint64_t elapsed_ns) {
    if (!enabled()) {
      return;
    }
    recorder_.RecordOutcome(graft, static_cast<std::uint8_t>(status), elapsed_ns);
    if (status == graftd::CompletionStatus::kDiskFault) {
      recorder_.Trigger("disk_hard_error", graft);
    }
  });
  dispatcher.supervisor().set_event_hook([this](const char* event, graftd::GraftId id) {
    if (enabled()) {
      recorder_.Trigger(event, id);
    }
  });

  // Graft names for profiler attribution (ids are dense from 0 and
  // registration precedes Attach per the dispatcher contract).
  const graftd::TelemetrySnapshot initial = dispatcher.Snapshot();
  for (std::size_t i = 0; i < initial.grafts.size(); ++i) {
    profiler_.SetGraftName(static_cast<std::uint32_t>(i), initial.grafts[i].name);
  }

  // The big pull source: one dispatcher snapshot per scrape, fanned out
  // into per-graft counters, latency percentiles, supervision/breaker
  // states, vm opcode tables and dispatch mechanics.
  registry_.AddCollector([this](std::vector<Sample>& out) {
    if (dispatcher_ == nullptr) {
      return;
    }
    const graftd::TelemetrySnapshot snapshot = dispatcher_->Snapshot();
    std::unordered_map<std::string, int> name_counts;
    for (const auto& row : snapshot.grafts) {
      ++name_counts[row.name];
    }
    for (std::size_t id = 0; id < snapshot.grafts.size(); ++id) {
      const auto& row = snapshot.grafts[id];
      const bool duplicate = name_counts[row.name] > 1;
      EmitGraftRow(row, duplicate ? static_cast<std::int64_t>(id) : -1, out);
    }
    EmitDispatch(snapshot.dispatch, out);
  });
}

void Plane::AttachTracer(tracelab::Tracer* tracer) {
  recorder_.set_tracer(tracer);
  registry_.AddCollector([tracer](std::vector<Sample>& out) {
    out.push_back(Sample{"graftlab_trace_events_dropped_total", {},
                         static_cast<double>(tracer->dropped()), true});
    out.push_back(Sample{"graftlab_tracelab_sites_dropped_total", {},
                         static_cast<double>(tracer->sites_dropped()), true});
  });
}

void Plane::AttachInjector(const faultlab::Injector* injector) {
  registry_.AddCollector([injector](std::vector<Sample>& out) {
    for (const auto& site : injector->Counters()) {
      out.push_back(Sample{"graftlab_fault_site_hits_total",
                           Labels{{"site", site.site}},
                           static_cast<double>(site.hits), true});
      out.push_back(Sample{"graftlab_fault_injections_total",
                           Labels{{"site", site.site}},
                           static_cast<double>(site.injected), true});
    }
  });
}

void Plane::AddNetfrontCollector(std::function<void(graftd::NetfrontSection&)> fill) {
  registry_.AddCollector([fill = std::move(fill)](std::vector<Sample>& out) {
    graftd::NetfrontSection section;
    fill(section);
    if (!section.present) {
      return;
    }
    for (const auto& tenant : section.tenants) {
      const Labels labels{{"tenant", tenant.name}};
      out.push_back(Sample{"graftlab_tenant_accepted_total", labels,
                           static_cast<double>(tenant.accepted), true});
      out.push_back(Sample{"graftlab_tenant_completed_ok_total", labels,
                           static_cast<double>(tenant.completed_ok), true});
      out.push_back(Sample{"graftlab_tenant_completed_error_total", labels,
                           static_cast<double>(tenant.completed_error), true});
      out.push_back(Sample{"graftlab_tenant_shed_degraded_total", labels,
                           static_cast<double>(tenant.shed_degraded), true});
      out.push_back(Sample{"graftlab_tenant_shed_overload_total", labels,
                           static_cast<double>(tenant.shed_overload), true});
      out.push_back(Sample{"graftlab_tenant_quota_rejected_total", labels,
                           static_cast<double>(tenant.quota_rejected), true});
      out.push_back(Sample{"graftlab_tenant_breaker_open_total", labels,
                           static_cast<double>(tenant.breaker_open), true});
      out.push_back(Sample{"graftlab_tenant_retries_deduped_total", labels,
                           static_cast<double>(tenant.retries_deduped), true});
    }
    out.push_back(Sample{"graftlab_net_connections_opened_total", {},
                         static_cast<double>(section.connections_opened), true});
    out.push_back(Sample{"graftlab_net_connections_closed_total", {},
                         static_cast<double>(section.connections_closed), true});
    out.push_back(Sample{"graftlab_net_connections_active", {},
                         static_cast<double>(section.connections_active), false});
    out.push_back(Sample{"graftlab_net_frame_errors_total", {},
                         static_cast<double>(section.frame_errors), true});
    out.push_back(Sample{"graftlab_net_bytes_in_total", {},
                         static_cast<double>(section.bytes_in), true});
    out.push_back(Sample{"graftlab_net_bytes_out_total", {},
                         static_cast<double>(section.bytes_out), true});
    out.push_back(Sample{"graftlab_net_read_pauses_total", {},
                         static_cast<double>(section.read_pauses), true});
    out.push_back(Sample{"graftlab_net_slow_reader_closes_total", {},
                         static_cast<double>(section.slow_reader_closes), true});
    out.push_back(Sample{"graftlab_net_io_thread_crashes_total", {},
                         static_cast<double>(section.io_thread_crashes), true});
    out.push_back(Sample{"graftlab_net_conns_adopted_total", {},
                         static_cast<double>(section.conns_adopted), true});
    out.push_back(Sample{"graftlab_net_crash_orphans_total", {},
                         static_cast<double>(section.crash_orphans), true});
  });
}

std::string Plane::Exposition(std::uint8_t format) {
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  // A scrape closes any due SLO windows, so burn gauges stay live even when
  // the latency feed pauses (e.g. the tenant stopped sending).
  slo_.Evaluate(NowNs());
  if (format == kFormatJson) {
    return registry_.Json();
  }
  return registry_.PrometheusText();
}

void Plane::OnServerEvent(const char* event) {
  if (enabled()) {
    recorder_.Trigger(event);
  }
}

void Plane::OnTenantLatency(std::uint16_t tenant, std::uint64_t elapsed_ns) {
  if (!enabled()) {
    return;
  }
  slo_.Record(tenant, elapsed_ns);
  // Piggyback evaluation on the feed itself — no watchdog thread needed.
  if (latency_feed_.fetch_add(1, std::memory_order_relaxed) % kEvalStride ==
      kEvalStride - 1) {
    slo_.Evaluate(NowNs());
  }
}

std::uint64_t Plane::NowNs() const {
  if (dispatcher_ != nullptr) {
    return dispatcher_->NowNs();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock_->Now().time_since_epoch())
          .count());
}

}  // namespace obslab
