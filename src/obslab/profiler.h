// Sampling profiler: SIGPROF-driven attribution of CPU time to
// {graft, stage}.
//
// Start() arms ITIMER_PROF at `hz` (97 by default — prime, so sampling
// cannot phase-lock with millisecond-periodic work). The kernel delivers
// SIGPROF to whichever thread is burning CPU when the interval expires;
// the handler reads that thread's own tracelab::ProfSlot (a plain POD
// thread_local the dispatcher stamps around each invocation stage) and
// increments one cell of a preallocated atomic count matrix. Everything
// the handler touches is async-signal-safe: a TLS read, an index clamp,
// and one relaxed fetch_add — no locks, no allocation, no clock reads.
//
// Results export as a flame-ready folded-stacks family: each populated
// {graft, stage} cell becomes one `graftlab;<graft>;<stage> <count>` line
// (FoldedStacks) and one `graftlab_profile_samples_total` sample with
// graft/stage labels (RegisterWith). Samples landing outside any graft
// attribute to graft "-" stage "idle" — the harness/epoll/park share.
//
// One profiler may be active per process (the signal handler needs a
// global); Start() fails if another is running. Stop() disarms the timer
// and restores the previous SIGPROF disposition.

#ifndef GRAFTLAB_SRC_OBSLAB_PROFILER_H_
#define GRAFTLAB_SRC_OBSLAB_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obslab/registry.h"
#include "src/tracelab/trace.h"

namespace obslab {

class Profiler {
 public:
  struct Options {
    int hz = 97;
    // Count matrix rows: graft tags 0..max_grafts (0 = outside any graft).
    std::size_t max_grafts = 64;
  };

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(Options options);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Names graft tag `id + 1` for exposition (unnamed tags render as
  // "graft<n>"). Call before or during profiling; not on the sample path.
  void SetGraftName(std::uint32_t graft_id, std::string name);

  bool Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

  // Folded-stacks text: one "graftlab;<graft>;<stage> <count>" line per
  // populated cell — pipe into flamegraph.pl as-is.
  std::string FoldedStacks() const;

  // Exports graftlab_profile_samples_total{graft=...,stage=...} through
  // the registry (as a collector; the registry must outlive the profiler's
  // samples being scraped).
  void RegisterWith(MetricsRegistry& registry);

 private:
  static void Handler(int signo);
  std::size_t CellIndex(std::uint32_t graft_tag, std::uint32_t stage) const;
  std::string GraftLabel(std::size_t row) const;

  const Options options_;
  // (max_grafts + 1) x kProfStages relaxed-atomic cells.
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<bool> running_{false};
  std::vector<std::string> names_;  // by graft id; grown under names_mu_
  mutable std::mutex names_mu_;
  bool timer_armed_ = false;
  struct SigactionState;
  std::unique_ptr<SigactionState> saved_;
};

}  // namespace obslab

#endif  // GRAFTLAB_SRC_OBSLAB_PROFILER_H_
