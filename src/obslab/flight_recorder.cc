#include "src/obslab/flight_recorder.h"

#include <bit>
#include <cstdio>

#include "src/tracelab/export.h"
#include "src/tracelab/json_util.h"

namespace obslab {

namespace {

// Mirrors graftd::CompletionStatus without the include (kept in sync by
// tests/obslab_test.cc).
constexpr const char* kStatusNames[] = {
    "ok",        "fault",    "preempt",  "disk_fault",
    "rejected_quarantined", "rejected_detached", "rejected_degraded", "expired",
};

std::string SanitizeEventForFilename(std::string_view event) {
  std::string out;
  out.reserve(event.size());
  for (const char c : event) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("event") : out;
}

}  // namespace

const char* FlightRecorder::StatusName(std::uint8_t status) {
  return status < std::size(kStatusNames) ? kStatusNames[status] : "?";
}

FlightRecorder::FlightRecorder(Options options) : options_(std::move(options)) {
  const std::size_t capacity =
      std::bit_ceil(options_.ring_size < 2 ? std::size_t{2} : options_.ring_size);
  slots_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  mask_ = capacity - 1;
}

std::uint64_t FlightRecorder::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.clock->Now().time_since_epoch())
          .count());
}

void FlightRecorder::RecordOutcome(std::uint32_t graft, std::uint8_t status,
                                   std::uint64_t elapsed_ns) {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[index & mask_];
  // Odd seq marks the write window; the release on the closing store
  // publishes the fields to a reader that sees the same even value twice.
  const std::uint64_t seq = slot.seq.fetch_add(1, std::memory_order_acq_rel);
  slot.outcome.ts_ns = NowNs();
  slot.outcome.trace_id = tracelab::CurrentTraceId();
  slot.outcome.elapsed_ns = elapsed_ns;
  slot.outcome.graft = graft;
  slot.outcome.status = status;
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<FlightRecorder::Outcome> FlightRecorder::RecentOutcomes() const {
  std::vector<Outcome> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = head < slots_.size() ? head : slots_.size();
  out.reserve(count);
  // Oldest first: the slot head will overwrite next is the oldest record.
  for (std::uint64_t i = head - count; i != head; ++i) {
    const Slot& slot = *slots_[i & mask_];
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if ((seq_before & 1) != 0) {
      continue;  // torn: a writer is mid-update
    }
    Outcome copy = slot.outcome;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
      continue;  // overwritten while copying
    }
    out.push_back(copy);
  }
  return out;
}

std::string FlightRecorder::SnapshotJson(std::string_view event, std::uint64_t detail) {
  std::string out;
  out.reserve(16384);
  out += "{\"trigger\":{\"event\":";
  tracelab::AppendJsonString(out, std::string(event));
  out += ",\"detail\":";
  out += std::to_string(detail);
  out += ",\"ts_ns\":";
  out += std::to_string(NowNs());
  out += ",\"snapshots_written\":";
  out += std::to_string(snapshots_written_.load(std::memory_order_relaxed));
  out += "},\n\"outcomes\":[";
  bool first = true;
  for (const Outcome& outcome : RecentOutcomes()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\n  {\"ts_ns\":";
    out += std::to_string(outcome.ts_ns);
    out += ",\"graft\":";
    out += std::to_string(outcome.graft);
    out += ",\"status\":\"";
    out += StatusName(outcome.status);
    out += "\",\"elapsed_ns\":";
    out += std::to_string(outcome.elapsed_ns);
    out += ",\"trace_id\":";
    out += std::to_string(outcome.trace_id);
    out += '}';
  }
  out += "\n],\n\"traceEvents\":[";
  if (tracer_ != nullptr) {
    const tracelab::TraceDump dump = tracer_->DumpTail(options_.trace_tail);
    bool first_event = true;
    tracelab::AppendChromeTraceEvents(out, dump, first_event);
    out += "\n],\n\"otherData\":{\"dropped_events\":";
    out += std::to_string(dump.dropped());
    out += ",\"sites_dropped\":";
    out += std::to_string(tracer_->sites_dropped());
    out += '}';
  } else {
    out += "],\n\"otherData\":{}";
  }
  out += ",\n\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string FlightRecorder::Trigger(std::string_view event, std::uint64_t detail) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  const std::uint64_t written = snapshots_written_.load(std::memory_order_relaxed);
  const std::uint64_t now = NowNs();
  if (written >= options_.max_snapshots ||
      (options_.min_interval_ns != 0 && last_snapshot_ns_ != 0 &&
       now - last_snapshot_ns_ < options_.min_interval_ns)) {
    snapshots_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return std::string();
  }
  const std::string path = options_.dir + "/flightrec_" + std::to_string(written) + "_" +
                           SanitizeEventForFilename(event) + ".json";
  const std::string body = SnapshotJson(event, detail);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "obslab: cannot write %s\n", path.c_str());
    snapshots_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return std::string();
  }
  const std::size_t put = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (put != body.size()) {
    std::fprintf(stderr, "obslab: short write to %s\n", path.c_str());
    return std::string();
  }
  last_snapshot_ns_ = now;
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  return path;
}

}  // namespace obslab
