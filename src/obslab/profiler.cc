#include "src/obslab/profiler.h"

#include <signal.h>
#include <sys/time.h>

#include <cstring>

namespace obslab {

namespace {

// The handler's route to the active profiler. Only one may run at a time.
std::atomic<Profiler*> g_active_profiler{nullptr};

}  // namespace

struct Profiler::SigactionState {
  struct sigaction previous;
  struct itimerval previous_timer;
};

Profiler::Profiler(Options options)
    : options_(options),
      cells_((options.max_grafts + 1) * tracelab::kProfStages),
      saved_(std::make_unique<SigactionState>()) {}

Profiler::~Profiler() { Stop(); }

void Profiler::SetGraftName(std::uint32_t graft_id, std::string name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  if (names_.size() <= graft_id) {
    names_.resize(graft_id + 1);
  }
  names_[graft_id] = std::move(name);
}

std::size_t Profiler::CellIndex(std::uint32_t graft_tag, std::uint32_t stage) const {
  // Tags beyond the matrix clamp into the last row rather than sampling
  // out of bounds; stages likewise.
  if (graft_tag > options_.max_grafts) {
    graft_tag = static_cast<std::uint32_t>(options_.max_grafts);
  }
  if (stage >= tracelab::kProfStages) {
    stage = 0;
  }
  return graft_tag * tracelab::kProfStages + stage;
}

void Profiler::Handler(int /*signo*/) {
  Profiler* profiler = g_active_profiler.load(std::memory_order_acquire);
  if (profiler == nullptr) {
    return;
  }
  const tracelab::ProfSlot slot = tracelab::CurrentProfSlot();
  profiler->cells_[profiler->CellIndex(slot.graft, slot.stage)].fetch_add(
      1, std::memory_order_relaxed);
  profiler->samples_.fetch_add(1, std::memory_order_relaxed);
}

bool Profiler::Start() {
  Profiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel)) {
    return false;  // another profiler is live
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &Profiler::Handler;
  action.sa_flags = SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &saved_->previous) != 0) {
    g_active_profiler.store(nullptr, std::memory_order_release);
    return false;
  }
  const long interval_us = 1'000'000L / (options_.hz > 0 ? options_.hz : 97);
  struct itimerval timer;
  timer.it_interval.tv_sec = interval_us / 1'000'000L;
  timer.it_interval.tv_usec = interval_us % 1'000'000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, &saved_->previous_timer) != 0) {
    sigaction(SIGPROF, &saved_->previous, nullptr);
    g_active_profiler.store(nullptr, std::memory_order_release);
    return false;
  }
  timer_armed_ = true;
  running_.store(true, std::memory_order_release);
  return true;
}

void Profiler::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  if (timer_armed_) {
    setitimer(ITIMER_PROF, &saved_->previous_timer, nullptr);
    timer_armed_ = false;
  }
  sigaction(SIGPROF, &saved_->previous, nullptr);
  g_active_profiler.store(nullptr, std::memory_order_release);
}

std::string Profiler::GraftLabel(std::size_t row) const {
  if (row == 0) {
    return "-";
  }
  std::lock_guard<std::mutex> lock(names_mu_);
  const std::size_t id = row - 1;
  if (id < names_.size() && !names_[id].empty()) {
    return names_[id];
  }
  return "graft" + std::to_string(id);
}

std::string Profiler::FoldedStacks() const {
  std::string out;
  for (std::size_t row = 0; row <= options_.max_grafts; ++row) {
    for (std::size_t stage = 0; stage < tracelab::kProfStages; ++stage) {
      const std::uint64_t count =
          cells_[row * tracelab::kProfStages + stage].load(std::memory_order_relaxed);
      if (count == 0) {
        continue;
      }
      out += "graftlab;";
      out += GraftLabel(row);
      out += ';';
      out += tracelab::ProfStageName(static_cast<tracelab::ProfStage>(stage));
      out += ' ';
      out += std::to_string(count);
      out += '\n';
    }
  }
  return out;
}

void Profiler::RegisterWith(MetricsRegistry& registry) {
  registry.AddCollector([this](std::vector<Sample>& out) {
    for (std::size_t row = 0; row <= options_.max_grafts; ++row) {
      for (std::size_t stage = 0; stage < tracelab::kProfStages; ++stage) {
        const std::uint64_t count =
            cells_[row * tracelab::kProfStages + stage].load(std::memory_order_relaxed);
        if (count == 0) {
          continue;
        }
        out.push_back(Sample{
            "graftlab_profile_samples_total",
            Labels{{"graft", GraftLabel(row)},
                   {"stage",
                    tracelab::ProfStageName(static_cast<tracelab::ProfStage>(stage))}},
            static_cast<double>(count), true});
      }
    }
    out.push_back(Sample{"graftlab_profile_active", {},
                         running_.load(std::memory_order_relaxed) ? 1.0 : 0.0, false});
  });
}

}  // namespace obslab
