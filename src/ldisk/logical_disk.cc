#include "src/ldisk/logical_disk.h"

namespace ldisk {

ReplayResult ReplayWorkload(LogicalDiskGraft& graft, const Geometry& geometry,
                            std::uint64_t num_writes, std::uint64_t seed, bool validate) {
  ReplayResult result;
  SkewedWorkload workload(geometry, seed);

  // Oracle: log-structured allocation is deterministic, so the kernel can
  // shadow the graft's bookkeeping exactly.
  std::vector<BlockId> oracle;
  if (validate) {
    oracle.assign(geometry.num_blocks, kUnmapped);
  }
  BlockId next_physical = 0;

  for (std::uint64_t i = 0; i < num_writes; ++i) {
    const BlockId logical = workload.Next();
    const BlockId physical = graft.OnWrite(logical);
    ++result.writes;
    if ((physical + 1) % geometry.blocks_per_segment == 0) {
      ++result.segments_filled;
    }
    if (validate) {
      if (oracle[logical] != kUnmapped) {
        ++result.rewrites;
      }
      if (physical != next_physical || graft.Translate(logical) != physical) {
        result.answers_correct = false;
      }
      oracle[logical] = physical;
    }
    ++next_physical;
  }
  return result;
}

}  // namespace ldisk
