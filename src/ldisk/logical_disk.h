// Logical disk — the paper's Black Box graft workload (§3.3, §5.6).
//
// A logical disk (de Jonge et al. [DEJON93]) sits between the filesystem
// and the physical disk, converting random block writes into sequential
// segment writes and maintaining the logical-to-physical mapping. The paper
// simulates "a 1GB physical disk with 4KB blocks and 64KB (16 block)
// segments", drives it with 262,144 skewed writes (80% of requests to 20%
// of blocks), runs no cleaner, and measures only the bookkeeping time.
//
// This header defines the kernel-side pieces: the graft interface, the
// geometry, the skewed workload generator, and the accounting driver that
// replays a workload through a graft while validating its answers against
// an oracle. The per-technology bookkeeping grafts live in src/grafts.

#ifndef GRAFTLAB_SRC_LDISK_LOGICAL_DISK_H_
#define GRAFTLAB_SRC_LDISK_LOGICAL_DISK_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace ldisk {

using BlockId = std::uint64_t;
inline constexpr BlockId kUnmapped = ~BlockId{0};

// The paper's geometry: 1GB disk, 4KB blocks, 16-block (64KB) segments.
struct Geometry {
  std::uint64_t num_blocks = 262144;
  std::uint64_t blocks_per_segment = 16;

  std::uint64_t num_segments() const { return num_blocks / blocks_per_segment; }
  std::uint64_t SegmentOf(BlockId physical) const { return physical / blocks_per_segment; }
};

// Thrown by a graft when the log reaches the end of the disk (no cleaner).
class DiskFull : public std::runtime_error {
 public:
  DiskFull() : std::runtime_error("logical disk: log reached end of device") {}
};

// Thrown when the write path exhausts its transient-error retry budget: the
// device is persistently failing, not merely full. Like DiskFull this is a
// hard, non-retryable failure the host must surface rather than contain as
// an extension fault.
class DiskHardError : public std::runtime_error {
 public:
  explicit DiskHardError(const std::string& what) : std::runtime_error(what) {}
};

// Kernel-side interface of a Black Box (logical disk bookkeeping) graft.
class LogicalDiskGraft {
 public:
  virtual ~LogicalDiskGraft() = default;

  // Records a write of `logical` and returns the physical block assigned to
  // it (the next slot in the current segment). Throws DiskFull when the log
  // is exhausted.
  virtual BlockId OnWrite(BlockId logical) = 0;

  // Read-path translation; kUnmapped if the block was never written.
  virtual BlockId Translate(BlockId logical) = 0;

  virtual const char* technology() const = 0;
};

// The paper's skewed request stream: 80% of writes hit the first 20% of the
// logical blocks.
class SkewedWorkload {
 public:
  SkewedWorkload(const Geometry& geometry, std::uint64_t seed = 80204,
                 double hot_fraction = 0.2, double hot_probability = 0.8)
      : rng_(seed),
        hot_blocks_(static_cast<BlockId>(hot_fraction * static_cast<double>(geometry.num_blocks))),
        total_blocks_(geometry.num_blocks),
        hot_probability_(hot_probability) {}

  BlockId Next() {
    const double coin = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
    if (coin < hot_probability_ && hot_blocks_ > 0) {
      return rng_() % hot_blocks_;
    }
    // hot_fraction 1.0 (or a tiny geometry rounding hot up to everything)
    // leaves no cold region: the whole device is the hot set.
    const BlockId cold_span = total_blocks_ - hot_blocks_;
    if (cold_span == 0) {
      return rng_() % total_blocks_;
    }
    return hot_blocks_ + rng_() % cold_span;
  }

 private:
  std::mt19937_64 rng_;
  BlockId hot_blocks_;
  BlockId total_blocks_;
  double hot_probability_;
};

// Replays `num_writes` workload requests through a graft, cross-checking
// every answer against an in-kernel oracle map (sequential allocation).
struct ReplayResult {
  std::uint64_t writes = 0;
  std::uint64_t segments_filled = 0;
  std::uint64_t rewrites = 0;  // writes to already-mapped blocks
  bool answers_correct = true;
};

ReplayResult ReplayWorkload(LogicalDiskGraft& graft, const Geometry& geometry,
                            std::uint64_t num_writes, std::uint64_t seed = 80204,
                            bool validate = true);

}  // namespace ldisk

#endif  // GRAFTLAB_SRC_LDISK_LOGICAL_DISK_H_
