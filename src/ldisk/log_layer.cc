#include "src/ldisk/log_layer.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace ldisk {

LogLayer::LogLayer(const Geometry& geometry, const diskmod::DiskModel& disk,
                   double cleaning_reserve)
    : geometry_(geometry),
      disk_(disk),
      reserve_segments_(
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                         cleaning_reserve *
                                         static_cast<double>(geometry.num_segments())))),
      map_(geometry.num_blocks, kUnmapped),
      reverse_(geometry.num_blocks, kUnmapped),
      live_(geometry.num_segments(), 0),
      segment_free_(geometry.num_segments(), true),
      segment_open_(geometry.num_segments(), false) {
  if (reserve_segments_ + 1 >= geometry.num_segments()) {
    throw std::invalid_argument("LogLayer: reserve leaves no writable segments");
  }
  // All segments start free; allocation takes from the back.
  free_segments_.reserve(geometry.num_segments());
  for (std::uint64_t s = geometry.num_segments(); s > 0; --s) {
    free_segments_.push_back(s - 1);
  }
  open_segment_ = AllocateSegment();
  segment_open_[open_segment_] = true;
}

void LogLayer::AttachDurableLog(DurableLog* log) {
  if (log != nullptr && log->num_segments() != geometry_.num_segments()) {
    throw std::invalid_argument("LogLayer: durable log geometry mismatch");
  }
  durable_ = log;
}

std::uint64_t LogLayer::AllocateSegment() {
  if (free_segments_.empty()) {
    throw DiskFull();
  }
  const std::uint64_t segment = free_segments_.back();
  free_segments_.pop_back();
  segment_free_[segment] = false;
  return segment;
}

void LogLayer::Write(BlockId logical) {
  if (logical >= geometry_.num_blocks) {
    throw std::out_of_range("LogLayer: logical block beyond device");
  }
  if (injector_ != nullptr) {
    // The crash-point sweep: a kCrash injection here stops the machine
    // before this write touches any state. Other kinds are device faults
    // and belong on the DiskIo sites, so they are ignored here.
    const auto fault = injector_->Hit("ldisk.write");
    if (fault.has_value() && fault->kind == faultlab::FaultKind::kCrash) {
      throw faultlab::CrashFault("ldisk.write");
    }
  }
  ++stats_.user_writes;
  // Baseline cost: an in-place filesystem would pay one random 4KB access.
  stats_.baseline_disk_time_us += disk_.RandomAccessUs(kBlockBytes);
  Append(logical, /*user_write=*/true);
}

void LogLayer::Append(BlockId logical, bool user_write) {
  (void)user_write;
  // The cleaner's relocations may fill the very segment a flush just opened,
  // so re-check rather than assume one flush suffices. A single append can
  // never legitimately need more flushes than there are segments: hitting
  // that bound means the device is fully live and cleaning is just rotating
  // data without creating space.
  std::uint64_t flushes = 0;
  while (open_fill_ == geometry_.blocks_per_segment) {
    if (++flushes > geometry_.num_segments()) {
      throw DiskFull();
    }
    FlushOpenSegment();
  }

  // Retire the previous copy of this block.
  const BlockId old = map_[logical];
  if (old != kUnmapped) {
    reverse_[old] = kUnmapped;
    --live_[geometry_.SegmentOf(old)];
  }

  const BlockId physical = open_segment_ * geometry_.blocks_per_segment + open_fill_;
  map_[logical] = physical;
  reverse_[physical] = logical;
  ++live_[open_segment_];
  ++open_fill_;
}

diskmod::IoResult LogLayer::AccessWithRetry(std::size_t bytes, bool is_write) {
  if (io_ == nullptr) {
    return diskmod::IoResult{disk_.RandomAccessUs(bytes), bytes};
  }
  double backoff = retry_.backoff_us;
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      return is_write ? io_->Write(bytes) : io_->Read(bytes);
    } catch (const faultlab::TransientError& error) {
      ++stats_.transient_errors;
      if (attempt >= retry_.max_attempts) {
        ++stats_.hard_failures;
        throw DiskHardError(std::string("ldisk: device failing persistently: ") + error.what());
      }
      ++stats_.retries;
      // The backoff is modeled time on the arm, not a real sleep, so fault
      // schedules stay deterministic.
      stats_.retry_backoff_us += backoff;
      stats_.disk_time_us += backoff;
      backoff *= retry_.backoff_multiplier;
    }
  }
}

void LogLayer::PersistOpenSegment(const diskmod::IoResult& io, std::uint64_t seq) {
  if (durable_ == nullptr) {
    return;
  }
  const std::uint64_t bps = geometry_.blocks_per_segment;
  SegmentRecord record;
  record.header.epoch = epoch_;
  record.header.seq = seq;
  record.header.count = static_cast<std::uint32_t>(bps);
  record.logicals.resize(bps);
  // reverse_ holds the live-at-flush view of this segment: slots already
  // retired by a later overwrite within the same open window persist as
  // kUnmapped, so replay never resurrects dead intermediate copies.
  const BlockId first = open_segment_ * bps;
  for (std::uint64_t b = 0; b < bps; ++b) {
    record.logicals[b] = reverse_[first + b];
  }
  record.header.checksum = SegmentChecksum(record.header, record.logicals);

  const std::size_t durable_slots = io.durable_bytes / kBlockBytes;
  if (durable_slots < bps) {
    // The write tore: the prefix is on the platter under a header that
    // promises more. In this simulation a tear is only observable across a
    // crash, so the machine dies here; recovery will discard the record.
    durable_->WriteTornSegment(open_segment_, std::move(record), durable_slots);
    throw faultlab::CrashFault("ldisk.flush: torn segment write");
  }
  durable_->WriteSegment(open_segment_, std::move(record));
}

void LogLayer::MaybeCheckpoint() {
  if (durable_ == nullptr || checkpoint_interval_ == 0) {
    return;
  }
  if (++flushes_since_checkpoint_ < checkpoint_interval_) {
    return;
  }
  flushes_since_checkpoint_ = 0;
  Checkpoint checkpoint;
  checkpoint.epoch = epoch_;
  checkpoint.seq = next_seq_ - 1;  // covers every record flushed so far
  checkpoint.map = map_;
  checkpoint.checksum = CheckpointChecksum(checkpoint);

  const std::size_t snapshot_bytes = checkpoint.map.size() * sizeof(BlockId);
  const diskmod::IoResult io = AccessWithRetry(snapshot_bytes, /*is_write=*/true);
  stats_.disk_time_us += io.time_us;
  if (io.durable_bytes < snapshot_bytes) {
    durable_->WriteTornCheckpoint(std::move(checkpoint));
    throw faultlab::CrashFault("ldisk.checkpoint: torn checkpoint write");
  }
  durable_->WriteCheckpoint(std::move(checkpoint));
  ++stats_.checkpoints_written;
}

void LogLayer::FlushOpenSegment() {
  const std::uint64_t seq = next_seq_++;
  // One sequential access writes the whole 64KB segment.
  const diskmod::IoResult io =
      AccessWithRetry(geometry_.blocks_per_segment * kBlockBytes, /*is_write=*/true);
  stats_.disk_time_us += io.time_us;
  ++stats_.segments_written;
  PersistOpenSegment(io, seq);  // throws CrashFault on a torn write
  segment_open_[open_segment_] = false;
  if (flush_observer_) {
    flush_observer_(seq);
  }
  MaybeCheckpoint();

  // Open the replacement before cleaning: the cleaner's relocations append
  // into it. The reentrancy guard keeps a relocation-triggered flush from
  // starting a nested cleaning loop.
  open_segment_ = AllocateSegment();
  segment_open_[open_segment_] = true;
  open_fill_ = 0;

  if (!cleaning_) {
    cleaning_ = true;
    while (free_segments_.size() < reserve_segments_) {
      CleanOne();
    }
    cleaning_ = false;
  }
}

void LogLayer::CleanOne() {
  // Greedy policy: clean the closed segment with the fewest live blocks.
  std::uint64_t victim = geometry_.num_segments();
  std::uint32_t best_live = static_cast<std::uint32_t>(geometry_.blocks_per_segment) + 1;
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (segment_open_[s] || segment_free_[s] || live_[s] >= best_live) {
      continue;
    }
    victim = s;
    best_live = live_[s];
  }
  if (victim == geometry_.num_segments()) {
    throw DiskFull();  // everything live: the device is genuinely full
  }

  ++stats_.cleanings;
  // Read the victim segment (one sequential access)...
  stats_.disk_time_us +=
      AccessWithRetry(geometry_.blocks_per_segment * kBlockBytes, /*is_write=*/false).time_us;
  // ...and relocate its live blocks into the open segment.
  const BlockId first = victim * geometry_.blocks_per_segment;
  for (std::uint64_t b = 0; b < geometry_.blocks_per_segment; ++b) {
    const BlockId logical = reverse_[first + b];
    if (logical != kUnmapped) {
      ++stats_.blocks_copied;
      Append(logical, /*user_write=*/false);
    }
  }
  assert(live_[victim] == 0);
  free_segments_.push_back(victim);
  segment_free_[victim] = true;
}

void LogLayer::RebuildFreeList() {
  free_segments_.clear();
  // Descending ids, matching the constructor, so post-recovery allocation
  // order is deterministic.
  for (std::uint64_t s = geometry_.num_segments(); s > 0; --s) {
    if (segment_free_[s - 1]) {
      free_segments_.push_back(s - 1);
    }
  }
}

RecoveryReport LogLayer::Recover() {
  if (durable_ == nullptr) {
    throw std::logic_error("LogLayer::Recover: no durable log attached");
  }
  RecoveryReport report;
  const std::uint64_t bps = geometry_.blocks_per_segment;
  const std::size_t segment_bytes = bps * kBlockBytes;

  // Remount: the volatile state is gone.
  std::fill(map_.begin(), map_.end(), kUnmapped);
  std::fill(reverse_.begin(), reverse_.end(), kUnmapped);
  std::fill(live_.begin(), live_.end(), 0u);
  std::fill(segment_free_.begin(), segment_free_.end(), true);
  std::fill(segment_open_.begin(), segment_open_.end(), false);
  free_segments_.clear();
  open_fill_ = 0;
  cleaning_ = false;
  flushes_since_checkpoint_ = 0;

  std::uint64_t max_seq = 0;
  std::uint64_t max_epoch = 0;
  std::uint64_t floor_seq = 0;

  const Checkpoint* checkpoint = durable_->LatestValidCheckpoint();
  if (checkpoint != nullptr) {
    report.used_checkpoint = true;
    report.checkpoint_seq = checkpoint->seq;
    report.last_durable_seq = checkpoint->seq;
    floor_seq = checkpoint->seq;
    max_seq = checkpoint->seq;
    max_epoch = checkpoint->epoch;
    map_ = checkpoint->map;
    // Reading the snapshot back costs one access of its size.
    stats_.disk_time_us += disk_.RandomAccessUs(map_.size() * sizeof(BlockId));
    for (BlockId logical = 0; logical < map_.size(); ++logical) {
      const BlockId physical = map_[logical];
      if (physical == kUnmapped) {
        continue;
      }
      reverse_[physical] = logical;
      const std::uint64_t segment = geometry_.SegmentOf(physical);
      ++live_[segment];
      segment_free_[segment] = false;
    }
  }

  // Log scan: examine every durable record; collect the replayable ones.
  // Recovery I/O is assumed reliable — the injector does not cover the
  // remount path — so the scan charges the model directly.
  struct LogEntry {
    std::uint64_t seq;
    std::uint64_t segment;
  };
  std::vector<LogEntry> replayable;
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    const auto& record = durable_->segment(s);
    if (!record.has_value()) {
      continue;
    }
    ++report.segments_scanned;
    stats_.disk_time_us += disk_.RandomAccessUs(segment_bytes);
    // Torn headers still carry their seq/epoch; honoring them keeps the
    // next mount's numbering ahead of everything ever written.
    max_epoch = std::max(max_epoch, record->header.epoch);
    max_seq = std::max(max_seq, record->header.seq);
    if (!ValidateRecord(*record)) {
      ++report.torn_discarded;
      continue;
    }
    if (record->header.seq <= floor_seq) {
      continue;  // already folded into the checkpoint
    }
    replayable.push_back(LogEntry{record->header.seq, s});
  }
  std::sort(replayable.begin(), replayable.end(),
            [](const LogEntry& a, const LogEntry& b) { return a.seq < b.seq; });

  // Replay in flush order: a block's newest durable copy wins, older copies
  // are retired exactly as the live write path would have.
  for (const LogEntry& entry : replayable) {
    const SegmentRecord& record = *durable_->segment(entry.segment);
    for (std::uint64_t slot = 0; slot < bps; ++slot) {
      const BlockId logical = record.logicals[slot];
      if (logical == kUnmapped || logical >= geometry_.num_blocks) {
        continue;
      }
      const BlockId physical = entry.segment * bps + slot;
      const BlockId old = map_[logical];
      if (old != kUnmapped) {
        reverse_[old] = kUnmapped;
        --live_[geometry_.SegmentOf(old)];
      }
      map_[logical] = physical;
      reverse_[physical] = logical;
      ++live_[entry.segment];
    }
    segment_free_[entry.segment] = false;
    ++report.segments_replayed;
    report.last_durable_seq = std::max(report.last_durable_seq, entry.seq);
  }

  // Segments whose every block was superseded are reusable again.
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (!segment_free_[s] && live_[s] == 0) {
      segment_free_[s] = true;
    }
  }
  RebuildFreeList();

  epoch_ = max_epoch + 1;
  next_seq_ = max_seq + 1;
  open_segment_ = AllocateSegment();
  segment_open_[open_segment_] = true;
  ++stats_.recoveries;
  return report;
}

double LogLayer::Utilization() const {
  std::uint64_t live = 0;
  std::uint64_t capacity = 0;
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (segment_free_[s]) {
      continue;
    }
    live += live_[s];
    capacity += geometry_.blocks_per_segment;
  }
  return capacity == 0 ? 0.0 : static_cast<double>(live) / static_cast<double>(capacity);
}

bool LogLayer::CheckInvariants() const {
  std::vector<std::uint32_t> counted(geometry_.num_segments(), 0);
  for (BlockId logical = 0; logical < geometry_.num_blocks; ++logical) {
    const BlockId physical = map_[logical];
    if (physical == kUnmapped) {
      continue;
    }
    if (physical >= geometry_.num_blocks || reverse_[physical] != logical) {
      return false;
    }
    ++counted[geometry_.SegmentOf(physical)];
  }
  for (BlockId physical = 0; physical < geometry_.num_blocks; ++physical) {
    const BlockId logical = reverse_[physical];
    if (logical != kUnmapped && map_[logical] != physical) {
      return false;
    }
  }
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (counted[s] != live_[s]) {
      return false;
    }
  }
  return true;
}

}  // namespace ldisk
