#include "src/ldisk/log_layer.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ldisk {

LogLayer::LogLayer(const Geometry& geometry, const diskmod::DiskModel& disk,
                   double cleaning_reserve)
    : geometry_(geometry),
      disk_(disk),
      reserve_segments_(
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                         cleaning_reserve *
                                         static_cast<double>(geometry.num_segments())))),
      map_(geometry.num_blocks, kUnmapped),
      reverse_(geometry.num_blocks, kUnmapped),
      live_(geometry.num_segments(), 0),
      segment_free_(geometry.num_segments(), true),
      segment_open_(geometry.num_segments(), false) {
  if (reserve_segments_ + 1 >= geometry.num_segments()) {
    throw std::invalid_argument("LogLayer: reserve leaves no writable segments");
  }
  // All segments start free; allocation takes from the back.
  free_segments_.reserve(geometry.num_segments());
  for (std::uint64_t s = geometry.num_segments(); s > 0; --s) {
    free_segments_.push_back(s - 1);
  }
  open_segment_ = AllocateSegment();
  segment_open_[open_segment_] = true;
}

std::uint64_t LogLayer::AllocateSegment() {
  if (free_segments_.empty()) {
    throw DiskFull();
  }
  const std::uint64_t segment = free_segments_.back();
  free_segments_.pop_back();
  segment_free_[segment] = false;
  return segment;
}

void LogLayer::Write(BlockId logical) {
  if (logical >= geometry_.num_blocks) {
    throw std::out_of_range("LogLayer: logical block beyond device");
  }
  ++stats_.user_writes;
  // Baseline cost: an in-place filesystem would pay one random 4KB access.
  stats_.baseline_disk_time_us += disk_.RandomAccessUs(4096);
  Append(logical, /*user_write=*/true);
}

void LogLayer::Append(BlockId logical, bool user_write) {
  (void)user_write;
  // The cleaner's relocations may fill the very segment a flush just opened,
  // so re-check rather than assume one flush suffices. A single append can
  // never legitimately need more flushes than there are segments: hitting
  // that bound means the device is fully live and cleaning is just rotating
  // data without creating space.
  std::uint64_t flushes = 0;
  while (open_fill_ == geometry_.blocks_per_segment) {
    if (++flushes > geometry_.num_segments()) {
      throw DiskFull();
    }
    FlushOpenSegment();
  }

  // Retire the previous copy of this block.
  const BlockId old = map_[logical];
  if (old != kUnmapped) {
    reverse_[old] = kUnmapped;
    --live_[geometry_.SegmentOf(old)];
  }

  const BlockId physical = open_segment_ * geometry_.blocks_per_segment + open_fill_;
  map_[logical] = physical;
  reverse_[physical] = logical;
  ++live_[open_segment_];
  ++open_fill_;
}

void LogLayer::FlushOpenSegment() {
  // One sequential access writes the whole 64KB segment.
  stats_.disk_time_us +=
      disk_.RandomAccessUs(geometry_.blocks_per_segment * 4096);
  ++stats_.segments_written;
  segment_open_[open_segment_] = false;

  // Open the replacement before cleaning: the cleaner's relocations append
  // into it. The reentrancy guard keeps a relocation-triggered flush from
  // starting a nested cleaning loop.
  open_segment_ = AllocateSegment();
  segment_open_[open_segment_] = true;
  open_fill_ = 0;

  if (!cleaning_) {
    cleaning_ = true;
    while (free_segments_.size() < reserve_segments_) {
      CleanOne();
    }
    cleaning_ = false;
  }
}

void LogLayer::CleanOne() {
  // Greedy policy: clean the closed segment with the fewest live blocks.
  std::uint64_t victim = geometry_.num_segments();
  std::uint32_t best_live = static_cast<std::uint32_t>(geometry_.blocks_per_segment) + 1;
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (segment_open_[s] || segment_free_[s] || live_[s] >= best_live) {
      continue;
    }
    victim = s;
    best_live = live_[s];
  }
  if (victim == geometry_.num_segments()) {
    throw DiskFull();  // everything live: the device is genuinely full
  }

  ++stats_.cleanings;
  // Read the victim segment (one sequential access)...
  stats_.disk_time_us += disk_.RandomAccessUs(geometry_.blocks_per_segment * 4096);
  // ...and relocate its live blocks into the open segment.
  const BlockId first = victim * geometry_.blocks_per_segment;
  for (std::uint64_t b = 0; b < geometry_.blocks_per_segment; ++b) {
    const BlockId logical = reverse_[first + b];
    if (logical != kUnmapped) {
      ++stats_.blocks_copied;
      Append(logical, /*user_write=*/false);
    }
  }
  assert(live_[victim] == 0);
  free_segments_.push_back(victim);
  segment_free_[victim] = true;
}

double LogLayer::Utilization() const {
  std::uint64_t live = 0;
  std::uint64_t capacity = 0;
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (segment_free_[s]) {
      continue;
    }
    live += live_[s];
    capacity += geometry_.blocks_per_segment;
  }
  return capacity == 0 ? 0.0 : static_cast<double>(live) / static_cast<double>(capacity);
}

bool LogLayer::CheckInvariants() const {
  std::vector<std::uint32_t> counted(geometry_.num_segments(), 0);
  for (BlockId logical = 0; logical < geometry_.num_blocks; ++logical) {
    const BlockId physical = map_[logical];
    if (physical == kUnmapped) {
      continue;
    }
    if (physical >= geometry_.num_blocks || reverse_[physical] != logical) {
      return false;
    }
    ++counted[geometry_.SegmentOf(physical)];
  }
  for (BlockId physical = 0; physical < geometry_.num_blocks; ++physical) {
    const BlockId logical = reverse_[physical];
    if (logical != kUnmapped && map_[logical] != physical) {
      return false;
    }
  }
  for (std::uint64_t s = 0; s < geometry_.num_segments(); ++s) {
    if (counted[s] != live_[s]) {
      return false;
    }
  }
  return true;
}

}  // namespace ldisk
