// DurableLog: the simulated durable medium behind the log-structured layer.
//
// The seed's LogLayer was purely volatile: the logical-to-physical map lived
// in RAM and a crash lost the device. Real logical disks ([DEJON93],
// [ROSE91]) survive crashes because every flushed segment carries enough
// self-description to rebuild the map by scanning the log. DurableLog holds
// that on-disk image: one SegmentRecord slot per physical segment
// (rewriting a segment overwrites its record in place, as the device
// would), plus two alternating checkpoint slots so a crash mid-checkpoint
// can never destroy the previous good checkpoint.
//
// Each record's header carries the logical ids of its blocks, a mount
// epoch, a global flush sequence number, and a checksum over all of it.
// Torn writes — the crash landing mid-segment — persist only a prefix of
// the block list while the header still advertises the full count, so
// validation fails and recovery discards the tail. LogLayer::Recover()
// (log_layer.h) implements the scan-and-replay.

#ifndef GRAFTLAB_SRC_LDISK_DURABLE_LOG_H_
#define GRAFTLAB_SRC_LDISK_DURABLE_LOG_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/ldisk/logical_disk.h"

namespace ldisk {

struct SegmentHeader {
  std::uint64_t epoch = 0;    // incremented each mount/recovery
  std::uint64_t seq = 0;      // global flush order, 1-based, never reused
  std::uint32_t count = 0;    // slots the writer recorded (blocks_per_segment)
  std::uint32_t checksum = 0; // over epoch, seq, count, and the block list
};

// What one segment flush persists: the header plus, per physical slot, the
// logical block stored there (kUnmapped = the slot was dead at flush time).
struct SegmentRecord {
  SegmentHeader header;
  std::vector<BlockId> logicals;
};

// FNV-1a over the header fields (checksum excluded) and the block list.
std::uint32_t SegmentChecksum(const SegmentHeader& header,
                              const std::vector<BlockId>& logicals);

// A record is replayable when its checksum matches and the block list is
// complete; a torn write fails both.
bool ValidateRecord(const SegmentRecord& record);

// Periodic map snapshot bounding the replay length: recovery starts from
// the newest valid checkpoint and replays only segments with seq beyond it.
struct Checkpoint {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;       // covers every record with header.seq <= seq
  std::vector<BlockId> map;    // full logical -> physical snapshot
  std::uint32_t checksum = 0;
};

std::uint32_t CheckpointChecksum(const Checkpoint& checkpoint);
bool ValidateCheckpoint(const Checkpoint& checkpoint);

class DurableLog {
 public:
  explicit DurableLog(std::uint64_t num_segments) : segments_(num_segments) {}

  std::uint64_t num_segments() const { return segments_.size(); }

  // A completed segment write: the record lands whole.
  void WriteSegment(std::uint64_t segment, SegmentRecord record);

  // A torn segment write: only the first `durable_slots` entries of the
  // block list persist; the header (count, checksum) still describes the
  // full write, so the record fails validation on recovery.
  void WriteTornSegment(std::uint64_t segment, SegmentRecord record,
                        std::size_t durable_slots);

  const std::optional<SegmentRecord>& segment(std::uint64_t index) const {
    return segments_.at(index);
  }

  // Checkpoints alternate between two slots; a torn checkpoint corrupts
  // only the slot being written.
  void WriteCheckpoint(Checkpoint checkpoint);
  void WriteTornCheckpoint(Checkpoint checkpoint);

  // Newest slot whose checksum validates; nullptr when none does.
  const Checkpoint* LatestValidCheckpoint() const;

 private:
  std::vector<std::optional<SegmentRecord>> segments_;
  std::array<std::optional<Checkpoint>, 2> checkpoints_;
  std::size_t next_checkpoint_slot_ = 0;
};

}  // namespace ldisk

#endif  // GRAFTLAB_SRC_LDISK_DURABLE_LOG_H_
