#include "src/ldisk/durable_log.h"

#include <utility>

namespace ldisk {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint32_t Fold(std::uint64_t hash) {
  return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

}  // namespace

std::uint32_t SegmentChecksum(const SegmentHeader& header,
                              const std::vector<BlockId>& logicals) {
  std::uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, header.epoch);
  hash = FnvMix(hash, header.seq);
  hash = FnvMix(hash, header.count);
  for (const BlockId logical : logicals) {
    hash = FnvMix(hash, logical);
  }
  return Fold(hash);
}

bool ValidateRecord(const SegmentRecord& record) {
  return record.logicals.size() == record.header.count &&
         record.header.checksum == SegmentChecksum(record.header, record.logicals);
}

std::uint32_t CheckpointChecksum(const Checkpoint& checkpoint) {
  std::uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, checkpoint.epoch);
  hash = FnvMix(hash, checkpoint.seq);
  hash = FnvMix(hash, checkpoint.map.size());
  for (const BlockId physical : checkpoint.map) {
    hash = FnvMix(hash, physical);
  }
  return Fold(hash);
}

bool ValidateCheckpoint(const Checkpoint& checkpoint) {
  return checkpoint.checksum == CheckpointChecksum(checkpoint);
}

void DurableLog::WriteSegment(std::uint64_t segment, SegmentRecord record) {
  segments_.at(segment) = std::move(record);
}

void DurableLog::WriteTornSegment(std::uint64_t segment, SegmentRecord record,
                                  std::size_t durable_slots) {
  if (durable_slots < record.logicals.size()) {
    record.logicals.resize(durable_slots);
  }
  segments_.at(segment) = std::move(record);
}

void DurableLog::WriteCheckpoint(Checkpoint checkpoint) {
  checkpoints_[next_checkpoint_slot_] = std::move(checkpoint);
  next_checkpoint_slot_ = 1 - next_checkpoint_slot_;
}

void DurableLog::WriteTornCheckpoint(Checkpoint checkpoint) {
  // The torn snapshot loses its map tail; the stale checksum records the
  // damage, exactly like a torn segment.
  if (!checkpoint.map.empty()) {
    checkpoint.map.resize(checkpoint.map.size() / 2);
  } else {
    checkpoint.checksum ^= 0x1;  // even an empty snapshot must fail validation
  }
  checkpoints_[next_checkpoint_slot_] = std::move(checkpoint);
  next_checkpoint_slot_ = 1 - next_checkpoint_slot_;
}

const Checkpoint* DurableLog::LatestValidCheckpoint() const {
  const Checkpoint* best = nullptr;
  for (const auto& slot : checkpoints_) {
    if (slot.has_value() && ValidateCheckpoint(*slot) &&
        (best == nullptr || slot->seq > best->seq)) {
      best = &*slot;
    }
  }
  return best;
}

}  // namespace ldisk
