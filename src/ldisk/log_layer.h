// Full log-structured layer: mapping, segment log, greedy cleaner, and disk
// time accounting.
//
// The paper's Table 6 measures only the bookkeeping cost and explicitly
// omits a cleaner ("Because our simulation does not include a cleaner, we
// run it for 262144 iterations"). LogLayer is the completion of that
// facility — the [DEJON93]/[ROSE91] design the workload models: writes fill
// an open segment; full segments are charged to the disk model as one
// sequential 64KB access instead of sixteen random 4KB accesses; when free
// segments run low a greedy cleaner copies the live blocks out of the
// emptiest segment. bench/ablate_ldisk_cleaner sweeps disk utilization to
// show where cleaning erodes the batching win, and examples/log_disk.cpp
// demonstrates the end-to-end savings.

#ifndef GRAFTLAB_SRC_LDISK_LOG_LAYER_H_
#define GRAFTLAB_SRC_LDISK_LOG_LAYER_H_

#include <cstdint>
#include <vector>

#include "src/diskmod/disk_model.h"
#include "src/ldisk/logical_disk.h"

namespace ldisk {

struct LogLayerStats {
  std::uint64_t user_writes = 0;
  std::uint64_t segments_written = 0;   // log segments flushed to disk
  std::uint64_t cleanings = 0;          // cleaner passes
  std::uint64_t blocks_copied = 0;      // live blocks relocated by the cleaner
  double disk_time_us = 0.0;            // modeled time spent on the disk arm
  double baseline_disk_time_us = 0.0;   // same writes done randomly in place
};

class LogLayer {
 public:
  // `cleaning_reserve` is the fraction of segments kept free; the cleaner
  // runs whenever the free pool dips below it.
  LogLayer(const Geometry& geometry, const diskmod::DiskModel& disk,
           double cleaning_reserve = 0.1);

  // Writes a logical block through the log.
  void Write(BlockId logical);

  // Read-path translation (kUnmapped when the block was never written).
  BlockId Read(BlockId logical) const { return map_[logical]; }

  const LogLayerStats& stats() const { return stats_; }
  const Geometry& geometry() const { return geometry_; }

  // Fraction of non-free segments' blocks that are live (cleaner pressure).
  double Utilization() const;

  // Invariant check for tests: map and reverse map agree, live counts match.
  bool CheckInvariants() const;

 private:
  void Append(BlockId logical, bool user_write);
  void FlushOpenSegment();
  void CleanOne();
  std::uint64_t AllocateSegment();

  Geometry geometry_;
  diskmod::DiskModel disk_;
  std::uint64_t reserve_segments_;

  std::vector<BlockId> map_;        // logical -> physical
  std::vector<BlockId> reverse_;    // physical -> logical (kUnmapped = dead)
  std::vector<std::uint32_t> live_; // live blocks per segment
  std::vector<std::uint64_t> free_segments_;
  std::vector<bool> segment_free_;  // mirrors free_segments_ membership
  std::vector<bool> segment_open_;  // open = being filled, not yet on disk

  std::uint64_t open_segment_ = 0;
  std::uint64_t open_fill_ = 0;     // blocks appended to the open segment
  bool cleaning_ = false;           // reentrancy guard for the cleaner

  LogLayerStats stats_;
};

}  // namespace ldisk

#endif  // GRAFTLAB_SRC_LDISK_LOG_LAYER_H_
