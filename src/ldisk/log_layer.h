// Full log-structured layer: mapping, segment log, greedy cleaner, disk
// time accounting — and, since the faultlab PR, durability.
//
// The paper's Table 6 measures only the bookkeeping cost and explicitly
// omits a cleaner ("Because our simulation does not include a cleaner, we
// run it for 262144 iterations"). LogLayer is the completion of that
// facility — the [DEJON93]/[ROSE91] design the workload models: writes fill
// an open segment; full segments are charged to the disk model as one
// sequential 64KB access instead of sixteen random 4KB accesses; when free
// segments run low a greedy cleaner copies the live blocks out of the
// emptiest segment. bench/ablate_ldisk_cleaner sweeps disk utilization to
// show where cleaning erodes the batching win, and examples/log_disk.cpp
// demonstrates the end-to-end savings.
//
// Durability (all optional; detached, the layer behaves exactly like the
// seed):
//   * AttachDiskIo routes segment I/O through a diskmod::DiskIo, where a
//     FaultyDisk can make accesses fail, stall, or tear. Transient errors
//     are retried with exponential backoff (modeled time, no real sleeps);
//     the retry budget spent, the write escalates to DiskHardError.
//   * AttachDurableLog persists every flushed segment as a self-describing
//     record (logical ids + epoch + seq + checksum) and periodic map
//     checkpoints; Recover() rebuilds the volatile state by log scan,
//     discarding the torn tail, with replay length bounded by the newest
//     checkpoint.
//   * AttachInjector lets a faultlab plan crash the machine at the
//     "ldisk.write" site (every Nth user write), which is how the soak
//     test sweeps crash points.

#ifndef GRAFTLAB_SRC_LDISK_LOG_LAYER_H_
#define GRAFTLAB_SRC_LDISK_LOG_LAYER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/diskmod/disk_model.h"
#include "src/diskmod/faulty_disk.h"
#include "src/faultlab/injector.h"
#include "src/ldisk/durable_log.h"
#include "src/ldisk/logical_disk.h"

namespace ldisk {

struct LogLayerStats {
  std::uint64_t user_writes = 0;
  std::uint64_t segments_written = 0;   // log segments flushed to disk
  std::uint64_t cleanings = 0;          // cleaner passes
  std::uint64_t blocks_copied = 0;      // live blocks relocated by the cleaner
  double disk_time_us = 0.0;            // modeled time spent on the disk arm
  double baseline_disk_time_us = 0.0;   // same writes done randomly in place
  // Fault handling (all zero without an attached DiskIo/injector):
  std::uint64_t transient_errors = 0;   // I/O attempts that failed retryably
  std::uint64_t retries = 0;            // attempts repeated after a failure
  std::uint64_t hard_failures = 0;      // retry budget exhausted
  double retry_backoff_us = 0.0;        // modeled time spent backing off
  std::uint64_t checkpoints_written = 0;
  std::uint64_t recoveries = 0;         // Recover() calls on this layer
};

// Bounded retry with exponential backoff for transient device errors. The
// backoff is charged to the modeled disk time, not slept.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;   // 1 initial try + 3 retries
  double backoff_us = 200.0;        // wait before the first retry
  double backoff_multiplier = 2.0;  // grows per retry
};

// What Recover() found in the durable image.
struct RecoveryReport {
  std::uint64_t segments_scanned = 0;   // durable records examined
  std::uint64_t segments_replayed = 0;  // valid records folded into the map
  std::uint64_t torn_discarded = 0;     // records failing validation
  bool used_checkpoint = false;
  std::uint64_t checkpoint_seq = 0;     // valid when used_checkpoint
  std::uint64_t last_durable_seq = 0;   // newest state recovered (0 = empty)
};

class LogLayer {
 public:
  // `cleaning_reserve` is the fraction of segments kept free; the cleaner
  // runs whenever the free pool dips below it.
  LogLayer(const Geometry& geometry, const diskmod::DiskModel& disk,
           double cleaning_reserve = 0.1);

  // Writes a logical block through the log.
  void Write(BlockId logical);

  // Read-path translation (kUnmapped when the block was never written or
  // the id is beyond the device).
  BlockId Read(BlockId logical) const {
    return logical < map_.size() ? map_[logical] : kUnmapped;
  }

  const LogLayerStats& stats() const { return stats_; }
  const Geometry& geometry() const { return geometry_; }

  // Fraction of non-free segments' blocks that are live (cleaner pressure).
  double Utilization() const;

  // Invariant check for tests: map and reverse map agree, live counts match.
  bool CheckInvariants() const;

  // --- Durability / fault seams ---

  // Routes segment reads and writes through `io` (e.g. a FaultyDisk).
  // nullptr restores the seed's direct cost-model accounting.
  void AttachDiskIo(diskmod::DiskIo* io) { io_ = io; }

  // Persists flushed segments (and checkpoints) into `log`. The log must
  // cover this geometry's segments. nullptr detaches.
  void AttachDurableLog(DurableLog* log);

  // Consults `injector` at the "ldisk.write" site on every user write; a
  // kCrash injection there throws faultlab::CrashFault before the write.
  void AttachInjector(faultlab::Injector* injector) { injector_ = injector; }

  void set_retry_policy(const RetryPolicy& retry) { retry_ = retry; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Writes a checkpoint every `flushes` segment flushes (0 = never).
  void set_checkpoint_interval(std::uint64_t flushes) { checkpoint_interval_ = flushes; }

  // Called after each completed (durable) segment flush with the record's
  // sequence number, before any cleaning it triggers. At that instant the
  // in-memory map references durable segments only, so observers may
  // snapshot it as "state as of seq".
  void set_flush_observer(std::function<void(std::uint64_t seq)> observer) {
    flush_observer_ = std::move(observer);
  }

  // Rebuilds the volatile state (map, reverse map, live counts, free pool)
  // from the attached durable log: loads the newest valid checkpoint, then
  // replays valid segment records in seq order, discarding torn ones.
  // Requires AttachDurableLog; the previous in-memory state is discarded,
  // modeling a post-crash remount.
  RecoveryReport Recover();

  // Read-only view of the full logical -> physical map (tests, tools).
  const std::vector<BlockId>& logical_map() const { return map_; }

 private:
  static constexpr std::size_t kBlockBytes = 4096;

  void Append(BlockId logical, bool user_write);
  void FlushOpenSegment();
  void CleanOne();
  std::uint64_t AllocateSegment();
  diskmod::IoResult AccessWithRetry(std::size_t bytes, bool is_write);
  void PersistOpenSegment(const diskmod::IoResult& io, std::uint64_t seq);
  void MaybeCheckpoint();
  void RebuildFreeList();

  Geometry geometry_;
  diskmod::DiskModel disk_;
  std::uint64_t reserve_segments_;

  std::vector<BlockId> map_;        // logical -> physical
  std::vector<BlockId> reverse_;    // physical -> logical (kUnmapped = dead)
  std::vector<std::uint32_t> live_; // live blocks per segment
  std::vector<std::uint64_t> free_segments_;
  std::vector<bool> segment_free_;  // mirrors free_segments_ membership
  std::vector<bool> segment_open_;  // open = being filled, not yet on disk

  std::uint64_t open_segment_ = 0;
  std::uint64_t open_fill_ = 0;     // blocks appended to the open segment
  bool cleaning_ = false;           // reentrancy guard for the cleaner

  // Durability seams; all optional.
  diskmod::DiskIo* io_ = nullptr;
  DurableLog* durable_ = nullptr;
  faultlab::Injector* injector_ = nullptr;
  RetryPolicy retry_;
  std::uint64_t checkpoint_interval_ = 0;
  std::uint64_t flushes_since_checkpoint_ = 0;
  std::uint64_t epoch_ = 1;     // bumped past the durable image on Recover
  std::uint64_t next_seq_ = 1;  // sequence number of the next flush
  std::function<void(std::uint64_t)> flush_observer_;

  LogLayerStats stats_;
};

// Adapts LogLayer into the Black Box graft interface, so the durable,
// cleaner-complete log can be driven by the replay harness and graftd like
// any technology's bookkeeping graft.
class LogLayerGraft : public LogicalDiskGraft {
 public:
  explicit LogLayerGraft(LogLayer& layer) : layer_(layer) {}

  BlockId OnWrite(BlockId logical) override {
    layer_.Write(logical);
    return layer_.Read(logical);
  }
  BlockId Translate(BlockId logical) override { return layer_.Read(logical); }
  const char* technology() const override { return "LogLayer"; }

 private:
  LogLayer& layer_;
};

}  // namespace ldisk

#endif  // GRAFTLAB_SRC_LDISK_LOG_LAYER_H_
