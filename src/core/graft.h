// The graft taxonomy (paper §3): the kernel-side interfaces every extension
// technology implements.
//
//   * Prioritization grafts choose a victim from a candidate list —
//     vmsim::EvictionGraft (defined with the VM system it hooks into).
//   * Stream grafts filter a data stream — StreamGraft below, adaptable
//     into a streamk::Chain via GraftFilter.
//   * Black Box grafts map inputs to an output through private state —
//     ldisk::LogicalDiskGraft (defined with the logical disk it serves).
//
// src/grafts provides every (interface x technology) implementation and the
// factories that make them.

#ifndef GRAFTLAB_SRC_CORE_GRAFT_H_
#define GRAFTLAB_SRC_CORE_GRAFT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/technology.h"
#include "src/ldisk/logical_disk.h"
#include "src/md5/md5.h"
#include "src/streamk/stream.h"
#include "src/vmsim/page_cache.h"

namespace core {

// Stream graft: consumes the stream, yields a digest at end-of-stream. (The
// paper's representative stream graft is MD5 fingerprinting; the interface
// is digest-shaped for that reason, with the data passing through
// untouched.)
class StreamGraft {
 public:
  virtual ~StreamGraft() = default;

  // Absorbs the next chunk. May throw an extension fault; the kernel
  // contains it at the chain level.
  virtual void Consume(const std::uint8_t* data, std::size_t len) = 0;

  // Completes the digest and resets for reuse.
  virtual md5::Digest Finish() = 0;

  virtual const char* technology() const = 0;

  // --- Fuel metering seam (graftd supervisor) ---
  // Interpreted technologies (Minnow VM, Tclet) meter execution in fuel
  // units; a supervisor sets a per-invocation budget and reads what is left
  // afterwards to account the spend. Compiled technologies are not metered:
  // SetFuel is a no-op and FuelRemaining returns -1 (wall-clock budgets via
  // PreemptToken cover them instead).
  virtual void SetFuel(std::int64_t fuel) { (void)fuel; }
  virtual std::int64_t FuelRemaining() const { return -1; }

  // --- Execution-profile seam (graftd telemetry) ---
  // Technologies that count what they execute (the Minnow VM's per-opcode
  // retire counters) report cumulative name->count rows here; graftd folds
  // them into its telemetry snapshot, which is where the superinstruction
  // fusion set comes from. Default: nothing to report.
  virtual std::vector<std::pair<std::string, std::uint64_t>> ExecutionProfile() const {
    return {};
  }
};

// Adapts a StreamGraft into a streamk filter (passthrough + fingerprint).
class GraftFilter : public streamk::Filter {
 public:
  explicit GraftFilter(std::unique_ptr<StreamGraft> graft) : graft_(std::move(graft)) {}

  void Process(streamk::Bytes in, streamk::Sink& out) override {
    graft_->Consume(in.data(), in.size());
    out.Write(in);
  }
  void Flush(streamk::Sink& out) override {
    (void)out;
    digest_ = graft_->Finish();
    have_digest_ = true;
  }
  const char* name() const override { return graft_->technology(); }

  bool have_digest() const { return have_digest_; }
  const md5::Digest& digest() const { return digest_; }

 private:
  std::unique_ptr<StreamGraft> graft_;
  md5::Digest digest_{};
  bool have_digest_ = false;
};

// Re-exported taxonomy aliases, so callers can name all three graft shapes
// through one header.
using PrioritizationGraft = vmsim::EvictionGraft;
using BlackBoxGraft = ldisk::LogicalDiskGraft;

}  // namespace core

#endif  // GRAFTLAB_SRC_CORE_GRAFT_H_
