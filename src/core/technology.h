// The extension technologies GraftLab compares (paper §4).

#ifndef GRAFTLAB_SRC_CORE_TECHNOLOGY_H_
#define GRAFTLAB_SRC_CORE_TECHNOLOGY_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace core {

enum class Technology : std::uint8_t {
  kC,            // unsafe compiled C linked into the kernel (baseline)
  kModula3,      // safe compiled language, explicit NIL checks (paper's Linux codegen)
  kModula3Trap,  // safe compiled language, trap-based NIL checks (Solaris/Alpha codegen)
  kSfi,          // software fault isolation, write+jump protection (Omniware beta)
  kSfiFull,      // SFI with read protection too (the paper's "not available today")
  kJava,         // verified bytecode, in-kernel interpreter (Minnow VM)
  kJavaTranslated,  // same bytecode through load-time translation (the "compiled Java" candidate)
  kTcl,          // direct source interpretation (Tclet)
  kUpcall,       // user-level server behind an upcall (hardware protection)
};

inline constexpr Technology kAllTechnologies[] = {
    Technology::kC,       Technology::kModula3, Technology::kModula3Trap,
    Technology::kSfi,     Technology::kSfiFull, Technology::kJava,
    Technology::kJavaTranslated, Technology::kTcl, Technology::kUpcall,
};

constexpr const char* TechnologyName(Technology technology) {
  switch (technology) {
    case Technology::kC: return "C";
    case Technology::kModula3: return "Modula-3";
    case Technology::kModula3Trap: return "Modula-3/trap";
    case Technology::kSfi: return "SFI";
    case Technology::kSfiFull: return "SFI/full";
    case Technology::kJava: return "Java";
    case Technology::kJavaTranslated: return "Java/translated";
    case Technology::kTcl: return "Tcl";
    case Technology::kUpcall: return "Upcall";
  }
  return "?";
}

// Parses a name as printed by TechnologyName (for CLI flags).
std::optional<Technology> ParseTechnology(std::string_view name);

// The subset the paper measured directly (its table columns).
inline constexpr Technology kPaperTechnologies[] = {
    Technology::kC,
    Technology::kJava,
    Technology::kModula3,
    Technology::kSfi,  // "Omniware"
    Technology::kTcl,
};

}  // namespace core

#endif  // GRAFTLAB_SRC_CORE_TECHNOLOGY_H_
