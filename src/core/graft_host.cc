#include "src/core/graft_host.h"

#include <exception>

#include "src/envs/fault.h"
#include "src/minnow/diag.h"

namespace core {

GraftHost::GraftHost(const GraftHostOptions& options)
    : options_(options), page_cache_(options.page_frames) {}

bool GraftHost::RunStream(streamk::Bytes data, std::size_t chunk, streamk::Chain& chain,
                          streamk::Sink& sink) {
  try {
    streamk::Pump(data, chunk, chain, sink);
    return true;
  } catch (const envs::EnvFault&) {
    ++contained_faults_;
  } catch (const minnow::Trap&) {
    ++contained_faults_;
  } catch (const std::runtime_error&) {
    // Tclet and other script-level failures surface as runtime_error.
    ++contained_faults_;
  }
  return false;
}

GraftHost::BlackBoxResult GraftHost::RunLogicalDisk(BlackBoxGraft& graft,
                                                    std::uint64_t num_writes, bool validate) {
  BlackBoxResult result;
  try {
    result.replay =
        ldisk::ReplayWorkload(graft, options_.disk_geometry, num_writes, /*seed=*/80204, validate);
  } catch (const std::exception& error) {
    ++contained_faults_;
    result.faulted = true;
    result.fault_message = error.what();
  }
  return result;
}

bool GraftHost::RunWithBudget(std::chrono::microseconds budget,
                              const std::function<void()>& body) {
  preempt_token_.Reset();
  bool preempted = false;
  {
    envs::Watchdog watchdog(preempt_token_, budget);
    try {
      body();
    } catch (const envs::PreemptFault&) {
      preempted = true;
      ++contained_faults_;
    } catch (const minnow::Trap&) {
      // VM fuel exhaustion or trap inside the budgeted region.
      preempted = true;
      ++contained_faults_;
    }
  }
  preempt_token_.Reset();
  return !preempted;
}

}  // namespace core
