#include "src/core/graft_host.h"

#include <algorithm>
#include <optional>
#include <string_view>

#include "src/envs/fault.h"
#include "src/faultlab/fault.h"
#include "src/minnow/diag.h"

namespace core {

namespace {

// Interpreted technologies surface an exhausted fuel budget as a script
// error whose message says "preempted" (minnow: "fuel exhausted: graft
// preempted"; tclet: "command budget exhausted: script preempted"). The
// host classifies those as preemptions, not faults, so the supervisor sees
// one consistent preemption signal across compiled and interpreted grafts.
bool IsFuelPreemption(std::string_view what) {
  return what.find("preempted") != std::string_view::npos;
}

}  // namespace

GraftHost::GraftHost(const GraftHostOptions& options)
    : options_(options), page_cache_(options.page_frames) {}

bool GraftHost::RunStream(streamk::Bytes data, std::size_t chunk, streamk::Chain& chain,
                          streamk::Sink& sink) {
  try {
    streamk::Pump(data, chunk, chain, sink);
    return true;
  } catch (const envs::EnvFault&) {
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const minnow::Trap&) {
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const faultlab::FaultError&) {
    throw;  // injected infrastructure failure, not an extension fault
  } catch (const ldisk::DiskFull&) {
    throw;  // device state, not extension misbehavior
  } catch (const ldisk::DiskHardError&) {
    throw;
  } catch (const std::runtime_error&) {
    // Tclet and other script-level failures surface as runtime_error.
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return false;
}

GraftHost::BlackBoxResult GraftHost::RunLogicalDisk(BlackBoxGraft& graft,
                                                    std::uint64_t num_writes, bool validate,
                                                    const tracelab::StageTrace* trace) {
  const tracelab::StageTrace stage = trace != nullptr ? *trace : tracelab::StageTrace{};
  BlackBoxResult result;
  const auto record = [&result](FaultClass fault_class, const char* what) {
    result.faulted = true;
    result.fault_class = fault_class;
    result.fault_message = what;
  };
  // Most-derived handlers first: DiskFull/DiskHardError/faultlab derive
  // from runtime_error but are device failures, not extension faults.
  // Anything that is not a runtime_error (logic errors, allocation
  // failures) is a host bug and propagates.
  try {
    tracelab::Span body(stage.tracer, stage.body, stage.trace_id);
    result.replay =
        ldisk::ReplayWorkload(graft, options_.disk_geometry, num_writes, /*seed=*/80204, validate);
  } catch (const ldisk::DiskFull& error) {
    disk_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kDiskFull, error.what());
  } catch (const ldisk::DiskHardError& error) {
    disk_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kDisk, error.what());
  } catch (const faultlab::FaultError& error) {
    disk_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kDisk, error.what());
  } catch (const envs::EnvFault& error) {
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kExtension, error.what());
  } catch (const minnow::Trap& error) {
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kExtension, error.what());
  } catch (const std::runtime_error& error) {
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
    record(FaultClass::kExtension, error.what());
  }
  return result;
}

GraftHost::StreamRunResult GraftHost::RunStreamGraft(StreamGraft& graft, streamk::Bytes data,
                                                     std::size_t chunk,
                                                     std::chrono::microseconds budget,
                                                     const tracelab::StageTrace* trace) {
  const tracelab::StageTrace stage = trace != nullptr ? *trace : tracelab::StageTrace{};
  StreamRunResult result;
  // The crossing span covers the host->technology entry machinery: token
  // reset, deadline arm, fuel metering setup done by the caller's policy.
  tracelab::Span crossing(stage.tracer, stage.crossing, stage.trace_id);
  preempt_token_.Reset();
  // Reset on every exit path; destroyed after the deadline guards below, so
  // the order on unwind is disarm-then-reset and a late trip cannot leak.
  envs::TokenResetGuard reset_guard(preempt_token_);
  std::optional<envs::ArmGuard> shared_deadline;
  std::optional<envs::Watchdog> watchdog;
  if (budget.count() > 0) {
    if (deadline_timer_ != nullptr) {
      shared_deadline.emplace(*deadline_timer_, preempt_token_, budget);
    } else {
      watchdog.emplace(preempt_token_, budget);
    }
  }
  crossing.End();
  try {
    tracelab::Span body(stage.tracer, stage.body, stage.trace_id);
    const std::size_t step = chunk == 0 ? data.size() : chunk;
    for (std::size_t off = 0; off < data.size(); off += step) {
      graft.Consume(data.data() + off, std::min(step, data.size() - off));
    }
    result.digest = graft.Finish();
    result.ok = true;
  } catch (const envs::PreemptFault&) {
    result.preempted = true;
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const minnow::Trap& trap) {
    result.preempted = IsFuelPreemption(trap.what());
    if (!result.preempted) {
      result.fault_message = trap.what();
    }
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const faultlab::FaultError&) {
    throw;  // injected infrastructure failure, not an extension fault
  } catch (const ldisk::DiskFull&) {
    throw;  // device state, not extension misbehavior
  } catch (const ldisk::DiskHardError&) {
    throw;
  } catch (const std::runtime_error& error) {
    result.preempted = IsFuelPreemption(error.what());
    if (!result.preempted) {
      result.fault_message = error.what();
    }
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

GraftHost::EvictionRunResult GraftHost::RunEvictionGraft(PrioritizationGraft& graft,
                                                         vmsim::Frame* lru_head,
                                                         std::uint64_t lookups,
                                                         std::chrono::microseconds budget,
                                                         const tracelab::StageTrace* trace) {
  const tracelab::StageTrace stage = trace != nullptr ? *trace : tracelab::StageTrace{};
  EvictionRunResult result;
  tracelab::Span crossing(stage.tracer, stage.crossing, stage.trace_id);
  preempt_token_.Reset();
  envs::TokenResetGuard reset_guard(preempt_token_);
  std::optional<envs::ArmGuard> shared_deadline;
  std::optional<envs::Watchdog> watchdog;
  if (budget.count() > 0) {
    if (deadline_timer_ != nullptr) {
      shared_deadline.emplace(*deadline_timer_, preempt_token_, budget);
    } else {
      watchdog.emplace(preempt_token_, budget);
    }
  }
  crossing.End();
  try {
    tracelab::Span body(stage.tracer, stage.body, stage.trace_id);
    for (std::uint64_t i = 0; i < lookups; ++i) {
      vmsim::Frame* victim = graft.ChooseVictim(lru_head);
      result.last_victim_page = victim != nullptr ? victim->page : 0;
      ++result.lookups;
    }
    result.ok = true;
  } catch (const envs::PreemptFault&) {
    result.preempted = true;
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const minnow::Trap& trap) {
    result.preempted = IsFuelPreemption(trap.what());
    if (!result.preempted) {
      result.fault_message = trap.what();
    }
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  } catch (const faultlab::FaultError&) {
    throw;  // injected infrastructure failure, not an extension fault
  } catch (const std::runtime_error& error) {
    result.preempted = IsFuelPreemption(error.what());
    if (!result.preempted) {
      result.fault_message = error.what();
    }
    contained_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

bool GraftHost::RunWithBudget(std::chrono::microseconds budget,
                              const std::function<void()>& body) {
  preempt_token_.Reset();
  envs::TokenResetGuard reset_guard(preempt_token_);
  bool preempted = false;
  {
    std::optional<envs::ArmGuard> shared_deadline;
    std::optional<envs::Watchdog> watchdog;
    if (deadline_timer_ != nullptr) {
      shared_deadline.emplace(*deadline_timer_, preempt_token_, budget);
    } else {
      watchdog.emplace(preempt_token_, budget);
    }
    try {
      body();
    } catch (const envs::PreemptFault&) {
      preempted = true;
      contained_faults_.fetch_add(1, std::memory_order_relaxed);
    } catch (const minnow::Trap&) {
      // VM fuel exhaustion or trap inside the budgeted region.
      preempted = true;
      contained_faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return !preempted;
}

}  // namespace core
