// Access-control-list graft interface — the paper's §3.3 Black Box example.
//
// The kernel consults the graft on every file access with the triple
// (user, file, requested access) and expects yes/no. Grant/Revoke are the
// administrative surface the application (or a privileged daemon) drives.
// Semantics shared by every technology's implementation:
//
//   * an access is allowed if the (user, file) entry covers every requested
//     bit, OR the (kWorld, file) entry does;
//   * Grant ORs bits into the entry (creating it if absent); it may fail
//     (returns false) if the graft's fixed table is full — the kernel treats
//     that as a resource error, never silently allows;
//   * Revoke clears bits; an entry with no bits grants nothing.

#ifndef GRAFTLAB_SRC_CORE_ACL_H_
#define GRAFTLAB_SRC_CORE_ACL_H_

#include <cstdint>

namespace core {

using UserId = std::uint64_t;
using FileId = std::uint64_t;

// World entries match any user.
inline constexpr UserId kWorld = 0;

enum Access : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kExecute = 4,
};

constexpr Access operator|(Access a, Access b) {
  return static_cast<Access>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}

class AccessControlGraft {
 public:
  virtual ~AccessControlGraft() = default;

  // The hot path: one yes/no per file access.
  virtual bool Check(UserId user, FileId file, Access access) = 0;

  // Administrative updates.
  virtual bool Grant(UserId user, FileId file, Access access) = 0;
  virtual void Revoke(UserId user, FileId file, Access access) = 0;

  virtual const char* technology() const = 0;
};

}  // namespace core

#endif  // GRAFTLAB_SRC_CORE_ACL_H_
