// GraftHost: the simulated extensible kernel.
//
// Owns the kernel subsystems grafts hook into (the VM page cache, the
// stream layer, the logical disk) and enforces the two kernel-side
// guarantees the paper demands of any extension technology:
//
//   * containment — a graft that faults (bounds, NIL, VM trap, script
//     error) is detached and counted, never propagated into kernel state;
//   * preemption — a graft invocation can be run under a CPU budget; if it
//     exceeds the budget, the watchdog trips the safe environments' poll
//     token (compiled technologies) while VMs use their own fuel.

#ifndef GRAFTLAB_SRC_CORE_GRAFT_HOST_H_
#define GRAFTLAB_SRC_CORE_GRAFT_HOST_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/graft.h"
#include "src/envs/preempt.h"
#include "src/ldisk/logical_disk.h"
#include "src/streamk/stream.h"
#include "src/tracelab/trace.h"
#include "src/vmsim/page_cache.h"

namespace core {

struct GraftHostOptions {
  std::size_t page_frames = 1024;
  ldisk::Geometry disk_geometry;
};

class GraftHost {
 public:
  explicit GraftHost(const GraftHostOptions& options = GraftHostOptions{});

  // --- Prioritization hook ---
  vmsim::PageCache& page_cache() { return page_cache_; }
  void AttachEvictionGraft(PrioritizationGraft* graft) { page_cache_.SetEvictionGraft(graft); }
  void DetachEvictionGraft() { page_cache_.SetEvictionGraft(nullptr); }

  // --- Stream hook ---
  // Pumps `data` through `chain` into `sink` in `chunk` pieces, containing
  // extension faults: on a fault the stream is aborted, the fault counted,
  // and false returned. Kernel state stays intact.
  bool RunStream(streamk::Bytes data, std::size_t chunk, streamk::Chain& chain,
                 streamk::Sink& sink);

  // --- Black Box hook ---
  // Replays a skewed write workload through a logical-disk graft with
  // validation; contains graft faults the same way. Faults are classified:
  // the paper's containment story only covers extension misbehavior, so
  // device-state failures (DiskFull), persistent/injected disk errors
  // (DiskHardError, faultlab), and genuine extension faults are distinct
  // outcomes, and host-internal logic errors propagate instead of being
  // silently counted against the graft.
  enum class FaultClass : std::uint8_t {
    kNone,
    kExtension,  // contained graft fault (bounds, NIL, trap, script error)
    kDiskFull,   // device genuinely out of space
    kDisk,       // persistent or injected disk failure
  };
  struct BlackBoxResult {
    ldisk::ReplayResult replay;
    bool faulted = false;
    FaultClass fault_class = FaultClass::kNone;
    std::string fault_message;
  };
  // `trace` (optional) stamps the replay as a body span on the active trace.
  BlackBoxResult RunLogicalDisk(BlackBoxGraft& graft, std::uint64_t num_writes,
                                bool validate = true,
                                const tracelab::StageTrace* trace = nullptr);

  // --- Prioritization hook, direct-invocation form ---
  // Runs `lookups` ChooseVictim calls against a caller-prepared LRU chain,
  // containing faults and enforcing an optional wall-clock budget exactly
  // like the stream form. This is the graftd worker entry point for
  // Prioritization grafts: the paper's Table 2 operation (one full hot-list
  // search, cold candidate) repeated per invocation, so observed per-lookup
  // cost is directly comparable to the offline eviction benches.
  struct EvictionRunResult {
    bool ok = false;
    bool preempted = false;
    std::uint64_t lookups = 0;            // completed before any fault
    std::uint64_t last_victim_page = 0;   // keeps the search observable
    std::string fault_message;            // set when !ok && !preempted
  };
  EvictionRunResult RunEvictionGraft(PrioritizationGraft& graft, vmsim::Frame* lru_head,
                                     std::uint64_t lookups,
                                     std::chrono::microseconds budget = std::chrono::microseconds{0},
                                     const tracelab::StageTrace* trace = nullptr);

  // --- Stream hook, reusable-graft form ---
  // Runs one stream-graft invocation (consume `data` in `chunk` pieces,
  // finish the digest) directly against a caller-owned graft instance,
  // containing faults like RunStream and optionally enforcing a wall-clock
  // budget. This is the graftd worker entry point: unlike RunStream it does
  // not consume a filter chain, so one graft instance serves many
  // invocations.
  struct StreamRunResult {
    bool ok = false;
    bool preempted = false;  // budget or fuel exhausted
    md5::Digest digest{};
    std::string fault_message;  // set when !ok && !preempted
  };
  // `trace` (optional) splits the invocation into a crossing span (the
  // host->technology entry machinery: token reset, deadline arm, fuel set)
  // and a body span (the Consume loop plus Finish) on the active trace.
  StreamRunResult RunStreamGraft(StreamGraft& graft, streamk::Bytes data, std::size_t chunk,
                                 std::chrono::microseconds budget = std::chrono::microseconds{0},
                                 const tracelab::StageTrace* trace = nullptr);

  // --- Preemption ---
  // Token handed to compiled-technology grafts at construction.
  envs::PreemptToken& preempt_token() { return preempt_token_; }

  // Installs a shared deadline service used by budgeted runs in place of the
  // default thread-per-call Watchdog. The timer must outlive the host.
  // Pass nullptr to restore the per-call watchdog.
  void set_deadline_timer(envs::DeadlineTimer* timer) { deadline_timer_ = timer; }
  envs::DeadlineTimer* deadline_timer() const { return deadline_timer_; }

  // Runs `body` under a wall-clock budget: arms a deadline on the token
  // (shared timer if installed, else a per-call watchdog), runs, disarms.
  // Returns false if the body was preempted (PreemptFault). The token is
  // reset on every exit path, including when `body` throws a non-preempt
  // fault through this frame.
  bool RunWithBudget(std::chrono::microseconds budget, const std::function<void()>& body);

  std::uint64_t contained_faults() const {
    return contained_faults_.load(std::memory_order_relaxed);
  }
  // Disk-level failures (DiskFull, DiskHardError, injected faults) observed
  // by black-box runs. Counted apart from contained_faults: the disk, not
  // the extension, misbehaved.
  std::uint64_t disk_faults() const { return disk_faults_.load(std::memory_order_relaxed); }
  const ldisk::Geometry& disk_geometry() const { return options_.disk_geometry; }

 private:
  GraftHostOptions options_;
  vmsim::PageCache page_cache_;
  envs::PreemptToken preempt_token_;
  envs::DeadlineTimer* deadline_timer_ = nullptr;
  // Atomic so sibling host shards' supervisors may read any host's count
  // while it runs (graftd snapshots race with workers by design).
  std::atomic<std::uint64_t> contained_faults_{0};
  std::atomic<std::uint64_t> disk_faults_{0};
};

}  // namespace core

#endif  // GRAFTLAB_SRC_CORE_GRAFT_HOST_H_
