#include "src/core/technology.h"

namespace core {

std::optional<Technology> ParseTechnology(std::string_view name) {
  for (const Technology technology : kAllTechnologies) {
    if (name == TechnologyName(technology)) {
      return technology;
    }
  }
  return std::nullopt;
}

}  // namespace core
