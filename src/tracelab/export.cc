#include "src/tracelab/export.h"

#include <cstdio>
#include <utility>

#include "src/tracelab/json_util.h"

namespace tracelab {

namespace {

void AppendTimestampUs(std::string& out, std::uint64_t ns) {
  // Microseconds with nanosecond resolution kept in the fraction.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void AppendCommon(std::string& out, const TraceDump& dump, const TraceEvent& event,
                  std::uint32_t tid, const char* ph) {
  out += "{\"name\":";
  const std::string name =
      event.site < dump.sites.size()
          ? dump.sites[event.site]
          : std::string(event.site == kOverflowSite ? "<overflow>" : "?");
  AppendJsonString(out, name);
  out += ",\"cat\":\"graftlab\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  AppendTimestampUs(out, event.ts_ns);
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
}

void AppendTraceIdArgs(std::string& out, const TraceEvent& event) {
  if (event.trace_id != 0) {
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(event.trace_id);
    out += "}";
  }
}

}  // namespace

void AppendChromeTraceEvents(std::string& out, const TraceDump& dump, bool& first) {
  for (const TraceDump::Thread& thread : dump.threads) {
    for (const TraceEvent& event : thread.events) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n";
      switch (event.kind) {
        case EventKind::kSpanBegin:
          AppendCommon(out, dump, event, thread.tid, "B");
          AppendTraceIdArgs(out, event);
          break;
        case EventKind::kSpanEnd:
          AppendCommon(out, dump, event, thread.tid, "E");
          AppendTraceIdArgs(out, event);
          break;
        case EventKind::kComplete:
          AppendCommon(out, dump, event, thread.tid, "X");
          out += ",\"dur\":";
          AppendTimestampUs(out, event.arg);
          AppendTraceIdArgs(out, event);
          break;
        case EventKind::kInstant:
          AppendCommon(out, dump, event, thread.tid, "i");
          out += ",\"s\":\"t\"";
          AppendTraceIdArgs(out, event);
          break;
        case EventKind::kCounter:
          AppendCommon(out, dump, event, thread.tid, "C");
          out += ",\"args\":{\"value\":";
          out += std::to_string(event.arg);
          out += "}";
          break;
      }
      out += "}";
    }
  }
}

std::string ChromeTraceJson(const TraceDump& dump) {
  std::string out;
  out.reserve(128 + dump.event_count() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  AppendChromeTraceEvents(out, dump, first);
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(dump.dropped());
  out += "}}";
  return out;
}

bool WriteChromeTrace(const TraceDump& dump, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "tracelab: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = ChromeTraceJson(dump);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (written != json.size()) {
    std::fprintf(stderr, "tracelab: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

StageSummary Aggregate(const TraceDump& dump) {
  StageSummary summary;
  summary.sites = dump.sites;
  summary.spans.resize(dump.sites.size());
  summary.counters.resize(dump.sites.size());
  summary.instants.resize(dump.sites.size(), 0);

  const auto record = [&summary](SiteId site, std::uint64_t duration_ns) {
    if (site >= summary.spans.size()) {
      return;
    }
    SpanStats& stats = summary.spans[site];
    ++stats.count;
    stats.total_ns += duration_ns;
    if (duration_ns > stats.max_ns) {
      stats.max_ns = duration_ns;
    }
  };

  struct Open {
    SiteId site;
    std::uint64_t ts_ns;
  };
  std::vector<Open> stack;
  for (const TraceDump::Thread& thread : dump.threads) {
    stack.clear();
    for (const TraceEvent& event : thread.events) {
      switch (event.kind) {
        case EventKind::kSpanBegin:
          stack.push_back(Open{event.site, event.ts_ns});
          break;
        case EventKind::kSpanEnd: {
          // Match the innermost open span of this site; anything opened
          // above it never saw its end (dropped, or still running when a
          // disable raced the close) and is discarded unmeasured.
          std::size_t i = stack.size();
          while (i > 0 && stack[i - 1].site != event.site) {
            --i;
          }
          if (i == 0) {
            break;  // unmatched end: its begin was dropped
          }
          record(event.site, event.ts_ns - stack[i - 1].ts_ns);
          stack.resize(i - 1);
          break;
        }
        case EventKind::kComplete:
          record(event.site, event.arg);
          break;
        case EventKind::kInstant:
          if (event.site < summary.instants.size()) {
            ++summary.instants[event.site];
          }
          break;
        case EventKind::kCounter:
          if (event.site < summary.counters.size()) {
            ++summary.counters[event.site].samples;
            summary.counters[event.site].sum += event.arg;
          }
          break;
      }
    }
  }
  return summary;
}

}  // namespace tracelab
