// Shared JSON string escaping.
//
// Graft names, opcode names, and injection-site names are caller-supplied
// strings that end up inside JSON output (telemetry snapshots, Chrome trace
// events). One escaping helper serves every emitter so a hostile name
// (embedded quote, backslash, control byte) cannot break any of them.

#ifndef GRAFTLAB_SRC_TRACELAB_JSON_UTIL_H_
#define GRAFTLAB_SRC_TRACELAB_JSON_UTIL_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace tracelab {

// Appends `s` escaped for use inside a JSON string literal (no quotes).
inline void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Appends `s` as a quoted, escaped JSON string literal.
inline void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
}

inline std::string JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(out, s);
  return out;
}

}  // namespace tracelab

#endif  // GRAFTLAB_SRC_TRACELAB_JSON_UTIL_H_
