// tracelab: low-overhead structured tracing for the graft dispatch path.
//
// The paper's central quantity is where one invocation spends its time —
// crossing into the technology, the graft body, and the kernel work around
// it. Aggregate counters (graftd telemetry) cannot show one invocation's
// cost structure, so tracelab records a stream of fixed-size events:
//
//   * span begin/end  — a nested timed region on the recording thread;
//   * complete        — a whole span in one event (begin timestamp +
//                       duration), for regions that start on one thread and
//                       end on another (queue wait: submit -> dequeue);
//   * instant         — a point event (fault injected, supervisor
//                       transition), stamped onto the active trace;
//   * counter         — a sampled value (ldisk writes, eviction lookups).
//
// Recording model: each thread owns one lock-free SPSC ring of TraceEvents,
// registered with the Tracer on first use. The producer side never blocks
// and never allocates — a full ring increments a drop counter and discards
// the event, so a stalled reader costs events, not latency. One collector
// at a time drains the rings (Dump/Reset); draining is safe while
// producers keep recording, which is what makes cross-thread snapshots
// during an active run well-defined.
//
// Site names are interned once (registration time, mutex-protected) to a
// dense SiteId; the hot path carries only the 4-byte id. Time is read
// through the graftd::Clock seam, so tests drive span durations from a
// FakeClock and assert them exactly.
//
// Keep one active tracer per recording thread at a time: the thread-local
// ring cache holds a single entry, and alternating a thread between two
// live tracers re-registers a fresh ring on each switch.

#ifndef GRAFTLAB_SRC_TRACELAB_TRACE_H_
#define GRAFTLAB_SRC_TRACELAB_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/graftd/clock.h"

namespace tracelab {

using SiteId = std::uint32_t;

// Returned by Intern once the site table is full (Options::max_sites): the
// event is still recorded, but attributed to the shared overflow site so a
// hostile producer of never-repeating names can grow neither the table nor
// the O(sites) intern scan. SiteName maps it to "<overflow>"; consumers
// that index dense site vectors already range-check, so the sentinel never
// lands in an aggregate row of its own.
inline constexpr SiteId kOverflowSite = 0xFFFFFFFFu;

enum class EventKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kComplete,  // arg = duration in nanoseconds
  kInstant,
  kCounter,  // arg = sampled value
};

struct TraceEvent {
  std::uint64_t ts_ns = 0;     // nanoseconds since the tracer's origin
  std::uint64_t trace_id = 0;  // invocation correlation id; 0 = unscoped
  std::uint64_t arg = 0;       // kComplete: duration ns; kCounter: value
  SiteId site = 0;
  EventKind kind = EventKind::kInstant;
};

// Single-producer single-consumer ring. The owning thread pushes; the
// collector drains. A full ring drops (counted) instead of blocking.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);

  // Producer side (owning thread only).
  bool TryPush(const TraceEvent& event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side (one collector at a time). Appends in push order.
  std::size_t Drain(std::vector<TraceEvent>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t drained = static_cast<std::size_t>(head - tail);
    for (; tail != head; ++tail) {
      out.push_back(slots_[tail & mask_]);
    }
    tail_.store(tail, std::memory_order_release);
    return drained;
  }

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // producer cursor
  std::atomic<std::uint64_t> tail_{0};  // consumer cursor
  std::atomic<std::uint64_t> dropped_{0};
};

// Everything collected so far: per-thread event streams (push order
// preserved within a thread) plus the site-name table to decode them.
struct TraceDump {
  struct Thread {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  std::vector<Thread> threads;
  std::vector<std::string> sites;  // SiteId -> name

  std::size_t event_count() const {
    std::size_t n = 0;
    for (const Thread& t : threads) {
      n += t.events.size();
    }
    return n;
  }
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const Thread& t : threads) {
      n += t.dropped;
    }
    return n;
  }
};

// The per-invocation trace id active on this thread (0 when none). The
// dispatcher scopes it around each invocation so subsystems that cannot see
// the invocation (faultlab injector, supervisor) still stamp their instant
// events onto the right trace.
std::uint64_t CurrentTraceId();

class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::uint64_t id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::uint64_t prev_;
};

// Profiler attribution slot: what {graft, stage} this thread is currently
// executing, as plain thread-local stores (no atomics, no branches) cheap
// enough to stamp around every dispatch stage. The obslab sampling profiler
// reads the interrupted thread's own slot from its SIGPROF handler, which
// is async-signal-safe because the slot is a trivially-constructible POD
// thread_local (a TLS offset read, no lazy init, no locks). graft is the
// GraftId + 1 (0 = not in a graft); stage is a ProfStage.
enum class ProfStage : std::uint32_t {
  kIdle = 0,
  kQueue = 1,     // reserved for queue-side attribution
  kCrossing = 2,  // protection/technology crossing into the graft
  kBody = 3,      // the graft body itself
  kDisk = 4,      // simulated device time the invocation rides
  kNet = 5,       // network front-end work (decode/encode/flush)
};
inline constexpr std::size_t kProfStages = 6;
constexpr const char* ProfStageName(ProfStage stage) {
  switch (stage) {
    case ProfStage::kIdle: return "idle";
    case ProfStage::kQueue: return "queue";
    case ProfStage::kCrossing: return "crossing";
    case ProfStage::kBody: return "body";
    case ProfStage::kDisk: return "disk";
    case ProfStage::kNet: return "net";
  }
  return "?";
}

struct ProfSlot {
  std::uint32_t graft = 0;  // GraftId + 1; 0 = none
  std::uint32_t stage = 0;  // ProfStage
};

ProfSlot CurrentProfSlot();
void SetProfSlot(ProfSlot slot);

// RAII stage marker; restores the previous slot on destruction so nested
// stages (body -> disk) unwind correctly.
class ScopedProfSlot {
 public:
  ScopedProfSlot(std::uint32_t graft_plus_one, ProfStage stage);
  ~ScopedProfSlot();
  ScopedProfSlot(const ScopedProfSlot&) = delete;
  ScopedProfSlot& operator=(const ScopedProfSlot&) = delete;

 private:
  ProfSlot prev_;
};

class Tracer {
 public:
  struct Options {
    std::size_t ring_capacity = 1u << 14;  // events per recording thread
    const graftd::Clock* clock = graftd::RealClock::Instance();
    bool enabled = true;
    // Intern table cap: names beyond it collapse to kOverflowSite (counted
    // by sites_dropped). Bounds both memory and the linear intern scan
    // against hostile never-repeating site names.
    std::size_t max_sites = 4096;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Interns `name` (idempotent); not for the hot path — intern at
  // registration time and carry the id.
  SiteId Intern(std::string_view name);
  std::string SiteName(SiteId site) const;

  // Cheap master switch. Disabled, every record call is a load + branch.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // Nanoseconds since the tracer's origin, on the injected clock.
  std::uint64_t NowNs() const;

  // Monotonic correlation ids, starting at 1.
  std::uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void SpanBegin(SiteId site, std::uint64_t trace_id) {
    Emit(EventKind::kSpanBegin, site, trace_id, 0);
  }
  void SpanEnd(SiteId site, std::uint64_t trace_id) {
    Emit(EventKind::kSpanEnd, site, trace_id, 0);
  }
  // A span recorded after the fact: began at `begin_ns`, lasted
  // `duration_ns`. The only event shape that may describe another thread's
  // past (queue wait begins on the producer, ends on the worker).
  void Complete(SiteId site, std::uint64_t begin_ns, std::uint64_t duration_ns,
                std::uint64_t trace_id) {
    if (!enabled()) {
      return;
    }
    TraceEvent event;
    event.ts_ns = begin_ns;
    event.trace_id = trace_id;
    event.arg = duration_ns;
    event.site = site;
    event.kind = EventKind::kComplete;
    ThreadRing()->TryPush(event);
  }
  void Instant(SiteId site, std::uint64_t trace_id, std::uint64_t arg = 0) {
    Emit(EventKind::kInstant, site, trace_id, arg);
  }
  void Counter(SiteId site, std::uint64_t value, std::uint64_t trace_id = 0) {
    Emit(EventKind::kCounter, site, trace_id, value);
  }

  // Drains every ring into the accumulated per-thread streams and returns a
  // copy of everything collected since construction (or the last Reset).
  // One collector at a time; safe against concurrent producers.
  TraceDump Dump();

  // Flight-recorder snapshot: drains the rings like Dump but returns only
  // the most recent `max_events_per_thread` events of each thread (the
  // accumulated streams are kept, so a later Dump still sees everything).
  // Safe against concurrent producers, same as Dump.
  TraceDump DumpTail(std::size_t max_events_per_thread);

  // Discards everything collected so far (drop counters stay cumulative).
  void Reset();

  std::uint64_t dropped() const;

  // Interns refused by the max_sites cap (cumulative).
  std::uint64_t sites_dropped() const {
    return sites_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct RingEntry {
    RingEntry(std::uint32_t tid_in, std::size_t capacity) : tid(tid_in), ring(capacity) {}
    std::uint32_t tid;
    EventRing ring;
    std::vector<TraceEvent> collected;  // guarded by collect_mu_
  };

  void Emit(EventKind kind, SiteId site, std::uint64_t trace_id, std::uint64_t arg) {
    if (!enabled()) {
      return;
    }
    TraceEvent event;
    event.ts_ns = NowNs();
    event.trace_id = trace_id;
    event.arg = arg;
    event.site = site;
    event.kind = kind;
    ThreadRing()->TryPush(event);
  }

  EventRing* ThreadRing();

  const Options options_;
  const std::uint64_t epoch_;  // globally unique per Tracer instance
  std::atomic<bool> enabled_;
  graftd::Clock::TimePoint origin_;
  std::atomic<std::uint64_t> next_trace_id_{1};

  mutable std::mutex sites_mu_;
  std::vector<std::string> sites_;
  std::atomic<std::uint64_t> sites_dropped_{0};

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<RingEntry>> rings_;

  std::mutex collect_mu_;  // serializes Dump/Reset (the single consumer)
};

// RAII span: begins on construction when the tracer is attached and
// enabled, ends on destruction. A null tracer makes it a no-op.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, SiteId site, std::uint64_t trace_id) {
    if (tracer != nullptr && tracer->enabled()) {
      tracer_ = tracer;
      site_ = site;
      trace_id_ = trace_id;
      tracer_->SpanBegin(site_, trace_id_);
    }
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void End() {
    if (tracer_ != nullptr) {
      tracer_->SpanEnd(site_, trace_id_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  SiteId site_ = 0;
  std::uint64_t trace_id_ = 0;
};

// Per-invocation handle a dispatcher passes into GraftHost so the host can
// stamp crossing/body spans onto the active trace without knowing about the
// dispatcher's registration table. Null tracer = untraced invocation.
struct StageTrace {
  Tracer* tracer = nullptr;
  SiteId crossing = 0;
  SiteId body = 0;
  std::uint64_t trace_id = 0;
};

}  // namespace tracelab

#endif  // GRAFTLAB_SRC_TRACELAB_TRACE_H_
