#include "src/tracelab/trace.h"

#include <bit>

namespace tracelab {

namespace {

std::atomic<std::uint64_t> g_tracer_epoch{1};

thread_local std::uint64_t t_current_trace_id = 0;

// POD with a constant initializer: access is a plain TLS read with no
// guard variable, which is what makes CurrentProfSlot safe to call from a
// SIGPROF handler interrupting this thread.
thread_local ProfSlot t_prof_slot;

}  // namespace

std::uint64_t CurrentTraceId() { return t_current_trace_id; }

ProfSlot CurrentProfSlot() { return t_prof_slot; }

void SetProfSlot(ProfSlot slot) { t_prof_slot = slot; }

ScopedProfSlot::ScopedProfSlot(std::uint32_t graft_plus_one, ProfStage stage)
    : prev_(t_prof_slot) {
  t_prof_slot = ProfSlot{graft_plus_one, static_cast<std::uint32_t>(stage)};
}

ScopedProfSlot::~ScopedProfSlot() { t_prof_slot = prev_; }

ScopedTraceId::ScopedTraceId(std::uint64_t id) : prev_(t_current_trace_id) {
  t_current_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { t_current_trace_id = prev_; }

EventRing::EventRing(std::size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
      mask_(slots_.size() - 1) {}

Tracer::Tracer(Options options)
    : options_(options),
      epoch_(g_tracer_epoch.fetch_add(1, std::memory_order_relaxed)),
      enabled_(options.enabled),
      origin_(options.clock->Now()) {}

SiteId Tracer::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(sites_mu_);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == name) {
      return static_cast<SiteId>(i);
    }
  }
  // Full table: refuse the new name rather than grow without bound (a
  // hostile producer of unique names would otherwise inflate both memory
  // and this linear scan). The caller's events survive under the shared
  // overflow sentinel.
  if (sites_.size() >= options_.max_sites) {
    sites_dropped_.fetch_add(1, std::memory_order_relaxed);
    return kOverflowSite;
  }
  sites_.emplace_back(name);
  return static_cast<SiteId>(sites_.size() - 1);
}

std::string Tracer::SiteName(SiteId site) const {
  if (site == kOverflowSite) {
    return "<overflow>";
  }
  std::lock_guard<std::mutex> lock(sites_mu_);
  return site < sites_.size() ? sites_[site] : "?";
}

std::uint64_t Tracer::NowNs() const {
  const auto elapsed = options_.clock->Now() - origin_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

EventRing* Tracer::ThreadRing() {
  struct Cache {
    const Tracer* owner = nullptr;
    std::uint64_t epoch = 0;
    EventRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner == this && cache.epoch == epoch_) {
    return cache.ring;
  }
  std::lock_guard<std::mutex> lock(rings_mu_);
  rings_.push_back(std::make_unique<RingEntry>(static_cast<std::uint32_t>(rings_.size()),
                                               options_.ring_capacity));
  cache = Cache{this, epoch_, &rings_.back()->ring};
  return cache.ring;
}

TraceDump Tracer::Dump() {
  std::lock_guard<std::mutex> collect(collect_mu_);
  // Snapshot the ring list first: producers may register new rings while we
  // drain, and those will be picked up by the next Dump.
  std::vector<RingEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    entries.reserve(rings_.size());
    for (const auto& entry : rings_) {
      entries.push_back(entry.get());
    }
  }
  TraceDump dump;
  dump.threads.reserve(entries.size());
  for (RingEntry* entry : entries) {
    entry->ring.Drain(entry->collected);
    TraceDump::Thread thread;
    thread.tid = entry->tid;
    thread.dropped = entry->ring.dropped();
    thread.events = entry->collected;
    dump.threads.push_back(std::move(thread));
  }
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    dump.sites = sites_;
  }
  return dump;
}

TraceDump Tracer::DumpTail(std::size_t max_events_per_thread) {
  std::lock_guard<std::mutex> collect(collect_mu_);
  std::vector<RingEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    entries.reserve(rings_.size());
    for (const auto& entry : rings_) {
      entries.push_back(entry.get());
    }
  }
  TraceDump dump;
  dump.threads.reserve(entries.size());
  for (RingEntry* entry : entries) {
    entry->ring.Drain(entry->collected);
    TraceDump::Thread thread;
    thread.tid = entry->tid;
    thread.dropped = entry->ring.dropped();
    const std::vector<TraceEvent>& all = entry->collected;
    const std::size_t take = all.size() < max_events_per_thread ? all.size()
                                                                : max_events_per_thread;
    thread.events.assign(all.end() - static_cast<std::ptrdiff_t>(take), all.end());
    dump.threads.push_back(std::move(thread));
  }
  {
    std::lock_guard<std::mutex> lock(sites_mu_);
    dump.sites = sites_;
  }
  return dump;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> collect(collect_mu_);
  std::vector<RingEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& entry : rings_) {
      entries.push_back(entry.get());
    }
  }
  std::vector<TraceEvent> discard;
  for (RingEntry* entry : entries) {
    discard.clear();
    entry->ring.Drain(discard);
    entry->collected.clear();
  }
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& entry : rings_) {
    total += entry->ring.dropped();
  }
  return total;
}

}  // namespace tracelab
