// Trace consumers: Chrome trace-event JSON and per-stage aggregation.
//
// ChromeTraceJson renders a TraceDump in the Chrome trace-event format
// (load it in Perfetto or chrome://tracing): span begin/end become B/E
// pairs on the recording thread's track, complete events become X events
// with an explicit duration (they may describe another thread's past),
// instants become i events, counters become C events. Every event carries
// its trace id in args, so one invocation's nested spans can be followed
// across the queue-wait handoff.
//
// Aggregate folds the same dump into per-site statistics: span counts and
// total/max durations (begin/end matched per thread with a tolerant stack —
// unmatched ends are ignored, spans left open at dump time are not
// counted), instant counts, and counter sums. This is the input for the
// telemetry stage table and the live break-even panel.

#ifndef GRAFTLAB_SRC_TRACELAB_EXPORT_H_
#define GRAFTLAB_SRC_TRACELAB_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tracelab/trace.h"

namespace tracelab {

std::string ChromeTraceJson(const TraceDump& dump);

// Appends just the trace-event array elements (comma-separated, no
// enclosing brackets) — the shared body of ChromeTraceJson and the obslab
// flight recorder's combined black-box file, which embeds the same array
// under its own top-level "traceEvents" key so one file is both a valid
// Chrome trace and a post-mortem record. `first` tracks comma placement
// across calls.
void AppendChromeTraceEvents(std::string& out, const TraceDump& dump, bool& first);

// Writes ChromeTraceJson(dump) to `path`; false (after a diagnostic) on
// I/O failure.
bool WriteChromeTrace(const TraceDump& dump, const std::string& path);

struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double total_us() const { return static_cast<double>(total_ns) / 1e3; }
  double mean_us() const {
    return count == 0 ? 0.0 : total_us() / static_cast<double>(count);
  }
};

struct CounterStats {
  std::uint64_t samples = 0;
  std::uint64_t sum = 0;
};

// Indexed by SiteId (same order as TraceDump::sites).
struct StageSummary {
  std::vector<SpanStats> spans;
  std::vector<CounterStats> counters;
  std::vector<std::uint64_t> instants;
  std::vector<std::string> sites;

  const SpanStats& Span(SiteId site) const { return spans.at(site); }
  const CounterStats& Counter(SiteId site) const { return counters.at(site); }
  std::uint64_t Instants(SiteId site) const { return instants.at(site); }
};

StageSummary Aggregate(const TraceDump& dump);

}  // namespace tracelab

#endif  // GRAFTLAB_SRC_TRACELAB_EXPORT_H_
