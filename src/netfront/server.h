// netfront: the epoll front line that serves grafts over sockets.
//
// Threading model: N IO threads, each owning a private epoll instance, a
// slice of the connections, per-tenant staging deques, and a completion
// inbox. Each IO thread is one lane producer into the graftd dispatcher
// (the SPSC registration happens implicitly on its first SubmitBatch;
// slots are recycled when the thread exits — see src/graftd/lanes.h). The
// shared TCP listener is registered in every IO thread's epoll with
// EPOLLEXCLUSIVE, so the kernel wakes one thread per pending accept and
// connections spread across the pool without a dedicated acceptor.
//
// Admission happens at the socket, in order:
//   1. unknown tenant/graft  -> error reply, never counted against quota
//   2. supervisor kDegraded  -> kShedDegraded reply (the paper's detach
//      story: a failing device sheds at the front door, not in the queue)
//   3. token bucket          -> kQuotaExceeded reply
//   4. staging backlog full  -> kShedOverload reply
// Only requests that pass all four are staged for dispatch.
//
// Dispatch: staged requests drain through deficit-weighted round robin.
// Each backlogged tenant holds a credit counter; credits refresh
// (+quantum x weight) only when every backlogged tenant has spent its
// credit, so lane-full interruptions never skew the ratio — under
// saturation, completed requests track configured weights exactly.
// Batches go down via TrySubmitBatch: partial acceptance is the
// backpressure signal and the remainder stays staged, in order.
//
// Completion routing: the dispatcher's on_complete hook fires on a worker
// thread; it enqueues the completion to the owning IO thread's inbox and
// wakes its eventfd. The IO thread validates the connection is still the
// one that sent the request (slot + generation), encodes the reply into
// the connection's write buffer, and flushes. Write-buffer backpressure:
// past `write_buffer_high` the connection's reads pause (EPOLLIN dropped,
// so a fast sender can't pump new requests while replies back up); past
// `write_buffer_hard` the slow reader is closed.
//
// chaoslab: with ServerOptions::injector attached, the IO path consults
// seeded fault sites —
//   netfront/read      conn reset / read stall / 1-byte torn reads
//   netfront/write     conn reset / write stall / short (torn) writes
//   netfront/frame     the decoder is fed one byte at a time
//   netfront/eventfd   a Wake() is silently dropped
//   netfront/io_thread kCrash kills the whole IO thread; survivors adopt
//                      its connections (decoder state, unflushed replies,
//                      generation) through their inboxes
// Recovery from a lost wake is structural, not event-driven: every IoLoop
// pass (bounded by the epoll timeout) drains the inboxes and the staging
// deques whether or not the eventfd fired. Crash orphans — staged requests
// and in-flight replies owned by the dead thread — are accounted inline so
// drain invariants hold; the client's retry path (request-id dedup window)
// makes the rerun exactly-once-visible.

#ifndef GRAFTLAB_SRC_NETFRONT_SERVER_H_
#define GRAFTLAB_SRC_NETFRONT_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/faultlab/injector.h"
#include "src/graftd/dispatcher.h"
#include "src/graftd/telemetry.h"
#include "src/netfront/tenant.h"
#include "src/netfront/wire.h"
#include "src/tracelab/trace.h"

namespace netfront {

struct ServerOptions {
  std::size_t io_threads = 2;
  // recv() chunk; also the initial read-buffer granularity.
  std::size_t read_chunk = 64u << 10;
  // Per-tenant, per-IO-thread staged-request cap: beyond this the request
  // is shed at the socket with kShedOverload.
  std::size_t staging_high = 512;
  // Write-buffer watermarks (bytes of un-flushed replies per connection).
  std::size_t write_buffer_high = 256u << 10;
  std::size_t write_buffer_hard = 4u << 20;
  // Max invocations per TrySubmitBatch call.
  std::size_t submit_chunk = 16;
  // DRR credit granted per refresh is quantum x tenant weight.
  std::uint64_t drr_quantum = 16;
  // Tenant table; wire tenant ids index it. Empty gets one default tenant.
  std::vector<TenantConfig> tenants;
  // Optional: network-stage spans (nf:decode, nf:drain, nf:encode,
  // nf:flush) land in this tracer. Must outlive the server.
  tracelab::Tracer* tracer = nullptr;
  // Optional: seeded chaos. The IO path consults the netfront/* sites
  // listed in the header comment. Must outlive the server.
  faultlab::Injector* injector = nullptr;
  // Per-tenant request-id dedup window (FIFO eviction). While a request id
  // is in the window, a duplicate is swallowed (original still in flight)
  // or answered from the stored outcome (already completed) — the graft
  // body never runs twice, so client retries are exactly-once-visible.
  // 0 disables dedup; retried ids then re-execute (the seed behavior).
  std::size_t dedup_window = 0;

  // --- observability seams (the obslab plane plugs in here; the server
  // only ever sees std::functions, so netfront never depends on obslab) ---

  // Serves kAdminMetrics frames: called with the requested exposition
  // format byte, returns the scrape body. Unset, every admin frame is
  // answered kAdminDenied. Admin frames bypass the token bucket (a scrape
  // must work precisely when quotas are exhausted) but are gated on
  // TenantConfig::admin.
  std::function<std::string(std::uint8_t format)> admin_metrics;
  // Front-end failure events worth a flight-recorder snapshot; currently
  // fired with "io_thread_crash" when an injected crash is adopted.
  std::function<void(const char* event)> obs_event;
  // Per-tenant completion latency feed (SLO watchdog): fired once per kOk
  // completion with the dispatcher-measured service time.
  std::function<void(std::uint16_t tenant, std::uint64_t elapsed_ns)> obs_latency;
};

class Server {
 public:
  // The dispatcher must outlive the server; register grafts on it before
  // Start() (the dispatcher's registration contract).
  Server(graftd::Dispatcher& dispatcher, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Maps a registered dispatcher graft onto the wire: returns the wire
  // graft id clients put in the frame header. Call before Start().
  std::uint32_t ExposeGraft(graftd::GraftId id);

  // Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port,
  // readable via port() afterwards). Optional: a server fed only through
  // AddConnection() needs no listener. Call before Start().
  bool ListenTcp(std::uint16_t port);
  std::uint16_t port() const { return port_; }

  void Start();

  // Adopts an already-connected socket (e.g. one end of a socketpair) into
  // the pool, round-robin across IO threads. Thread-safe after Start().
  bool AddConnection(int fd);

  // Drains staged work into the dispatcher, waits for in-flight
  // completions (bounded), then joins the IO threads and closes every
  // socket. Idempotent; called by the destructor. The dispatcher is left
  // running.
  void Stop();

  // Point-in-time "__netfront__" section for a TelemetrySnapshot.
  void FillTelemetry(graftd::NetfrontSection& section) const;

 private:
  // One request in flight between decode and reply. Owns the payload the
  // Invocation's span points into (the dispatcher requires the bytes stay
  // alive until completion). Identified back to its connection by
  // (io_thread, conn slot, generation) so completions for a connection
  // that died mid-flight are dropped instead of hitting a reused slot.
  struct PendingRequest {
    std::uint16_t tenant = 0;
    std::uint32_t wire_graft = 0;
    std::uint64_t request_id = 0;
    std::size_t io_thread = 0;
    std::size_t conn_slot = 0;
    std::uint64_t conn_gen = 0;
    // Absolute expiry on the dispatcher clock (0 = none), stamped at
    // admission from the v2 frame's relative deadline_us.
    std::uint64_t deadline_ns = 0;
    std::vector<std::uint8_t> payload;
  };

  struct CompletionRecord {
    PendingRequest* request = nullptr;
    graftd::Completion completion;
  };

  // A request admitted past the socket, waiting for lane space.
  struct StagedRequest {
    PendingRequest* request = nullptr;
    graftd::GraftId graft = 0;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;  // un-flushed reply bytes
    std::size_t out_pos = 0;        // bytes of `out` already written
    bool want_write = false;        // EPOLLOUT currently armed
    bool read_paused = false;       // EPOLLIN dropped (backpressure)
    std::size_t in_flight = 0;      // pending requests owned by this conn
  };

  struct IoThread {
    std::size_t index = 0;  // position in the pool; stamped into requests
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;

    std::vector<std::unique_ptr<Conn>> conns;  // slot table, index = slot
    std::vector<std::size_t> free_slots;
    // Slots freed during the current event batch; promoted to free_slots
    // at the top of the next loop so a stale epoll event in the same
    // batch can never hit a reused slot.
    std::vector<std::size_t> dead_slots;

    // DRR state: one staging deque + credit counter per tenant.
    std::vector<std::deque<StagedRequest>> staged;
    std::vector<std::int64_t> credit;
    std::size_t drr_start = 0;
    // Read by Stop()'s drain wait from another thread.
    std::atomic<std::size_t> staged_total{0};

    // Set (under inbox_mu) when an injected crash killed this thread:
    // OnCompletion and AddConnection route around it from then on.
    std::atomic<bool> dead{false};

    // Cross-thread inboxes, all drained on eventfd wake (and every loop
    // pass, so a lost wake only delays them by the epoll timeout).
    std::mutex inbox_mu;
    std::vector<CompletionRecord> completions;
    std::vector<int> adopted_fds;
    // Whole connections inherited from a crashed IO thread.
    std::vector<std::unique_ptr<Conn>> adopted_conns;

    // Mechanics counters, guarded by stats_mu (uncontended except while
    // FillTelemetry merges).
    mutable std::mutex stats_mu;
    std::uint64_t decoded_frames = 0;
    std::uint64_t submit_batches = 0;
    graftd::BatchHistogram submit_sizes;
    std::uint64_t wakeups = 0;
  };

  // Per-tenant shared counters (IO threads increment, FillTelemetry reads).
  struct TenantState {
    TenantConfig config;
    std::unique_ptr<TokenBucket> bucket;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed_ok{0};
    std::atomic<std::uint64_t> completed_error{0};
    std::atomic<std::uint64_t> shed_degraded{0};
    std::atomic<std::uint64_t> shed_overload{0};
    std::atomic<std::uint64_t> quota_rejected{0};
    std::atomic<std::uint64_t> breaker_open{0};
    std::atomic<std::uint64_t> retries_deduped{0};

    // Request-id dedup window (see ServerOptions::dedup_window). An entry
    // exists from staging until FIFO eviction; done=false means the
    // original attempt is still in flight.
    struct DedupEntry {
      bool done = false;
      graftd::CompletionStatus status = graftd::CompletionStatus::kOk;
      std::array<std::uint8_t, 8> digest{};
    };
    std::mutex dedup_mu;
    std::unordered_map<std::uint64_t, DedupEntry> dedup;
    std::deque<std::uint64_t> dedup_order;  // FIFO eviction order
  };

  void IoLoop(std::size_t index);
  void HandleListener(IoThread& io);
  void HandleReadable(IoThread& io, std::size_t slot, std::vector<std::uint8_t>& buf);
  void HandleWritable(IoThread& io, std::size_t slot);
  // Decodes every complete frame currently buffered on the conn; returns
  // false if the conn was closed (hostile frame).
  bool DecodeFrames(IoThread& io, std::size_t slot);
  // Admission for one decoded request; stages it or writes a shed reply.
  void AdmitRequest(IoThread& io, std::size_t slot, FrameDecoder::Frame& frame);
  // One kAdminMetrics scrape: admin-tenant check, format byte, reply frame.
  void HandleAdmin(IoThread& io, std::size_t slot, const FrameDecoder::Frame& frame);
  // DRR drain of the staged backlog into the dispatcher.
  void DrainStaged(IoThread& io);
  void ProcessCompletions(IoThread& io);
  void AdoptInbox(IoThread& io);
  void FlushConn(IoThread& io, std::size_t slot);
  void UpdateReadPause(IoThread& io, std::size_t slot);
  void CloseConn(IoThread& io, std::size_t slot);
  void Rearm(IoThread& io, std::size_t slot);
  std::size_t InstallConn(IoThread& io, int fd);
  // Re-registers a connection inherited from a crashed IO thread, keeping
  // its generation, decoder state and write buffer.
  std::size_t InstallAdopted(IoThread& io, std::unique_ptr<Conn> conn);
  void Wake(IoThread& io);
  // Routes a worker-side completion to the owning IO thread's inbox.
  void OnCompletion(PendingRequest* request, const graftd::Completion& completion);
  // Accounts a completion whose IO thread is gone: tenant counters, dedup
  // publication, in_flight — everything but the (impossible) socket reply.
  void AccountOrphan(CompletionRecord& record);
  // Injected whole-IO-thread crash. Returns false (and does nothing) when
  // no other IO thread is alive to adopt the connections.
  bool CrashIoThread(IoThread& io);

  // Dedup window plumbing (all no-ops when dedup_window == 0).
  // Returns true when the frame was answered or swallowed as a duplicate.
  bool DedupCheck(Conn* conn, const FrameHeader& header);
  void DedupStage(std::uint16_t tenant_id, std::uint64_t request_id);
  void DedupResolve(std::uint16_t tenant_id, std::uint64_t request_id,
                    const graftd::Completion& completion);
  // Drops a pending (not-done) entry — the staged attempt died with a
  // crashed IO thread, so a retry must be admitted as a fresh attempt.
  void DedupForget(std::uint16_t tenant_id, std::uint64_t request_id);

  graftd::Dispatcher& dispatcher_;
  const ServerOptions options_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::vector<graftd::GraftId> wire_grafts_;  // wire id -> dispatcher id
  std::vector<std::unique_ptr<IoThread>> io_threads_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> next_io_{0};

  // Shared totals (IO threads increment).
  std::atomic<std::uint64_t> connections_opened_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> read_pauses_{0};
  std::atomic<std::uint64_t> slow_reader_closes_{0};
  std::atomic<std::uint64_t> io_thread_crashes_{0};
  std::atomic<std::uint64_t> conns_adopted_{0};
  std::atomic<std::uint64_t> crash_orphans_{0};

  // Serializes injected crashes so two threads can never pick each other
  // as the "survivor" and strand connections on a dead thread.
  std::mutex crash_mu_;

  // Interned trace sites (0 when no tracer).
  tracelab::SiteId site_decode_ = 0;
  tracelab::SiteId site_drain_ = 0;
  tracelab::SiteId site_encode_ = 0;
  tracelab::SiteId site_flush_ = 0;

  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace netfront

#endif  // GRAFTLAB_SRC_NETFRONT_SERVER_H_
