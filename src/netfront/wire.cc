#include "src/netfront/wire.h"

#include <cstring>

namespace netfront {

namespace {

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace

void AppendHeader(std::vector<std::uint8_t>& out, const FrameHeader& header) {
  out.reserve(out.size() + HeaderSizeFor(header.version) + header.payload_len);
  PutU32(out, header.magic);
  out.push_back(header.version);
  out.push_back(static_cast<std::uint8_t>(header.type));
  PutU16(out, header.tenant);
  PutU32(out, header.graft);
  PutU32(out, header.payload_len);
  PutU64(out, header.request_id);
  if (header.version >= kVersionDeadline) {
    PutU64(out, header.deadline_us);
  }
}

void AppendRequest(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                   std::uint64_t request_id, const std::uint8_t* payload, std::size_t len) {
  FrameHeader header;
  header.type = FrameType::kRequest;
  header.tenant = tenant;
  header.graft = graft;
  header.payload_len = static_cast<std::uint32_t>(len);
  header.request_id = request_id;
  AppendHeader(out, header);
  out.insert(out.end(), payload, payload + len);
}

void AppendRequestDeadline(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                           std::uint32_t graft, std::uint64_t request_id,
                           std::uint64_t deadline_us, const std::uint8_t* payload,
                           std::size_t len) {
  FrameHeader header;
  header.version = kVersionDeadline;
  header.type = FrameType::kRequest;
  header.tenant = tenant;
  header.graft = graft;
  header.payload_len = static_cast<std::uint32_t>(len);
  header.request_id = request_id;
  header.deadline_us = deadline_us;
  AppendHeader(out, header);
  out.insert(out.end(), payload, payload + len);
}

void AppendResponse(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                    std::uint64_t request_id, const std::uint8_t* digest8) {
  FrameHeader header;
  header.type = FrameType::kResponse;
  header.tenant = tenant;
  header.graft = graft;
  header.payload_len = 8;
  header.request_id = request_id;
  AppendHeader(out, header);
  out.insert(out.end(), digest8, digest8 + 8);
}

void AppendError(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                 std::uint64_t request_id, ErrorCode code) {
  FrameHeader header;
  header.type = FrameType::kError;
  header.tenant = tenant;
  header.graft = graft;
  header.payload_len = 2;
  header.request_id = request_id;
  AppendHeader(out, header);
  PutU16(out, static_cast<std::uint16_t>(code));
}

void AppendAdminRequest(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                        std::uint64_t request_id, std::uint8_t format) {
  FrameHeader header;
  header.type = FrameType::kAdminMetrics;
  header.tenant = tenant;
  header.payload_len = 1;
  header.request_id = request_id;
  AppendHeader(out, header);
  out.push_back(format);
}

void AppendAdminMetrics(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                        std::uint64_t request_id, const std::uint8_t* body,
                        std::size_t len) {
  FrameHeader header;
  header.type = FrameType::kAdminMetrics;
  header.tenant = tenant;
  header.payload_len = static_cast<std::uint32_t>(len);
  header.request_id = request_id;
  AppendHeader(out, header);
  out.insert(out.end(), body, body + len);
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t len) {
  if (fatal_ || len == 0) {
    return;
  }
  // Compact before growing: consumed bytes at the front are dead weight,
  // and compacting only when they dominate keeps Feed amortized O(len).
  if (pos_ > 0 && pos_ >= buf_.size() - pos_) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

FrameDecoder::Result FrameDecoder::Next(Frame& out) {
  if (fatal_) {
    return Result::kError;
  }
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) {
    return Result::kNeedMore;
  }
  const std::uint8_t* p = buf_.data() + pos_;
  FrameHeader header;
  header.magic = GetU32(p);
  header.version = p[4];
  header.type = static_cast<FrameType>(p[5]);
  header.tenant = GetU16(p + 6);
  header.graft = GetU32(p + 8);
  header.payload_len = GetU32(p + 12);
  header.request_id = GetU64(p + 16);
  if (header.magic != kMagic) {
    fatal_ = true;
    error_ = "bad magic";
    return Result::kError;
  }
  if (header.version != kVersion && header.version != kVersionDeadline) {
    fatal_ = true;
    error_ = "unsupported version";
    return Result::kError;
  }
  if (header.type != FrameType::kRequest && header.type != FrameType::kResponse &&
      header.type != FrameType::kError && header.type != FrameType::kAdminMetrics) {
    fatal_ = true;
    error_ = "unknown frame type";
    return Result::kError;
  }
  if (header.payload_len > kMaxPayload) {
    fatal_ = true;
    error_ = "oversized payload";
    return Result::kError;
  }
  // Version negotiation is per frame: the fixed 24-byte prefix validates
  // above on either version, then a v2 frame needs its 8 deadline bytes
  // before the payload begins (a torn read inside them is just kNeedMore).
  const std::size_t header_size = HeaderSizeFor(header.version);
  if (avail < header_size) {
    return Result::kNeedMore;
  }
  if (header.version >= kVersionDeadline) {
    header.deadline_us = GetU64(p + 24);
  }
  if (avail < header_size + header.payload_len) {
    return Result::kNeedMore;
  }
  out.header = header;
  out.payload.assign(p + header_size, p + header_size + header.payload_len);
  pos_ += header_size + header.payload_len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Result::kFrame;
}

}  // namespace netfront
