// Self-healing NFT1 client: reconnect, retry, and idempotent resubmission.
//
// The server side of the chaos story (seeded resets, stalls, torn frames,
// IO-thread crashes) only proves robustness if a client can ride through
// it. This client is the riding-through: a synchronous Call() that owns
// one TCP connection and, per request,
//
//   - enforces a per-attempt timeout (poll-bounded blocking reads),
//   - retries transport errors and shed replies up to max_retries times,
//     with exponential backoff and seeded jitter between attempts,
//   - reconnects transparently when the connection dies mid-call (a pure
//     timeout keeps the connection: the reply may still be in flight),
//   - reuses the SAME request id on every retry of one call, so the
//     server's per-tenant dedup window (ServerOptions::dedup_window) makes
//     the retried work exactly-once-visible — a retry after a lost reply
//     replays the stored digest instead of running the graft again,
//   - optionally encodes the remaining attempt budget as a v2 wire
//     deadline, letting the server shed the attempt anywhere downstream
//     once the client has stopped waiting for it.
//
// Error classification: kQuotaExceeded, kShedOverload, kShedDegraded,
// kBreakerOpen and kExpired are transient (the condition clears; retry
// helps). kUnknownTenant, kUnknownGraft, kRejected and kFault are terminal
// (retrying re-runs the same failure). Request ids are drawn from a
// splitmix64 stream seeded per client, so concurrent clients against one
// tenant do not collide in the dedup window.
//
// Thread safety: none. One Client is one connection and one in-flight
// call; use one Client per thread (the loadgen does).

#ifndef GRAFTLAB_SRC_NETFRONT_CLIENT_H_
#define GRAFTLAB_SRC_NETFRONT_CLIENT_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/netfront/wire.h"

namespace netfront {

struct ClientOptions {
  std::uint16_t port = 0;        // server port on 127.0.0.1
  std::uint16_t tenant = 0;
  // Per-attempt reply timeout. A call can take up to
  // (max_retries + 1) * attempt_timeout plus backoff sleeps.
  std::chrono::milliseconds attempt_timeout{250};
  // Retries after the first attempt; 0 = fail on the first miss.
  std::uint32_t max_retries = 3;
  // Backoff before retry r is backoff_base * 2^(r-1), capped, then
  // jittered to [1/2, 1) of itself from the seeded generator.
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_max{100};
  // Seeds request-id draws and backoff jitter; give concurrent clients
  // distinct seeds.
  std::uint64_t seed = 1;
  // Encode the remaining attempt budget as a v2 wire deadline so the
  // server sheds work this client has already given up on. Off = plain v1
  // frames (the pre-deadline protocol, for back-compat testing).
  bool send_deadline = true;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One call's terminal outcome. Exactly one of these holds:
  //   ok            — digest is the graft's reply
  //   error != kNone— the server's terminal (or retries-exhausted) answer
  //   timed_out     — every attempt ran out of clock with no reply at all
  struct Result {
    bool ok = false;
    bool timed_out = false;
    ErrorCode error = ErrorCode::kNone;
    std::array<std::uint8_t, 8> digest{};
    std::uint32_t attempts = 0;  // 1 = first try succeeded
  };

  Result Call(std::uint32_t wire_graft, const std::uint8_t* payload, std::size_t len);

  // Admin scrape: sends one kAdminMetrics frame (format 0 = Prometheus
  // text, 1 = JSON) and waits for the matching reply. On success `out` is
  // the exposition body. Returns false on transport failure, timeout, or
  // a kAdminDenied answer (the tenant lacks TenantConfig::admin). No
  // retries: scrapes are periodic — the next one covers a miss.
  bool AdminScrape(std::uint8_t format, std::string& out);

  // Self-healing mechanics, cumulative over the client's life.
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t retries = 0;      // attempts beyond each call's first
    std::uint64_t reconnects = 0;   // sockets re-established mid-call
    std::uint64_t timeouts = 0;     // attempts that ran out of clock
    std::uint64_t shed_retries = 0; // retries provoked by a shed reply
  };
  const Stats& stats() const { return stats_; }

  bool connected() const { return fd_ >= 0; }

 private:
  // One attempt: send the frame, wait (poll-bounded) for the reply with
  // this call's request id. Returns false on transport failure (the
  // socket is closed; the caller reconnects and retries).
  bool Attempt(std::uint32_t wire_graft, const std::uint8_t* payload, std::size_t len,
               std::uint64_t request_id, std::chrono::steady_clock::time_point deadline,
               Result& result);
  bool EnsureConnected();
  void CloseSocket();
  std::uint64_t NextId();
  std::uint64_t Rand();

  const ClientOptions options_;
  int fd_ = -1;
  bool ever_connected_ = false;  // distinguishes first dial from reconnects
  FrameDecoder decoder_;
  std::uint64_t rng_state_;
  Stats stats_;
};

}  // namespace netfront

#endif  // GRAFTLAB_SRC_NETFRONT_CLIENT_H_
