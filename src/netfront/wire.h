// NFT1: the length-prefixed binary wire protocol the netfront server
// speaks.
//
// Every frame is a fixed little-endian header followed by `payload_len`
// payload bytes. Version 1 headers are 24 bytes:
//
//   offset  size  field
//   0       4     magic        0x4E465431 ("NFT1" read as a LE u32)
//   4       1     version      1 or 2
//   5       1     type         FrameType
//   6       2     tenant       tenant id (server-side index)
//   8       4     graft        wire graft id (server-side index)
//   12      4     payload_len  <= kMaxPayload
//   16      8     request_id   echoed verbatim in the reply
//
// Version 2 appends one field (32-byte header total):
//
//   24      8     deadline_us  relative deadline in microseconds; 0 = none
//
// The deadline is relative to frame receipt (no clock sync between peers):
// the server stamps arrival time and sheds the request anywhere downstream
// once now > arrival + deadline_us, before the graft body runs. Version
// negotiation is per frame: a decoder accepts both versions on one stream,
// v1 frames simply carry no deadline, and replies are always encoded as v1
// so pre-deadline clients interoperate unchanged.
//
// Requests carry the bytes the graft fingerprints. Responses carry the
// first 8 bytes of the graft's digest (enough for the client to verify
// against a locally computed digest). Error frames carry a 2-byte
// ErrorCode.
//
// The decoder is incremental: Feed() it whatever recv() produced — torn
// headers, half payloads, many frames at once — and pull complete frames
// with Next(). A hostile frame (bad magic, wrong version, oversized
// payload) poisons the decoder permanently: once a length-prefixed stream
// desyncs there is no way to find the next frame boundary, so the only
// safe response is to drop the connection. The decoder never throws and
// holds at most one header + one payload of buffered bytes beyond what
// the caller fed it.

#ifndef GRAFTLAB_SRC_NETFRONT_WIRE_H_
#define GRAFTLAB_SRC_NETFRONT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace netfront {

inline constexpr std::uint32_t kMagic = 0x4E465431u;  // "NFT1"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kVersionDeadline = 2;
inline constexpr std::size_t kHeaderSize = 24;            // version 1
inline constexpr std::size_t kHeaderSizeDeadline = 32;    // version 2
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  // Observability scrape. Request: payload is 0 or 1 bytes — the first
  // byte selects the exposition format (0 = Prometheus text, 1 = JSON;
  // empty = text). Reply: a kAdminMetrics frame whose payload is the
  // exposition body. Admin frames are read-only, restricted to tenants
  // configured with TenantConfig::admin, and quota-exempt (a scrape must
  // work precisely when the plant is melting and quotas are exhausted).
  kAdminMetrics = 4,
};

// Carried in the 2-byte payload of an error frame. The shed codes mirror
// the admission layers: quota (token bucket), degraded (supervisor state),
// overload (staging backlog full).
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kQuotaExceeded = 1,
  kShedDegraded = 2,
  kShedOverload = 3,
  kUnknownTenant = 4,
  kUnknownGraft = 5,
  kRejected = 6,     // supervisor rejected (quarantined/detached)
  kFault = 7,        // the graft ran and faulted (or was preempted)
  kExpired = 8,      // the request's deadline passed before the body ran
  kBreakerOpen = 9,  // per-graft circuit breaker is open; shed at admission
  kAdminDenied = 10, // kAdminMetrics from a tenant without the admin bit
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  FrameType type = FrameType::kRequest;
  std::uint16_t tenant = 0;
  std::uint32_t graft = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t request_id = 0;
  // Version 2 only; always 0 when a v1 frame is decoded.
  std::uint64_t deadline_us = 0;
};

constexpr std::size_t HeaderSizeFor(std::uint8_t version) {
  return version >= kVersionDeadline ? kHeaderSizeDeadline : kHeaderSize;
}

// Serializers append to `out` (the connection write buffer) so one flush
// can carry many frames.
void AppendHeader(std::vector<std::uint8_t>& out, const FrameHeader& header);
void AppendRequest(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                   std::uint64_t request_id, const std::uint8_t* payload, std::size_t len);
// Deadline-bearing request: encoded as a version-2 frame. deadline_us == 0
// means "no deadline" but still exercises the v2 framing.
void AppendRequestDeadline(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                           std::uint32_t graft, std::uint64_t request_id,
                           std::uint64_t deadline_us, const std::uint8_t* payload,
                           std::size_t len);
// Response payload: the first 8 bytes of the digest.
void AppendResponse(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                    std::uint64_t request_id, const std::uint8_t* digest8);
void AppendError(std::vector<std::uint8_t>& out, std::uint16_t tenant, std::uint32_t graft,
                 std::uint64_t request_id, ErrorCode code);
// Admin scrape request (client side): `format` is kFormatPrometheus/kFormatJson
// as a single payload byte. The reply travels as a kAdminMetrics frame whose
// payload is the exposition body (AppendAdminMetrics, server side).
void AppendAdminRequest(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                        std::uint64_t request_id, std::uint8_t format);
void AppendAdminMetrics(std::vector<std::uint8_t>& out, std::uint16_t tenant,
                        std::uint64_t request_id, const std::uint8_t* body,
                        std::size_t len);

class FrameDecoder {
 public:
  struct Frame {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
  };

  enum class Result : std::uint8_t {
    kNeedMore,  // no complete frame buffered
    kFrame,     // `out` holds the next frame
    kError,     // stream is poisoned; see error()
  };

  // Buffers `len` bytes. Safe to call after an error (bytes are dropped).
  void Feed(const std::uint8_t* data, std::size_t len);

  // Pulls the next complete frame. kError is sticky: every subsequent
  // call returns kError and the connection should be closed.
  Result Next(Frame& out);

  bool failed() const { return fatal_; }
  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool fatal_ = false;
  std::string error_;
};

}  // namespace netfront

#endif  // GRAFTLAB_SRC_NETFRONT_WIRE_H_
