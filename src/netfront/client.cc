#include "src/netfront/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace netfront {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Transient shed replies clear on their own (quota refills, backlog
// drains, breaker half-opens, queues shorten); everything else re-runs
// the same failure and is terminal.
bool IsTransient(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQuotaExceeded:
    case ErrorCode::kShedDegraded:
    case ErrorCode::kShedOverload:
    case ErrorCode::kExpired:
    case ErrorCode::kBreakerOpen:
      return true;
    case ErrorCode::kNone:
    case ErrorCode::kUnknownTenant:
    case ErrorCode::kUnknownGraft:
    case ErrorCode::kRejected:
    case ErrorCode::kFault:
    case ErrorCode::kAdminDenied:
      return false;
  }
  return false;
}

int RemainingMs(SteadyClock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - SteadyClock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(std::min<std::int64_t>(left.count(), 60000));
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(options), rng_state_(options.seed ^ 0x9E3779B97F4A7C15ull) {}

Client::~Client() { CloseSocket(); }

std::uint64_t Client::Rand() {
  // splitmix64: tiny, seedable, good enough for jitter and id draws.
  std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Client::NextId() { return Rand(); }

void Client::CloseSocket() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  // A dead transport may have poisoned or half-filled the decoder; the
  // next connection starts from a clean stream.
  decoder_ = FrameDecoder{};
}

bool Client::EnsureConnected() {
  if (fd_ >= 0) {
    return true;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    close(fd);
    return false;
  }
  // Bounded non-blocking connect: writable means settled, SO_ERROR says how.
  pollfd pfd{fd, POLLOUT, 0};
  const auto deadline = SteadyClock::now() + options_.attempt_timeout;
  for (;;) {
    const int n = poll(&pfd, 1, std::max(1, RemainingMs(deadline)));
    if (n > 0) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    close(fd);
    return false;  // timeout or poll failure
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    close(fd);
    return false;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (ever_connected_) {
    ++stats_.reconnects;
  }
  ever_connected_ = true;
  fd_ = fd;
  return true;
}

bool Client::Attempt(std::uint32_t wire_graft, const std::uint8_t* payload, std::size_t len,
                     std::uint64_t request_id, SteadyClock::time_point deadline,
                     Result& result) {
  std::vector<std::uint8_t> frame;
  if (options_.send_deadline) {
    // The remaining attempt budget rides the wire: once this client stops
    // waiting, the server has no reason to run the body.
    const auto left =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - SteadyClock::now());
    const std::uint64_t deadline_us =
        left.count() <= 0 ? 1 : static_cast<std::uint64_t>(left.count());
    AppendRequestDeadline(frame, options_.tenant, wire_graft, request_id, deadline_us, payload,
                          len);
  } else {
    AppendRequest(frame, options_.tenant, wire_graft, request_id, payload, len);
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int remaining = RemainingMs(deadline);
      if (remaining == 0) {
        result.timed_out = true;  // could not even hand the kernel the frame
        return true;
      }
      const int n = poll(&pfd, 1, remaining);
      if (n < 0 && errno != EINTR) {
        return false;
      }
      continue;
    }
    return false;  // hard send failure: transport is gone
  }
  // Reply wait: poll-bounded reads, skipping stale frames from abandoned
  // earlier calls (their ids differ; this call's retries share one id).
  std::uint8_t buf[4096];
  FrameDecoder::Frame reply;
  for (;;) {
    for (;;) {
      const FrameDecoder::Result r = decoder_.Next(reply);
      if (r == FrameDecoder::Result::kError) {
        return false;  // desynced stream: reconnect is the only recovery
      }
      if (r == FrameDecoder::Result::kNeedMore) {
        break;
      }
      if (reply.header.type == FrameType::kRequest ||
          reply.header.request_id != request_id) {
        continue;  // structurally valid noise or a stale reply
      }
      if (reply.header.type == FrameType::kResponse) {
        result.ok = true;
        result.error = ErrorCode::kNone;
        std::copy_n(reply.payload.data(),
                    std::min(reply.payload.size(), result.digest.size()),
                    result.digest.begin());
        return true;
      }
      result.ok = false;
      result.error = reply.payload.size() >= 2
                         ? static_cast<ErrorCode>(
                               static_cast<std::uint16_t>(reply.payload[0]) |
                               (static_cast<std::uint16_t>(reply.payload[1]) << 8))
                         : ErrorCode::kFault;
      return true;
    }
    const int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      result.timed_out = true;
      return true;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int n = poll(&pfd, 1, remaining);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      result.timed_out = true;
      return true;
    }
    const ssize_t r = recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      decoder_.Feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) {
      return false;  // server closed mid-call
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    return false;
  }
}

bool Client::AdminScrape(std::uint8_t format, std::string& out) {
  if (!EnsureConnected()) {
    return false;
  }
  const std::uint64_t request_id = NextId();
  std::vector<std::uint8_t> frame;
  AppendAdminRequest(frame, options_.tenant, request_id, format);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      poll(&pfd, 1, 10);
      continue;
    }
    CloseSocket();
    return false;
  }
  const auto deadline = SteadyClock::now() + options_.attempt_timeout;
  std::uint8_t buf[4096];
  FrameDecoder::Frame reply;
  for (;;) {
    for (;;) {
      const FrameDecoder::Result r = decoder_.Next(reply);
      if (r == FrameDecoder::Result::kError) {
        CloseSocket();
        return false;
      }
      if (r == FrameDecoder::Result::kNeedMore) {
        break;
      }
      if (reply.header.request_id != request_id) {
        continue;  // a stale reply from an abandoned earlier call
      }
      if (reply.header.type != FrameType::kAdminMetrics) {
        return false;  // kAdminDenied (or another error answer)
      }
      out.assign(reinterpret_cast<const char*>(reply.payload.data()), reply.payload.size());
      return true;
    }
    const int remaining = RemainingMs(deadline);
    if (remaining == 0) {
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int n = poll(&pfd, 1, remaining);
    if (n < 0 && errno != EINTR) {
      CloseSocket();
      return false;
    }
    if (n <= 0) {
      continue;
    }
    const ssize_t r = recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      decoder_.Feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0 || (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)) {
      CloseSocket();
      return false;
    }
  }
}

Client::Result Client::Call(std::uint32_t wire_graft, const std::uint8_t* payload,
                            std::size_t len) {
  ++stats_.calls;
  Result result;
  // One id for the whole call: every retry is the SAME request to the
  // server's dedup window, so the body runs at most once even when only
  // the reply was lost.
  const std::uint64_t request_id = NextId();
  ErrorCode last_transient = ErrorCode::kNone;
  for (std::uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // Exponential backoff, seeded jitter in [1/2, 1) of the full value —
      // retries from a fleet of clients spread instead of thundering.
      std::int64_t full = options_.backoff_base.count();
      for (std::uint32_t i = 1; i < attempt && full < options_.backoff_max.count(); ++i) {
        full *= 2;
      }
      full = std::min<std::int64_t>(full, options_.backoff_max.count());
      const std::int64_t half = std::max<std::int64_t>(1, full / 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          half + static_cast<std::int64_t>(Rand() % static_cast<std::uint64_t>(half + 1))));
    }
    ++result.attempts;
    result.ok = false;
    result.timed_out = false;
    result.error = ErrorCode::kNone;
    if (!EnsureConnected()) {
      continue;  // dial failed; backoff and try again
    }
    const auto deadline = SteadyClock::now() + options_.attempt_timeout;
    if (!Attempt(wire_graft, payload, len, request_id, deadline, result)) {
      CloseSocket();  // transport died: next attempt reconnects
      continue;
    }
    if (result.timed_out) {
      // Pure timeout: keep the connection — the reply may still be in
      // flight, and the retry's dedup hit will pick up its outcome.
      ++stats_.timeouts;
      continue;
    }
    if (result.ok || !IsTransient(result.error)) {
      return result;  // success, or a terminal error retrying cannot fix
    }
    ++stats_.shed_retries;
    last_transient = result.error;
  }
  // Retries exhausted. A shed code is the server's most recent answer;
  // with no server answer at all (timeouts, dead transports, failed
  // dials) the call simply timed out. Exactly one outcome either way.
  result.ok = false;
  result.timed_out = last_transient == ErrorCode::kNone;
  result.error = last_transient;
  return result;
}

}  // namespace netfront
