// Per-tenant admission controls: a DRR weight (how the staged backlog is
// drained under contention) and a token-bucket rate limit (how fast a
// tenant may submit at all).
//
// The bucket is shared by every IO thread serving the tenant, so it is
// atomic and deliberately approximate: refill races can momentarily
// under- or over-credit by one refill interval, which is noise against
// the rates it polices. No locks on the per-request path.

#ifndef GRAFTLAB_SRC_NETFRONT_TENANT_H_
#define GRAFTLAB_SRC_NETFRONT_TENANT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace netfront {

struct TenantConfig {
  std::string name = "default";
  // Deficit-weighted-round-robin share: under saturation a tenant with
  // weight 10 completes ~10x the requests of a tenant with weight 1.
  std::uint64_t weight = 1;
  // Token-bucket rate in requests/second; 0 disables the quota.
  double rate_per_sec = 0.0;
  // Bucket capacity (burst); 0 defaults to one second of rate.
  double burst = 0.0;
  // May issue kAdminMetrics scrape frames (ServerOptions::admin_metrics).
  // Admin frames from non-admin tenants are answered with kAdminDenied.
  bool admin = false;
  // SLO target for this tenant's wire-to-reply p99 latency in
  // microseconds; 0 = unwatched. Feeds the obslab SLO watchdog through
  // ServerOptions::obs_latency.
  double slo_p99_us = 0.0;
};

class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec),
        burst_milli_(static_cast<std::int64_t>(
            (burst > 0 ? burst : rate_per_sec) * 1000.0)),
        tokens_milli_(burst_milli_) {}

  // Takes one token; false means the quota is exhausted. `now_ns` comes
  // from the caller so tests can drive time.
  bool TryTake(std::uint64_t now_ns) {
    if (rate_per_sec_ <= 0.0) {
      return true;
    }
    Refill(now_ns);
    std::int64_t prev = tokens_milli_.fetch_sub(1000, std::memory_order_relaxed);
    if (prev < 1000) {
      tokens_milli_.fetch_add(1000, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

 private:
  void Refill(std::uint64_t now_ns) {
    std::uint64_t last = last_refill_ns_.load(std::memory_order_relaxed);
    if (now_ns <= last) {
      return;
    }
    // One thread wins the CAS and credits the elapsed interval; losers
    // just take from whatever is there.
    if (!last_refill_ns_.compare_exchange_strong(last, now_ns, std::memory_order_relaxed)) {
      return;
    }
    const double elapsed_s = static_cast<double>(now_ns - (last == 0 ? now_ns : last)) / 1e9;
    const std::int64_t add_milli = static_cast<std::int64_t>(elapsed_s * rate_per_sec_ * 1000.0);
    if (add_milli <= 0) {
      return;
    }
    const std::int64_t after = tokens_milli_.fetch_add(add_milli, std::memory_order_relaxed) +
                               add_milli;
    if (after > burst_milli_) {
      // Clamp overshoot. Racy against concurrent takers, but the error is
      // bounded by one refill and only ever in the tenant's favor.
      tokens_milli_.store(burst_milli_, std::memory_order_relaxed);
    }
  }

  const double rate_per_sec_;
  const std::int64_t burst_milli_;
  std::atomic<std::int64_t> tokens_milli_;
  std::atomic<std::uint64_t> last_refill_ns_{0};
};

}  // namespace netfront

#endif  // GRAFTLAB_SRC_NETFRONT_TENANT_H_
