#include "src/netfront/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace netfront {

namespace {

// epoll_data tag: fd kind in the high half, connection slot in the low.
constexpr std::uint64_t kKindListener = 1;
constexpr std::uint64_t kKindEventFd = 2;
constexpr std::uint64_t kKindConn = 3;

std::uint64_t Tag(std::uint64_t kind, std::size_t slot) {
  return (kind << 32) | static_cast<std::uint32_t>(slot);
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

ErrorCode ErrorCodeFor(graftd::CompletionStatus status) {
  switch (status) {
    case graftd::CompletionStatus::kOk:
      return ErrorCode::kNone;
    case graftd::CompletionStatus::kRejectedQuarantined:
    case graftd::CompletionStatus::kRejectedDetached:
      return ErrorCode::kRejected;
    case graftd::CompletionStatus::kRejectedDegraded:
      return ErrorCode::kShedDegraded;
    case graftd::CompletionStatus::kExpired:
      return ErrorCode::kExpired;
    case graftd::CompletionStatus::kFault:
    case graftd::CompletionStatus::kPreempt:
    case graftd::CompletionStatus::kDiskFault:
      return ErrorCode::kFault;
  }
  return ErrorCode::kFault;
}

}  // namespace

Server::Server(graftd::Dispatcher& dispatcher, ServerOptions options)
    : dispatcher_(dispatcher), options_(std::move(options)) {
  std::vector<TenantConfig> configs = options_.tenants;
  if (configs.empty()) {
    configs.emplace_back();
  }
  for (const TenantConfig& config : configs) {
    auto state = std::make_unique<TenantState>();
    state->config = config;
    state->bucket = std::make_unique<TokenBucket>(config.rate_per_sec, config.burst);
    tenants_.push_back(std::move(state));
  }
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.io_threads); ++i) {
    io_threads_.push_back(std::make_unique<IoThread>());
  }
}

Server::~Server() { Stop(); }

std::uint32_t Server::ExposeGraft(graftd::GraftId id) {
  wire_grafts_.push_back(id);
  return static_cast<std::uint32_t>(wire_grafts_.size() - 1);
}

bool Server::ListenTcp(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 1024) != 0) {
    close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return true;
}

void Server::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (options_.tracer != nullptr) {
    site_decode_ = options_.tracer->Intern("nf:decode");
    site_drain_ = options_.tracer->Intern("nf:drain");
    site_encode_ = options_.tracer->Intern("nf:encode");
    site_flush_ = options_.tracer->Intern("nf:flush");
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < io_threads_.size(); ++i) {
    IoThread& io = *io_threads_[i];
    io.index = i;
    io.epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    io.event_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = Tag(kKindEventFd, 0);
    epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, io.event_fd, &ev);
    if (listen_fd_ >= 0) {
      epoll_event lev{};
      lev.events = EPOLLIN | EPOLLEXCLUSIVE;
      lev.data.u64 = Tag(kKindListener, 0);
      epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    io.staged.resize(tenants_.size());
    io.credit.assign(tenants_.size(), 0);
  }
  for (std::size_t i = 0; i < io_threads_.size(); ++i) {
    io_threads_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
}

bool Server::AddConnection(int fd) {
  if (!running_.load(std::memory_order_acquire)) {
    return false;
  }
  // Skip IO threads an injected crash has killed; at least one stays alive
  // (CrashIoThread refuses to kill the last one).
  for (std::size_t attempt = 0; attempt < io_threads_.size(); ++attempt) {
    const std::size_t index =
        next_io_.fetch_add(1, std::memory_order_relaxed) % io_threads_.size();
    IoThread& io = *io_threads_[index];
    {
      std::lock_guard<std::mutex> lock(io.inbox_mu);
      if (io.dead.load(std::memory_order_relaxed)) {
        continue;
      }
      io.adopted_fds.push_back(fd);
    }
    Wake(io);
    return true;
  }
  return false;
}

void Server::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  // Phase 1: drain. IO threads keep flushing staged work and completions;
  // new requests are shed at admission (draining_ check). Bounded wait —
  // a jammed dispatcher must not wedge shutdown.
  draining_.store(true, std::memory_order_release);
  for (auto& io : io_threads_) {
    Wake(*io);
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    std::size_t staged = 0;
    for (auto& io : io_threads_) {
      staged += io->staged_total.load(std::memory_order_relaxed);
    }
    if (staged == 0 && in_flight_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every accepted invocation's on_complete fires before Drain() returns,
  // so after this no new completion can race the teardown below.
  dispatcher_.Drain();
  running_.store(false, std::memory_order_release);
  for (auto& io : io_threads_) {
    Wake(*io);
  }
  for (auto& io : io_threads_) {
    if (io->thread.joinable()) {
      io->thread.join();
    }
  }
  // Single-threaded teardown: orphaned completions (their IO thread exited
  // before encoding the reply), never-submitted staged requests, sockets.
  for (auto& io : io_threads_) {
    for (CompletionRecord& record : io->completions) {
      delete record.request;
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    io->completions.clear();
    for (int fd : io->adopted_fds) {
      close(fd);
    }
    io->adopted_fds.clear();
    for (auto& conn : io->adopted_conns) {
      close(conn->fd);
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    io->adopted_conns.clear();
    for (auto& deque : io->staged) {
      for (StagedRequest& staged : deque) {
        delete staged.request;
      }
      deque.clear();
    }
    io->staged_total.store(0, std::memory_order_relaxed);
    for (auto& conn : io->conns) {
      if (conn) {
        close(conn->fd);
        connections_closed_.fetch_add(1, std::memory_order_relaxed);
        conn.reset();
      }
    }
    if (io->event_fd >= 0) {
      close(io->event_fd);
      io->event_fd = -1;
    }
    if (io->epoll_fd >= 0) {
      close(io->epoll_fd);
      io->epoll_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::FillTelemetry(graftd::NetfrontSection& section) const {
  section.present = true;
  section.connections_opened = connections_opened_.load(std::memory_order_relaxed);
  section.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  section.connections_active = section.connections_opened - section.connections_closed;
  section.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  section.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  section.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  section.read_pauses = read_pauses_.load(std::memory_order_relaxed);
  section.slow_reader_closes = slow_reader_closes_.load(std::memory_order_relaxed);
  section.io_thread_crashes = io_thread_crashes_.load(std::memory_order_relaxed);
  section.conns_adopted = conns_adopted_.load(std::memory_order_relaxed);
  section.crash_orphans = crash_orphans_.load(std::memory_order_relaxed);
  section.tenants.clear();
  for (const auto& tenant : tenants_) {
    graftd::NetfrontSection::TenantRow row;
    row.name = tenant->config.name;
    row.weight = tenant->config.weight;
    row.accepted = tenant->accepted.load(std::memory_order_relaxed);
    row.completed_ok = tenant->completed_ok.load(std::memory_order_relaxed);
    row.completed_error = tenant->completed_error.load(std::memory_order_relaxed);
    row.shed_degraded = tenant->shed_degraded.load(std::memory_order_relaxed);
    row.shed_overload = tenant->shed_overload.load(std::memory_order_relaxed);
    row.quota_rejected = tenant->quota_rejected.load(std::memory_order_relaxed);
    row.breaker_open = tenant->breaker_open.load(std::memory_order_relaxed);
    row.retries_deduped = tenant->retries_deduped.load(std::memory_order_relaxed);
    section.tenants.push_back(std::move(row));
  }
  section.io_threads.clear();
  for (std::size_t i = 0; i < io_threads_.size(); ++i) {
    const IoThread& io = *io_threads_[i];
    graftd::NetfrontSection::IoThreadRow row;
    row.thread = i;
    {
      std::lock_guard<std::mutex> lock(io.stats_mu);
      row.decoded_frames = io.decoded_frames;
      row.submit_batches = io.submit_batches;
      row.submit_sizes = io.submit_sizes;
      row.wakeups = io.wakeups;
    }
    section.io_threads.push_back(std::move(row));
  }
}

void Server::IoLoop(std::size_t index) {
  IoThread& io = *io_threads_[index];
  // Profiler attribution: SIGPROF samples landing on an IO thread charge
  // to the front end's "net" stage (no graft) for the thread's lifetime.
  const tracelab::ScopedProfSlot prof_net(0, tracelab::ProfStage::kNet);
  std::vector<std::uint8_t> rbuf(options_.read_chunk);
  std::vector<epoll_event> events(256);
  while (running_.load(std::memory_order_acquire)) {
    // Promote slots freed during the previous batch: a stale event still
    // queued for a closed slot can never alias a new connection.
    io.free_slots.insert(io.free_slots.end(), io.dead_slots.begin(), io.dead_slots.end());
    io.dead_slots.clear();
    if (options_.injector != nullptr) {
      if (auto fault = options_.injector->Hit("netfront/io_thread");
          fault && fault->kind == faultlab::FaultKind::kCrash && CrashIoThread(io)) {
        return;  // simulated IO-thread death; survivors adopted everything
      }
    }
    const int timeout_ms =
        io.staged_total.load(std::memory_order_relaxed) > 0
            ? 1
            : (draining_.load(std::memory_order_acquire) ? 5 : 100);
    const int n =
        epoll_wait(io.epoll_fd, events.data(), static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint64_t kind = tag >> 32;
      const std::size_t slot = static_cast<std::uint32_t>(tag);
      if (kind == kKindListener) {
        HandleListener(io);
        continue;
      }
      if (kind == kKindEventFd) {
        for (;;) {
          std::uint64_t drained = 0;
          const ssize_t r = read(io.event_fd, &drained, sizeof(drained));
          if (r > 0) {
            continue;  // counter swallowed; loop in case of a racing write
          }
          if (r < 0 && errno == EINTR) {
            continue;
          }
          // EAGAIN: the eventfd is drained — benign, not an error (and an
          // undrained counter would only re-report, never lose a wake).
          break;
        }
        {
          std::lock_guard<std::mutex> lock(io.stats_mu);
          ++io.wakeups;
        }
        continue;  // inboxes drain at the loop bottom either way
      }
      if (slot >= io.conns.size() || !io.conns[slot]) {
        continue;  // closed earlier in this batch
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(io, slot);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        HandleWritable(io, slot);
      }
      if (io.conns[slot] && (events[i].events & EPOLLIN) != 0) {
        HandleReadable(io, slot, rbuf);
      }
    }
    // Drained every pass, not just on eventfd wake: a lost wake (injected
    // or a kernel-coalesced one) delays work by at most the epoll timeout.
    AdoptInbox(io);
    ProcessCompletions(io);
    DrainStaged(io);
  }
}

void Server::HandleListener(IoThread& io) {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or a transient accept error; epoll re-reports
    }
    InstallConn(io, fd);
  }
}

std::size_t Server::InstallConn(IoThread& io, int fd) {
  SetNonBlocking(fd);
  const int one = 1;
  // Best effort: fails harmlessly on non-TCP fds (socketpair tests).
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::size_t slot;
  if (!io.free_slots.empty()) {
    slot = io.free_slots.back();
    io.free_slots.pop_back();
  } else {
    slot = io.conns.size();
    io.conns.emplace_back();
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->gen = connections_opened_.fetch_add(1, std::memory_order_relaxed) + 1;
  io.conns[slot] = std::move(conn);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = Tag(kKindConn, slot);
  epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  return slot;
}

void Server::AdoptInbox(IoThread& io) {
  std::vector<int> fds;
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    fds.swap(io.adopted_fds);
    conns.swap(io.adopted_conns);
  }
  for (int fd : fds) {
    InstallConn(io, fd);
  }
  for (auto& conn : conns) {
    InstallAdopted(io, std::move(conn));
  }
}

std::size_t Server::InstallAdopted(IoThread& io, std::unique_ptr<Conn> conn) {
  std::size_t slot;
  if (!io.free_slots.empty()) {
    slot = io.free_slots.back();
    io.free_slots.pop_back();
  } else {
    slot = io.conns.size();
    io.conns.emplace_back();
  }
  // The connection keeps its generation, decoder state and write buffer;
  // only the epoll registration moves. Replies to requests the dead thread
  // submitted still route by the *old* (io_thread, slot, gen) triple and
  // are accounted as orphans — the client's retry replays them from the
  // dedup window.
  const int fd = conn->fd;
  conn->want_write = conn->out_pos < conn->out.size();
  epoll_event ev{};
  ev.events = (conn->read_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = Tag(kKindConn, slot);
  io.conns[slot] = std::move(conn);
  epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  return slot;
}

void Server::HandleReadable(IoThread& io, std::size_t slot, std::vector<std::uint8_t>& buf) {
  bool torn_read = false;
  bool torn_frames = false;
  if (options_.injector != nullptr) {
    if (auto fault = options_.injector->Hit("netfront/read")) {
      switch (fault->kind) {
        case faultlab::FaultKind::kTransientError:
        case faultlab::FaultKind::kCrash:
          // Injected connection reset: the peer sees a mid-stream close.
          CloseConn(io, slot);
          return;
        case faultlab::FaultKind::kLatencySpike:
          // Read stall: this IO thread blocks, so every connection it owns
          // lags — the whole-thread blast radius is the point.
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<std::int64_t>(fault->param)));
          break;
        case faultlab::FaultKind::kTornWrite:
          torn_read = true;  // deliver a single byte this pass
          break;
      }
    }
    if (auto fault = options_.injector->Hit("netfront/frame");
        fault && fault->kind == faultlab::FaultKind::kTornWrite) {
      // The decoder sees every byte boundary of this chunk — the
      // incremental-parse sweep the proto tests do, but live on a socket.
      torn_frames = true;
    }
  }
  for (;;) {
    Conn* conn = io.conns[slot].get();
    if (!conn || conn->read_paused) {
      return;
    }
    const std::size_t want = torn_read ? 1 : buf.size();
    const ssize_t r = recv(conn->fd, buf.data(), want, 0);
    if (r > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(r), std::memory_order_relaxed);
      if (torn_frames) {
        for (ssize_t i = 0; i < r; ++i) {
          conn->decoder.Feed(buf.data() + static_cast<std::size_t>(i), 1);
          if (!DecodeFrames(io, slot)) {
            return;  // connection closed mid-sweep
          }
        }
      } else {
        conn->decoder.Feed(buf.data(), static_cast<std::size_t>(r));
        if (!DecodeFrames(io, slot)) {
          return;  // connection closed (hostile frame or slow-reader cap)
        }
      }
      if (static_cast<std::size_t>(r) < want || torn_read) {
        return;  // short read: socket drained (torn: one byte was the ration)
      }
      continue;
    }
    if (r == 0) {
      CloseConn(io, slot);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;  // drained; epoll re-reports when more arrives
    }
    if (errno == EINTR) {
      continue;  // interrupted before any bytes moved: retry
    }
    CloseConn(io, slot);
    return;
  }
}

bool Server::DecodeFrames(IoThread& io, std::size_t slot) {
  Conn* conn = io.conns[slot].get();
  const bool traced = options_.tracer != nullptr && options_.tracer->enabled();
  const std::uint64_t t0 = traced ? options_.tracer->NowNs() : 0;
  std::uint64_t decoded = 0;
  FrameDecoder::Frame frame;
  for (;;) {
    const FrameDecoder::Result result = conn->decoder.Next(frame);
    if (result == FrameDecoder::Result::kNeedMore) {
      break;
    }
    if (result == FrameDecoder::Result::kError) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(io, slot);
      return false;
    }
    ++decoded;
    if (frame.header.type == FrameType::kRequest) {
      AdmitRequest(io, slot, frame);
    } else if (frame.header.type == FrameType::kAdminMetrics) {
      // Scrapes are answered inline, before quota and staging: read-only,
      // and they must work precisely when the admission path is shedding.
      HandleAdmin(io, slot, frame);
    }
    // Other non-request frames from a client are structurally valid noise;
    // decode past them rather than desyncing the stream.
  }
  if (decoded > 0) {
    std::lock_guard<std::mutex> lock(io.stats_mu);
    io.decoded_frames += decoded;
  }
  if (traced && decoded > 0) {
    options_.tracer->Complete(site_decode_, t0, options_.tracer->NowNs() - t0,
                              options_.tracer->NextTraceId());
  }
  FlushConn(io, slot);  // shed replies accumulated during admission
  return io.conns[slot] != nullptr;
}

void Server::HandleAdmin(IoThread& io, std::size_t slot, const FrameDecoder::Frame& frame) {
  Conn* conn = io.conns[slot].get();
  const FrameHeader& header = frame.header;
  if (header.tenant >= tenants_.size() || !tenants_[header.tenant]->config.admin ||
      !options_.admin_metrics) {
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kAdminDenied);
    return;
  }
  const std::uint8_t format = frame.payload.empty() ? 0 : frame.payload[0];
  std::string body = options_.admin_metrics(format);
  if (body.size() > kMaxPayload) {
    body.resize(kMaxPayload);  // a truncated scrape beats a poisoned stream
  }
  AppendAdminMetrics(conn->out, header.tenant, header.request_id,
                     reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
}

void Server::AdmitRequest(IoThread& io, std::size_t slot, FrameDecoder::Frame& frame) {
  Conn* conn = io.conns[slot].get();
  const FrameHeader& header = frame.header;
  if (header.tenant >= tenants_.size()) {
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kUnknownTenant);
    return;
  }
  TenantState& tenant = *tenants_[header.tenant];
  if (header.graft >= wire_grafts_.size()) {
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kUnknownGraft);
    return;
  }
  const graftd::GraftId graft = wire_grafts_[header.graft];
  // Duplicate of a request already seen (a client retry): answer from the
  // dedup window — before quota, so a replay never burns tokens.
  if (DedupCheck(conn, header)) {
    return;
  }
  // Degraded grafts shed at the front door: the request never touches a
  // queue, and the client learns immediately that the device is failing.
  if (draining_.load(std::memory_order_acquire)) {
    tenant.shed_overload.fetch_add(1, std::memory_order_relaxed);
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kShedOverload);
    return;
  }
  if (dispatcher_.supervisor().state(graft) == graftd::GraftState::kDegraded) {
    tenant.shed_degraded.fetch_add(1, std::memory_order_relaxed);
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kShedDegraded);
    return;
  }
  // Circuit breaker: a graft that keeps faulting is shed here, at the
  // socket, instead of riding the lanes to a worker that will reject it.
  if (!dispatcher_.supervisor().BreakerAdmit(graft)) {
    tenant.breaker_open.fetch_add(1, std::memory_order_relaxed);
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kBreakerOpen);
    return;
  }
  if (!tenant.bucket->TryTake(SteadyNowNs())) {
    tenant.quota_rejected.fetch_add(1, std::memory_order_relaxed);
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kQuotaExceeded);
    return;
  }
  if (io.staged[header.tenant].size() >= options_.staging_high) {
    tenant.shed_overload.fetch_add(1, std::memory_order_relaxed);
    AppendError(conn->out, header.tenant, header.graft, header.request_id,
                ErrorCode::kShedOverload);
    return;
  }
  auto* request = new PendingRequest;
  request->tenant = header.tenant;
  request->wire_graft = header.graft;
  request->request_id = header.request_id;
  request->io_thread = io.index;
  request->conn_slot = slot;
  request->conn_gen = conn->gen;
  // The wire deadline is relative to receipt (no clock sync with the
  // peer); stamp it absolute on the dispatcher clock here so expiry means
  // the same thing in the staging deque, the lanes, and the worker.
  request->deadline_ns =
      header.deadline_us == 0 ? 0 : dispatcher_.NowNs() + header.deadline_us * 1000;
  request->payload = std::move(frame.payload);
  DedupStage(header.tenant, header.request_id);
  ++conn->in_flight;
  io.staged[header.tenant].push_back(StagedRequest{request, graft});
  io.staged_total.fetch_add(1, std::memory_order_relaxed);
}

bool Server::DedupCheck(Conn* conn, const FrameHeader& header) {
  if (options_.dedup_window == 0) {
    return false;
  }
  TenantState& tenant = *tenants_[header.tenant];
  std::lock_guard<std::mutex> lock(tenant.dedup_mu);
  const auto it = tenant.dedup.find(header.request_id);
  if (it == tenant.dedup.end()) {
    return false;
  }
  if (it->second.done) {
    // Exactly-once-visible: replay the stored outcome; the graft body does
    // not run again.
    if (it->second.status == graftd::CompletionStatus::kOk) {
      AppendResponse(conn->out, header.tenant, header.graft, header.request_id,
                     it->second.digest.data());
    } else {
      AppendError(conn->out, header.tenant, header.graft, header.request_id,
                  ErrorCodeFor(it->second.status));
    }
  }
  // Not done: the original attempt is still in flight — swallow the retry;
  // its reply (or the client's next timeout) covers it.
  tenant.retries_deduped.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Server::DedupStage(std::uint16_t tenant_id, std::uint64_t request_id) {
  if (options_.dedup_window == 0) {
    return;
  }
  TenantState& tenant = *tenants_[tenant_id];
  std::lock_guard<std::mutex> lock(tenant.dedup_mu);
  const auto [it, inserted] = tenant.dedup.emplace(request_id, TenantState::DedupEntry{});
  if (!inserted) {
    return;  // already windowed (racing duplicate admitted on another thread)
  }
  tenant.dedup_order.push_back(request_id);
  while (tenant.dedup_order.size() > options_.dedup_window) {
    // FIFO eviction; erase tolerates ids DedupForget already removed.
    tenant.dedup.erase(tenant.dedup_order.front());
    tenant.dedup_order.pop_front();
  }
}

void Server::DedupResolve(std::uint16_t tenant_id, std::uint64_t request_id,
                          const graftd::Completion& completion) {
  if (options_.dedup_window == 0) {
    return;
  }
  TenantState& tenant = *tenants_[tenant_id];
  std::lock_guard<std::mutex> lock(tenant.dedup_mu);
  const auto it = tenant.dedup.find(request_id);
  if (it == tenant.dedup.end()) {
    return;  // evicted while in flight; a very late retry re-executes
  }
  it->second.done = true;
  it->second.status = completion.status;
  std::copy_n(completion.digest.data(), it->second.digest.size(), it->second.digest.begin());
}

void Server::DedupForget(std::uint16_t tenant_id, std::uint64_t request_id) {
  if (options_.dedup_window == 0) {
    return;
  }
  TenantState& tenant = *tenants_[tenant_id];
  std::lock_guard<std::mutex> lock(tenant.dedup_mu);
  const auto it = tenant.dedup.find(request_id);
  if (it != tenant.dedup.end() && !it->second.done) {
    tenant.dedup.erase(it);  // its id may linger in dedup_order; eviction copes
  }
}

void Server::DrainStaged(IoThread& io) {
  if (io.staged_total.load(std::memory_order_relaxed) == 0) {
    return;
  }
  const bool traced = options_.tracer != nullptr && options_.tracer->enabled();
  const std::uint64_t t0 = traced ? options_.tracer->NowNs() : 0;
  const std::size_t tenant_count = tenants_.size();
  // Deficit refresh: only once every backlogged tenant has spent its
  // credit. A lane-full interruption leaves credits (and therefore the
  // weight ratio) intact for the next pass.
  bool any_credit = false;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    if (!io.staged[t].empty() && io.credit[t] > 0) {
      any_credit = true;
      break;
    }
  }
  if (!any_credit) {
    for (std::size_t t = 0; t < tenant_count; ++t) {
      io.credit[t] =
          io.staged[t].empty()
              ? 0
              : static_cast<std::int64_t>(options_.drr_quantum * tenants_[t]->config.weight);
    }
  }
  std::uint64_t submitted = 0;
  std::vector<graftd::Invocation> chunk;
  for (std::size_t offset = 0; offset < tenant_count; ++offset) {
    const std::size_t t = (io.drr_start + offset) % tenant_count;
    auto& deque = io.staged[t];
    while (io.credit[t] > 0 && !deque.empty()) {
      const std::size_t want =
          std::min({options_.submit_chunk, static_cast<std::size_t>(io.credit[t]), deque.size()});
      chunk.clear();
      chunk.reserve(want);
      for (std::size_t i = 0; i < want; ++i) {
        PendingRequest* request = deque[i].request;
        graftd::Invocation invocation;
        invocation.graft = deque[i].graft;
        invocation.deadline_ns = request->deadline_ns;
        invocation.data = streamk::Bytes(request->payload.data(), request->payload.size());
        invocation.on_complete = [this, request](const graftd::Completion& completion) {
          OnCompletion(request, completion);
        };
        chunk.push_back(std::move(invocation));
      }
      const std::size_t accepted = dispatcher_.TrySubmitBatch(chunk);
      if (accepted > 0) {
        deque.erase(deque.begin(), deque.begin() + static_cast<std::ptrdiff_t>(accepted));
        io.staged_total.fetch_sub(accepted, std::memory_order_relaxed);
        io.credit[t] -= static_cast<std::int64_t>(accepted);
        in_flight_.fetch_add(accepted, std::memory_order_release);
        tenants_[t]->accepted.fetch_add(accepted, std::memory_order_relaxed);
        submitted += accepted;
        std::lock_guard<std::mutex> lock(io.stats_mu);
        ++io.submit_batches;
        io.submit_sizes.Record(accepted);
      }
      if (accepted < want) {
        // Lanes full: stop draining entirely and resume here next pass,
        // with every tenant's remaining credit untouched.
        io.drr_start = t;
        if (traced && submitted > 0) {
          options_.tracer->Complete(site_drain_, t0, options_.tracer->NowNs() - t0,
                                    options_.tracer->NextTraceId());
        }
        return;
      }
    }
  }
  io.drr_start = (io.drr_start + 1) % tenant_count;
  if (traced && submitted > 0) {
    options_.tracer->Complete(site_drain_, t0, options_.tracer->NowNs() - t0,
                              options_.tracer->NextTraceId());
  }
}

void Server::OnCompletion(PendingRequest* request, const graftd::Completion& completion) {
  IoThread& io = *io_threads_[request->io_thread];
  bool was_empty = false;
  bool delivered = false;
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    if (!io.dead.load(std::memory_order_relaxed)) {
      was_empty = io.completions.empty();
      io.completions.push_back(CompletionRecord{request, completion});
      delivered = true;
    }
  }
  if (!delivered) {
    // The owning IO thread crashed: there is no socket to reply on, but
    // the outcome still counts (drain invariants) and lands in the dedup
    // window so the client's retry replays it instead of re-executing.
    CompletionRecord record{request, completion};
    AccountOrphan(record);
    return;
  }
  if (was_empty) {
    Wake(io);
  }
}

void Server::AccountOrphan(CompletionRecord& record) {
  PendingRequest* request = record.request;
  TenantState& tenant = *tenants_[request->tenant];
  if (record.completion.status == graftd::CompletionStatus::kOk) {
    tenant.completed_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    tenant.completed_error.fetch_add(1, std::memory_order_relaxed);
  }
  DedupResolve(request->tenant, request->request_id, record.completion);
  if (options_.obs_latency && record.completion.status == graftd::CompletionStatus::kOk) {
    options_.obs_latency(request->tenant, record.completion.elapsed_ns);
  }
  delete request;
  in_flight_.fetch_sub(1, std::memory_order_release);
}

bool Server::CrashIoThread(IoThread& io) {
  // One crash at a time: two threads crashing concurrently could each pick
  // the other as survivor and strand every connection on a corpse.
  std::lock_guard<std::mutex> crash_lock(crash_mu_);
  std::vector<IoThread*> survivors;
  for (auto& other : io_threads_) {
    if (other.get() != &io && !other->dead.load(std::memory_order_acquire)) {
      survivors.push_back(other.get());
    }
  }
  if (survivors.empty()) {
    return false;  // never kill the last IO thread
  }
  io_thread_crashes_.fetch_add(1, std::memory_order_relaxed);
  if (options_.obs_event) {
    options_.obs_event("io_thread_crash");
  }
  // From here OnCompletion and AddConnection route around this thread.
  std::vector<CompletionRecord> completions;
  std::vector<int> fds;
  std::vector<std::unique_ptr<Conn>> inherited;
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    io.dead.store(true, std::memory_order_release);
    completions.swap(io.completions);
    fds.swap(io.adopted_fds);
    inherited.swap(io.adopted_conns);
  }
  // Replies already in the inbox die with the thread; account them so
  // accepted == completed after drain, and publish the outcome for replay.
  for (CompletionRecord& record : completions) {
    AccountOrphan(record);
  }
  // Staged-but-unsubmitted requests are simply lost. Forget their pending
  // dedup markers so the client's retry is admitted as a fresh attempt
  // rather than swallowed forever.
  std::uint64_t orphans = 0;
  for (auto& deque : io.staged) {
    for (StagedRequest& staged : deque) {
      DedupForget(staged.request->tenant, staged.request->request_id);
      delete staged.request;
      ++orphans;
    }
    deque.clear();
  }
  io.staged_total.store(0, std::memory_order_relaxed);
  crash_orphans_.fetch_add(orphans, std::memory_order_relaxed);
  // Hand every live connection — decoder state, unflushed replies,
  // generation — to the survivors. Generations are globally unique, so a
  // migrated conn can never alias a reused survivor slot.
  std::size_t next = 0;
  std::uint64_t adopted = 0;
  const auto bequeath = [&](std::unique_ptr<Conn> conn) {
    IoThread& survivor = *survivors[next++ % survivors.size()];
    {
      std::lock_guard<std::mutex> lock(survivor.inbox_mu);
      survivor.adopted_conns.push_back(std::move(conn));
    }
    Wake(survivor);
    ++adopted;
  };
  for (auto& conn : io.conns) {
    if (!conn) {
      continue;
    }
    epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    bequeath(std::move(conn));
  }
  for (auto& conn : inherited) {
    bequeath(std::move(conn));  // adopted but never installed here
  }
  for (int fd : fds) {
    IoThread& survivor = *survivors[next++ % survivors.size()];
    {
      std::lock_guard<std::mutex> lock(survivor.inbox_mu);
      survivor.adopted_fds.push_back(fd);
    }
    Wake(survivor);
  }
  conns_adopted_.fetch_add(adopted, std::memory_order_relaxed);
  // Detach the shared listener from this epoll; accept readiness is level
  // triggered, so the surviving pollers keep getting it. The epoll and
  // event fds stay open until Stop() — closing them here could race a
  // worker's Wake() onto a recycled fd number.
  if (listen_fd_ >= 0) {
    epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
  return true;
}

void Server::ProcessCompletions(IoThread& io) {
  std::vector<CompletionRecord> records;
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    records.swap(io.completions);
  }
  if (records.empty()) {
    return;
  }
  const bool traced = options_.tracer != nullptr && options_.tracer->enabled();
  const std::uint64_t t0 = traced ? options_.tracer->NowNs() : 0;
  std::vector<std::size_t> touched;
  for (CompletionRecord& record : records) {
    PendingRequest* request = record.request;
    TenantState& tenant = *tenants_[request->tenant];
    const std::size_t slot = request->conn_slot;
    Conn* conn = slot < io.conns.size() ? io.conns[slot].get() : nullptr;
    if (conn && conn->gen == request->conn_gen) {
      if (record.completion.status == graftd::CompletionStatus::kOk) {
        AppendResponse(conn->out, request->tenant, request->wire_graft, request->request_id,
                       record.completion.digest.data());
        tenant.completed_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        AppendError(conn->out, request->tenant, request->wire_graft, request->request_id,
                    ErrorCodeFor(record.completion.status));
        tenant.completed_error.fetch_add(1, std::memory_order_relaxed);
      }
      --conn->in_flight;
      touched.push_back(slot);
    } else {
      // The connection died while the request was in flight; account the
      // completion but there is nowhere to send the reply.
      if (record.completion.status == graftd::CompletionStatus::kOk) {
        tenant.completed_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        tenant.completed_error.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Either way the outcome is published for replay: a retry after a lost
    // reply must see the stored result, not a second execution.
    DedupResolve(request->tenant, request->request_id, record.completion);
    if (options_.obs_latency && record.completion.status == graftd::CompletionStatus::kOk) {
      options_.obs_latency(request->tenant, record.completion.elapsed_ns);
    }
    delete request;
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
  if (traced) {
    options_.tracer->Complete(site_encode_, t0, options_.tracer->NowNs() - t0,
                              options_.tracer->NextTraceId());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (std::size_t slot : touched) {
    if (io.conns[slot]) {
      FlushConn(io, slot);
    }
  }
}

void Server::HandleWritable(IoThread& io, std::size_t slot) { FlushConn(io, slot); }

void Server::FlushConn(IoThread& io, std::size_t slot) {
  Conn* conn = io.conns[slot].get();
  if (!conn) {
    return;
  }
  const bool traced = options_.tracer != nullptr && options_.tracer->enabled();
  const std::uint64_t t0 = traced ? options_.tracer->NowNs() : 0;
  // How many reply bytes this pass may move; a torn-write injection caps
  // it below the backlog, leaving a short write for EPOLLOUT to resume.
  std::size_t allowance = conn->out.size() - conn->out_pos;
  if (options_.injector != nullptr && allowance > 0) {
    if (auto fault = options_.injector->Hit("netfront/write")) {
      switch (fault->kind) {
        case faultlab::FaultKind::kTransientError:
        case faultlab::FaultKind::kCrash:
          // Injected reset with replies pending: the peer loses them all.
          CloseConn(io, slot);
          return;
        case faultlab::FaultKind::kLatencySpike:
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<std::int64_t>(fault->param)));
          break;
        case faultlab::FaultKind::kTornWrite:
          // Only a `param` fraction (at least one byte) goes out — every
          // reader downstream must survive frames torn mid-header.
          allowance = std::max<std::size_t>(
              1, static_cast<std::size_t>(fault->param * static_cast<double>(allowance)));
          break;
      }
    }
  }
  std::uint64_t wrote = 0;
  while (conn->out_pos < conn->out.size() && allowance > 0) {
    const std::size_t want = std::min(conn->out.size() - conn->out_pos, allowance);
    const ssize_t w = send(conn->fd, conn->out.data() + conn->out_pos, want, MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_pos += static_cast<std::size_t>(w);
      wrote += static_cast<std::uint64_t>(w);
      allowance -= static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;  // interrupted before any bytes moved: retry
    }
    bytes_out_.fetch_add(wrote, std::memory_order_relaxed);
    CloseConn(io, slot);
    return;
  }
  bytes_out_.fetch_add(wrote, std::memory_order_relaxed);
  if (traced && wrote > 0) {
    options_.tracer->Complete(site_flush_, t0, options_.tracer->NowNs() - t0,
                              options_.tracer->NextTraceId());
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > (1u << 20)) {
    conn->out.erase(conn->out.begin(), conn->out.begin() + static_cast<std::ptrdiff_t>(conn->out_pos));
    conn->out_pos = 0;
  }
  const std::size_t backlog = conn->out.size() - conn->out_pos;
  if (backlog >= options_.write_buffer_hard) {
    slow_reader_closes_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(io, slot);
    return;
  }
  UpdateReadPause(io, slot);
}

void Server::UpdateReadPause(IoThread& io, std::size_t slot) {
  Conn* conn = io.conns[slot].get();
  if (!conn) {
    return;
  }
  const std::size_t backlog = conn->out.size() - conn->out_pos;
  const bool want_write = backlog > 0;
  // Hysteresis: pause at the high watermark, resume at half of it, so a
  // connection hovering at the boundary doesn't thrash epoll_ctl.
  bool read_paused = conn->read_paused;
  if (!read_paused && backlog >= options_.write_buffer_high) {
    read_paused = true;
    read_pauses_.fetch_add(1, std::memory_order_relaxed);
  } else if (read_paused && backlog < options_.write_buffer_high / 2) {
    read_paused = false;
  }
  if (want_write != conn->want_write || read_paused != conn->read_paused) {
    conn->want_write = want_write;
    conn->read_paused = read_paused;
    Rearm(io, slot);
  }
}

void Server::Rearm(IoThread& io, std::size_t slot) {
  Conn* conn = io.conns[slot].get();
  epoll_event ev{};
  ev.events = (conn->read_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = Tag(kKindConn, slot);
  epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConn(IoThread& io, std::size_t slot) {
  Conn* conn = io.conns[slot].get();
  if (!conn) {
    return;
  }
  epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  io.conns[slot].reset();
  io.dead_slots.push_back(slot);
}

void Server::Wake(IoThread& io) {
  if (io.event_fd < 0) {
    return;
  }
  if (options_.injector != nullptr && options_.injector->Hit("netfront/eventfd")) {
    // Lost wakeup: the eventfd write never lands. Recovery is structural —
    // every IoLoop pass (bounded by the epoll timeout) drains the inboxes
    // and staging deques whether or not a wake arrived.
    return;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t written = write(io.event_fd, &one, sizeof(one));
}

}  // namespace netfront
