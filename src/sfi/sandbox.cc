#include "src/sfi/sandbox.h"

#include <sys/mman.h>

#include <cstring>

namespace sfi {

namespace {

bool IsPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Maps a `size`-byte region aligned to `size` bytes by over-mapping and
// trimming. mmap gives page alignment only; sandbox masking requires the
// base to be a multiple of the region size.
void* MapAligned(std::size_t size) {
  const std::size_t span = size * 2;
  void* raw = ::mmap(nullptr, span, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) {
    throw std::bad_alloc();
  }
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(raw);
  const std::uintptr_t aligned = (addr + size - 1) & ~(static_cast<std::uintptr_t>(size) - 1);
  const std::size_t head = aligned - addr;
  if (head != 0) {
    ::munmap(raw, head);
  }
  const std::size_t tail = span - head - size;
  if (tail != 0) {
    ::munmap(reinterpret_cast<void*>(aligned + size), tail);
  }
  return reinterpret_cast<void*>(aligned);
}

}  // namespace

void Sandbox::Unmapper::operator()(void* p) const {
  if (p != nullptr) {
    ::munmap(p, size);
  }
}

Sandbox::Sandbox(std::size_t size) {
  if (!IsPowerOfTwo(size) || size < 4096) {
    throw std::invalid_argument("sandbox size must be a power of two >= 4096");
  }
  region_ = std::unique_ptr<void, Unmapper>(MapAligned(size), Unmapper{size});
  base_ = reinterpret_cast<std::uintptr_t>(region_.get());
  size_ = size;
  offset_mask_ = size - 1;
}

void* Sandbox::Allocate(std::size_t bytes, std::size_t align) {
  std::size_t offset = (bump_ + align - 1) & ~(align - 1);
  if (offset + bytes > size_) {
    throw std::bad_alloc();
  }
  bump_ = offset + bytes;
  return reinterpret_cast<void*>(base_ + offset);
}

}  // namespace sfi
