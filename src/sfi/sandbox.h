// Software-fault-isolation sandbox arena (Wahbe et al. [WAHBE93]).
//
// A Sandbox is a power-of-two sized, power-of-two aligned memory region.
// Because of the alignment, an arbitrary address can be forced into the
// region with two ALU operations: (addr & offset_mask) | base. This is the
// "sandboxing" transformation the paper measures via Omniware: a graft
// compiled with sandboxed stores can, at worst, overwrite its own data.
//
// The arena also provides a bump allocator so graft data structures can be
// placed inside the region, and (for tests, off the hot path) an escape
// predicate that reports whether an unmasked access would have left the
// region.

#ifndef GRAFTLAB_SRC_SFI_SANDBOX_H_
#define GRAFTLAB_SRC_SFI_SANDBOX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>

namespace sfi {

// Protection level of a sandboxed execution environment.
//
// The Omniware release the paper measured implemented write and jump
// protection only; full protection (masked loads too) is the "not available
// today" variant from the paper's conclusions, which we also implement.
enum class Protection {
  kWriteJump,  // stores and indirect jumps masked; loads run at full speed
  kFull,       // loads, stores and indirect jumps all masked
};

class Sandbox {
 public:
  // Creates an arena of `size` bytes; `size` must be a power of two and at
  // least 4096. Throws std::invalid_argument otherwise.
  explicit Sandbox(std::size_t size);

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  std::uintptr_t base() const { return base_; }
  std::size_t size() const { return size_; }
  std::uintptr_t offset_mask() const { return offset_mask_; }

  // The sandboxing transformation: forces `addr` into the region. Two ALU
  // ops, branch-free — this is the per-store cost Omniware pays.
  std::uintptr_t MaskAddress(std::uintptr_t addr) const {
    return (addr & offset_mask_) | base_;
  }

  // True if an unmasked access to [addr, addr+len) would leave the region.
  // For tests and auditing only; never on the graft hot path.
  bool WouldEscape(std::uintptr_t addr, std::size_t len) const {
    return addr < base_ || addr + len > base_ + size_;
  }

  // Bump-allocates `bytes` with `align` alignment inside the region.
  // Throws std::bad_alloc when the arena is exhausted.
  void* Allocate(std::size_t bytes, std::size_t align);

  // Typed allocation helpers. Objects are never destroyed individually; the
  // arena is reclaimed wholesale, so T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "sandbox objects are reclaimed wholesale");
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "sandbox objects are reclaimed wholesale");
    void* p = Allocate(sizeof(T) * n, alignof(T));
    return ::new (p) T[n]();
  }

  // Releases all bump-allocated objects (the region itself stays mapped).
  void Reset() { bump_ = 0; }

  std::size_t bytes_allocated() const { return bump_; }

 private:
  struct Unmapper {
    std::size_t size;
    void operator()(void* p) const;
  };

  std::unique_ptr<void, Unmapper> region_;
  std::uintptr_t base_ = 0;
  std::size_t size_ = 0;
  std::uintptr_t offset_mask_ = 0;
  std::size_t bump_ = 0;
};

}  // namespace sfi

#endif  // GRAFTLAB_SRC_SFI_SANDBOX_H_
