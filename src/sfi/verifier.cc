#include "src/sfi/verifier.h"

#include <stdexcept>

namespace sfi {

namespace {

bool WritesRegister(const Insn& insn) {
  switch (insn.kind) {
    case OpKind::kMask:
    case OpKind::kArith:
    case OpKind::kLoad:
      return true;
    default:
      return false;
  }
}

VerifyResult Fail(std::size_t index, std::string message) {
  return VerifyResult{false, index, std::move(message)};
}

}  // namespace

VerifyResult Verifier::Verify(const std::vector<Insn>& code) const {
  // Pass 1: the dedicated set is every register used as a protected address.
  // (The host initializes dedicated registers to the sandbox base, so a
  // dedicated register holds an in-sandbox address even before its first
  // mask; see header.)
  std::vector<bool> dedicated(static_cast<std::size_t>(num_registers_), false);
  const bool full = protection_ == Protection::kFull;

  auto reg_ok = [&](int r) { return r >= 0 && r < num_registers_; };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Insn& insn = code[i];
    switch (insn.kind) {
      case OpKind::kStore:
      case OpKind::kJumpIndirect:
        if (!reg_ok(insn.ra)) {
          return Fail(i, "address register out of range");
        }
        dedicated[static_cast<std::size_t>(insn.ra)] = true;
        break;
      case OpKind::kLoad:
        if (!reg_ok(insn.ra)) {
          return Fail(i, "address register out of range");
        }
        if (full) {
          dedicated[static_cast<std::size_t>(insn.ra)] = true;
        }
        break;
      default:
        break;
    }
  }

  // Pass 2: only kMask may write a dedicated register; branch targets and
  // host-call indices must be in range.
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Insn& insn = code[i];
    if (WritesRegister(insn)) {
      if (!reg_ok(insn.rd)) {
        return Fail(i, "destination register out of range");
      }
      if (insn.kind != OpKind::kMask && dedicated[static_cast<std::size_t>(insn.rd)]) {
        return Fail(i, "non-mask instruction writes a dedicated register");
      }
    }
    switch (insn.kind) {
      case OpKind::kJumpDirect:
        if (insn.target < 0 || static_cast<std::size_t>(insn.target) >= code.size()) {
          return Fail(i, "direct jump target outside code unit");
        }
        break;
      case OpKind::kCallHost:
        if (insn.target < 0 || insn.target >= num_host_entries_) {
          return Fail(i, "host call index outside jump table");
        }
        break;
      case OpKind::kMask:
      case OpKind::kArith:
        if (insn.kind == OpKind::kMask && !reg_ok(insn.rs)) {
          return Fail(i, "mask source register out of range");
        }
        break;
      case OpKind::kStore:
        if (!reg_ok(insn.rs)) {
          return Fail(i, "store source register out of range");
        }
        break;
      default:
        break;
    }
  }

  return VerifyResult{true, 0, ""};
}

std::vector<Insn> RewriteWithMasks(const std::vector<Insn>& code, Protection protection,
                                   int scratch_register) {
  // The rewriter owns `scratch_register`: input code must not mention it.
  for (const Insn& insn : code) {
    if (insn.rd == scratch_register || insn.ra == scratch_register ||
        insn.rs == scratch_register) {
      throw std::invalid_argument("scratch register already used by input code");
    }
  }

  const bool full = protection == Protection::kFull;

  // Direct-jump targets shift as masks are inserted; record the mapping from
  // old instruction index to new.
  std::vector<int> new_index(code.size() + 1, 0);
  std::vector<Insn> out;
  out.reserve(code.size() * 2);

  auto needs_mask = [&](const Insn& insn) {
    return insn.kind == OpKind::kStore || insn.kind == OpKind::kJumpIndirect ||
           (full && insn.kind == OpKind::kLoad);
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    new_index[i] = static_cast<int>(out.size());
    Insn insn = code[i];
    if (needs_mask(insn)) {
      out.push_back(Insn{OpKind::kMask, scratch_register, -1, insn.ra, -1});
      insn.ra = scratch_register;
    }
    out.push_back(insn);
  }
  new_index[code.size()] = static_cast<int>(out.size());

  for (Insn& insn : out) {
    if (insn.kind == OpKind::kJumpDirect && insn.target >= 0 &&
        static_cast<std::size_t>(insn.target) <= code.size()) {
      insn.target = new_index[static_cast<std::size_t>(insn.target)];
    }
  }
  return out;
}

std::vector<Insn> RewriteWithMasksElided(const std::vector<Insn>& code, Protection protection,
                                         int scratch_register, MaskElisionStats* stats) {
  for (const Insn& insn : code) {
    if (insn.rd == scratch_register || insn.ra == scratch_register ||
        insn.rs == scratch_register) {
      throw std::invalid_argument("scratch register already used by input code");
    }
  }

  const bool full = protection == Protection::kFull;
  auto needs_mask = [&](const Insn& insn) {
    return insn.kind == OpKind::kStore || insn.kind == OpKind::kJumpIndirect ||
           (full && insn.kind == OpKind::kLoad);
  };

  // An indirect jump's successor set is every instruction, which would
  // poison the whole dataflow — fall back to the plain rewriter.
  bool has_indirect = false;
  for (const Insn& insn : code) {
    if (insn.kind == OpKind::kJumpIndirect) {
      has_indirect = true;
      break;
    }
  }
  if (has_indirect) {
    std::vector<Insn> out = RewriteWithMasks(code, protection, scratch_register);
    if (stats != nullptr) {
      for (const Insn& insn : code) {
        if (needs_mask(insn)) {
          ++stats->masks_emitted;
        }
      }
    }
    return out;
  }

  // Forward dataflow over the *original* stream. The fact at each entry:
  //   kUnvisited — not reached yet
  //   kNoFact    — scratch holds nothing provable
  //   r >= 0     — scratch holds sandbox_mask(r), and r is unchanged since
  constexpr int kUnvisited = -2;
  constexpr int kNoFact = -1;
  std::vector<int> fact_at(code.size(), kUnvisited);
  std::vector<std::size_t> worklist;
  if (!code.empty()) {
    fact_at[0] = kNoFact;
    worklist.push_back(0);
  }
  auto flow_to = [&](std::size_t target, int fact) {
    if (target >= code.size()) {
      return;
    }
    const int merged = fact_at[target] == kUnvisited || fact_at[target] == fact
                           ? fact
                           : kNoFact;
    if (merged != fact_at[target]) {
      fact_at[target] = merged;
      worklist.push_back(target);
    }
  };
  while (!worklist.empty()) {
    const std::size_t i = worklist.back();
    worklist.pop_back();
    const Insn& insn = code[i];
    int fact = fact_at[i];
    switch (insn.kind) {
      case OpKind::kStore:
      case OpKind::kLoad:
        if (needs_mask(insn)) {
          fact = insn.ra;  // the rewrite masks ra into scratch here
        }
        if (insn.kind == OpKind::kLoad && insn.rd == fact) {
          fact = kNoFact;  // the load redefined the masked register
        }
        flow_to(i + 1, fact);
        break;
      case OpKind::kMask:
      case OpKind::kArith:
        if (insn.rd == fact) {
          fact = kNoFact;
        }
        flow_to(i + 1, fact);
        break;
      case OpKind::kCallHost:
        // The host boundary is opaque; assume scratch and every register
        // may change.
        flow_to(i + 1, kNoFact);
        break;
      case OpKind::kJumpDirect:
        // The abstract stream has no condition bit, so treat every direct
        // jump as conditional: both successors are reachable.
        if (insn.target >= 0) {
          flow_to(static_cast<std::size_t>(insn.target), fact);
        }
        flow_to(i + 1, fact);
        break;
      case OpKind::kJumpIndirect:  // excluded above
      case OpKind::kRet:
        break;
    }
  }

  MaskElisionStats local;
  std::vector<int> new_index(code.size() + 1, 0);
  std::vector<Insn> out;
  out.reserve(code.size() * 2);
  for (std::size_t i = 0; i < code.size(); ++i) {
    new_index[i] = static_cast<int>(out.size());
    Insn insn = code[i];
    if (needs_mask(insn)) {
      // Elide when scratch provably already holds sandbox_mask(ra): the
      // mask is idempotent and ra has not changed since scratch took it.
      if (fact_at[i] == insn.ra) {
        ++local.masks_elided;
      } else {
        out.push_back(Insn{OpKind::kMask, scratch_register, -1, insn.ra, -1});
        ++local.masks_emitted;
      }
      insn.ra = scratch_register;
    }
    out.push_back(insn);
  }
  new_index[code.size()] = static_cast<int>(out.size());

  for (Insn& insn : out) {
    if (insn.kind == OpKind::kJumpDirect && insn.target >= 0 &&
        static_cast<std::size_t>(insn.target) <= code.size()) {
      insn.target = new_index[static_cast<std::size_t>(insn.target)];
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

}  // namespace sfi
