// Load-time SFI verifier.
//
// Wahbe et al. separate the *rewriter* (inserts masking) from the *loader*,
// which re-checks the rewritten object code so the kernel need not trust the
// compiler: "at load time, a linear-time algorithm can be used to guarantee
// that all memory references in a piece of object code have been correctly
// sandboxed". This verifier implements that linear-time check over an
// abstract object-code stream with the classic dedicated-register
// discipline:
//
//   * a MASK instruction is the only producer of a *dedicated* register;
//   * every store's address register must be dedicated;
//   * every indirect jump's target register must be dedicated;
//   * under Protection::kFull, every load's address register must be
//     dedicated as well;
//   * ordinary arithmetic must not write a dedicated register (that would
//     let a graft forge an "already masked" address);
//   * direct branch targets must stay inside the code unit.
//
// The stream uses instruction-array indices as code addresses, so any
// in-range direct target is a valid instruction boundary.

#ifndef GRAFTLAB_SRC_SFI_VERIFIER_H_
#define GRAFTLAB_SRC_SFI_VERIFIER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sfi/sandbox.h"

namespace sfi {

// Abstract object-code operations — the subset the safety argument needs.
enum class OpKind : std::uint8_t {
  kMask,          // rd <- sandbox_mask(rs)        (rd becomes dedicated)
  kArith,         // rd <- f(rs1, rs2)             (rd becomes general)
  kLoad,          // rd <- mem[ra]
  kStore,         // mem[ra] <- rs
  kJumpDirect,    // goto target (instruction index)
  kJumpIndirect,  // goto ra
  kCallHost,      // call registered host entry point #target
  kRet,           // return from the graft
};

struct Insn {
  OpKind kind = OpKind::kArith;
  int rd = -1;      // destination register (kMask, kArith, kLoad)
  int ra = -1;      // address/target register (kLoad, kStore, kJumpIndirect)
  int rs = -1;      // source register (kStore, kMask, kArith)
  int target = -1;  // kJumpDirect insn index / kCallHost entry index
};

struct VerifyResult {
  bool ok = false;
  std::size_t fault_index = 0;  // offending instruction when !ok
  std::string message;
};

class Verifier {
 public:
  // `num_registers` bounds the register file; `num_host_entries` bounds
  // kCallHost targets (the masked jump table size).
  Verifier(int num_registers, int num_host_entries, Protection protection)
      : num_registers_(num_registers),
        num_host_entries_(num_host_entries),
        protection_(protection) {}

  // Single linear pass; O(#insns).
  VerifyResult Verify(const std::vector<Insn>& code) const;

 private:
  int num_registers_;
  int num_host_entries_;
  Protection protection_;
};

// Reference rewriter: takes a stream where stores/jumps may use general
// registers and inserts kMask instructions so the result verifies. This is
// the "compiler side" of the Omniware pipeline; tests pair it with the
// Verifier (rewritten code must always verify).
std::vector<Insn> RewriteWithMasks(const std::vector<Insn>& code, Protection protection,
                                   int scratch_register);

// Static rewrite counts from one RewriteWithMasksElided run.
struct MaskElisionStats {
  std::uint64_t masks_emitted = 0;
  std::uint64_t masks_elided = 0;
};

// RewriteWithMasks plus the same fact engine minnow/elide.h uses, ported to
// the SFI stream: a forward dataflow tracks, per program point, whether the
// scratch register still holds sandbox_mask(r) for some register r that has
// not been redefined since. A protected access whose address register is
// proven already-masked-in-scratch reuses scratch directly — the mask is
// dead and elided. The output still satisfies the dedicated-register
// discipline (scratch is written only by masks), so Verifier::Verify
// accepts it unchanged. Any kJumpIndirect in the input disables elision
// (its unknown successor set would poison the dataflow): the result is then
// exactly RewriteWithMasks output with all masks counted as emitted.
std::vector<Insn> RewriteWithMasksElided(const std::vector<Insn>& code, Protection protection,
                                         int scratch_register,
                                         MaskElisionStats* stats = nullptr);

}  // namespace sfi

#endif  // GRAFTLAB_SRC_SFI_VERIFIER_H_
