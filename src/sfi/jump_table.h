// Masked indirect-jump table.
//
// SFI must prevent a graft from jumping to arbitrary kernel code. Direct
// calls are checked at load time; indirect calls go through a table whose
// index is masked to the (power-of-two) table size, so any index lands on
// *some* registered entry point — the control-flow analog of store masking.

#ifndef GRAFTLAB_SRC_SFI_JUMP_TABLE_H_
#define GRAFTLAB_SRC_SFI_JUMP_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sfi {

// Table of uniform-signature entry points. R(*)(Args...) only; grafts with
// richer interfaces register trampolines.
template <typename R, typename... Args>
class JumpTable {
 public:
  using Fn = R (*)(Args...);

  // `capacity` must be a power of two. Unregistered slots point at a trap
  // function supplied by the host.
  JumpTable(std::size_t capacity, Fn trap) : mask_(capacity - 1), slots_(capacity, trap) {
    if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("jump table capacity must be a power of two");
    }
  }

  // Registers `fn` and returns its index.
  std::size_t Register(Fn fn) {
    if (next_ > mask_) {
      throw std::length_error("jump table full");
    }
    slots_[next_] = fn;
    return next_++;
  }

  // The masked indirect call: any 64-bit index is forced onto a valid slot.
  R Call(std::size_t index, Args... args) const {
    return slots_[index & mask_](static_cast<Args&&>(args)...);
  }

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t registered() const { return next_; }

 private:
  std::size_t mask_;
  std::size_t next_ = 0;
  std::vector<Fn> slots_;
};

}  // namespace sfi

#endif  // GRAFTLAB_SRC_SFI_JUMP_TABLE_H_
