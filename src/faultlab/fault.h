// faultlab: deterministic, seeded fault injection.
//
// The paper scores every technology on whether a misbehaving graft can
// corrupt the kernel, but nothing in the repo could *provoke* failure on
// demand. faultlab closes that gap the way production extension runtimes do
// (Rex supervises and recovers failing extensions at runtime; MOAT assumes
// extensions fail arbitrarily while the kernel stays correct): a FaultPlan
// names injection sites and triggers, an Injector evaluates them
// deterministically from one seed, and the subsystems under test consult
// the injector at their named sites. Every run with the same plan and seed
// injects the same faults at the same hits, so a crash-recovery soak test
// is an ordinary deterministic unit test.
//
// This header defines the plan vocabulary and the exception types injected
// faults surface as; the evaluator lives in injector.h.

#ifndef GRAFTLAB_SRC_FAULTLAB_FAULT_H_
#define GRAFTLAB_SRC_FAULTLAB_FAULT_H_

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace faultlab {

// Base class for every injected failure, so hosts can tell "faultlab made
// this happen" apart from genuine extension faults.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

// A transient I/O error: the operation failed but retrying may succeed.
class TransientError : public FaultError {
 public:
  explicit TransientError(const std::string& site)
      : FaultError("faultlab: transient I/O error at " + site) {}
};

// A simulated machine crash: execution stops here; durable state is frozen
// exactly as the last completed (possibly torn) device write left it.
class CrashFault : public FaultError {
 public:
  explicit CrashFault(const std::string& site)
      : FaultError("faultlab: crash at " + site) {}
};

enum class FaultKind : std::uint8_t {
  kTransientError,  // retryable failure (surfaces as TransientError)
  kLatencySpike,    // operation succeeds but costs `param` extra microseconds
  kTornWrite,       // write persists only a `param` fraction of its bytes
  kCrash,           // simulated machine crash (surfaces as CrashFault)
};

constexpr const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientError: return "transient";
    case FaultKind::kLatencySpike: return "latency";
    case FaultKind::kTornWrite: return "torn";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

// One rule: at hits of `site`, fire `kind` per the trigger, at most `budget`
// times. Exactly one trigger is active: every_nth > 0 fires on every Nth
// hit of the site (1 = every hit); otherwise `probability` is evaluated as
// a Bernoulli draw from the plan's seeded generator.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kTransientError;
  std::uint64_t every_nth = 0;
  double probability = 0.0;
  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
  // kLatencySpike: extra microseconds; kTornWrite: durable fraction in
  // [0, 1) of the written bytes. Ignored by the other kinds.
  double param = 0.0;
};

// A named schedule of faults plus the seed that makes it reproducible.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  FaultPlan& Add(FaultSpec spec) {
    specs.push_back(std::move(spec));
    return *this;
  }
};

}  // namespace faultlab

#endif  // GRAFTLAB_SRC_FAULTLAB_FAULT_H_
