#include "src/faultlab/injector.h"

#include <utility>

namespace faultlab {

Injector::Injector(FaultPlan plan) : rng_(plan.seed) {
  specs_.reserve(plan.specs.size());
  for (FaultSpec& spec : plan.specs) {
    const std::size_t index = specs_.size();
    sites_[spec.site].specs.push_back(index);
    specs_.push_back(SpecState{std::move(spec), 0});
  }
}

std::optional<Injection> Injector::Hit(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
  }
  SiteState& state = it->second;
  ++state.hits;
  for (const std::size_t index : state.specs) {
    SpecState& spec_state = specs_[index];
    const FaultSpec& spec = spec_state.spec;
    if (spec_state.injected >= spec.budget) {
      continue;
    }
    bool fire = false;
    if (spec.every_nth > 0) {
      fire = state.hits % spec.every_nth == 0;
    } else if (spec.probability > 0.0) {
      fire = std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < spec.probability;
    }
    if (!fire) {
      continue;
    }
    ++spec_state.injected;
    ++state.injected;
    if (tracer_ != nullptr) {
      if (!state.trace_site_interned) {
        state.trace_site = tracer_->Intern("fault/" + std::string(site));
        state.trace_site_interned = true;
      }
      tracer_->Instant(state.trace_site, tracelab::CurrentTraceId(),
                       static_cast<std::uint64_t>(spec.kind));
    }
    return Injection{spec.kind, spec.param};
  }
  return std::nullopt;
}

std::vector<Injector::SiteCounters> Injector::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteCounters> counters;
  counters.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    counters.push_back(SiteCounters{site, state.hits, state.injected});
  }
  return counters;
}

std::uint64_t Injector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [site, state] : sites_) {
    total += state.injected;
  }
  return total;
}

}  // namespace faultlab
