// Injector: evaluates a FaultPlan at named sites, deterministically.
//
// Subsystems call Hit("site") at each potential failure point; the injector
// counts the hit, evaluates the plan's specs for that site in plan order,
// and returns the first fault that triggers (if any). All randomness comes
// from the plan's seed, so single-threaded runs are exactly reproducible.
// Per-site hit/injection counters are exported for telemetry (graftd
// renders them next to the per-graft rows).
//
// Thread safety: one mutex guards the counters and the generator, so an
// injector may be shared by graftd workers; determinism then holds per
// site-visit order, which concurrent runs do not fix. Deterministic tests
// use one thread.

#ifndef GRAFTLAB_SRC_FAULTLAB_INJECTOR_H_
#define GRAFTLAB_SRC_FAULTLAB_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "src/faultlab/fault.h"
#include "src/tracelab/trace.h"

namespace faultlab {

// What Hit() returns when a spec triggers.
struct Injection {
  FaultKind kind = FaultKind::kTransientError;
  double param = 0.0;
};

class Injector {
 public:
  explicit Injector(FaultPlan plan);

  // Consults the plan at a named site. Returns the triggered fault, or
  // nullopt to proceed normally. Counts the hit either way.
  std::optional<Injection> Hit(std::string_view site);

  struct SiteCounters {
    std::string site;
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
  };
  // Per-site counters, sorted by site name. Sites appear once visited or
  // named by a spec, so a plan's dormant sites are visible as zero rows.
  std::vector<SiteCounters> Counters() const;

  std::uint64_t total_injected() const;

  // Attaches a tracer: every triggered injection becomes an instant event
  // named "fault/<site>" on the trace active on the injecting thread, with
  // the fault kind as the event argument. The tracer must outlive the
  // injector.
  void set_tracer(tracelab::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct SpecState {
    FaultSpec spec;
    std::uint64_t injected = 0;  // spent against spec.budget
  };
  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
    std::vector<std::size_t> specs;  // indices into specs_, in plan order
    // Interned "fault/<site>" id, resolved on the first injection here.
    tracelab::SiteId trace_site = 0;
    bool trace_site_interned = false;
  };

  tracelab::Tracer* tracer_ = nullptr;
  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::vector<SpecState> specs_;
  // std::less<> enables string_view lookup without allocating.
  std::map<std::string, SiteState, std::less<>> sites_;
};

}  // namespace faultlab

#endif  // GRAFTLAB_SRC_FAULTLAB_INJECTOR_H_
