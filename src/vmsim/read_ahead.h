// Read-ahead grafting — the §5.4 candidate the paper points at:
//
//   "The page fault read-ahead policy exhibited here is an obvious
//    candidate for grafting; if we are able to control how many pages the
//    system brought in on a fault, we can reduce the per-fault time."
//
// ReadAheadGraft is consulted on every fault for the number of pages to
// bring in (1 = just the faulting page). AdaptiveReadAhead is the stock
// native policy: sequential streaks open the window (doubling to a cap),
// any non-sequential fault snaps it shut — right for both the paper's
// scattered database faults (window stays 1) and file scans (window grows).
// The vmsim fault engine applies the window and accounts the extra pages;
// bench/ablate_readahead prices the result with the disk model.

#ifndef GRAFTLAB_SRC_VMSIM_READ_AHEAD_H_
#define GRAFTLAB_SRC_VMSIM_READ_AHEAD_H_

#include "src/vmsim/frame.h"

namespace vmsim {

class ReadAheadGraft {
 public:
  virtual ~ReadAheadGraft() = default;

  // Number of pages (>= 1) to bring in for a fault on `page`. Values are
  // clamped by the kernel to [1, kMaxReadAheadWindow].
  virtual int Window(PageId page) = 0;

  virtual const char* technology() const = 0;
};

inline constexpr int kMaxReadAheadWindow = 16;  // the paper's Alpha maximum

// Stock native policy: exponential open on sequential streaks, snap shut on
// random faults. "Sequential" means the fault landed exactly where the
// previous window ended (the next unfetched page of a forward scan); faults
// inside or before the old window are random access.
class AdaptiveReadAhead : public ReadAheadGraft {
 public:
  int Window(PageId page) override {
    if (have_last_ && page == expected_next_) {
      window_ *= 2;
      if (window_ > kMaxReadAheadWindow) {
        window_ = kMaxReadAheadWindow;
      }
    } else {
      window_ = 1;
    }
    expected_next_ = page + static_cast<PageId>(window_);
    have_last_ = true;
    return window_;
  }

  const char* technology() const override { return "C"; }

 private:
  PageId expected_next_ = 0;
  bool have_last_ = false;
  int window_ = 1;
};

}  // namespace vmsim

#endif  // GRAFTLAB_SRC_VMSIM_READ_AHEAD_H_
