// The simulated VM system: a fixed set of page frames, an LRU queue, and a
// fault engine with the paper's eviction-graft hook.
//
// Default policy evicts the LRU head. With a graft attached, the kernel
// instead hands the graft the chain head and lets it propose a victim
// (§3.1). Following Cao et al. [CAO94], the kernel does not trust the
// answer: a proposal that is not actually a linked member of the queue is
// rejected and the default candidate is used, and the rejection is counted.
// A graft that throws (bounds fault, NIL fault, preemption) is likewise
// contained: the kernel logs the fault and falls back to the default
// policy — extension failure must not become kernel failure.

#ifndef GRAFTLAB_SRC_VMSIM_PAGE_CACHE_H_
#define GRAFTLAB_SRC_VMSIM_PAGE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/vmsim/frame.h"
#include "src/vmsim/read_ahead.h"

namespace vmsim {

// Kernel-side interface of a Prioritization (page eviction) graft.
class EvictionGraft {
 public:
  virtual ~EvictionGraft() = default;

  // Given the LRU chain head (the kernel's default candidate), returns the
  // frame to evict. May throw envs::EnvFault; the kernel falls back to the
  // default policy. Must not modify the chain.
  virtual Frame* ChooseVictim(Frame* lru_head) = 0;

  // Application-driven hot-list maintenance (the model application adds the
  // 128 level-three children and removes each page as it is processed).
  virtual void HotListAdd(PageId page) = 0;
  virtual void HotListRemove(PageId page) = 0;
  virtual void HotListClear() = 0;

  // Technology name for reports ("C", "Modula-3", "Java", ...).
  virtual const char* technology() const = 0;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;
  std::uint64_t readahead_pages = 0;  // extra pages brought in by read-ahead
  std::uint64_t evictions = 0;
  std::uint64_t graft_overrides = 0;   // graft picked a non-default victim
  std::uint64_t graft_rejections = 0;  // graft answer failed validation
  std::uint64_t graft_faults = 0;      // graft threw; default policy used
  std::uint64_t hot_evictions = 0;     // evicted a page the app had marked hot
};

class PageCache {
 public:
  explicit PageCache(std::size_t num_frames);

  // Attaches (or detaches, with nullptr) the eviction graft. Not owned.
  void SetEvictionGraft(EvictionGraft* graft) { graft_ = graft; }

  // Attaches (or detaches) the read-ahead graft: consulted per fault for a
  // window size; pages [page, page+window) are brought in together. Not
  // owned. A graft fault falls back to window 1.
  void SetReadAheadGraft(ReadAheadGraft* graft) { readahead_ = graft; }

  // References `page`; returns true when the reference faulted (page was not
  // resident). Faulting into a full cache evicts a victim first.
  bool Touch(PageId page, std::uint64_t owner = 0);

  bool IsResident(PageId page) const { return resident_.contains(page); }
  std::size_t num_frames() const { return frames_.size(); }
  std::size_t resident_pages() const { return resident_.size(); }

  // Marks a page hot/cold for accounting purposes (mirrors what the graft's
  // private hot list believes, so hot_evictions can be audited).
  void MarkHot(PageId page) { hot_.insert(page); }
  void MarkCold(PageId page) { hot_.erase(page); }
  void ClearHot() { hot_.clear(); }

  const CacheStats& stats() const { return stats_; }
  const LruQueue& lru() const { return lru_; }

  // Drops every resident page (for test setup).
  void Flush();

 private:
  Frame* SelectVictim();
  void LoadPage(PageId page, std::uint64_t owner);

  std::vector<Frame> frames_;
  std::vector<Frame*> free_frames_;
  LruQueue lru_;
  std::unordered_map<PageId, Frame*> resident_;
  std::unordered_set<PageId> hot_;
  EvictionGraft* graft_ = nullptr;
  ReadAheadGraft* readahead_ = nullptr;
  CacheStats stats_;
};

}  // namespace vmsim

#endif  // GRAFTLAB_SRC_VMSIM_PAGE_CACHE_H_
