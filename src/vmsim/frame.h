// Page frames and the kernel's LRU queue.
//
// The paper's Prioritization graft (§3.1) is handed "a pointer to the head
// of the LRU queue" and walks it looking for an acceptable eviction victim.
// Frame is that queue's node: an intrusive doubly-linked element naming the
// resident page. The queue keeps its least-recently-used frame at the head
// (the kernel's default candidate) and promotes frames to the tail on touch.

#ifndef GRAFTLAB_SRC_VMSIM_FRAME_H_
#define GRAFTLAB_SRC_VMSIM_FRAME_H_

#include <cstddef>
#include <cstdint>

namespace vmsim {

using PageId = std::uint64_t;
inline constexpr PageId kInvalidPage = ~PageId{0};

// One physical page frame. Grafts traverse these via lru_next, which is why
// the links are plain pointers: this is the kernel data structure the
// extension technologies must be able to walk cheaply.
struct Frame {
  PageId page = kInvalidPage;
  std::uint64_t owner = 0;  // owning process, for per-process eviction policy
  Frame* lru_next = nullptr;
  Frame* lru_prev = nullptr;
  bool in_queue = false;
};

// Intrusive LRU list: head = least recently used (default eviction
// candidate), tail = most recently used.
class LruQueue {
 public:
  Frame* head() const { return head_; }
  Frame* tail() const { return tail_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Appends at the MRU end. The frame must not already be queued.
  void PushMru(Frame* frame);

  // Unlinks `frame`; it must currently be queued.
  void Remove(Frame* frame);

  // Marks a touch: moves the frame to the MRU end.
  void Touch(Frame* frame);

  // True if `frame` is linked into *this* queue (O(1) flag check plus a
  // defensive link validation used by the kernel to vet graft answers).
  bool Contains(const Frame* frame) const;

 private:
  Frame* head_ = nullptr;
  Frame* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace vmsim

#endif  // GRAFTLAB_SRC_VMSIM_FRAME_H_
