// Page-fault latency measurement (the paper's Table 3).
//
// The paper used lmbench's lat_pagefault: map a file, touch its pages in
// random order, and time the faults; it also reports how many disk pages
// each fault brings in (read-ahead). FaultProbe reproduces both
// measurements against the host kernel: a backing file is mapped privately,
// its PTEs are dropped with madvise(MADV_DONTNEED) between runs, and pages
// are touched in a random order. Read-ahead is detected directly with
// mincore(): fault one page in the middle of a cold window and count which
// neighbors became resident.
//
// Host faults are soft (the data stays in the page cache), so absolute
// times are far below the paper's disk-inclusive 4.7-25 ms; Table 2's
// break-even column therefore also reports the figure computed against a
// modeled disk fault (diskmod::DiskModel), which restores the paper's
// magnitudes. Both numbers are printed by bench/table3_pagefault.

#ifndef GRAFTLAB_SRC_VMSIM_FAULT_PROBE_H_
#define GRAFTLAB_SRC_VMSIM_FAULT_PROBE_H_

#include <cstddef>

#include "src/stats/running_stats.h"

namespace vmsim {

struct FaultProbeResult {
  double fault_time_us = 0.0;   // mean time to handle one page fault
  double stddev_pct = 0.0;      // across runs
  int pages_per_fault = 1;      // read-ahead window observed via mincore
  std::size_t pages_touched = 0;
};

class FaultProbe {
 public:
  // Creates (and on destruction removes) a backing file of `pages` pages in
  // the system temp directory.
  explicit FaultProbe(std::size_t pages = 4096);
  ~FaultProbe();

  FaultProbe(const FaultProbe&) = delete;
  FaultProbe& operator=(const FaultProbe&) = delete;

  // Times `runs` passes of random-order first touches.
  FaultProbeResult Measure(std::size_t runs = 10);

  // Faults one page inside a cold window and returns how many pages of the
  // window the kernel made resident (>= 1; > 1 means read-ahead/fault-around).
  int EstimatePagesPerFault();

  std::size_t page_size() const { return page_size_; }

 private:
  void DropResidency();

  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t pages_ = 0;
  std::size_t page_size_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace vmsim

#endif  // GRAFTLAB_SRC_VMSIM_FAULT_PROBE_H_
