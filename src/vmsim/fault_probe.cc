#include "src/vmsim/fault_probe.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#include "src/stats/harness.h"

namespace vmsim {

FaultProbe::FaultProbe(std::size_t pages) : pages_(pages) {
  page_size_ = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  bytes_ = pages_ * page_size_;

  char path[] = "/tmp/graftlab_faultprobe_XXXXXX";
  fd_ = ::mkstemp(path);
  if (fd_ < 0) {
    throw std::runtime_error("FaultProbe: mkstemp failed");
  }
  ::unlink(path);  // anonymous once the fd closes

  // Populate the file so every page has real backing content.
  std::vector<std::uint8_t> block(page_size_);
  std::mt19937 rng(20260706);
  for (std::size_t p = 0; p < pages_; ++p) {
    for (auto& b : block) {
      b = static_cast<std::uint8_t>(rng());
    }
    if (::write(fd_, block.data(), block.size()) != static_cast<ssize_t>(block.size())) {
      ::close(fd_);
      throw std::runtime_error("FaultProbe: write failed");
    }
  }

  map_ = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (map_ == MAP_FAILED) {
    ::close(fd_);
    throw std::runtime_error("FaultProbe: mmap failed");
  }
}

FaultProbe::~FaultProbe() {
  if (map_ != nullptr && map_ != MAP_FAILED) {
    ::munmap(map_, bytes_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void FaultProbe::DropResidency() {
  // Discards the mapping's PTEs; the next touch takes a page fault.
  ::madvise(map_, bytes_, MADV_DONTNEED);
  // Defeat fault-around (which maps a neighborhood per fault) as lmbench's
  // random access pattern largely does; random order below handles the rest.
  ::madvise(map_, bytes_, MADV_RANDOM);
}

FaultProbeResult FaultProbe::Measure(std::size_t runs) {
  std::vector<std::size_t> order(pages_);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(7);

  stats::RunningStats per_fault_us;
  volatile std::uint8_t sink = 0;

  for (std::size_t run = 0; run < runs; ++run) {
    std::shuffle(order.begin(), order.end(), rng);
    DropResidency();
    stats::Timer timer;
    for (const std::size_t p : order) {
      sink = static_cast<const volatile std::uint8_t*>(map_)[p * page_size_];
    }
    per_fault_us.Add(timer.ElapsedUs() / static_cast<double>(pages_));
  }
  (void)sink;

  FaultProbeResult result;
  result.fault_time_us = per_fault_us.mean();
  result.stddev_pct = per_fault_us.stddev_percent();
  result.pages_touched = pages_ * runs;
  result.pages_per_fault = EstimatePagesPerFault();
  return result;
}

int FaultProbe::EstimatePagesPerFault() {
  // For file mappings, mincore reports *page cache* residency, so the cache
  // must actually be cold for the measurement to mean anything: evict the
  // window with fadvise(DONTNEED), fault one page in the middle, and count
  // how many neighbors the kernel brought in (PTE fault-around plus file
  // read-ahead — the quantity the paper's "Num Pages" column reports).
  const std::size_t window = std::min<std::size_t>(64, pages_);
  const std::size_t start = (pages_ - window) / 2;

  DropResidency();
  ::posix_fadvise(fd_, static_cast<off_t>(start * page_size_),
                  static_cast<off_t>(window * page_size_), POSIX_FADV_DONTNEED);

  std::vector<unsigned char> residency(window);
  if (::mincore(static_cast<char*>(map_) + start * page_size_, window * page_size_,
                residency.data()) != 0) {
    return 1;
  }
  int before = 0;
  for (const unsigned char r : residency) {
    before += (r & 1);
  }
  if (before == static_cast<int>(window)) {
    return 1;  // eviction unavailable (e.g. tmpfs); report the conservative 1
  }

  volatile std::uint8_t sink =
      static_cast<const volatile std::uint8_t*>(map_)[(start + window / 2) * page_size_];
  (void)sink;

  if (::mincore(static_cast<char*>(map_) + start * page_size_, window * page_size_,
                residency.data()) != 0) {
    return 1;
  }
  int after = 0;
  for (const unsigned char r : residency) {
    after += (r & 1);
  }
  const int brought_in = after - before;
  return brought_in > 0 ? brought_in : 1;
}

}  // namespace vmsim
