#include "src/vmsim/page_cache.h"

#include "src/envs/fault.h"

namespace vmsim {

PageCache::PageCache(std::size_t num_frames) : frames_(num_frames) {
  free_frames_.reserve(num_frames);
  // Hand out frames from the back so frame 0 is used first.
  for (std::size_t i = num_frames; i > 0; --i) {
    free_frames_.push_back(&frames_[i - 1]);
  }
}

bool PageCache::Touch(PageId page, std::uint64_t owner) {
  if (auto it = resident_.find(page); it != resident_.end()) {
    ++stats_.hits;
    lru_.Touch(it->second);
    return false;
  }

  ++stats_.faults;
  LoadPage(page, owner);

  // Read-ahead: the graft names the window; neighbors ride in on the same
  // (modeled) disk access. They are loaded coldest-first so the faulting
  // page stays the most recently used of the group.
  if (readahead_ != nullptr) {
    int window = 1;
    try {
      window = readahead_->Window(page);
    } catch (const envs::EnvFault&) {
      ++stats_.graft_faults;
    }
    if (window > kMaxReadAheadWindow) {
      window = kMaxReadAheadWindow;
    }
    for (int n = window - 1; n >= 1; --n) {
      const PageId neighbor = page + static_cast<PageId>(n);
      if (!resident_.contains(neighbor)) {
        LoadPage(neighbor, owner);
        ++stats_.readahead_pages;
      }
    }
    if (window > 1) {
      lru_.Touch(resident_.at(page));  // faulting page ends up MRU
    }
  }
  return true;
}

void PageCache::LoadPage(PageId page, std::uint64_t owner) {
  Frame* frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    frame = SelectVictim();
    if (hot_.contains(frame->page)) {
      ++stats_.hot_evictions;
    }
    resident_.erase(frame->page);
    lru_.Remove(frame);
    ++stats_.evictions;
  }

  frame->page = page;
  frame->owner = owner;
  lru_.PushMru(frame);
  resident_.emplace(page, frame);
}

Frame* PageCache::SelectVictim() {
  Frame* candidate = lru_.head();
  if (graft_ == nullptr) {
    return candidate;
  }

  Frame* proposed = nullptr;
  try {
    proposed = graft_->ChooseVictim(candidate);
  } catch (const envs::EnvFault&) {
    // A faulting extension must not take the kernel down: log and fall back.
    ++stats_.graft_faults;
    return candidate;
  }

  // Cao-style validation: the proposal must be a real member of our queue.
  if (proposed == nullptr || !lru_.Contains(proposed)) {
    ++stats_.graft_rejections;
    return candidate;
  }
  if (proposed != candidate) {
    ++stats_.graft_overrides;
  }
  return proposed;
}

void PageCache::Flush() {
  while (lru_.head() != nullptr) {
    Frame* frame = lru_.head();
    resident_.erase(frame->page);
    lru_.Remove(frame);
    frame->page = kInvalidPage;
    free_frames_.push_back(frame);
  }
  resident_.clear();
}

}  // namespace vmsim
