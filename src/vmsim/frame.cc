#include "src/vmsim/frame.h"

#include <cassert>

namespace vmsim {

void LruQueue::PushMru(Frame* frame) {
  assert(!frame->in_queue);
  frame->lru_prev = tail_;
  frame->lru_next = nullptr;
  if (tail_ != nullptr) {
    tail_->lru_next = frame;
  } else {
    head_ = frame;
  }
  tail_ = frame;
  frame->in_queue = true;
  ++size_;
}

void LruQueue::Remove(Frame* frame) {
  assert(frame->in_queue);
  if (frame->lru_prev != nullptr) {
    frame->lru_prev->lru_next = frame->lru_next;
  } else {
    head_ = frame->lru_next;
  }
  if (frame->lru_next != nullptr) {
    frame->lru_next->lru_prev = frame->lru_prev;
  } else {
    tail_ = frame->lru_prev;
  }
  frame->lru_prev = nullptr;
  frame->lru_next = nullptr;
  frame->in_queue = false;
  --size_;
}

void LruQueue::Touch(Frame* frame) {
  if (frame == tail_) {
    return;
  }
  Remove(frame);
  PushMru(frame);
}

bool LruQueue::Contains(const Frame* frame) const {
  if (!frame->in_queue) {
    return false;
  }
  // Validate linkage: either an interior node with consistent neighbors, or
  // one of our endpoints. A graft cannot fabricate a frame that passes this
  // without actually being linked into this queue.
  const bool linked_prev =
      frame->lru_prev != nullptr ? frame->lru_prev->lru_next == frame : head_ == frame;
  const bool linked_next =
      frame->lru_next != nullptr ? frame->lru_next->lru_prev == frame : tail_ == frame;
  return linked_prev && linked_next;
}

}  // namespace vmsim
