// Stream/filter framework — the substrate for Stream grafts (§3.2).
//
// Modeled on the UNIX Stream I/O system [RITCH84] the paper cites: data
// flows from a Source through a chain of Filters to a Sink. Filters may
// transform the data (compression, encryption), pass it through while
// computing something (MD5 fingerprint, byte count), or both. A Stream
// graft is a filter inserted into such a chain; src/grafts wraps each
// technology's MD5 behind the StreamGraft interface and adapts it as a
// Filter via GraftFilter.

#ifndef GRAFTLAB_SRC_STREAMK_STREAM_H_
#define GRAFTLAB_SRC_STREAMK_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace streamk {

using Bytes = std::span<const std::uint8_t>;

// Downstream write target.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Write(Bytes data) = 0;
  // End-of-stream notification; default is a no-op.
  virtual void End() {}
};

// A processing element. Process() may write any amount of data downstream
// (0..n bytes per input chunk); Flush() drains buffered state at
// end-of-stream before the downstream End() is delivered.
class Filter {
 public:
  virtual ~Filter() = default;
  virtual void Process(Bytes in, Sink& out) = 0;
  virtual void Flush(Sink& out) { (void)out; }
  virtual const char* name() const = 0;
};

// A chain of filters terminating in a caller-supplied sink.
class Chain {
 public:
  // Filters run in append order: the first appended sees the raw input.
  void Append(std::unique_ptr<Filter> filter) { filters_.push_back(std::move(filter)); }

  std::size_t size() const { return filters_.size(); }
  Filter& at(std::size_t i) { return *filters_.at(i); }

  // Pushes one chunk through every filter into `sink`.
  void Write(Bytes data, Sink& sink);

  // Flushes all filters in order and delivers End() to `sink`.
  void End(Sink& sink);

 private:
  void WriteFrom(std::size_t index, Bytes data, Sink& sink);
  void FlushFrom(std::size_t index, Sink& sink);

  std::vector<std::unique_ptr<Filter>> filters_;
};

// Pulls chunks of `chunk_bytes` from `data` through the chain — the shape of
// the paper's "read 1MB from disk in 64KB transfers" experiment.
void Pump(Bytes data, std::size_t chunk_bytes, Chain& chain, Sink& sink);

// --- Stock sinks ---

class MemorySink : public Sink {
 public:
  void Write(Bytes data) override { bytes_.insert(bytes_.end(), data.begin(), data.end()); }
  void End() override { ended_ = true; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  bool ended() const { return ended_; }

 private:
  std::vector<std::uint8_t> bytes_;
  bool ended_ = false;
};

class NullSink : public Sink {
 public:
  void Write(Bytes data) override { count_ += data.size(); }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

// --- Stock filters ---

// Passes data through unchanged (chain plumbing baseline).
class NullFilter : public Filter {
 public:
  void Process(Bytes in, Sink& out) override { out.Write(in); }
  const char* name() const override { return "null"; }
};

// Counts bytes while passing them through.
class CountFilter : public Filter {
 public:
  void Process(Bytes in, Sink& out) override {
    count_ += in.size();
    out.Write(in);
  }
  std::uint64_t count() const { return count_; }
  const char* name() const override { return "count"; }

 private:
  std::uint64_t count_ = 0;
};

// Symmetric XOR stream cipher (its own inverse) keyed by a repeating key.
class XorCipherFilter : public Filter {
 public:
  explicit XorCipherFilter(std::vector<std::uint8_t> key);
  void Process(Bytes in, Sink& out) override;
  const char* name() const override { return "xor-cipher"; }

 private:
  std::vector<std::uint8_t> key_;
  std::size_t phase_ = 0;
  std::vector<std::uint8_t> scratch_;
};

// Byte-oriented run-length encoder: literal runs and repeat runs with a
// one-byte header. kRepeat runs encode 4..130 copies; literals 1..128 bytes.
class RleCompressFilter : public Filter {
 public:
  void Process(Bytes in, Sink& out) override;
  void Flush(Sink& out) override;
  const char* name() const override { return "rle-compress"; }

 private:
  std::vector<std::uint8_t> pending_;
  void Emit(Sink& out);
};

class RleDecompressFilter : public Filter {
 public:
  void Process(Bytes in, Sink& out) override;
  void Flush(Sink& out) override;
  const char* name() const override { return "rle-decompress"; }

 private:
  // Decoder state machine across chunk boundaries.
  enum class State { kHeader, kLiteral, kRepeat };
  State state_ = State::kHeader;
  std::size_t remaining_ = 0;
  std::vector<std::uint8_t> literal_buf_;
};

// MD5 fingerprint filter over the native implementation: passes data through
// and can be queried for the digest after End().
class Md5Filter : public Filter {
 public:
  Md5Filter();
  ~Md5Filter() override;
  void Process(Bytes in, Sink& out) override;
  void Flush(Sink& out) override;
  const char* name() const override { return "md5"; }

  // Valid after Flush(); hex digest of everything processed.
  std::string hex_digest() const { return hex_digest_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string hex_digest_;
};

}  // namespace streamk

#endif  // GRAFTLAB_SRC_STREAMK_STREAM_H_
