#include "src/streamk/stream.h"

#include <algorithm>
#include <stdexcept>

#include "src/md5/md5.h"

namespace streamk {

namespace {

// Adapter that routes a filter's output into the next chain stage.
class StageSink : public Sink {
 public:
  using Relay = void (*)(void* ctx, std::size_t index, Bytes data, Sink& sink);

  StageSink(void* ctx, Relay relay, std::size_t next_index, Sink& final_sink)
      : ctx_(ctx), relay_(relay), next_index_(next_index), final_sink_(final_sink) {}

  void Write(Bytes data) override { relay_(ctx_, next_index_, data, final_sink_); }

 private:
  void* ctx_;
  Relay relay_;
  std::size_t next_index_;
  Sink& final_sink_;
};

}  // namespace

void Chain::Write(Bytes data, Sink& sink) { WriteFrom(0, data, sink); }

void Chain::WriteFrom(std::size_t index, Bytes data, Sink& sink) {
  if (index == filters_.size()) {
    sink.Write(data);
    return;
  }
  StageSink next(
      this,
      [](void* ctx, std::size_t i, Bytes d, Sink& s) {
        static_cast<Chain*>(ctx)->WriteFrom(i, d, s);
      },
      index + 1, sink);
  filters_[index]->Process(data, next);
}

void Chain::End(Sink& sink) { FlushFrom(0, sink); }

void Chain::FlushFrom(std::size_t index, Sink& sink) {
  if (index == filters_.size()) {
    sink.End();
    return;
  }
  // A filter's flush output must still traverse the rest of the chain.
  StageSink next(
      this,
      [](void* ctx, std::size_t i, Bytes d, Sink& s) {
        static_cast<Chain*>(ctx)->WriteFrom(i, d, s);
      },
      index + 1, sink);
  filters_[index]->Flush(next);
  FlushFrom(index + 1, sink);
}

void Pump(Bytes data, std::size_t chunk_bytes, Chain& chain, Sink& sink) {
  for (std::size_t off = 0; off < data.size(); off += chunk_bytes) {
    const std::size_t n = std::min(chunk_bytes, data.size() - off);
    chain.Write(data.subspan(off, n), sink);
  }
  chain.End(sink);
}

// --- XorCipherFilter ---

XorCipherFilter::XorCipherFilter(std::vector<std::uint8_t> key) : key_(std::move(key)) {
  if (key_.empty()) {
    key_.push_back(0);  // degenerate key: identity cipher
  }
}

void XorCipherFilter::Process(Bytes in, Sink& out) {
  scratch_.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    scratch_[i] = in[i] ^ key_[phase_];
    phase_ = (phase_ + 1) % key_.size();
  }
  out.Write(scratch_);
}

// --- RLE ---
//
// Header byte h: h < 128 encodes a literal run of h+1 bytes (which follow);
// h >= 128 encodes h-128+4 repetitions (4..131) of the single byte that
// follows.

namespace {
constexpr std::size_t kMinRepeat = 4;
constexpr std::size_t kMaxRepeat = 131;
constexpr std::size_t kMaxLiteral = 128;

// Encodes `data` completely into `out_buf`.
void RleEncode(Bytes data, std::vector<std::uint8_t>& out_buf) {
  std::size_t i = 0;
  while (i < data.size()) {
    // Measure the run at i.
    std::size_t run = 1;
    while (i + run < data.size() && run < kMaxRepeat && data[i + run] == data[i]) {
      ++run;
    }
    if (run >= kMinRepeat) {
      out_buf.push_back(static_cast<std::uint8_t>(128 + run - kMinRepeat));
      out_buf.push_back(data[i]);
      i += run;
      continue;
    }
    // Literal: extend until the next >=kMinRepeat run or the size cap.
    std::size_t lit_start = i;
    std::size_t lit_len = 0;
    while (i < data.size() && lit_len < kMaxLiteral) {
      std::size_t next_run = 1;
      while (i + next_run < data.size() && next_run < kMinRepeat &&
             data[i + next_run] == data[i]) {
        ++next_run;
      }
      if (next_run >= kMinRepeat) {
        break;
      }
      ++i;
      ++lit_len;
    }
    out_buf.push_back(static_cast<std::uint8_t>(lit_len - 1));
    out_buf.insert(out_buf.end(), data.begin() + static_cast<std::ptrdiff_t>(lit_start),
                   data.begin() + static_cast<std::ptrdiff_t>(lit_start + lit_len));
  }
}
}  // namespace

void RleCompressFilter::Process(Bytes in, Sink& out) {
  pending_.insert(pending_.end(), in.begin(), in.end());
  Emit(out);
}

void RleCompressFilter::Emit(Sink& out) {
  if (pending_.empty()) {
    return;
  }
  // Hold back the trailing run of equal bytes — it may extend into the next
  // chunk. Everything before it can be encoded now.
  std::size_t tail = pending_.size() - 1;
  while (tail > 0 && pending_[tail - 1] == pending_.back()) {
    --tail;
  }
  // Also hold back a short non-run tail that could become the head of a run.
  if (tail > 0 && pending_.size() - tail < kMinRepeat) {
    // keep the tail run pending
  } else if (pending_.size() - tail >= kMaxRepeat) {
    // The pending run is already at maximum length; safe to encode all of it.
    tail = pending_.size();
  }
  if (tail == 0) {
    return;  // whole buffer is one (possibly growing) run
  }
  std::vector<std::uint8_t> encoded;
  RleEncode(Bytes(pending_.data(), tail), encoded);
  out.Write(encoded);
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(tail));
}

void RleCompressFilter::Flush(Sink& out) {
  if (!pending_.empty()) {
    std::vector<std::uint8_t> encoded;
    RleEncode(pending_, encoded);
    out.Write(encoded);
    pending_.clear();
  }
}

void RleDecompressFilter::Process(Bytes in, Sink& out) {
  std::size_t i = 0;
  std::vector<std::uint8_t> decoded;
  while (i < in.size()) {
    switch (state_) {
      case State::kHeader: {
        const std::uint8_t h = in[i++];
        if (h < 128) {
          remaining_ = static_cast<std::size_t>(h) + 1;
          state_ = State::kLiteral;
        } else {
          remaining_ = static_cast<std::size_t>(h) - 128 + kMinRepeat;
          state_ = State::kRepeat;
        }
        break;
      }
      case State::kLiteral: {
        const std::size_t take = std::min(remaining_, in.size() - i);
        decoded.insert(decoded.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                       in.begin() + static_cast<std::ptrdiff_t>(i + take));
        i += take;
        remaining_ -= take;
        if (remaining_ == 0) {
          state_ = State::kHeader;
        }
        break;
      }
      case State::kRepeat: {
        const std::uint8_t value = in[i++];
        decoded.insert(decoded.end(), remaining_, value);
        remaining_ = 0;
        state_ = State::kHeader;
        break;
      }
    }
  }
  if (!decoded.empty()) {
    out.Write(decoded);
  }
}

void RleDecompressFilter::Flush(Sink& out) {
  (void)out;
  // A well-formed stream ends on a header boundary; anything else is a
  // truncated input, which we surface loudly.
  if (state_ != State::kHeader) {
    throw std::runtime_error("rle-decompress: truncated stream");
  }
}

// --- Md5Filter ---

struct Md5Filter::Impl {
  md5::Context ctx;
};

Md5Filter::Md5Filter() : impl_(std::make_unique<Impl>()) {}
Md5Filter::~Md5Filter() = default;

void Md5Filter::Process(Bytes in, Sink& out) {
  impl_->ctx.Update(in);
  out.Write(in);
}

void Md5Filter::Flush(Sink& out) {
  (void)out;
  hex_digest_ = md5::ToHex(impl_->ctx.Final());
  impl_->ctx.Reset();
}

}  // namespace streamk
