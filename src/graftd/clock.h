// Injectable time source for the graftd supervisor.
//
// Quarantine backoff and readmission are time-based policies; testing them
// against the real clock means real sleeps and flaky thresholds. Policy code
// therefore reads time only through this interface: production uses
// RealClock (steady_clock), tests use FakeClock and advance time by hand, so
// "readmitted after backoff" is a deterministic assertion, not a race.

#ifndef GRAFTLAB_SRC_GRAFTD_CLOCK_H_
#define GRAFTLAB_SRC_GRAFTD_CLOCK_H_

#include <chrono>
#include <mutex>

namespace graftd {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }

  // Shared instance for the common "no clock injected" default.
  static const RealClock* Instance() {
    static const RealClock clock;
    return &clock;
  }
};

// Manually advanced clock. Thread-safe so a test can advance time while
// dispatch workers consult the supervisor.
class FakeClock final : public Clock {
 public:
  TimePoint Now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void Advance(Duration d) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += d;
  }

 private:
  mutable std::mutex mu_;
  TimePoint now_{};  // starts at the epoch; only differences matter
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_CLOCK_H_
