#include "src/graftd/supervisor.h"

#include <stdexcept>
#include <utility>

namespace graftd {

void Supervisor::set_tracer(tracelab::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    site_quarantine_ = tracer_->Intern("supervisor/quarantine");
    site_readmit_ = tracer_->Intern("supervisor/readmit");
    site_detach_ = tracer_->Intern("supervisor/detach");
    site_degrade_ = tracer_->Intern("supervisor/degrade");
    site_recover_ = tracer_->Intern("supervisor/recover");
    site_breaker_open_ = tracer_->Intern("supervisor/breaker_open");
    site_breaker_half_open_ = tracer_->Intern("supervisor/breaker_half_open");
    site_breaker_close_ = tracer_->Intern("supervisor/breaker_close");
  }
}

GraftId Supervisor::Register(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  GraftStatus status;
  status.name = std::move(name);
  grafts_.push_back(std::move(status));
  hot_.push_back(std::make_unique<std::atomic<bool>>(true));
  return static_cast<GraftId>(grafts_.size() - 1);
}

void Supervisor::RecomputeHot(GraftId id) {
  const GraftStatus& graft = grafts_[id];
  hot_[id]->store(graft.state == GraftState::kHealthy && graft.consecutive_failures == 0 &&
                      graft.consecutive_disk_faults == 0 &&
                      graft.breaker == BreakerState::kClosed,
                  std::memory_order_release);
}

AdmitDecision Supervisor::Admit(GraftId id) {
  // Steady-state fast path: healthy with no streak means kRun with nothing
  // to update — one acquire load, no mutex.
  if (policy_.lock_free_fast_path && hot_.at(id)->load(std::memory_order_acquire)) {
    return AdmitDecision::kRun;
  }
  std::lock_guard<std::mutex> lock(mu_);
  GraftStatus& graft = grafts_.at(id);
  switch (graft.state) {
    case GraftState::kHealthy:
      return AdmitDecision::kRun;
    case GraftState::kDetached:
      return AdmitDecision::kRejectDetached;
    case GraftState::kQuarantined:
      if (clock_->Now() < graft.readmit_at) {
        return AdmitDecision::kRejectQuarantined;
      }
      // Backoff elapsed: readmit on probation — the failure streak restarts
      // from zero but the quarantine history is remembered.
      graft.state = GraftState::kHealthy;
      graft.consecutive_failures = 0;
      ++graft.readmissions;
      RecomputeHot(id);
      EmitTransition(site_readmit_, id);
      return AdmitDecision::kRun;
    case GraftState::kDegraded:
      if (clock_->Now() < graft.readmit_at) {
        return AdmitDecision::kRejectDegraded;
      }
      // Shedding window over: probe the device again with real traffic.
      graft.state = GraftState::kHealthy;
      graft.consecutive_disk_faults = 0;
      ++graft.recoveries;
      RecomputeHot(id);
      EmitTransition(site_recover_, id);
      return AdmitDecision::kRun;
  }
  throw std::logic_error("unreachable graft state");
}

bool Supervisor::BreakerAdmit(GraftId id) {
  if (!policy_.breaker_enabled) {
    return true;
  }
  // Steady state: hot implies a closed breaker (RecomputeHot folds the
  // breaker position into the flag) — one acquire load, no mutex.
  if (policy_.lock_free_fast_path && hot_.at(id)->load(std::memory_order_acquire)) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  GraftStatus& graft = grafts_.at(id);
  switch (graft.breaker) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->Now() < graft.breaker_probe_at) {
        return false;
      }
      // Backoff over: this request becomes the first half-open probe.
      graft.breaker = BreakerState::kHalfOpen;
      graft.breaker_probe_at = clock_->Now() + policy_.breaker_probe_interval;
      EmitTransition(site_breaker_half_open_, id);
      return true;
    case BreakerState::kHalfOpen:
      // Probes are rate-limited, not counted: a probe that dies downstream
      // (deadline shed, connection lost) never reports an outcome, so any
      // in-flight accounting would wedge the breaker half-open forever.
      if (clock_->Now() < graft.breaker_probe_at) {
        return false;
      }
      graft.breaker_probe_at = clock_->Now() + policy_.breaker_probe_interval;
      return true;
  }
  return true;
}

void Supervisor::TripBreaker(GraftStatus& graft, GraftId id) {
  graft.breaker = BreakerState::kOpen;
  ++graft.breaker_opens;
  ++graft.breaker_trip_streak;
  graft.breaker_probe_at = clock_->Now() + BreakerBackoffFor(graft.breaker_trip_streak);
  EmitTransition(site_breaker_open_, id);
}

void Supervisor::OnOutcome(GraftId id, Outcome outcome) {
  // Steady-state fast path: an ok outcome on a streak-free healthy graft
  // records nothing — one acquire load (matching Admit, pairing with
  // RecomputeHot's release), no mutex. A worker can still read hot==true
  // published before another worker's failure started a streak and drop an
  // Ok that would have reset consecutive_failures; that window is inherent
  // to skipping the mutex (the same interleaving loses the reset under the
  // lock too, just in a narrower race) and at worst quarantines a genuinely
  // failing graft a streak early.
  if (policy_.lock_free_fast_path && outcome == Outcome::kOk &&
      hot_.at(id)->load(std::memory_order_acquire)) {
    return;
  }
  // The locked scorer reports the escalation it decided on (nullptr for
  // routine outcomes); the event hook fires here, after mu_ is released,
  // so a hook that snapshots a flight recorder (file I/O) never stalls
  // Admit/OnOutcome on other workers.
  const char* event = OnOutcomeLocked(id, outcome);
  if (event != nullptr && event_hook_) {
    event_hook_(event, id);
  }
}

const char* Supervisor::OnOutcomeLocked(GraftId id, Outcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  GraftStatus& graft = grafts_.at(id);
  if (graft.state == GraftState::kDetached) {
    return nullptr;  // a straggler invocation finished after the detach decision
  }
  if (outcome == Outcome::kOk) {
    graft.consecutive_failures = 0;
    graft.consecutive_disk_faults = 0;
    if (graft.breaker != BreakerState::kClosed) {
      // A successful half-open probe (or a straggler ok from before the
      // trip) closes the breaker and forgives the backoff doubling.
      graft.breaker = BreakerState::kClosed;
      graft.breaker_trip_streak = 0;
      EmitTransition(site_breaker_close_, id);
    }
    RecomputeHot(id);
    return nullptr;
  }
  if (outcome == Outcome::kDiskFault) {
    // The device, not the graft, failed: never quarantine or detach for
    // this; degrade to load shedding once the streak crosses the threshold.
    ++graft.consecutive_disk_faults;
    RecomputeHot(id);
    if (graft.state != GraftState::kHealthy) {
      return nullptr;  // straggler after a degrade/quarantine decision
    }
    if (graft.consecutive_disk_faults >= policy_.disk_fault_threshold) {
      graft.state = GraftState::kDegraded;
      graft.readmit_at = clock_->Now() + policy_.degraded_backoff;
      ++graft.degradations;
      EmitTransition(site_degrade_, id);
      return "degraded";
    }
    return nullptr;
  }
  const char* event = nullptr;
  ++graft.consecutive_failures;
  if (policy_.breaker_enabled) {
    if (graft.breaker == BreakerState::kHalfOpen) {
      TripBreaker(graft, id);  // the probe failed: reopen, doubled backoff
      event = "breaker_open";
    } else if (graft.breaker == BreakerState::kClosed &&
               graft.consecutive_failures >= policy_.breaker_threshold) {
      TripBreaker(graft, id);
      event = "breaker_open";
    }
  }
  RecomputeHot(id);
  if (graft.consecutive_failures < policy_.fault_threshold) {
    return event;
  }
  // Threshold crossed: quarantine, or detach once the chances are used up.
  // The escalation outranks a same-call breaker trip in the event report.
  if (graft.quarantines >= policy_.max_quarantines) {
    graft.state = GraftState::kDetached;
    EmitTransition(site_detach_, id);
    return "detached";
  }
  ++graft.quarantines;
  graft.state = GraftState::kQuarantined;
  graft.readmit_at = clock_->Now() + BackoffFor(graft.quarantines);
  EmitTransition(site_quarantine_, id);
  return "quarantined";
}

std::chrono::microseconds Supervisor::BackoffFor(std::uint32_t quarantines) const {
  // base * multiplier^(quarantines-1), saturating at max_backoff.
  std::chrono::microseconds backoff = policy_.base_backoff;
  for (std::uint32_t i = 1; i < quarantines && backoff < policy_.max_backoff; ++i) {
    backoff *= policy_.backoff_multiplier;
  }
  return backoff < policy_.max_backoff ? backoff : policy_.max_backoff;
}

std::chrono::microseconds Supervisor::BreakerBackoffFor(std::uint32_t trips) const {
  std::chrono::microseconds backoff = policy_.breaker_backoff;
  for (std::uint32_t i = 1; i < trips && backoff < policy_.breaker_max_backoff; ++i) {
    backoff *= policy_.backoff_multiplier;
  }
  return backoff < policy_.breaker_max_backoff ? backoff : policy_.breaker_max_backoff;
}

GraftState Supervisor::state(GraftId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return grafts_.at(id).state;
}

Supervisor::GraftStatus Supervisor::Status(GraftId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return grafts_.at(id);
}

std::vector<Supervisor::GraftStatus> Supervisor::StatusAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grafts_;
}

std::size_t Supervisor::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return grafts_.size();
}

}  // namespace graftd
