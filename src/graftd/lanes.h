// Lock-free dispatch lanes: per-producer SPSC rings swept by one worker.
//
// The mutex queue (src/graftd/queue.h) costs every Submit a lock and every
// empty->non-empty edge a condvar round-trip — harness crossings that
// inflate the supervised numbers tracelab reports. A LaneSet removes both:
// each producer thread owns a private single-producer single-consumer ring
// (the proven atomic head/tail + pow2-mask design from tracelab's
// EventRing), and the single consumer — the dispatch worker — sweeps all
// lanes round-robin. Pushing is a store-release; popping is a load-acquire;
// no invocation ever crosses a lock.
//
// Waiting is adaptive spin-then-park. The worker sweeps for a bounded
// number of empty passes (cheap loads), then parks on a condvar. Producers
// only touch the condvar when a sleeper exists: push (release), then a
// seq_cst RMW of the sleeper count — the classic eventcount/Dekker shape,
// so either the producer observes the sleeper and wakes it, or the parking
// worker's post-increment re-sweep observes the push. Lost wakeups are
// impossible; in steady state wakeups cost nothing at all.
//
// Close protocol: producers bracket every push with a per-lane `pushing`
// flag (seq_cst). Close() publishes `closed`; a producer that read the old
// value is still inside its bracket, so the draining worker waits for each
// lane's bracket to clear before the final sweep. Either the producer sees
// `closed` and fails the push, or the worker sees the bracket and drains
// the item — submissions are never silently dropped.
//
// Lane registration is mutex-guarded and off the hot path: a producer
// thread claims its lane once per (LaneSet, thread) and the dispatcher
// caches the handle thread-locally. Lane slots are a fixed-size array of
// plain pointers written only under the registration mutex and published
// to the lock-free sweep by the release-store of lane_count_: the sweep's
// acquire-load of the count makes every slot below it visible, and a slot
// object, once set, is never deallocated — so the sweep needs no per-slot
// atomics and a future change must keep the slot write ordered before the
// count store. If more producer threads than slots ever show up, the
// overflow threads share the last lane behind a spinlock (correctness
// keeps, SPSC-ness degrades for them alone).
//
// Slot recycling: a claim lasts until the producer thread exits, at which
// point a thread_local destructor hands the slot back to the LaneSet's
// free list (checking a per-T live-set registry first, so a LaneSet that
// died before its producers never sees a dangling release). The SpscLane
// object itself is reused, not destroyed: any items the dead producer left
// behind stay visible to the sweeping worker, and the next claimant simply
// continues pushing at the current head. The handoff is safe because the
// exiting thread's final release-store to head_ happens-before its
// thread_local destructor, which takes reg_mu_, which the new claimant
// also takes — so under producer-thread churn (a pool recreating threads
// against one long-lived dispatcher, or netfront IO threads coming and
// going) distinct *concurrent* producers, not distinct threads ever, are
// what bound slot usage; only past kMaxLanes-1 simultaneous producers do
// claims degrade to the shared lane.

#ifndef GRAFTLAB_SRC_GRAFTD_LANES_H_
#define GRAFTLAB_SRC_GRAFTD_LANES_H_

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

namespace graftd {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Pause-then-yield backoff for bounded spin waits. Pure CpuRelax is right
// when the other side runs on another core; on an oversubscribed (or
// single-core) host the partner needs *this* core, and spinning a whole
// scheduler quantum starves it. After kRelaxSpins rounds the waiter starts
// donating its timeslice.
class SpinBackoff {
 public:
  void Pause() {
    if (rounds_ < kRelaxSpins) {
      ++rounds_;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  void Reset() { rounds_ = 0; }

 private:
  static constexpr std::uint32_t kRelaxSpins = 64;
  std::uint32_t rounds_ = 0;
};

// Single-producer single-consumer ring of T. The owning producer pushes;
// the sweeping worker pops. Capacity rounds up to a power of two.
template <typename T>
class SpscLane {
 public:
  explicit SpscLane(std::size_t capacity)
      : slots_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(slots_.size() - 1) {}

  // Producer side. False when full (never blocks).
  bool TryPush(T& item) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Appends up to `max` items to `out`; returns the count.
  std::size_t PopInto(std::vector<T>& out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t popped = 0;
    for (; tail != head && popped < max; ++tail, ++popped) {
      out.push_back(std::move(slots_[tail & mask_]));
    }
    tail_.store(tail, std::memory_order_release);
    return popped;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return slots_.size(); }

  // Close-race bracket (see LaneSet): the producer holds `pushing` across
  // its closed-check + push; the draining worker waits it out.
  std::atomic<bool> pushing{false};
  // Spinlock for overflow producers sharing the last lane (normally free).
  std::atomic_flag shared_lock = ATOMIC_FLAG_INIT;

 private:
  std::vector<T> slots_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer cursor
};

// One worker's set of producer lanes plus the park/wake machinery.
template <typename T>
class LaneSet {
 public:
  static constexpr std::size_t kMaxLanes = 64;

  LaneSet(std::size_t lane_capacity, std::size_t spin_sweeps)
      : lane_capacity_(std::bit_ceil(lane_capacity == 0 ? std::size_t{1} : lane_capacity)),
        spin_sweeps_(spin_sweeps) {
    std::lock_guard<std::mutex> lock(LiveMutex());
    LiveSets().insert(this);
  }

  ~LaneSet() {
    // Leave the live registry first: producer threads that exit later will
    // look this LaneSet up before touching it and find nothing.
    std::lock_guard<std::mutex> lock(LiveMutex());
    LiveSets().erase(this);
  }

  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  // --- producer side ---

  // A producer's claim on its lane: the lane pointer plus whether it is
  // the shared overflow lane (then pushes take its spinlock). Decided at
  // registration under the lock, so it can never go stale.
  struct LaneHandle {
    SpscLane<T>* lane = nullptr;
    bool shared = false;
  };

  // Claims (or re-finds) the calling thread's lane. Mutex-guarded, called
  // once per (LaneSet, thread); the dispatcher caches the result. Each
  // concurrent producer gets a private lane, preferring slots handed back
  // by exited threads (see header: slot recycling); only past kMaxLanes-1
  // simultaneous producers does a thread share the last slot, which is
  // shared for all of its users from creation on. The claim is released
  // automatically when the thread exits, so long-lived LaneSets survive
  // unbounded producer-thread churn without burning slots.
  LaneHandle ProducerLane() {
    std::lock_guard<std::mutex> lock(reg_mu_);
    const std::thread::id me = std::this_thread::get_id();
    auto it = owners_.find(me);
    if (it != owners_.end()) {
      return LaneHandle{lanes_[it->second].get(), it->second == kMaxLanes - 1};
    }
    std::size_t index;
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
    } else {
      index = lane_count_.load(std::memory_order_relaxed);
      if (index >= kMaxLanes - 1) {
        index = kMaxLanes - 1;
      }
      if (!lanes_[index]) {
        lanes_[index] = std::make_unique<SpscLane<T>>(lane_capacity_);
        lane_count_.store(index + 1, std::memory_order_release);
      }
    }
    owners_.emplace(me, index);
    ThreadClaims::Current().Record(this);
    return LaneHandle{lanes_[index].get(), index == kMaxLanes - 1};
  }

  // Telemetry/testing: producer threads currently holding a lane claim.
  std::size_t producer_count() const {
    std::lock_guard<std::mutex> lock(reg_mu_);
    return owners_.size();
  }

  // Pushes one item into the caller's claimed lane, waking the worker if
  // it is parked. `block` spins until space frees (bounded by Close);
  // non-blocking mode returns false when full. False also when closed —
  // the item is untouched in that case.
  bool Push(const LaneHandle& handle, T& item, bool block) {
    PushGuard guard(handle);
    SpinBackoff backoff;
    for (;;) {
      if (closed_.load(std::memory_order_seq_cst)) {
        return false;
      }
      if (handle.lane->TryPush(item)) {
        break;
      }
      if (!block) {
        return false;
      }
      backoff.Pause();  // full lane: the worker needs cycles to drain it
    }
    guard.Done();
    WakeAfterPush();
    return true;
  }

  // Pushes up to `count` items from `items`, one wake check for the whole
  // run. Blocking mode re-spins on a full lane; returns the number pushed
  // (short only on close or, non-blocking, on a full lane).
  std::size_t PushMany(const LaneHandle& handle, T* items, std::size_t count, bool block) {
    PushGuard guard(handle);
    SpinBackoff backoff;
    std::size_t pushed = 0;
    while (pushed < count) {
      if (closed_.load(std::memory_order_seq_cst)) {
        break;
      }
      if (handle.lane->TryPush(items[pushed])) {
        ++pushed;
        backoff.Reset();
        continue;
      }
      if (!block) {
        break;
      }
      // Full lane with the wake still deferred: a worker that parked before
      // this batch began would never drain the lane this push is blocked on
      // (the batch-end wake below is unreachable while we spin), so wake it
      // now. Only runs on the full-lane path, so the hot loop stays at one
      // wake check per batch.
      WakeAfterPush();
      backoff.Pause();  // full lane: the worker needs cycles to drain it
    }
    guard.Done();
    if (pushed > 0) {
      WakeAfterPush();
    }
    return pushed;
  }

  // --- consumer side (the one sweeping worker) ---

  // Sweeps all lanes round-robin, appending up to `max_batch` items.
  // Spins `spin_sweeps_` empty passes, then parks until a producer wakes
  // it. Returns 0 only after Close() with every lane drained.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_batch) {
    std::size_t spins = 0;
    SpinBackoff backoff;
    for (;;) {
      const std::size_t popped = Sweep(out, max_batch);
      if (popped > 0) {
        if (spins > 0) {
          spin_wakeups_.fetch_add(1, std::memory_order_relaxed);
        }
        return popped;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        return DrainAfterClose(out, max_batch);
      }
      if (spins < spin_sweeps_) {
        ++spins;
        backoff.Pause();  // relax first, donate the timeslice past 64 sweeps
        continue;
      }
      Park();
      spins = 0;
      backoff.Reset();
    }
  }

  // --- lifecycle ---

  // Publishes closed and wakes the parked worker; pushes fail from here on.
  void Close() {
    closed_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
    }
    park_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

  // Telemetry: how the worker waited and how producers woke it.
  std::uint64_t spin_wakeups() const { return spin_wakeups_.load(std::memory_order_relaxed); }
  std::uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }
  std::uint64_t notifies_sent() const { return notifies_sent_.load(std::memory_order_relaxed); }
  std::uint64_t notifies_skipped() const {
    return notifies_skipped_.load(std::memory_order_relaxed);
  }
  std::size_t lane_count() const { return lane_count_.load(std::memory_order_acquire); }
  std::size_t lane_capacity() const { return lane_capacity_; }

 private:
  // --- producer slot recycling ---
  //
  // Every LaneSet lives in a per-T registry; every producer thread keeps a
  // thread_local list of the LaneSets it claimed a slot in. On thread exit
  // the list's destructor walks the claims and, for each LaneSet still in
  // the registry, hands the slot back to its free list. Both structures
  // are touched only at registration and thread exit — never on the push
  // path. The single LiveMutex orders thread exits against LaneSet
  // destruction, so a release can never race the set dying.

  static std::mutex& LiveMutex() {
    static std::mutex mu;
    return mu;
  }

  static std::set<LaneSet*>& LiveSets() {
    static std::set<LaneSet*> sets;
    return sets;
  }

  struct ThreadClaims {
    std::vector<LaneSet*> sets;

    static ThreadClaims& Current() {
      thread_local ThreadClaims claims;
      return claims;
    }

    // Called under the claiming LaneSet's reg_mu_, once per (set, thread).
    void Record(LaneSet* set) { sets.push_back(set); }

    ~ThreadClaims() {
      std::lock_guard<std::mutex> lock(LiveMutex());
      for (LaneSet* set : sets) {
        if (LiveSets().count(set) != 0) {
          set->ReleaseProducer(std::this_thread::get_id());
        }
      }
    }
  };

  // Returns `id`'s slot to the free list (the shared overflow slot is
  // positional and never recycled). Any items the owner left in the lane
  // stay there for the worker to drain; the next claimant resumes pushing
  // at the current head — see the header comment for why that is safe.
  void ReleaseProducer(std::thread::id id) {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = owners_.find(id);
    if (it == owners_.end()) {
      return;
    }
    if (it->second != kMaxLanes - 1) {
      free_slots_.push_back(it->second);
    }
    owners_.erase(it);
  }

  // Holds the close-race bracket (and, for overflow producers, the shared
  // lane's spinlock) across one push run.
  class PushGuard {
   public:
    explicit PushGuard(const LaneHandle& handle)
        : PushGuard(handle.lane, handle.shared) {}
    PushGuard(SpscLane<T>* lane, bool shared) : lane_(lane), shared_(shared) {
      if (shared_) {
        while (lane_->shared_lock.test_and_set(std::memory_order_acquire)) {
          CpuRelax();
        }
      }
      lane_->pushing.store(true, std::memory_order_seq_cst);
    }
    ~PushGuard() { Done(); }
    void Done() {
      if (lane_ != nullptr) {
        lane_->pushing.store(false, std::memory_order_seq_cst);
        if (shared_) {
          lane_->shared_lock.clear(std::memory_order_release);
        }
        lane_ = nullptr;
      }
    }

   private:
    SpscLane<T>* lane_;
    bool shared_;
  };

  std::size_t Sweep(std::vector<T>& out, std::size_t max_batch) {
    const std::size_t n = lane_count_.load(std::memory_order_acquire);
    std::size_t popped = 0;
    for (std::size_t i = 0; i < n && popped < max_batch; ++i) {
      const std::size_t lane = (sweep_cursor_ + i) % n;
      popped += lanes_[lane]->PopInto(out, max_batch - popped);
    }
    if (n > 0) {
      sweep_cursor_ = (sweep_cursor_ + 1) % n;
    }
    return popped;
  }

  bool AnyLaneNonEmpty() const {
    const std::size_t n = lane_count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (!lanes_[i]->Empty()) {
        return true;
      }
    }
    return false;
  }

  // The eventcount park: increment the sleeper count, then re-check the
  // lanes *under the park mutex* before sleeping. Producers notify under
  // the same mutex, so a wake can only be skipped when the re-check will
  // see the pushed item (the seq_cst fence pairing in WakeAfterPush).
  void Park() {
    std::unique_lock<std::mutex> lock(park_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (!AnyLaneNonEmpty() && !closed_.load(std::memory_order_seq_cst)) {
      parks_.fetch_add(1, std::memory_order_relaxed);
      park_cv_.wait(lock);
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }

  // The producer half of the eventcount Dekker. A seq_cst RMW (not a
  // fence + relaxed load: GCC's ThreadSanitizer cannot model fences, and
  // on x86 `lock xadd` costs the same as `mfence`) — Park's seq_cst
  // increment and this RMW are totally ordered on the same variable, so
  // either this read sees the sleeper and notifies, or the sleeper's
  // increment reads-from (or after) this RMW, which synchronizes-with it
  // and makes the preceding lane push visible to Park's re-check.
  void WakeAfterPush() {
    if (sleepers_.fetch_add(0, std::memory_order_seq_cst) > 0) {
      {
        std::lock_guard<std::mutex> lock(park_mu_);
      }
      park_cv_.notify_one();
      notifies_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      notifies_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // After close: wait out every lane's push bracket, then sweep whatever
  // landed. 0 means fully drained — the worker exits.
  std::size_t DrainAfterClose(std::vector<T>& out, std::size_t max_batch) {
    const std::size_t n = lane_count_.load(std::memory_order_acquire);
    SpinBackoff backoff;
    for (std::size_t i = 0; i < n; ++i) {
      while (lanes_[i]->pushing.load(std::memory_order_seq_cst)) {
        backoff.Pause();
      }
    }
    return Sweep(out, max_batch);
  }

  const std::size_t lane_capacity_;
  const std::size_t spin_sweeps_;

  mutable std::mutex reg_mu_;
  std::map<std::thread::id, std::size_t> owners_;
  std::vector<std::size_t> free_slots_;  // slots of exited producers
  std::array<std::unique_ptr<SpscLane<T>>, kMaxLanes> lanes_{};
  std::atomic<std::size_t> lane_count_{0};

  std::atomic<bool> closed_{false};
  std::size_t sweep_cursor_ = 0;  // worker-private

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::uint32_t> sleepers_{0};
  std::atomic<std::uint64_t> spin_wakeups_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> notifies_sent_{0};
  std::atomic<std::uint64_t> notifies_skipped_{0};
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_LANES_H_
