#include "src/graftd/deadline_wheel.h"

#include <algorithm>

namespace graftd {

DeadlineWheel::DeadlineWheel() : DeadlineWheel(Options{}) {}

DeadlineWheel::DeadlineWheel(Options options)
    : options_(options), slots_(std::max<std::size_t>(2, options.slots)) {
  thread_ = std::thread([this] { Run(); });
}

DeadlineWheel::~DeadlineWheel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

envs::DeadlineTimer::Ticket DeadlineWheel::Arm(envs::PreemptToken& token,
                                               std::chrono::microseconds deadline) {
  // Round up: never fire before the budget has truly elapsed.
  const std::int64_t tick_us = options_.tick.count();
  const std::int64_t deadline_us = std::max<std::int64_t>(1, deadline.count());
  const std::uint64_t ticks =
      static_cast<std::uint64_t>((deadline_us + tick_us - 1) / tick_us);

  std::lock_guard<std::mutex> lock(mu_);
  const Ticket ticket = next_ticket_++;
  const std::size_t slot = (cursor_ + ticks) % slots_.size();
  // The cursor visits `slot` for the first time after ((ticks - 1) % size)+1
  // ticks; each remaining full revolution is one round.
  const std::uint64_t rounds = (ticks - 1) / slots_.size();
  slots_[slot].push_back(Entry{ticket, &token, rounds});
  active_.emplace(ticket, slot);
  armed_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

void DeadlineWheel::Cancel(Ticket ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = active_.find(ticket);
  if (it == active_.end()) {
    return;  // already fired (or never armed)
  }
  auto& slot = slots_[it->second];
  for (auto entry = slot.begin(); entry != slot.end(); ++entry) {
    if (entry->ticket == ticket) {
      slot.erase(entry);
      break;
    }
  }
  active_.erase(it);
}

void DeadlineWheel::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  auto next_tick = std::chrono::steady_clock::now() + options_.tick;
  while (!stop_) {
    if (cv_.wait_until(lock, next_tick, [this] { return stop_; })) {
      return;
    }
    cursor_ = (cursor_ + 1) % slots_.size();
    auto& slot = slots_[cursor_];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      Entry& entry = slot[i];
      if (entry.rounds > 0) {
        --entry.rounds;
        slot[kept++] = entry;
        continue;
      }
      entry.token->RequestStop();
      active_.erase(entry.ticket);
      fired_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.resize(kept);

    next_tick += options_.tick;
    const auto now = std::chrono::steady_clock::now();
    if (next_tick < now) {
      // The thread was descheduled for multiple ticks (loaded machine):
      // re-anchor instead of spinning to catch up. Pending deadlines fire a
      // little late, which is the tolerable direction.
      next_tick = now + options_.tick;
    }
  }
}

}  // namespace graftd
