#include "src/graftd/dispatcher.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/stats/break_even.h"
#include "src/stats/harness.h"
#include "src/tracelab/export.h"

namespace graftd {

namespace {

// Mirrors bench/graft_measures.h MeasureEvictionUs: 64-entry hot list,
// frames paged at 100000+i so none are ever hot — the graft walks the whole
// chain, the paper's Table 2 lookup shape.
constexpr int kEvictionHotListSize = 64;
constexpr std::size_t kEvictionColdFrames = 64;

// Distinguishes Dispatcher instances for the thread-local lane caches
// (same idea as tracelab's ring-cache epoch: a stale entry can never alias
// a new dispatcher at a reused address).
std::atomic<std::uint64_t> g_dispatcher_epoch{1};

// One producer thread's claimed lane handles, indexed by shard, valid for
// a single dispatcher epoch. A thread alternating submissions between two
// live dispatchers thrashes this cache back to the (mutex-guarded) lane
// registry — correct, just slower; keep one dispatcher per producer phase.
struct ProducerLaneCache {
  std::uint64_t epoch = 0;
  std::vector<LaneSet<Invocation>::LaneHandle> handles;
};
thread_local ProducerLaneCache t_producer_lanes;

// Per-item submissions round-robin through the shards with a thread-local
// cursor: a plain increment instead of a contended global fetch_add. The
// hashed start offset de-phases producer threads, so lockstep submitters
// land on different shards instead of fighting for the same inline claim.
// Batch submissions keep the global cursor (one RMW amortized per batch).
thread_local std::uint64_t t_next_shard =
    std::hash<std::thread::id>{}(std::this_thread::get_id());

}  // namespace

namespace {

// seed_compat forces the supervisor back onto its mutex for every Admit /
// OnOutcome — part of the seed cost model the bench baseline reconstructs.
SupervisorPolicy EffectivePolicy(const DispatcherOptions& options) {
  SupervisorPolicy policy = options.policy;
  if (options.seed_compat) {
    policy.lock_free_fast_path = false;
  }
  return policy;
}

}  // namespace

Dispatcher::Dispatcher(DispatcherOptions options, const Clock* clock)
    : options_(options),
      epoch_(g_dispatcher_epoch.fetch_add(1, std::memory_order_relaxed)),
      clock_(clock),
      supervisor_(EffectivePolicy(options), clock),
      wheel_(DeadlineWheel::Options{options.wheel_tick, 256}) {
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  shards_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<WorkerShard>(options_));
    shards_.back()->host.set_deadline_timer(&wheel_);
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { WorkerLoop(*raw); });
  }
}

Dispatcher::~Dispatcher() { Shutdown(); }

void Dispatcher::InternSites(Registration& registration) {
  // Caller holds registry_mu_ (or is still single-threaded in set_tracer's
  // documented attach window).
  if (tracer_ == nullptr) {
    return;
  }
  registration.sites.queue = tracer_->Intern("queue:" + registration.name);
  registration.sites.dispatch = tracer_->Intern("dispatch:" + registration.name);
  registration.sites.crossing = tracer_->Intern("crossing:" + registration.name);
  registration.sites.body = tracer_->Intern("body:" + registration.name);
  registration.sites.disk = tracer_->Intern("disk:" + registration.name);
  registration.sites.ops = tracer_->Intern("ops:" + registration.name);
}

GraftId Dispatcher::Register(Registration registration) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const GraftId id = supervisor_.Register(registration.name);
  InternSites(registration);
  registry_.push_back(std::move(registration));
  return id;
}

GraftId Dispatcher::RegisterStreamGraft(std::string name, StreamGraftFactory factory,
                                        GraftTraits traits) {
  Registration registration;
  registration.name = std::move(name);
  registration.shape = GraftShape::kStream;
  registration.traits = traits;
  registration.stream_factory = std::move(factory);
  return Register(std::move(registration));
}

GraftId Dispatcher::RegisterBlackBoxGraft(std::string name, BlackBoxGraftFactory factory,
                                          GraftTraits traits) {
  Registration registration;
  registration.name = std::move(name);
  registration.shape = GraftShape::kBlackBox;
  registration.traits = traits;
  registration.blackbox_factory = std::move(factory);
  return Register(std::move(registration));
}

GraftId Dispatcher::RegisterEvictionGraft(std::string name, EvictionGraftFactory factory,
                                          GraftTraits traits) {
  Registration registration;
  registration.name = std::move(name);
  registration.shape = GraftShape::kEviction;
  registration.traits = traits;
  registration.eviction_factory = std::move(factory);
  return Register(std::move(registration));
}

void Dispatcher::set_tracer(tracelab::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  tracer_ = tracer;
  supervisor_.set_tracer(tracer);
  for (Registration& registration : registry_) {
    InternSites(registration);
  }
}

void Dispatcher::StampTrace(Invocation& invocation) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    invocation.trace_id = tracer_->NextTraceId();
    invocation.submit_ns = tracer_->NowNs();
  }
}

LaneSet<Invocation>::LaneHandle& Dispatcher::LaneFor(std::size_t index, WorkerShard& shard) {
  ProducerLaneCache& cache = t_producer_lanes;
  if (cache.epoch != epoch_) {
    cache.epoch = epoch_;
    cache.handles.assign(shards_.size(), LaneSet<Invocation>::LaneHandle{});
  }
  LaneSet<Invocation>::LaneHandle& handle = cache.handles[index];
  if (handle.lane == nullptr) {
    handle = shard.lanes.ProducerLane();
  }
  return handle;
}

// The inline fast path: run the invocation on the calling thread when the
// graft opted in (reentrant_safe) and the target shard's execution claim
// is free. Skips the lanes, the worker wake, and the context switch — the
// harness analogue of compiling the extension into the kernel — while
// still passing through StampTrace before and the full supervised RunOne
// inside, so spans, admission, and outcome scoring are path-independent.
bool Dispatcher::TryRunInline(WorkerShard& shard, Invocation& invocation) {
  if (!options_.inline_fast_path || invocation.graft >= registry_.size() ||
      !registry_[invocation.graft].traits.reentrant_safe) {
    return false;
  }
  bool expected = false;
  if (!shard.busy.compare_exchange_strong(expected, true, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    inline_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!accepting_.load(std::memory_order_seq_cst)) {
    // Shutdown is waiting for the claim; fall through to the lanes, which
    // are (or are about to be) closed and will refuse cleanly.
    shard.busy.store(false, std::memory_order_release);
    return false;
  }
  // No submitted_/completed_ accounting: the invocation submits AND
  // completes inside this call, so leaving both counters untouched keeps
  // the drain invariant (completed == submitted) in one atomic step — a
  // concurrent Drain() linearizes before or after the whole invocation,
  // both valid orders for an unordered race. Two lock-prefixed RMWs and
  // the drain-wake check stay off the fast path.
  shard.inline_hits.store(shard.inline_hits.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  RunOne(shard, invocation);
  shard.busy.store(false, std::memory_order_release);
  return true;
}

bool Dispatcher::Submit(Invocation invocation) {
  const std::size_t index = t_next_shard++ % shards_.size();
  WorkerShard& shard = *shards_[index];
  StampTrace(invocation);
  if (TryRunInline(shard, invocation)) {
    return true;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool pushed = options_.lane_mode == LaneMode::kSpsc
                          ? shard.lanes.Push(LaneFor(index, shard), invocation, /*block=*/true)
                          : shard.queue.Push(std::move(invocation));
  if (!pushed) {
    // A Drain() may have parked against the optimistically inflated count;
    // this rollback can be what makes its predicate true, so it needs the
    // same seq_cst + notify pairing a completion gets (no worker completion
    // is guaranteed to follow, e.g. rejection during shutdown).
    submitted_.fetch_sub(1, std::memory_order_seq_cst);
    NotifyDrain();
  }
  return pushed;
}

bool Dispatcher::TrySubmit(Invocation invocation) {
  const std::size_t index = t_next_shard++ % shards_.size();
  WorkerShard& shard = *shards_[index];
  StampTrace(invocation);
  if (TryRunInline(shard, invocation)) {
    return true;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const bool pushed = options_.lane_mode == LaneMode::kSpsc
                          ? shard.lanes.Push(LaneFor(index, shard), invocation, /*block=*/false)
                          : shard.queue.TryPush(std::move(invocation));
  if (!pushed) {
    // See Submit: the rollback may complete a parked Drain's predicate.
    submitted_.fetch_sub(1, std::memory_order_seq_cst);
    NotifyDrain();
  }
  return pushed;
}

std::size_t Dispatcher::SubmitBatch(std::span<Invocation> batch) {
  if (batch.empty()) {
    return 0;
  }
  const std::size_t index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  WorkerShard& shard = *shards_[index];
  for (Invocation& invocation : batch) {
    StampTrace(invocation);
  }
  submitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  const std::size_t accepted =
      options_.lane_mode == LaneMode::kSpsc
          ? shard.lanes.PushMany(LaneFor(index, shard), batch.data(), batch.size(),
                                 /*block=*/true)
          : shard.queue.PushBatch(batch);
  if (accepted < batch.size()) {
    // See Submit: the rollback may complete a parked Drain's predicate.
    submitted_.fetch_sub(batch.size() - accepted, std::memory_order_seq_cst);
    NotifyDrain();
  }
  return accepted;
}

std::size_t Dispatcher::TrySubmitBatch(std::span<Invocation> batch) {
  if (batch.empty()) {
    return 0;
  }
  const std::size_t index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  WorkerShard& shard = *shards_[index];
  for (Invocation& invocation : batch) {
    StampTrace(invocation);
  }
  submitted_.fetch_add(batch.size(), std::memory_order_relaxed);
  const std::size_t accepted =
      options_.lane_mode == LaneMode::kSpsc
          ? shard.lanes.PushMany(LaneFor(index, shard), batch.data(), batch.size(),
                                 /*block=*/false)
          : shard.queue.TryPushBatch(batch);
  if (accepted < batch.size()) {
    // See Submit: the rollback may complete a parked Drain's predicate.
    submitted_.fetch_sub(batch.size() - accepted, std::memory_order_seq_cst);
    NotifyDrain();
  }
  return accepted;
}

void Dispatcher::Drain() {
  drain_waiters_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] {
      // seq_cst read: one leg of the Dekker pairing with NotifyDrain (see
      // the proof sketch there).
      return completed_.load(std::memory_order_seq_cst) ==
             submitted_.load(std::memory_order_acquire);
    });
  }
  drain_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

// Waiter-counted drain wake: completions only touch the condvar when a
// Drain() is actually parked. The caller's completed_ increment and the
// load here are both seq_cst, as are the waiter's drain_waiters_ increment
// and its predicate read of completed_ — four accesses in the single SC
// total order, so "waiter misses the completion AND completer misses the
// waiter" would need a cycle (inc-completed < load-waiters < inc-waiters <
// load-completed < inc-completed) and cannot happen: the wake is never
// lost, and the hot path pays no standalone fence.
void Dispatcher::NotifyDrain() {
  if (drain_waiters_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
    }
    drain_cv_.notify_all();
  }
}

void Dispatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  // Stop new inline claims, close both lane implementations (producers
  // from here on get a clean refusal), join the workers, then wait out any
  // inline run still holding a shard claim.
  accepting_.store(false, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    shard->queue.Close();
    shard->lanes.Close();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  for (auto& shard : shards_) {
    ClaimShard(*shard);
    shard->busy.store(false, std::memory_order_release);
  }
}

// Takes the shard's execution claim; waits are bounded by one inline
// invocation (the claim is never held across a blocking lane wait).
void Dispatcher::ClaimShard(WorkerShard& shard) {
  bool expected = false;
  SpinBackoff backoff;
  while (!shard.busy.compare_exchange_weak(expected, true, std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    expected = false;
    backoff.Pause();
  }
}

void Dispatcher::WorkerLoop(WorkerShard& shard) {
  std::vector<Invocation> batch;
  batch.reserve(options_.max_batch);
  const bool spsc = options_.lane_mode == LaneMode::kSpsc;
  for (;;) {
    batch.clear();
    const std::size_t n = spsc ? shard.lanes.PopBatch(batch, options_.max_batch)
                               : shard.queue.PopBatch(batch, options_.max_batch);
    if (n == 0) {
      return;  // closed and drained
    }
    ClaimShard(shard);
    if (options_.seed_compat) {
      // The seed's completion accounting: one completed_ increment per
      // invocation and an unconditional lock + notify_all per batch.
      for (const Invocation& invocation : batch) {
        RunOne(shard, invocation);
        completed_.fetch_add(1, std::memory_order_release);
      }
      shard.busy.store(false, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(shard.stats_mu);
        ++shard.dispatch.batches;
        shard.dispatch.dequeued += n;
        shard.dispatch.batch_sizes.Record(n);
      }
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
      }
      drain_cv_.notify_all();
      continue;
    }
    for (const Invocation& invocation : batch) {
      RunOne(shard, invocation);
    }
    shard.busy.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      ++shard.dispatch.batches;
      shard.dispatch.dequeued += n;
      shard.dispatch.batch_sizes.Record(n);
    }
    completed_.fetch_add(n, std::memory_order_seq_cst);
    NotifyDrain();
  }
}

GraftCounters& Dispatcher::StatsFor(WorkerShard& shard, GraftId id) {
  // Caller holds shard.stats_mu.
  if (shard.stats.size() <= id) {
    shard.stats.resize(id + 1);
  }
  return shard.stats[id];
}

void Dispatcher::RunOne(WorkerShard& shard, const Invocation& invocation) {
  const GraftId id = invocation.graft;

  // Lock-free: the registry is append-only and frozen before dispatch
  // begins (registration-before-first-Submit contract), so the hot path
  // pays neither the mutex nor the per-invocation Registration copy the
  // seed paid here. seed_compat re-enacts that copy for the bench baseline.
  Registration seed_copy;
  if (options_.seed_compat) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    seed_copy = registry_.at(id);
  }
  const Registration& registration = options_.seed_compat ? seed_copy : registry_.at(id);

  // Tracing is active only for invocations stamped at submit time while the
  // tracer was enabled — a mid-run SetEnabled(true) starts with the next
  // submission, never with half-traced invocations.
  tracelab::Tracer* tracer =
      tracer_ != nullptr && tracer_->enabled() && invocation.trace_id != 0 ? tracer_ : nullptr;
  const tracelab::ScopedTraceId scoped_trace(tracer != nullptr ? invocation.trace_id : 0);
  if (tracer != nullptr) {
    // Queue wait crosses threads (begin on the producer, end here), so it is
    // one complete event rather than a begin/end pair. On the inline fast
    // path the "wait" is just the claim check, honestly near-zero.
    const std::uint64_t now = tracer->NowNs();
    tracer->Complete(registration.sites.queue, invocation.submit_ns,
                     now >= invocation.submit_ns ? now - invocation.submit_ns : 0,
                     invocation.trace_id);
  }
  // Service span: admission through outcome accounting, on the executing
  // thread (worker, or the submitter inline).
  tracelab::Span dispatch_span(tracer, registration.sites.dispatch, invocation.trace_id);

  // A rejection is still a terminal outcome for the submitter: count it,
  // then deliver the completion so front-ends can answer the session.
  const auto reject = [this, &shard, &invocation, id](CompletionStatus status,
                                                      std::uint64_t GraftCounters::*counter) {
    {
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      ++(StatsFor(shard, id).*counter);
    }
    if (outcome_hook_) {
      outcome_hook_(id, status, 0);
    }
    if (invocation.on_complete) {
      Completion completion;
      completion.status = status;
      invocation.on_complete(completion);
    }
  };
  // Deadline shed: work whose client already gave up is dropped before the
  // supervisor, the instance build, and the body — expiry is not the
  // graft's fault, so no outcome is scored against it. The dispatch span
  // still brackets the decision (trace evidence: dispatch count grows,
  // body count does not).
  if (invocation.deadline_ns != 0 && NowNs() >= invocation.deadline_ns) {
    shed_expired_.fetch_add(1, std::memory_order_relaxed);
    reject(CompletionStatus::kExpired, &GraftCounters::shed_expired);
    return;
  }
  switch (supervisor_.Admit(id)) {
    case AdmitDecision::kRejectDetached:
      reject(CompletionStatus::kRejectedDetached, &GraftCounters::rejected_detached);
      return;
    case AdmitDecision::kRejectQuarantined:
      reject(CompletionStatus::kRejectedQuarantined, &GraftCounters::rejected_quarantined);
      return;
    case AdmitDecision::kRejectDegraded:
      // Shedding: the graft's device is failing, don't feed it more writes.
      reject(CompletionStatus::kRejectedDegraded, &GraftCounters::rejected_degraded);
      return;
    case AdmitDecision::kRun:
      break;
  }

  const tracelab::StageTrace stage_trace{tracer, registration.sites.crossing,
                                         registration.sites.body, invocation.trace_id};

  // Profiler attribution: from here to return, SIGPROF samples landing on
  // this thread charge to this graft. The admitted stretch opens in the
  // crossing stage (instance builds below are crossing cost); the body and
  // disk sections re-stamp finer stages, unwinding through the RAII slots.
  const tracelab::ScopedProfSlot prof_crossing(id + 1, tracelab::ProfStage::kCrossing);

  // Worker-private instance, built on first use under the shard's
  // execution claim (so the inline fast path can build it too).
  // Per-invocation construction (black-box grafts, first-use stream/eviction
  // builds) is crossing cost — the host->technology entry machinery — so it
  // runs under the crossing site; the host adds its own crossing span for
  // the per-invocation entry work (token reset, deadline arm, fuel set).
  std::unique_ptr<core::BlackBoxGraft> blackbox;
  EvictionRig* rig = nullptr;
  switch (registration.shape) {
    case GraftShape::kStream: {
      if (shard.stream_instances.size() <= id) {
        shard.stream_instances.resize(id + 1);
      }
      if (!shard.stream_instances[id]) {
        tracelab::Span crossing(tracer, registration.sites.crossing, invocation.trace_id);
        shard.stream_instances[id] = registration.stream_factory(&shard.host.preempt_token());
      }
      break;
    }
    case GraftShape::kBlackBox: {
      // Fresh per invocation: the logical disk runs no cleaner (paper §5.6),
      // so each replay must start with an empty log or the device fills up.
      tracelab::Span crossing(tracer, registration.sites.crossing, invocation.trace_id);
      blackbox =
          registration.blackbox_factory(shard.host.disk_geometry(), &shard.host.preempt_token());
      break;
    }
    case GraftShape::kEviction: {
      if (shard.eviction_rigs.size() <= id) {
        shard.eviction_rigs.resize(id + 1);
      }
      if (!shard.eviction_rigs[id]) {
        tracelab::Span crossing(tracer, registration.sites.crossing, invocation.trace_id);
        auto built = std::make_unique<EvictionRig>();
        built->graft = registration.eviction_factory(&shard.host.preempt_token());
        built->frames.resize(kEvictionHotListSize + kEvictionColdFrames);
        for (std::size_t i = 0; i < built->frames.size(); ++i) {
          built->frames[i].page = 100000 + i;  // never hot
          built->queue.PushMru(&built->frames[i]);
        }
        for (int p = 1; p <= kEvictionHotListSize; ++p) {
          built->graft->HotListAdd(static_cast<vmsim::PageId>(p));
        }
        shard.eviction_rigs[id] = std::move(built);
      }
      rig = shard.eviction_rigs[id].get();
      break;
    }
  }

  // The modeled disk feed: this worker is "waiting for the transfer", so
  // siblings overlap their own transfers and compute meanwhile.
  if (invocation.simulated_io.count() > 0) {
    tracelab::Span disk_span(tracer, registration.sites.disk, invocation.trace_id);
    const tracelab::ScopedProfSlot prof_disk(id + 1, tracelab::ProfStage::kDisk);
    std::this_thread::sleep_for(invocation.simulated_io);
  }

  const SupervisorPolicy& policy = supervisor_.policy();
  const std::chrono::microseconds budget =
      invocation.budget.count() > 0 ? invocation.budget : policy.default_budget;

  Outcome outcome = Outcome::kOk;
  std::uint64_t fuel_used = 0;
  std::uint64_t ops = 0;
  md5::Digest completion_digest{};
  const tracelab::ScopedProfSlot prof_body(id + 1, tracelab::ProfStage::kBody);
  stats::Timer timer;
  switch (registration.shape) {
    case GraftShape::kStream: {
      core::StreamGraft& graft = *shard.stream_instances[id];
      if (policy.fuel_budget >= 0) {
        graft.SetFuel(policy.fuel_budget);
      }
      const core::GraftHost::StreamRunResult result =
          shard.host.RunStreamGraft(graft, invocation.data, invocation.chunk, budget, &stage_trace);
      if (policy.fuel_budget >= 0) {
        const std::int64_t remaining = graft.FuelRemaining();
        if (remaining >= 0 && remaining <= policy.fuel_budget) {
          fuel_used = static_cast<std::uint64_t>(policy.fuel_budget - remaining);
        } else if (remaining < 0) {
          // Exhaustion leaves the counter below zero: the whole budget burned.
          fuel_used = static_cast<std::uint64_t>(policy.fuel_budget);
        }
        graft.SetFuel(-1);  // do not meter the graft outside supervised runs
      }
      outcome =
          result.ok ? Outcome::kOk : (result.preempted ? Outcome::kPreempt : Outcome::kFault);
      if (result.ok) {
        completion_digest = result.digest;
      }
      if (invocation.on_stream_result) {
        invocation.on_stream_result(result);
      }
      break;
    }
    case GraftShape::kBlackBox: {
      const core::GraftHost::BlackBoxResult result =
          shard.host.RunLogicalDisk(*blackbox, invocation.ldisk_writes, /*validate=*/false,
                                    &stage_trace);
      ops = result.replay.writes;
      if (!result.faulted) {
        outcome = Outcome::kOk;
      } else if (result.fault_class == core::GraftHost::FaultClass::kExtension) {
        outcome = Outcome::kFault;
      } else {
        // DiskFull, hard I/O failure, or an injected device fault: score it
        // against the device track so the supervisor degrades, not detaches.
        outcome = Outcome::kDiskFault;
      }
      break;
    }
    case GraftShape::kEviction: {
      const core::GraftHost::EvictionRunResult result = shard.host.RunEvictionGraft(
          *rig->graft, rig->queue.head(), invocation.eviction_lookups, budget, &stage_trace);
      ops = result.lookups;
      outcome =
          result.ok ? Outcome::kOk : (result.preempted ? Outcome::kPreempt : Outcome::kFault);
      break;
    }
  }
  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(timer.ElapsedNs());
  CompletionStatus completion_status = CompletionStatus::kOk;
  switch (outcome) {
    case Outcome::kOk: completion_status = CompletionStatus::kOk; break;
    case Outcome::kFault: completion_status = CompletionStatus::kFault; break;
    case Outcome::kPreempt: completion_status = CompletionStatus::kPreempt; break;
    case Outcome::kDiskFault: completion_status = CompletionStatus::kDiskFault; break;
  }
  if (outcome_hook_) {
    outcome_hook_(id, completion_status, elapsed_ns);
  }
  if (invocation.on_complete) {
    Completion completion;
    completion.status = completion_status;
    completion.digest = completion_digest;
    completion.elapsed_ns = elapsed_ns;
    invocation.on_complete(completion);
  }
  if (tracer != nullptr && ops > 0) {
    // Shape operations completed (eviction lookups, ldisk block writes):
    // the denominator the break-even panel divides body time by.
    tracer->Counter(registration.sites.ops, ops, invocation.trace_id);
  }

  supervisor_.OnOutcome(id, outcome);

  std::lock_guard<std::mutex> lock(shard.stats_mu);
  GraftCounters& stats = StatsFor(shard, id);
  ++stats.invocations;
  switch (outcome) {
    case Outcome::kOk: ++stats.ok; break;
    case Outcome::kFault: ++stats.faults; break;
    case Outcome::kPreempt: ++stats.preempts; break;
    case Outcome::kDiskFault: ++stats.disk_faults; break;
  }
  stats.fuel_used += fuel_used;
  stats.latency.Record(elapsed_ns);
  if (registration.shape == GraftShape::kStream) {
    // Profiled VMs report cumulative counts per worker instance; overwrite
    // (not add) here, and let Snapshot's cross-shard Merge do the summing.
    auto profile = shard.stream_instances[id]->ExecutionProfile();
    if (!profile.empty()) {
      stats.vm_opcodes = std::move(profile);
    }
  }
}

TelemetrySnapshot Dispatcher::Snapshot() const {
  TelemetrySnapshot snapshot;
  const std::vector<Supervisor::GraftStatus> supervision = supervisor_.StatusAll();
  snapshot.grafts.resize(supervision.size());
  for (std::size_t id = 0; id < supervision.size(); ++id) {
    snapshot.grafts[id].name = supervision[id].name;
    snapshot.grafts[id].supervision = supervision[id];
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->stats_mu);
    for (std::size_t id = 0; id < shard->stats.size() && id < snapshot.grafts.size(); ++id) {
      snapshot.grafts[id].counters.Merge(shard->stats[id]);
    }
  }

  // Dispatch-path mechanics: how invocations moved. Lane counters are
  // atomics (or the queue's own lock) — safe against live dispatch.
  snapshot.dispatch.lane_mode = options_.lane_mode == LaneMode::kSpsc ? "spsc" : "mutex";
  for (const auto& shard : shards_) {
    snapshot.dispatch.inline_hits += shard->inline_hits.load(std::memory_order_relaxed);
  }
  snapshot.dispatch.inline_misses = inline_misses_.load(std::memory_order_relaxed);
  snapshot.dispatch.shed_expired = shed_expired_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const WorkerShard& shard = *shards_[i];
    TelemetrySnapshot::WorkerLaneRow row;
    row.worker = i;
    {
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      row.batches = shard.dispatch.batches;
      row.dequeued = shard.dispatch.dequeued;
      row.batch_sizes = shard.dispatch.batch_sizes;
    }
    if (options_.lane_mode == LaneMode::kSpsc) {
      row.spin_wakeups = shard.lanes.spin_wakeups();
      row.parks = shard.lanes.parks();
      row.notifies_sent = shard.lanes.notifies_sent();
      row.notifies_skipped = shard.lanes.notifies_skipped();
      row.lanes = shard.lanes.lane_count();
    } else {
      const auto stats = shard.queue.wait_stats();
      row.parks = stats.consumer_waits;
      row.notifies_skipped = stats.notifies_skipped;
      row.producer_waits = stats.producer_waits;
    }
    snapshot.dispatch.workers.push_back(std::move(row));
  }

  if (injector_ != nullptr) {
    snapshot.injections = injector_->Counters();
  }
  if (tracer_ != nullptr) {
    snapshot.traced = true;
    tracelab::TraceDump dump = tracer_->Dump();
    snapshot.trace_events = dump.event_count();
    snapshot.trace_dropped = dump.dropped();
    const tracelab::StageSummary summary = tracelab::Aggregate(dump);

    std::vector<Registration> registry;
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      registry = registry_;
    }
    const auto cell = [&summary](tracelab::SiteId site) {
      const tracelab::SpanStats& stats = summary.Span(site);
      TelemetrySnapshot::StageCell out;
      out.count = stats.count;
      out.total_us = stats.total_us();
      return out;
    };
    for (const Registration& registration : registry) {
      TelemetrySnapshot::StageRow row;
      row.graft = registration.name;
      row.queue = cell(registration.sites.queue);
      row.dispatch = cell(registration.sites.dispatch);
      row.crossing = cell(registration.sites.crossing);
      row.body = cell(registration.sites.body);
      row.disk = cell(registration.sites.disk);
      row.ops = summary.Counter(registration.sites.ops).sum;
      if (row.queue.count == 0 && row.dispatch.count == 0) {
        continue;  // never dispatched while traced
      }

      // Live break-even: feed the observed stage means into the paper's §5
      // formulas (src/stats/break_even.h). The disk span — the modeled
      // kernel-side transfer/fault time — is the reference every technology
      // cost competes with.
      TelemetrySnapshot::BreakEvenRow be;
      be.graft = registration.name;
      switch (registration.shape) {
        case GraftShape::kEviction:
          // Graft lookup cost vs the page fault it avoids: how many lookups
          // until a saved fault pays for the grafted policy (§5.2).
          if (row.ops > 0 && row.disk.count > 0) {
            be.metric = "eviction_break_even";
            be.per_op_us = row.body.total_us / static_cast<double>(row.ops);
            be.reference_us = row.disk.mean_us();
            be.value = stats::EvictionBreakEven(be.reference_us, be.per_op_us);
            snapshot.break_even.push_back(be);
          }
          break;
        case GraftShape::kStream:
          // MD5 compute vs the 64KB transfer it overlaps: <1 means the
          // fingerprint hides inside the disk read (§5.5, Table 5).
          if (row.body.count > 0 && row.disk.count > 0) {
            be.metric = "md5_disk_ratio";
            be.per_op_us = row.body.mean_us();
            be.reference_us = row.disk.mean_us();
            be.value = stats::Md5DiskRatio(be.per_op_us, be.reference_us);
            snapshot.break_even.push_back(be);
          }
          break;
        case GraftShape::kBlackBox:
          // Bookkeeping cost per block write (§5.6).
          if (row.ops > 0 && row.body.count > 0) {
            be.metric = "per_block_overhead_us";
            be.per_op_us = stats::PerBlockOverheadUs(row.body.total_us, row.ops);
            be.reference_us = row.disk.count > 0 ? row.disk.mean_us() : 0.0;
            be.value = be.per_op_us;
            snapshot.break_even.push_back(be);
          }
          break;
      }
      snapshot.stages.push_back(std::move(row));
    }
  }
  return snapshot;
}

std::uint64_t Dispatcher::contained_faults() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->host.contained_faults();
  }
  return total;
}

std::uint64_t Dispatcher::disk_faults() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->host.disk_faults();
  }
  return total;
}

}  // namespace graftd
