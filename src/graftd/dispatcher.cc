#include "src/graftd/dispatcher.h"

#include <algorithm>
#include <utility>

#include "src/stats/harness.h"

namespace graftd {

Dispatcher::Dispatcher(DispatcherOptions options, const Clock* clock)
    : options_(options),
      supervisor_(options.policy, clock),
      wheel_(DeadlineWheel::Options{options.wheel_tick, 256}) {
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  shards_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<WorkerShard>(options_));
    shards_.back()->host.set_deadline_timer(&wheel_);
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, raw = shard.get()] { WorkerLoop(*raw); });
  }
}

Dispatcher::~Dispatcher() { Shutdown(); }

GraftId Dispatcher::RegisterStreamGraft(std::string name, StreamGraftFactory factory) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const GraftId id = supervisor_.Register(name);
  registry_.push_back(Registration{std::move(name), std::move(factory), nullptr});
  return id;
}

GraftId Dispatcher::RegisterBlackBoxGraft(std::string name, BlackBoxGraftFactory factory) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const GraftId id = supervisor_.Register(name);
  registry_.push_back(Registration{std::move(name), nullptr, std::move(factory)});
  return id;
}

bool Dispatcher::Submit(Invocation invocation) {
  const std::size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shards_[shard]->queue.Push(std::move(invocation))) {
    return true;
  }
  submitted_.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

bool Dispatcher::TrySubmit(Invocation invocation) {
  const std::size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shards_[shard]->queue.TryPush(std::move(invocation))) {
    return true;
  }
  submitted_.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

void Dispatcher::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return completed_.load(std::memory_order_acquire) ==
           submitted_.load(std::memory_order_acquire);
  });
}

void Dispatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
  }
  for (auto& shard : shards_) {
    shard->queue.Close();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
}

void Dispatcher::WorkerLoop(WorkerShard& shard) {
  std::vector<Invocation> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    if (shard.queue.PopBatch(batch, options_.max_batch) == 0) {
      return;  // closed and drained
    }
    for (const Invocation& invocation : batch) {
      RunOne(shard, invocation);
      completed_.fetch_add(1, std::memory_order_release);
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
    }
    drain_cv_.notify_all();
  }
}

GraftCounters& Dispatcher::StatsFor(WorkerShard& shard, GraftId id) {
  // Caller holds shard.stats_mu.
  if (shard.stats.size() <= id) {
    shard.stats.resize(id + 1);
  }
  return shard.stats[id];
}

void Dispatcher::RunOne(WorkerShard& shard, const Invocation& invocation) {
  const GraftId id = invocation.graft;

  switch (supervisor_.Admit(id)) {
    case AdmitDecision::kRejectDetached: {
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      ++StatsFor(shard, id).rejected_detached;
      return;
    }
    case AdmitDecision::kRejectQuarantined: {
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      ++StatsFor(shard, id).rejected_quarantined;
      return;
    }
    case AdmitDecision::kRejectDegraded: {
      // Shedding: the graft's device is failing, don't feed it more writes.
      std::lock_guard<std::mutex> lock(shard.stats_mu);
      ++StatsFor(shard, id).rejected_degraded;
      return;
    }
    case AdmitDecision::kRun:
      break;
  }

  // Worker-private instance, built on first use on this worker's thread.
  Registration registration;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    registration = registry_.at(id);
  }
  const bool is_stream = registration.stream_factory != nullptr;
  std::unique_ptr<core::BlackBoxGraft> blackbox;
  if (is_stream) {
    if (shard.stream_instances.size() <= id) {
      shard.stream_instances.resize(id + 1);
    }
    if (!shard.stream_instances[id]) {
      shard.stream_instances[id] = registration.stream_factory(&shard.host.preempt_token());
    }
  } else {
    // Fresh per invocation: the logical disk runs no cleaner (paper §5.6),
    // so each replay must start with an empty log or the device fills up.
    blackbox =
        registration.blackbox_factory(shard.host.disk_geometry(), &shard.host.preempt_token());
  }

  // The modeled disk feed: this worker is "waiting for the transfer", so
  // siblings overlap their own transfers and compute meanwhile.
  if (invocation.simulated_io.count() > 0) {
    std::this_thread::sleep_for(invocation.simulated_io);
  }

  const SupervisorPolicy& policy = supervisor_.policy();
  const std::chrono::microseconds budget =
      invocation.budget.count() > 0 ? invocation.budget : policy.default_budget;

  Outcome outcome = Outcome::kOk;
  std::uint64_t fuel_used = 0;
  stats::Timer timer;
  if (is_stream) {
    core::StreamGraft& graft = *shard.stream_instances[id];
    if (policy.fuel_budget >= 0) {
      graft.SetFuel(policy.fuel_budget);
    }
    const core::GraftHost::StreamRunResult result =
        shard.host.RunStreamGraft(graft, invocation.data, invocation.chunk, budget);
    if (policy.fuel_budget >= 0) {
      const std::int64_t remaining = graft.FuelRemaining();
      if (remaining >= 0 && remaining <= policy.fuel_budget) {
        fuel_used = static_cast<std::uint64_t>(policy.fuel_budget - remaining);
      } else if (remaining < 0) {
        // Exhaustion leaves the counter below zero: the whole budget burned.
        fuel_used = static_cast<std::uint64_t>(policy.fuel_budget);
      }
      graft.SetFuel(-1);  // do not meter the graft outside supervised runs
    }
    outcome = result.ok ? Outcome::kOk : (result.preempted ? Outcome::kPreempt : Outcome::kFault);
    if (invocation.on_stream_result) {
      invocation.on_stream_result(result);
    }
  } else {
    const core::GraftHost::BlackBoxResult result =
        shard.host.RunLogicalDisk(*blackbox, invocation.ldisk_writes, /*validate=*/false);
    if (!result.faulted) {
      outcome = Outcome::kOk;
    } else if (result.fault_class == core::GraftHost::FaultClass::kExtension) {
      outcome = Outcome::kFault;
    } else {
      // DiskFull, hard I/O failure, or an injected device fault: score it
      // against the device track so the supervisor degrades, not detaches.
      outcome = Outcome::kDiskFault;
    }
  }
  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(timer.ElapsedNs());

  supervisor_.OnOutcome(id, outcome);

  std::lock_guard<std::mutex> lock(shard.stats_mu);
  GraftCounters& stats = StatsFor(shard, id);
  ++stats.invocations;
  switch (outcome) {
    case Outcome::kOk: ++stats.ok; break;
    case Outcome::kFault: ++stats.faults; break;
    case Outcome::kPreempt: ++stats.preempts; break;
    case Outcome::kDiskFault: ++stats.disk_faults; break;
  }
  stats.fuel_used += fuel_used;
  stats.latency.Record(elapsed_ns);
  if (is_stream) {
    // Profiled VMs report cumulative counts per worker instance; overwrite
    // (not add) here, and let Snapshot's cross-shard Merge do the summing.
    auto profile = shard.stream_instances[id]->ExecutionProfile();
    if (!profile.empty()) {
      stats.vm_opcodes = std::move(profile);
    }
  }
}

TelemetrySnapshot Dispatcher::Snapshot() const {
  TelemetrySnapshot snapshot;
  const std::vector<Supervisor::GraftStatus> supervision = supervisor_.StatusAll();
  snapshot.grafts.resize(supervision.size());
  for (std::size_t id = 0; id < supervision.size(); ++id) {
    snapshot.grafts[id].name = supervision[id].name;
    snapshot.grafts[id].supervision = supervision[id];
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->stats_mu);
    for (std::size_t id = 0; id < shard->stats.size() && id < snapshot.grafts.size(); ++id) {
      snapshot.grafts[id].counters.Merge(shard->stats[id]);
    }
  }
  if (injector_ != nullptr) {
    snapshot.injections = injector_->Counters();
  }
  return snapshot;
}

std::uint64_t Dispatcher::contained_faults() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->host.contained_faults();
  }
  return total;
}

std::uint64_t Dispatcher::disk_faults() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->host.disk_faults();
  }
  return total;
}

}  // namespace graftd
