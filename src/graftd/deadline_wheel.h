// Shared deadline wheel: one timer thread for every budgeted invocation.
//
// core::GraftHost::RunWithBudget historically spawned a Watchdog thread per
// call — fine for a measurement harness, ruinous for a runtime dispatching
// thousands of budgeted invocations per second (thread create/join is ~10x
// the cost of an unsafe-C MD5 chunk). The wheel replaces that with a hashed
// timing wheel (Varghese & Lauck, SOSP '87): Arm() drops an entry into the
// slot `deadline` ticks ahead; a single thread advances the cursor once per
// tick and trips the PreemptTokens whose entries come due. Arm and Cancel
// are O(1) expected; the thread does O(entries due) work per tick.
//
// Granularity: deadlines round UP to the next tick (default 500us), so a
// budget is never enforced early, and at most one tick late plus scheduling
// noise. That is the right trade for preemption — the paper's budgets are
// milliseconds, not nanoseconds.

#ifndef GRAFTLAB_SRC_GRAFTD_DEADLINE_WHEEL_H_
#define GRAFTLAB_SRC_GRAFTD_DEADLINE_WHEEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/envs/preempt.h"

namespace graftd {

class DeadlineWheel final : public envs::DeadlineTimer {
 public:
  struct Options {
    std::chrono::microseconds tick{500};
    std::size_t slots = 256;
  };

  DeadlineWheel();  // default Options
  explicit DeadlineWheel(Options options);
  ~DeadlineWheel() override;

  DeadlineWheel(const DeadlineWheel&) = delete;
  DeadlineWheel& operator=(const DeadlineWheel&) = delete;

  // Arms `token` to be tripped once `deadline` (rounded up to a tick) has
  // elapsed. The token must stay alive until the ticket fires or is
  // cancelled.
  Ticket Arm(envs::PreemptToken& token, std::chrono::microseconds deadline) override;

  // Disarms; a no-op for tickets that already fired. After return the wheel
  // holds no reference to the token.
  void Cancel(Ticket ticket) override;

  std::uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }
  std::uint64_t armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    Ticket ticket = 0;
    envs::PreemptToken* token = nullptr;
    std::uint64_t rounds = 0;  // full wheel revolutions still to wait
  };

  void Run();

  const Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<Ticket, std::size_t> active_;  // ticket -> slot index
  std::size_t cursor_ = 0;
  Ticket next_ticket_ = 1;
  bool stop_ = false;
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> armed_{0};
  std::thread thread_;  // last member: joins before state is destroyed
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_DEADLINE_WHEEL_H_
