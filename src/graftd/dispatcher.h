// graftd dispatch engine: N producers -> fixed worker pool -> sharded hosts.
//
// Turns GraftLab's one-shot measurement harness into a runtime: producers
// submit graft invocations (stream/MD5 or black-box/logical-disk work);
// workers pull them in batches from bounded per-worker MPSC queues and run
// them against worker-private core::GraftHost shards, gated by the shared
// Supervisor and timed into worker-local telemetry.
//
// Sharding model: graft *registrations* are global (one GraftId, one policy
// record, one merged telemetry row), graft *instances* are per worker —
// each worker lazily constructs its own instance from the registered
// factory, wired to its own host's PreemptToken. Extension state therefore
// never crosses a thread boundary, which is what makes unsynchronized
// technologies (unsafe C, SFI sandboxes, the Minnow VM) dispatchable
// concurrently at all. The cross-thread surfaces — queues, supervisor,
// telemetry, the deadline wheel — are each individually synchronized.
//
// Budget enforcement: one shared DeadlineWheel serves every worker, so the
// per-invocation cost of a wall-clock budget is an O(1) Arm/Cancel instead
// of the historical thread spawn/join. Interpreted grafts additionally get
// the policy's fuel budget set before each invocation.

#ifndef GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_
#define GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/graft.h"
#include "src/core/graft_host.h"
#include "src/faultlab/injector.h"
#include "src/graftd/deadline_wheel.h"
#include "src/graftd/queue.h"
#include "src/graftd/supervisor.h"
#include "src/graftd/telemetry.h"
#include "src/tracelab/trace.h"
#include "src/vmsim/frame.h"

namespace graftd {

// Builds a worker-private stream graft; `preempt` is the owning worker
// host's token (wire it into compiled-safe technologies).
using StreamGraftFactory =
    std::function<std::unique_ptr<core::StreamGraft>(envs::PreemptToken* preempt)>;

// Builds a worker-private black-box graft over the worker host's geometry.
using BlackBoxGraftFactory = std::function<std::unique_ptr<core::BlackBoxGraft>(
    const ldisk::Geometry& geometry, envs::PreemptToken* preempt)>;

// Builds a worker-private eviction (Prioritization) graft; the worker owns
// the LRU rig it is pointed at (see WorkerShard::EvictionRig).
using EvictionGraftFactory =
    std::function<std::unique_ptr<core::PrioritizationGraft>(envs::PreemptToken* preempt)>;

// One unit of work. Stream invocations fingerprint `data` in `chunk`
// pieces; black-box invocations replay `ldisk_writes` block writes;
// eviction invocations walk the worker's LRU rig `eviction_lookups` times.
// The caller keeps `data` alive until the invocation completes (Drain()).
struct Invocation {
  GraftId graft = 0;
  streamk::Bytes data{};
  std::size_t chunk = 64u << 10;
  std::uint64_t ldisk_writes = 0;
  std::uint64_t eviction_lookups = 0;
  // Wall-clock budget override; 0 uses the supervisor policy default.
  std::chrono::microseconds budget{0};
  // Models the time the kernel spends feeding this stream from the disk
  // (the paper's Table 5 framing: MD5 rides along with a 64KB-per-transfer
  // read). Workers wait this long before computing, so dispatch overlaps
  // I/O across workers exactly as the paper overlaps MD5 with the disk.
  std::chrono::microseconds simulated_io{0};
  // Optional completion hook, called on the worker thread.
  std::function<void(const core::GraftHost::StreamRunResult&)> on_stream_result;

  // Stamped by Submit/TrySubmit when a tracer is attached and enabled:
  // the invocation's trace id and the submit timestamp the worker turns
  // into the cross-thread queue-wait span. Not caller fields.
  std::uint64_t trace_id = 0;
  std::uint64_t submit_ns = 0;
};

struct DispatcherOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;
  std::size_t max_batch = 32;
  SupervisorPolicy policy{};
  core::GraftHostOptions host_options{};
  std::chrono::microseconds wheel_tick{500};
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options = DispatcherOptions{},
                      const Clock* clock = RealClock::Instance());
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Registration is not synchronized against dispatch: register every graft
  // before the first Submit.
  GraftId RegisterStreamGraft(std::string name, StreamGraftFactory factory);
  GraftId RegisterBlackBoxGraft(std::string name, BlackBoxGraftFactory factory);
  GraftId RegisterEvictionGraft(std::string name, EvictionGraftFactory factory);

  // Round-robin submit. Submit blocks on a full queue (and is the fairness
  // choice for benchmarks); TrySubmit returns false instead — the
  // backpressure signal for producers that can shed load.
  bool Submit(Invocation invocation);
  bool TrySubmit(Invocation invocation);

  // Blocks until every submitted invocation has completed.
  void Drain();

  // Drains nothing: closes the queues, joins the workers. Idempotent;
  // called by the destructor.
  void Shutdown();

  // Merged cross-worker view; safe to call while dispatching.
  TelemetrySnapshot Snapshot() const;

  Supervisor& supervisor() { return supervisor_; }
  DeadlineWheel& deadline_wheel() { return wheel_; }
  std::size_t workers() const { return shards_.size(); }

  // Total contained faults across all host shards.
  std::uint64_t contained_faults() const;

  // Total device faults (DiskFull, hard errors, injections) across shards.
  std::uint64_t disk_faults() const;

  // Attaches the fault injector whose per-site counters Snapshot() exports.
  // Not synchronized against dispatch: attach before the first Submit.
  void set_injector(const faultlab::Injector* injector) { injector_ = injector; }

  // Attaches the tracer: invocations become nested queue/dispatch/crossing/
  // body/disk spans, supervisor transitions and injections become instants,
  // and Snapshot() folds the aggregated stage timings plus the live
  // break-even panel into the telemetry. The tracer must outlive the
  // dispatcher. Not synchronized against dispatch: attach before the first
  // Submit (and after the grafts are registered, or register after — sites
  // are interned on both paths).
  void set_tracer(tracelab::Tracer* tracer);

 private:
  // Pre-interned per-graft stage sites ("queue:<name>", ...), resolved at
  // registration/attach time so the hot path never touches the intern map.
  struct StageSites {
    tracelab::SiteId queue = 0;
    tracelab::SiteId dispatch = 0;
    tracelab::SiteId crossing = 0;
    tracelab::SiteId body = 0;
    tracelab::SiteId disk = 0;
    tracelab::SiteId ops = 0;
  };

  enum class GraftShape { kStream, kBlackBox, kEviction };

  struct Registration {
    std::string name;
    GraftShape shape = GraftShape::kStream;
    StreamGraftFactory stream_factory;
    BlackBoxGraftFactory blackbox_factory;
    EvictionGraftFactory eviction_factory;
    StageSites sites;
  };

  // Worker-private kernel furniture for eviction grafts: the LRU queue the
  // graft walks, shaped like bench/graft_measures.h MeasureEvictionUs (64
  // hot pages, 128 cold frames) so live per-lookup cost is comparable to
  // the offline benches.
  struct EvictionRig {
    std::unique_ptr<core::PrioritizationGraft> graft;
    std::vector<vmsim::Frame> frames;
    vmsim::LruQueue queue;
  };

  struct WorkerShard {
    explicit WorkerShard(const DispatcherOptions& options)
        : queue(options.queue_capacity), host(options.host_options) {}

    BoundedMpscQueue<Invocation> queue;
    core::GraftHost host;
    // Lazily built worker-private stream instances, indexed by GraftId.
    // (Black-box grafts are built fresh per invocation: the log-structured
    // disk has no cleaner, so reuse would run the device out of segments.)
    std::vector<std::unique_ptr<core::StreamGraft>> stream_instances;
    // Lazily built worker-private eviction rigs, indexed by GraftId.
    std::vector<std::unique_ptr<EvictionRig>> eviction_rigs;
    // Worker-local counters; the mutex is uncontended except while a
    // Snapshot() reader is merging.
    mutable std::mutex stats_mu;
    std::vector<GraftCounters> stats;
    std::thread thread;
  };

  void WorkerLoop(WorkerShard& shard);
  void RunOne(WorkerShard& shard, const Invocation& invocation);
  GraftCounters& StatsFor(WorkerShard& shard, GraftId id);
  GraftId Register(Registration registration);
  void InternSites(Registration& registration);
  void StampTrace(Invocation& invocation);

  const DispatcherOptions options_;
  Supervisor supervisor_;
  DeadlineWheel wheel_;
  const faultlab::Injector* injector_ = nullptr;
  tracelab::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<WorkerShard>> shards_;

  mutable std::mutex registry_mu_;
  std::vector<Registration> registry_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> next_shard_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool shut_down_ = false;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_
