// graftd dispatch engine: N producers -> fixed worker pool -> sharded hosts.
//
// Turns GraftLab's one-shot measurement harness into a runtime: producers
// submit graft invocations (stream/MD5 or black-box/logical-disk work);
// workers pull them in batches from per-worker dispatch lanes and run
// them against worker-private core::GraftHost shards, gated by the shared
// Supervisor and timed into worker-local telemetry.
//
// The submission/dispatch hot path is built to keep the harness's own
// crossing cost out of the numbers it reports (the paper's fixed
// per-invocation toll, ISSUE 5):
//
//   * lock-free dispatch lanes — per-producer SPSC rings swept by each
//     worker (src/graftd/lanes.h), with the mutex BoundedMpscQueue kept as
//     a selectable fallback (DispatcherOptions::lane_mode);
//   * batched submission — SubmitBatch/TrySubmitBatch amortize one
//     synchronization episode (one wake check, one close bracket) over a
//     whole span of invocations, and workers wait adaptively
//     (bounded spin, then park on a waiter-counted condvar);
//   * an inline fast path — when the submitting thread targets an idle
//     shard and the graft is registered reentrant-safe, the invocation
//     runs on the caller's thread and skips the queue entirely: the moral
//     equivalent of the paper's "compiled into the kernel" column.
//
// All three paths carry full tracelab span attribution (queue-wait,
// crossing, body) and go through the same supervisor admission/outcome
// scoring, so quarantine/degrade semantics are path-independent.
//
// Sharding model: graft *registrations* are global (one GraftId, one policy
// record, one merged telemetry row), graft *instances* are per worker —
// each worker lazily constructs its own instance from the registered
// factory, wired to its own host's PreemptToken. Extension state is
// normally worker-private; the inline fast path may touch it from the
// submitting thread, but only under the shard's execution claim (an atomic
// busy flag that serializes inline runs against worker batches), which is
// why it is restricted to grafts explicitly marked reentrant-safe.
//
// Budget enforcement: one shared DeadlineWheel serves every worker, so the
// per-invocation cost of a wall-clock budget is an O(1) Arm/Cancel instead
// of the historical thread spawn/join. Interpreted grafts additionally get
// the policy's fuel budget set before each invocation.

#ifndef GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_
#define GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/graft.h"
#include "src/core/graft_host.h"
#include "src/faultlab/injector.h"
#include "src/graftd/deadline_wheel.h"
#include "src/graftd/lanes.h"
#include "src/graftd/queue.h"
#include "src/graftd/supervisor.h"
#include "src/graftd/telemetry.h"
#include "src/tracelab/trace.h"
#include "src/vmsim/frame.h"

namespace graftd {

// Builds a worker-private stream graft; `preempt` is the owning worker
// host's token (wire it into compiled-safe technologies).
using StreamGraftFactory =
    std::function<std::unique_ptr<core::StreamGraft>(envs::PreemptToken* preempt)>;

// Builds a worker-private black-box graft over the worker host's geometry.
using BlackBoxGraftFactory = std::function<std::unique_ptr<core::BlackBoxGraft>(
    const ldisk::Geometry& geometry, envs::PreemptToken* preempt)>;

// Builds a worker-private eviction (Prioritization) graft; the worker owns
// the LRU rig it is pointed at (see WorkerShard::EvictionRig).
using EvictionGraftFactory =
    std::function<std::unique_ptr<core::PrioritizationGraft>(envs::PreemptToken* preempt)>;

// Terminal outcome of one invocation, delivered through
// Invocation::on_complete on the executing thread (a worker, or the
// submitter itself on the inline fast path). Unlike on_stream_result —
// which only fires when a stream graft actually ran — on_complete fires
// exactly once for every invocation that was accepted by Submit/
// SubmitBatch, including supervisor rejections: the hook a network
// front-end needs to route a reply (or a shed notice) back to the
// originating connection without leaking sessions.
enum class CompletionStatus : std::uint8_t {
  kOk,
  kFault,      // contained extension fault
  kPreempt,    // wall-clock budget or fuel exhausted
  kDiskFault,  // the backing device failed
  kRejectedQuarantined,
  kRejectedDetached,
  kRejectedDegraded,  // shed: the graft's device is failing
  kExpired,           // deadline passed in queue; the body never ran
};

struct Completion {
  CompletionStatus status = CompletionStatus::kOk;
  // Stream grafts: the digest the graft produced (valid when kOk; zero for
  // other shapes and for rejections).
  md5::Digest digest{};
  std::uint64_t elapsed_ns = 0;  // service time; 0 for rejections
};

// One unit of work. Stream invocations fingerprint `data` in `chunk`
// pieces; black-box invocations replay `ldisk_writes` block writes;
// eviction invocations walk the worker's LRU rig `eviction_lookups` times.
// The caller keeps `data` alive until the invocation completes (Drain()).
struct Invocation {
  GraftId graft = 0;
  streamk::Bytes data{};
  std::size_t chunk = 64u << 10;
  std::uint64_t ldisk_writes = 0;
  std::uint64_t eviction_lookups = 0;
  // Wall-clock budget override; 0 uses the supervisor policy default.
  std::chrono::microseconds budget{0};
  // Absolute deadline in steady-clock nanoseconds (the dispatcher clock's
  // epoch); 0 = none. Work whose deadline has passed when a worker picks it
  // up is shed with CompletionStatus::kExpired *before* the graft body runs
  // — the wire-to-worker propagation of a client's per-request timeout.
  std::uint64_t deadline_ns = 0;
  // Models the time the kernel spends feeding this stream from the disk
  // (the paper's Table 5 framing: MD5 rides along with a 64KB-per-transfer
  // read). Workers wait this long before computing, so dispatch overlaps
  // I/O across workers exactly as the paper overlaps MD5 with the disk.
  std::chrono::microseconds simulated_io{0};
  // Optional completion hook, called on the executing thread (a worker,
  // or the submitter itself on the inline fast path).
  std::function<void(const core::GraftHost::StreamRunResult&)> on_stream_result;
  // Optional terminal hook: fires exactly once per accepted invocation,
  // on every RunOne path including supervisor rejections (see Completion).
  std::function<void(const Completion&)> on_complete;

  // Stamped by Submit/TrySubmit when a tracer is attached and enabled:
  // the invocation's trace id and the submit timestamp the worker turns
  // into the cross-thread queue-wait span. Not caller fields.
  std::uint64_t trace_id = 0;
  std::uint64_t submit_ns = 0;
};

// Which submission/dispatch lane implementation moves invocations from
// producers to workers.
enum class LaneMode : std::uint8_t {
  kMutex,  // BoundedMpscQueue: mutex + condvar, the seed configuration
  kSpsc,   // per-producer lock-free SPSC lanes with spin-then-park workers
};

// Per-registration properties of a graft's technology.
struct GraftTraits {
  // The graft's instances tolerate being invoked from different threads
  // (never concurrently — the shard's execution claim serializes), so the
  // submitting thread may run it inline when the target shard is idle.
  // Safe for the paper's technologies, whose extension state is confined
  // to the instance; leave false for grafts that cache thread-local state.
  bool reentrant_safe = false;
};

struct DispatcherOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;  // per mutex queue / per SPSC lane
  std::size_t max_batch = 32;
  // Lane implementation for the producer->worker handoff. kSpsc is the
  // lock-free hot path; kMutex keeps the seed queue (and is what the
  // throughput gate compares against).
  LaneMode lane_mode = LaneMode::kSpsc;
  // kMutex only: restore the seed queue's unconditional notify-per-push
  // (no waiter counting). The throughput bench uses this as the historical
  // baseline its crossing-collapse gate is measured against.
  bool mutex_eager_notify = false;
  // Restore the rest of the seed's per-invocation cost model: RunOne
  // re-copies the whole Registration under the registry mutex on every
  // invocation, and the supervisor takes its mutex for every Admit and
  // OnOutcome (policy.lock_free_fast_path is forced off). Together with
  // mutex_eager_notify this reconstructs the pre-collapse hot path so the
  // throughput bench's baseline row measures what the seed actually did;
  // production callers leave it false.
  bool seed_compat = false;
  // Empty sweeps a worker burns before parking (lane mode only): the
  // adaptive spin budget that keeps the wake syscall off the hot path
  // while bounding idle burn. The first 64 sweeps busy-poll (CpuRelax);
  // the rest donate their timeslice (yield), so an oversubscribed host
  // pays scheduler churn, not a spinning core, before the park.
  std::size_t spin_sweeps = 128;
  // Master switch for the inline fast path (per-graft opt-in still
  // required via GraftTraits::reentrant_safe).
  bool inline_fast_path = true;
  SupervisorPolicy policy{};
  core::GraftHostOptions host_options{};
  std::chrono::microseconds wheel_tick{500};
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options = DispatcherOptions{},
                      const Clock* clock = RealClock::Instance());
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Registration is not synchronized against dispatch: register every graft
  // before the first Submit.
  GraftId RegisterStreamGraft(std::string name, StreamGraftFactory factory,
                              GraftTraits traits = GraftTraits{});
  GraftId RegisterBlackBoxGraft(std::string name, BlackBoxGraftFactory factory,
                                GraftTraits traits = GraftTraits{});
  GraftId RegisterEvictionGraft(std::string name, EvictionGraftFactory factory,
                                GraftTraits traits = GraftTraits{});

  // Round-robin submit. Submit blocks on a full queue (and is the fairness
  // choice for benchmarks); TrySubmit returns false instead — the
  // backpressure signal for producers that can shed load. Both may run the
  // invocation inline on the calling thread (reentrant-safe graft, idle
  // shard); a true return means the invocation was executed or durably
  // queued either way.
  bool Submit(Invocation invocation);
  bool TrySubmit(Invocation invocation);

  // Batched submission: stamps and hands the whole span to one shard in a
  // single synchronization episode (one close bracket, at most one worker
  // wake). Accepted invocations are moved from; returns how many were
  // accepted. SubmitBatch blocks for lane space and is short only when the
  // dispatcher shuts down mid-batch; TrySubmitBatch stops at the first
  // full lane (partial acceptance is the backpressure signal). Batches
  // never take the inline fast path — batching amortizes the queue
  // crossing instead of skipping it.
  std::size_t SubmitBatch(std::span<Invocation> batch);
  std::size_t TrySubmitBatch(std::span<Invocation> batch);

  // Blocks until every accepted invocation has completed.
  void Drain();

  // Drains nothing: closes the queues, joins the workers, waits out any
  // in-flight inline run. Idempotent; called by the destructor.
  void Shutdown();

  // Merged cross-worker view; safe to call while dispatching.
  TelemetrySnapshot Snapshot() const;

  Supervisor& supervisor() { return supervisor_; }
  DeadlineWheel& deadline_wheel() { return wheel_; }
  std::size_t workers() const { return shards_.size(); }

  // The dispatcher clock as absolute nanoseconds — the timebase
  // Invocation::deadline_ns is compared against. Front-ends stamp deadlines
  // with this (not a raw steady_clock read) so fake-clock tests line up.
  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock_->Now().time_since_epoch())
            .count());
  }

  // Invocations shed with kExpired before their body ran, across workers.
  std::uint64_t shed_expired() const { return shed_expired_.load(std::memory_order_relaxed); }

  // Total contained faults across all host shards.
  std::uint64_t contained_faults() const;

  // Total device faults (DiskFull, hard errors, injections) across shards.
  std::uint64_t disk_faults() const;

  // Attaches the fault injector whose per-site counters Snapshot() exports.
  // Not synchronized against dispatch: attach before the first Submit.
  void set_injector(const faultlab::Injector* injector) { injector_ = injector; }

  // Observability seam: fires exactly once per invocation that reached
  // RunOne, on the executing thread, with the terminal status and service
  // time (0 for rejections/sheds). This is the obslab plane's feed — the
  // flight-recorder ring and disk-fault snapshot triggers hang off it —
  // but the dispatcher only sees a std::function, so the dependency
  // direction stays graftd <- obslab. Not synchronized against dispatch:
  // set before the first Submit. Keep the hook lock-free and cheap; it
  // runs inside the dispatch hot path.
  void set_outcome_hook(
      std::function<void(GraftId, CompletionStatus, std::uint64_t elapsed_ns)> hook) {
    outcome_hook_ = std::move(hook);
  }

  // Attaches the tracer: invocations become nested queue/dispatch/crossing/
  // body/disk spans, supervisor transitions and injections become instants,
  // and Snapshot() folds the aggregated stage timings plus the live
  // break-even panel into the telemetry. The tracer must outlive the
  // dispatcher. Not synchronized against dispatch: attach before the first
  // Submit (and after the grafts are registered, or register after — sites
  // are interned on both paths).
  void set_tracer(tracelab::Tracer* tracer);

 private:
  // Pre-interned per-graft stage sites ("queue:<name>", ...), resolved at
  // registration/attach time so the hot path never touches the intern map.
  struct StageSites {
    tracelab::SiteId queue = 0;
    tracelab::SiteId dispatch = 0;
    tracelab::SiteId crossing = 0;
    tracelab::SiteId body = 0;
    tracelab::SiteId disk = 0;
    tracelab::SiteId ops = 0;
  };

  enum class GraftShape { kStream, kBlackBox, kEviction };

  struct Registration {
    std::string name;
    GraftShape shape = GraftShape::kStream;
    GraftTraits traits{};
    StreamGraftFactory stream_factory;
    BlackBoxGraftFactory blackbox_factory;
    EvictionGraftFactory eviction_factory;
    StageSites sites;
  };

  // Worker-private kernel furniture for eviction grafts: the LRU queue the
  // graft walks, shaped like bench/graft_measures.h MeasureEvictionUs (64
  // hot pages, 128 cold frames) so live per-lookup cost is comparable to
  // the offline benches.
  struct EvictionRig {
    std::unique_ptr<core::PrioritizationGraft> graft;
    std::vector<vmsim::Frame> frames;
    vmsim::LruQueue queue;
  };

  struct WorkerShard {
    explicit WorkerShard(const DispatcherOptions& options)
        : queue(options.queue_capacity, options.mutex_eager_notify),
          lanes(options.queue_capacity, options.spin_sweeps),
          host(options.host_options) {}

    BoundedMpscQueue<Invocation> queue;       // lane_mode == kMutex
    LaneSet<Invocation> lanes;                // lane_mode == kSpsc
    // Execution claim: held by the worker while running a batch, or by a
    // submitting thread while running an invocation inline. Never held
    // while blocked on the lanes, so claim waits are bounded by one
    // invocation/batch body.
    std::atomic<bool> busy{false};
    // Inline executions on this shard. Written only by the claim holder
    // (plain load+store, no RMW — the claim CAS orders successive writers);
    // Snapshot reads it relaxed and sums across shards.
    std::atomic<std::uint64_t> inline_hits{0};
    core::GraftHost host;
    // Lazily built worker-private stream instances, indexed by GraftId.
    // (Black-box grafts are built fresh per invocation: the log-structured
    // disk has no cleaner, so reuse would run the device out of segments.)
    std::vector<std::unique_ptr<core::StreamGraft>> stream_instances;
    // Lazily built worker-private eviction rigs, indexed by GraftId.
    std::vector<std::unique_ptr<EvictionRig>> eviction_rigs;
    // Worker-local counters; the mutex is uncontended except while a
    // Snapshot() reader is merging.
    mutable std::mutex stats_mu;
    std::vector<GraftCounters> stats;
    DispatchCounters dispatch;  // batch sizes; guarded by stats_mu
    std::thread thread;
  };

  void WorkerLoop(WorkerShard& shard);
  void RunOne(WorkerShard& shard, const Invocation& invocation);
  bool TryRunInline(WorkerShard& shard, Invocation& invocation);
  void ClaimShard(WorkerShard& shard);
  void NotifyDrain();
  LaneSet<Invocation>::LaneHandle& LaneFor(std::size_t index, WorkerShard& shard);
  GraftCounters& StatsFor(WorkerShard& shard, GraftId id);
  GraftId Register(Registration registration);
  void InternSites(Registration& registration);
  void StampTrace(Invocation& invocation);

  const DispatcherOptions options_;
  const std::uint64_t epoch_;  // distinguishes dispatchers for lane caches
  const Clock* clock_;         // deadline expiry checks in RunOne
  Supervisor supervisor_;
  DeadlineWheel wheel_;
  const faultlab::Injector* injector_ = nullptr;
  tracelab::Tracer* tracer_ = nullptr;
  std::function<void(GraftId, CompletionStatus, std::uint64_t)> outcome_hook_;
  std::vector<std::unique_ptr<WorkerShard>> shards_;

  mutable std::mutex registry_mu_;
  // Append-only before dispatch begins; read lock-free on the hot path
  // (registration-before-first-Submit is the documented contract).
  std::vector<Registration> registry_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<std::uint64_t> inline_misses_{0};
  std::atomic<std::uint64_t> shed_expired_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint32_t> drain_waiters_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool shut_down_ = false;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_DISPATCHER_H_
