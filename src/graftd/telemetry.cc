#include "src/graftd/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/stats/table.h"

namespace graftd {

namespace {

std::string FormatUs(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string LatencyHistogram::Summary() const {
  if (count_ == 0) {
    return "-";
  }
  return "p50<=" + FormatUs(PercentileUs(50)) + " p90<=" + FormatUs(PercentileUs(90)) +
         " p99<=" + FormatUs(PercentileUs(99)) + " max=" +
         FormatUs(static_cast<double>(max_ns_) / 1e3);
}

std::string TelemetrySnapshot::ToText() const {
  stats::Table table({"graft", "state", "inv", "ok", "fault", "preempt", "disk", "q-rej", "d-rej",
                      "shed", "quar", "readm", "fuel", "mean", "latency"});
  for (const Row& row : grafts) {
    const GraftCounters& c = row.counters;
    table.AddRow({row.name, GraftStateName(row.supervision.state), std::to_string(c.invocations),
                  std::to_string(c.ok), std::to_string(c.faults), std::to_string(c.preempts),
                  std::to_string(c.disk_faults), std::to_string(c.rejected_quarantined),
                  std::to_string(c.rejected_detached), std::to_string(c.rejected_degraded),
                  std::to_string(row.supervision.quarantines),
                  std::to_string(row.supervision.readmissions),
                  c.fuel_used == 0 ? "-" : std::to_string(c.fuel_used),
                  c.latency.count() == 0 ? "-" : FormatUs(c.latency.mean_us()),
                  c.latency.Summary()});
  }
  std::string text = table.ToString();
  // Opcode-frequency profiles (profiled Minnow grafts): one table per graft,
  // descending — the evidence trail for the superinstruction fusion set.
  for (const Row& row : grafts) {
    if (row.counters.vm_opcodes.empty()) {
      continue;
    }
    auto sorted = row.counters.vm_opcodes;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    stats::Table ops({"vm opcode (" + row.name + ")", "retired"});
    std::size_t shown = 0;
    for (const auto& [name, count] : sorted) {
      if (++shown > 12) {
        break;
      }
      ops.AddRow({name, std::to_string(count)});
    }
    text += "\n" + ops.ToString();
  }
  if (!injections.empty()) {
    stats::Table sites({"injection site", "hits", "injected"});
    for (const auto& site : injections) {
      sites.AddRow({site.site, std::to_string(site.hits), std::to_string(site.injected)});
    }
    text += "\n" + sites.ToString();
  }
  return text;
}

std::string TelemetrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Row& row : grafts) {
    if (!first) {
      out << ",";
    }
    first = false;
    const GraftCounters& c = row.counters;
    AppendJsonString(out, row.name);
    out << ":{\"state\":";
    AppendJsonString(out, GraftStateName(row.supervision.state));
    out << ",\"invocations\":" << c.invocations << ",\"ok\":" << c.ok
        << ",\"faults\":" << c.faults << ",\"preempts\":" << c.preempts
        << ",\"disk_faults\":" << c.disk_faults
        << ",\"rejected_quarantined\":" << c.rejected_quarantined
        << ",\"rejected_detached\":" << c.rejected_detached
        << ",\"rejected_degraded\":" << c.rejected_degraded
        << ",\"quarantines\":" << row.supervision.quarantines
        << ",\"readmissions\":" << row.supervision.readmissions
        << ",\"degradations\":" << row.supervision.degradations
        << ",\"recoveries\":" << row.supervision.recoveries
        << ",\"fuel_used\":" << c.fuel_used << ",\"latency\":{\"count\":" << c.latency.count()
        << ",\"mean_us\":" << c.latency.mean_us()
        << ",\"p50_us\":" << c.latency.PercentileUs(50)
        << ",\"p90_us\":" << c.latency.PercentileUs(90)
        << ",\"p99_us\":" << c.latency.PercentileUs(99)
        << ",\"max_us\":" << static_cast<double>(c.latency.max_ns()) / 1e3 << "}";
    if (!c.vm_opcodes.empty()) {
      out << ",\"vm_opcodes\":{";
      bool first_op = true;
      for (const auto& [name, count] : c.vm_opcodes) {
        if (!first_op) {
          out << ",";
        }
        first_op = false;
        AppendJsonString(out, name);
        out << ":" << count;
      }
      out << "}";
    }
    out << "}";
  }
  if (!injections.empty()) {
    if (!first) {
      out << ",";
    }
    out << "\"__faultlab__\":[";
    bool first_site = true;
    for (const auto& site : injections) {
      if (!first_site) {
        out << ",";
      }
      first_site = false;
      out << "{\"site\":";
      AppendJsonString(out, site.site);
      out << ",\"hits\":" << site.hits << ",\"injected\":" << site.injected << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace graftd
