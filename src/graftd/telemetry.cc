#include "src/graftd/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/stats/table.h"
#include "src/tracelab/json_util.h"

namespace graftd {

namespace {

std::string FormatUs(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

// All names (grafts, opcodes, injection sites) flow through the shared
// tracelab escaper so telemetry JSON and trace JSON agree on hostile input.
void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << tracelab::JsonString(s);
}

std::string StageCellText(const TelemetrySnapshot::StageCell& cell) {
  if (cell.count == 0) {
    return "-";
  }
  return FormatUs(cell.mean_us()) + " x" + std::to_string(cell.count);
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string BatchHistogram::Summary() const {
  if (batches == 0) {
    return "-";
  }
  std::string out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const std::uint64_t lo = 1ull << i;
    const std::uint64_t hi = (1ull << (i + 1)) - 1;
    if (!out.empty()) {
      out += " ";
    }
    out += std::to_string(lo);
    if (lo != hi) {
      out += "-";
      out += std::to_string(hi);
    }
    out += ":";
    out += std::to_string(counts[i]);
  }
  return out;
}

std::string LatencyHistogram::Summary() const {
  if (count_ == 0) {
    return "-";
  }
  return "p50<=" + FormatUs(PercentileUs(50)) + " p90<=" + FormatUs(PercentileUs(90)) +
         " p99<=" + FormatUs(PercentileUs(99)) + " p999<=" + FormatUs(PercentileUs(99.9)) +
         " max=" + FormatUs(static_cast<double>(max_ns_) / 1e3);
}

std::string TelemetrySnapshot::ToText() const {
  stats::Table table({"graft", "state", "inv", "ok", "fault", "preempt", "disk", "q-rej", "d-rej",
                      "shed", "expired", "quar", "readm", "fuel", "mean", "latency"});
  for (const Row& row : grafts) {
    const GraftCounters& c = row.counters;
    table.AddRow({row.name, GraftStateName(row.supervision.state), std::to_string(c.invocations),
                  std::to_string(c.ok), std::to_string(c.faults), std::to_string(c.preempts),
                  std::to_string(c.disk_faults), std::to_string(c.rejected_quarantined),
                  std::to_string(c.rejected_detached), std::to_string(c.rejected_degraded),
                  std::to_string(c.shed_expired), std::to_string(row.supervision.quarantines),
                  std::to_string(row.supervision.readmissions),
                  c.fuel_used == 0 ? "-" : std::to_string(c.fuel_used),
                  c.latency.count() == 0 ? "-" : FormatUs(c.latency.mean_us()),
                  c.latency.Summary()});
  }
  std::string text = table.ToString();
  // Opcode-frequency profiles (profiled Minnow grafts): one table per graft,
  // descending — the evidence trail for the superinstruction fusion set.
  for (const Row& row : grafts) {
    if (row.counters.vm_opcodes.empty()) {
      continue;
    }
    auto sorted = row.counters.vm_opcodes;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    stats::Table ops({"vm opcode (" + row.name + ")", "retired"});
    std::size_t shown = 0;
    for (const auto& [name, count] : sorted) {
      if (++shown > 12) {
        break;
      }
      ops.AddRow({name, std::to_string(count)});
    }
    text += "\n";
    text += ops.ToString();
  }
  if (!dispatch.workers.empty()) {
    stats::Table lanes({"dispatch (" + dispatch.lane_mode + ")", "batches", "deq", "mean",
                        "batch sizes", "spin", "park", "ntfy", "skip", "p-wait", "lanes"});
    for (const WorkerLaneRow& row : dispatch.workers) {
      char mean[32];
      std::snprintf(mean, sizeof(mean), "%.1f", row.batch_sizes.mean());
      lanes.AddRow({"worker" + std::to_string(row.worker), std::to_string(row.batches),
                    std::to_string(row.dequeued), row.batches == 0 ? "-" : mean,
                    row.batch_sizes.Summary(), std::to_string(row.spin_wakeups),
                    std::to_string(row.parks), std::to_string(row.notifies_sent),
                    std::to_string(row.notifies_skipped), std::to_string(row.producer_waits),
                    std::to_string(row.lanes)});
    }
    text += "\n";
    text += lanes.ToString();
    text += "inline fast path: " + std::to_string(dispatch.inline_hits) + " hits, " +
            std::to_string(dispatch.inline_misses) + " misses (claim lost -> queued)\n";
    text += "deadline shed: " + std::to_string(dispatch.shed_expired) +
            " expired before the body ran\n";
  }
  if (netfront.present) {
    stats::Table tenants_table({"netfront tenant", "weight", "accepted", "ok", "err", "shed-deg",
                                "shed-over", "quota-rej", "brk-open", "deduped"});
    for (const NetfrontSection::TenantRow& row : netfront.tenants) {
      tenants_table.AddRow({row.name, std::to_string(row.weight), std::to_string(row.accepted),
                            std::to_string(row.completed_ok), std::to_string(row.completed_error),
                            std::to_string(row.shed_degraded), std::to_string(row.shed_overload),
                            std::to_string(row.quota_rejected), std::to_string(row.breaker_open),
                            std::to_string(row.retries_deduped)});
    }
    text += "\n";
    text += tenants_table.ToString();
    stats::Table io_table({"netfront io", "frames", "batches", "mean", "batch sizes", "wakeups"});
    for (const NetfrontSection::IoThreadRow& row : netfront.io_threads) {
      char mean[32];
      std::snprintf(mean, sizeof(mean), "%.1f", row.submit_sizes.mean());
      io_table.AddRow({"io" + std::to_string(row.thread), std::to_string(row.decoded_frames),
                       std::to_string(row.submit_batches),
                       row.submit_batches == 0 ? "-" : mean, row.submit_sizes.Summary(),
                       std::to_string(row.wakeups)});
    }
    text += "\n";
    text += io_table.ToString();
    char totals[256];
    std::snprintf(totals, sizeof(totals),
                  "netfront: %llu active conns (%llu opened, %llu closed), %llu frame errors, "
                  "%llu read pauses, %llu slow-reader closes, %lluB in / %lluB out\n",
                  static_cast<unsigned long long>(netfront.connections_active),
                  static_cast<unsigned long long>(netfront.connections_opened),
                  static_cast<unsigned long long>(netfront.connections_closed),
                  static_cast<unsigned long long>(netfront.frame_errors),
                  static_cast<unsigned long long>(netfront.read_pauses),
                  static_cast<unsigned long long>(netfront.slow_reader_closes),
                  static_cast<unsigned long long>(netfront.bytes_in),
                  static_cast<unsigned long long>(netfront.bytes_out));
    text += totals;
    if (netfront.io_thread_crashes > 0) {
      char chaos[160];
      std::snprintf(chaos, sizeof(chaos),
                    "netfront chaos: %llu io-thread crashes, %llu conns adopted, "
                    "%llu staged orphans\n",
                    static_cast<unsigned long long>(netfront.io_thread_crashes),
                    static_cast<unsigned long long>(netfront.conns_adopted),
                    static_cast<unsigned long long>(netfront.crash_orphans));
      text += chaos;
    }
  }
  if (!injections.empty()) {
    stats::Table sites({"injection site", "hits", "injected"});
    for (const auto& site : injections) {
      sites.AddRow({site.site, std::to_string(site.hits), std::to_string(site.injected)});
    }
    text += "\n";
    text += sites.ToString();
  }
  if (traced) {
    stats::Table trace({"trace stage (mean x count)", "queue", "dispatch", "crossing", "body",
                        "disk", "ops"});
    for (const StageRow& row : stages) {
      trace.AddRow({row.graft, StageCellText(row.queue), StageCellText(row.dispatch),
                    StageCellText(row.crossing), StageCellText(row.body), StageCellText(row.disk),
                    row.ops == 0 ? "-" : std::to_string(row.ops)});
    }
    text += "\n";
    text += trace.ToString();
    if (!break_even.empty()) {
      stats::Table panel({"break-even (live)", "metric", "per-op", "reference", "value"});
      for (const BreakEvenRow& row : break_even) {
        panel.AddRow({row.graft, row.metric, FormatUs(row.per_op_us), FormatUs(row.reference_us),
                      FormatValue(row.value)});
      }
      text += "\n";
    text += panel.ToString();
    }
    text += "\ntrace: " + std::to_string(trace_events) + " events, " +
            std::to_string(trace_dropped) + " dropped\n";
  }
  return text;
}

std::string TelemetrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Row& row : grafts) {
    if (!first) {
      out << ",";
    }
    first = false;
    const GraftCounters& c = row.counters;
    AppendJsonString(out, row.name);
    out << ":{\"state\":";
    AppendJsonString(out, GraftStateName(row.supervision.state));
    out << ",\"invocations\":" << c.invocations << ",\"ok\":" << c.ok
        << ",\"faults\":" << c.faults << ",\"preempts\":" << c.preempts
        << ",\"disk_faults\":" << c.disk_faults
        << ",\"rejected_quarantined\":" << c.rejected_quarantined
        << ",\"rejected_detached\":" << c.rejected_detached
        << ",\"rejected_degraded\":" << c.rejected_degraded
        << ",\"shed_expired\":" << c.shed_expired
        << ",\"quarantines\":" << row.supervision.quarantines
        << ",\"readmissions\":" << row.supervision.readmissions
        << ",\"degradations\":" << row.supervision.degradations
        << ",\"recoveries\":" << row.supervision.recoveries
        << ",\"breaker\":" << tracelab::JsonString(BreakerStateName(row.supervision.breaker))
        << ",\"breaker_opens\":" << row.supervision.breaker_opens
        << ",\"fuel_used\":" << c.fuel_used << ",\"latency\":{\"count\":" << c.latency.count()
        << ",\"mean_us\":" << c.latency.mean_us()
        << ",\"p50_us\":" << c.latency.PercentileUs(50)
        << ",\"p90_us\":" << c.latency.PercentileUs(90)
        << ",\"p99_us\":" << c.latency.PercentileUs(99)
        << ",\"p999_us\":" << c.latency.PercentileUs(99.9)
        << ",\"max_us\":" << static_cast<double>(c.latency.max_ns()) / 1e3 << "}";
    if (!c.vm_opcodes.empty()) {
      out << ",\"vm_opcodes\":{";
      bool first_op = true;
      for (const auto& [name, count] : c.vm_opcodes) {
        if (!first_op) {
          out << ",";
        }
        first_op = false;
        AppendJsonString(out, name);
        out << ":" << count;
      }
      out << "}";
    }
    out << "}";
  }
  if (!dispatch.workers.empty()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"__dispatch__\":{\"lane_mode\":";
    AppendJsonString(out, dispatch.lane_mode);
    out << ",\"inline_hits\":" << dispatch.inline_hits
        << ",\"inline_misses\":" << dispatch.inline_misses
        << ",\"shed_expired\":" << dispatch.shed_expired << ",\"workers\":[";
    bool first_worker = true;
    for (const WorkerLaneRow& row : dispatch.workers) {
      if (!first_worker) {
        out << ",";
      }
      first_worker = false;
      out << "{\"worker\":" << row.worker << ",\"batches\":" << row.batches
          << ",\"dequeued\":" << row.dequeued << ",\"batch_mean\":" << row.batch_sizes.mean()
          << ",\"batch_hist\":[";
      bool first_bucket = true;
      for (std::size_t i = 0; i < BatchHistogram::kBuckets; ++i) {
        if (row.batch_sizes.counts[i] == 0) {
          continue;
        }
        if (!first_bucket) {
          out << ",";
        }
        first_bucket = false;
        out << "{\"ge\":" << (1ull << i) << ",\"count\":" << row.batch_sizes.counts[i] << "}";
      }
      out << "],\"spin_wakeups\":" << row.spin_wakeups << ",\"parks\":" << row.parks
          << ",\"notifies_sent\":" << row.notifies_sent
          << ",\"notifies_skipped\":" << row.notifies_skipped
          << ",\"producer_waits\":" << row.producer_waits << ",\"lanes\":" << row.lanes << "}";
    }
    out << "]}";
  }
  if (netfront.present) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"__netfront__\":{\"connections\":{\"opened\":" << netfront.connections_opened
        << ",\"closed\":" << netfront.connections_closed
        << ",\"active\":" << netfront.connections_active << "}"
        << ",\"frame_errors\":" << netfront.frame_errors << ",\"bytes_in\":" << netfront.bytes_in
        << ",\"bytes_out\":" << netfront.bytes_out << ",\"read_pauses\":" << netfront.read_pauses
        << ",\"slow_reader_closes\":" << netfront.slow_reader_closes
        << ",\"io_thread_crashes\":" << netfront.io_thread_crashes
        << ",\"conns_adopted\":" << netfront.conns_adopted
        << ",\"crash_orphans\":" << netfront.crash_orphans << ",\"tenants\":{";
    bool first_tenant = true;
    for (const NetfrontSection::TenantRow& row : netfront.tenants) {
      if (!first_tenant) {
        out << ",";
      }
      first_tenant = false;
      AppendJsonString(out, row.name);
      out << ":{\"weight\":" << row.weight << ",\"accepted\":" << row.accepted
          << ",\"completed_ok\":" << row.completed_ok
          << ",\"completed_error\":" << row.completed_error
          << ",\"shed_degraded\":" << row.shed_degraded
          << ",\"shed_overload\":" << row.shed_overload
          << ",\"quota_rejected\":" << row.quota_rejected
          << ",\"breaker_open\":" << row.breaker_open
          << ",\"retries_deduped\":" << row.retries_deduped << "}";
    }
    out << "},\"io_threads\":[";
    bool first_io = true;
    for (const NetfrontSection::IoThreadRow& row : netfront.io_threads) {
      if (!first_io) {
        out << ",";
      }
      first_io = false;
      out << "{\"thread\":" << row.thread << ",\"decoded_frames\":" << row.decoded_frames
          << ",\"submit_batches\":" << row.submit_batches
          << ",\"batch_mean\":" << row.submit_sizes.mean() << ",\"batch_hist\":[";
      bool first_bucket = true;
      for (std::size_t i = 0; i < BatchHistogram::kBuckets; ++i) {
        if (row.submit_sizes.counts[i] == 0) {
          continue;
        }
        if (!first_bucket) {
          out << ",";
        }
        first_bucket = false;
        out << "{\"ge\":" << (1ull << i) << ",\"count\":" << row.submit_sizes.counts[i] << "}";
      }
      out << "],\"wakeups\":" << row.wakeups << "}";
    }
    out << "]}";
  }
  if (!injections.empty()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"__faultlab__\":[";
    bool first_site = true;
    for (const auto& site : injections) {
      if (!first_site) {
        out << ",";
      }
      first_site = false;
      out << "{\"site\":";
      AppendJsonString(out, site.site);
      out << ",\"hits\":" << site.hits << ",\"injected\":" << site.injected << "}";
    }
    out << "]";
  }
  if (traced) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"__tracelab__\":{\"events\":" << trace_events
        << ",\"dropped\":" << trace_dropped << ",\"stages\":{";
    bool first_stage = true;
    for (const StageRow& row : stages) {
      if (!first_stage) {
        out << ",";
      }
      first_stage = false;
      AppendJsonString(out, row.graft);
      out << ":{";
      const auto cell = [&out](const char* key, const StageCell& c, bool lead_comma) {
        if (lead_comma) {
          out << ",";
        }
        out << "\"" << key << "\":{\"count\":" << c.count << ",\"total_us\":" << c.total_us
            << ",\"mean_us\":" << c.mean_us() << "}";
      };
      cell("queue", row.queue, false);
      cell("dispatch", row.dispatch, true);
      cell("crossing", row.crossing, true);
      cell("body", row.body, true);
      cell("disk", row.disk, true);
      out << ",\"ops\":" << row.ops << "}";
    }
    out << "},\"break_even\":[";
    bool first_be = true;
    for (const BreakEvenRow& row : break_even) {
      if (!first_be) {
        out << ",";
      }
      first_be = false;
      out << "{\"graft\":";
      AppendJsonString(out, row.graft);
      out << ",\"metric\":";
      AppendJsonString(out, row.metric);
      out << ",\"per_op_us\":" << row.per_op_us << ",\"reference_us\":" << row.reference_us
          << ",\"value\":" << row.value << "}";
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

}  // namespace graftd
