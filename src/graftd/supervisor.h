// Per-graft supervision policy: quarantine, backoff readmission, detach.
//
// The paper's containment story stops at "the fault is counted"; a runtime
// serving many grafts needs a policy for the graft that keeps faulting.
// Following the supervisor designs in Rex (arXiv:2502.18832) and MOAT
// (arXiv:2301.13421), graftd escalates per graft:
//
//   healthy --(fault_threshold consecutive failures)--> quarantined
//   quarantined --(backoff elapses; next Admit)-------> healthy (readmitted)
//   quarantined x (max_quarantines+1) ----------------> detached, permanently
//
// Each quarantine doubles (policy.backoff_multiplier) the readmission
// backoff, capped at max_backoff. A successful invocation resets the
// consecutive-failure streak but not the quarantine history. All time is
// read through the injected Clock, so every transition is testable without
// sleeping.
//
// Disk faults (DiskFull, persistent I/O failure, faultlab injections) are
// scored on a separate track: the *device*, not the graft, misbehaved, so
// instead of quarantining, the graft degrades —
//
//   healthy --(disk_fault_threshold consecutive disk faults)--> degraded
//   degraded --(degraded_backoff elapses; next Admit)---------> healthy
//
// While degraded, write-shaped work is shed (AdmitDecision::kRejectDegraded)
// rather than dispatched into a failing device; degradation never counts
// toward quarantine history or detach.
//
// Layered on the same consecutive-failure streak is a per-graft circuit
// breaker gating *admission* (the netfront socket layer), not dispatch:
//
//   closed --(breaker_threshold consecutive failures)--> open
//   open --(breaker backoff elapses)--> half-open (probes trickle through)
//   half-open --(probe succeeds)--> closed   (backoff streak resets)
//   half-open --(probe fails)-----> open     (backoff doubles)
//
// While open, BreakerAdmit() refuses work before it is ever staged or
// queued — the request is answered at the socket with kBreakerOpen instead
// of riding the lanes to a worker that will reject it. Half-open probes
// are rate-limited (breaker_probe_interval) rather than counted, so a
// probe lost downstream (expired, connection died) can never wedge the
// breaker half-open.
//
// Thread safety: one Supervisor is shared by all dispatch workers; state is
// guarded by a single mutex, with a lock-free fast path for the steady
// state. Each graft carries an atomic `hot` flag meaning "healthy with no
// failure streak": Admit returns kRun on a single acquire load, and
// OnOutcome(kOk) returns on a single relaxed load, so the shared mutex is
// only touched when something is actually wrong (or recovering). The flag
// is recomputed under the mutex on every slow-path mutation; a worker that
// observes a stale `hot` admits at most the invocations that were already
// racing the transition — the same window the mutex alone allowed.

#ifndef GRAFTLAB_SRC_GRAFTD_SUPERVISOR_H_
#define GRAFTLAB_SRC_GRAFTD_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/graftd/clock.h"
#include "src/tracelab/trace.h"

namespace graftd {

using GraftId = std::uint32_t;

enum class GraftState : std::uint8_t { kHealthy, kQuarantined, kDetached, kDegraded };

constexpr const char* GraftStateName(GraftState state) {
  switch (state) {
    case GraftState::kHealthy: return "healthy";
    case GraftState::kQuarantined: return "quarantined";
    case GraftState::kDetached: return "detached";
    case GraftState::kDegraded: return "degraded";
  }
  return "?";
}

// What one invocation did, as the supervisor scores it.
enum class Outcome : std::uint8_t {
  kOk,
  kFault,     // contained extension fault
  kPreempt,   // wall-clock budget or fuel exhausted
  kDiskFault, // the backing device failed (DiskFull, hard error, injected)
};

enum class AdmitDecision : std::uint8_t {
  kRun,
  kRejectQuarantined,
  kRejectDetached,
  kRejectDegraded,  // shedding: the graft's device is failing
};

// Circuit-breaker position for one graft (admission-side shedding).
enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

constexpr const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct SupervisorPolicy {
  // Consecutive failures (faults or preempts) before quarantine.
  std::uint32_t fault_threshold = 3;
  // Readmission backoff after the first quarantine; doubles per quarantine.
  std::chrono::microseconds base_backoff{1000};
  std::uint32_t backoff_multiplier = 2;
  std::chrono::microseconds max_backoff{std::chrono::seconds(1)};
  // Readmission chances: after max_quarantines quarantines, the next
  // threshold crossing detaches the graft permanently.
  std::uint32_t max_quarantines = 3;
  // Default wall-clock budget applied to invocations that do not carry
  // their own (0 = unbudgeted).
  std::chrono::microseconds default_budget{0};
  // Fuel budget set on metered (interpreted) grafts per invocation
  // (-1 = unlimited).
  std::int64_t fuel_budget = -1;
  // Consecutive disk faults before the graft degrades to shedding mode.
  std::uint32_t disk_fault_threshold = 2;
  // How long a degraded graft sheds load before the next Admit probes the
  // device again.
  std::chrono::microseconds degraded_backoff{std::chrono::milliseconds(10)};
  // --- circuit breaker (admission gate; see header comment) ---
  // Consecutive failures before the breaker opens. Defaults above the
  // quarantine threshold so the breaker only trips on streaks that survive
  // readmission probation — tighten it (<= fault_threshold) to shed at the
  // socket before quarantine machinery engages.
  std::uint32_t breaker_threshold = 5;
  // How long the breaker stays open before half-open probing; doubles
  // (backoff_multiplier) per reopen without an intervening close.
  std::chrono::microseconds breaker_backoff{std::chrono::milliseconds(5)};
  std::chrono::microseconds breaker_max_backoff{std::chrono::seconds(1)};
  // Minimum spacing between half-open probes.
  std::chrono::microseconds breaker_probe_interval{std::chrono::milliseconds(1)};
  // When false, BreakerAdmit always admits and failures never trip it.
  bool breaker_enabled = true;
  // When false, Admit and OnOutcome always take the mutex — the seed
  // behavior. Exists so the throughput bench's baseline row can measure
  // the crossing collapse against the pre-fast-path supervisor; production
  // callers leave it true.
  bool lock_free_fast_path = true;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorPolicy policy = SupervisorPolicy{},
                      const Clock* clock = RealClock::Instance())
      : policy_(policy), clock_(clock) {}

  // Registers a graft under supervision; ids are dense and start at 0.
  GraftId Register(std::string name);

  // Gate before dispatch. May transition quarantined -> healthy when the
  // backoff has elapsed (readmission happens here, on demand, so no timer
  // is needed to un-quarantine).
  AdmitDecision Admit(GraftId id);

  // Scorekeeping after a completed invocation.
  void OnOutcome(GraftId id, Outcome outcome);

  // Admission-side circuit-breaker gate: true means the request may
  // proceed toward staging/dispatch; false means shed it now (the breaker
  // is open, or half-open with a probe already spent this interval). The
  // steady state (closed breaker, healthy graft) is the same single
  // acquire load as Admit. Callers that shed must NOT report an outcome —
  // a shed request never reached a worker.
  bool BreakerAdmit(GraftId id);

  GraftState state(GraftId id) const;

  struct GraftStatus {
    std::string name;
    GraftState state = GraftState::kHealthy;
    std::uint32_t consecutive_failures = 0;
    std::uint32_t quarantines = 0;    // times quarantined so far
    std::uint32_t readmissions = 0;   // times readmitted so far
    std::uint32_t consecutive_disk_faults = 0;
    std::uint32_t degradations = 0;   // times degraded so far
    std::uint32_t recoveries = 0;     // times recovered from degraded
    Clock::TimePoint readmit_at{};    // valid while quarantined or degraded
    BreakerState breaker = BreakerState::kClosed;
    std::uint32_t breaker_opens = 0;       // times the breaker tripped open
    std::uint32_t breaker_trip_streak = 0; // opens since the last close (backoff doubling)
    Clock::TimePoint breaker_probe_at{};   // open: when half-open probing may begin;
                                           // half-open: when the next probe may pass
  };
  GraftStatus Status(GraftId id) const;
  std::vector<GraftStatus> StatusAll() const;

  const SupervisorPolicy& policy() const { return policy_; }
  std::size_t size() const;

  // Attaches a tracer: every state transition (quarantine, readmit, detach,
  // degrade, recover) is emitted as an instant event on the trace active on
  // the deciding thread (tracelab::CurrentTraceId), with the GraftId as the
  // event argument. Attach before dispatch begins; the tracer must outlive
  // the supervisor.
  void set_tracer(tracelab::Tracer* tracer);

  // Observability seam: fired once per escalation decided by OnOutcome —
  // event is one of "quarantined", "detached", "degraded", "breaker_open"
  // (a quarantine/detach outranks a breaker trip decided in the same call).
  // Invoked on the scoring (worker) thread AFTER mu_ is released, so the
  // hook may do slow work (flight-recorder snapshots) without stalling
  // admission on other workers. Set before dispatch begins.
  void set_event_hook(std::function<void(const char* event, GraftId id)> hook) {
    event_hook_ = std::move(hook);
  }

 private:
  // The mutex-holding scorer; returns the escalation event name (static
  // storage) or nullptr.
  const char* OnOutcomeLocked(GraftId id, Outcome outcome);

  std::chrono::microseconds BackoffFor(std::uint32_t quarantines) const;
  std::chrono::microseconds BreakerBackoffFor(std::uint32_t trips) const;

  // Opens (or reopens) the breaker; caller holds mu_.
  void TripBreaker(GraftStatus& graft, GraftId id);

  // Recomputes grafts_[id]'s hot flag; caller holds mu_.
  void RecomputeHot(GraftId id);

  void EmitTransition(tracelab::SiteId site, GraftId id) {
    if (tracer_ != nullptr) {
      tracer_->Instant(site, tracelab::CurrentTraceId(), id);
    }
  }

  const SupervisorPolicy policy_;
  const Clock* clock_;
  tracelab::Tracer* tracer_ = nullptr;
  std::function<void(const char*, GraftId)> event_hook_;
  tracelab::SiteId site_quarantine_ = 0;
  tracelab::SiteId site_readmit_ = 0;
  tracelab::SiteId site_detach_ = 0;
  tracelab::SiteId site_degrade_ = 0;
  tracelab::SiteId site_recover_ = 0;
  tracelab::SiteId site_breaker_open_ = 0;
  tracelab::SiteId site_breaker_half_open_ = 0;
  tracelab::SiteId site_breaker_close_ = 0;
  mutable std::mutex mu_;
  std::vector<GraftStatus> grafts_;
  // hot_[id]: state == healthy && no failure/disk-fault streak — the
  // steady state where Admit and OnOutcome(kOk) have nothing to decide or
  // record. unique_ptr keeps each atomic at a stable address; the vector
  // itself only grows during registration (before dispatch, per contract).
  std::vector<std::unique_ptr<std::atomic<bool>>> hot_;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_SUPERVISOR_H_
