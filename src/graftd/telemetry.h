// Per-graft telemetry: counters + latency histograms, merged at snapshot.
//
// Workers keep graft counters worker-locally (one short mutex per update so
// a snapshot can read mid-run without tearing) and Dispatcher::Snapshot()
// merges the shards. Rendering goes through src/stats/ Table for the text
// form the benches print, plus a machine-readable JSON dump.

#ifndef GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
#define GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graftd/histogram.h"
#include "src/graftd/supervisor.h"

namespace graftd {

struct GraftCounters {
  std::uint64_t invocations = 0;  // attempts that reached a worker
  std::uint64_t ok = 0;
  std::uint64_t faults = 0;    // contained extension faults
  std::uint64_t preempts = 0;  // budget/fuel exhaustion
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t rejected_detached = 0;
  std::uint64_t fuel_used = 0;  // summed over metered invocations
  LatencyHistogram latency;     // service latency of executed invocations

  void Merge(const GraftCounters& other) {
    invocations += other.invocations;
    ok += other.ok;
    faults += other.faults;
    preempts += other.preempts;
    rejected_quarantined += other.rejected_quarantined;
    rejected_detached += other.rejected_detached;
    fuel_used += other.fuel_used;
    latency.Merge(other.latency);
  }
};

// Point-in-time, cross-worker view of every supervised graft.
struct TelemetrySnapshot {
  struct Row {
    std::string name;
    Supervisor::GraftStatus supervision;
    GraftCounters counters;
  };
  std::vector<Row> grafts;

  // Column-aligned table (src/stats/table.h) with one row per graft:
  // state, invocation outcomes, quarantine history, latency summary.
  std::string ToText() const;

  // The same data as a JSON object keyed by graft name.
  std::string ToJson() const;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
