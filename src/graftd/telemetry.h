// Per-graft telemetry: counters + latency histograms, merged at snapshot.
//
// Workers keep graft counters worker-locally (one short mutex per update so
// a snapshot can read mid-run without tearing) and Dispatcher::Snapshot()
// merges the shards. Rendering goes through src/stats/ Table for the text
// form the benches print, plus a machine-readable JSON dump.

#ifndef GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
#define GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/faultlab/injector.h"
#include "src/graftd/histogram.h"
#include "src/graftd/supervisor.h"

namespace graftd {

struct GraftCounters {
  std::uint64_t invocations = 0;  // attempts that reached a worker
  std::uint64_t ok = 0;
  std::uint64_t faults = 0;       // contained extension faults
  std::uint64_t preempts = 0;     // budget/fuel exhaustion
  std::uint64_t disk_faults = 0;  // device failures (DiskFull, hard, injected)
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t rejected_detached = 0;
  std::uint64_t rejected_degraded = 0;  // shed while the device was failing
  std::uint64_t fuel_used = 0;  // summed over metered invocations
  LatencyHistogram latency;     // service latency of executed invocations

  // Per-opcode retire counts reported through StreamGraft::ExecutionProfile
  // (profiled Minnow VMs). Each worker records its instance's cumulative
  // counts, so Merge sums across workers to a fleet-wide frequency table —
  // the data the superinstruction fusion set is selected from.
  std::vector<std::pair<std::string, std::uint64_t>> vm_opcodes;

  void MergeOpcodes(const std::vector<std::pair<std::string, std::uint64_t>>& other) {
    for (const auto& [name, count] : other) {
      bool found = false;
      for (auto& [have, total] : vm_opcodes) {
        if (have == name) {
          total += count;
          found = true;
          break;
        }
      }
      if (!found) {
        vm_opcodes.emplace_back(name, count);
      }
    }
  }

  void Merge(const GraftCounters& other) {
    MergeOpcodes(other.vm_opcodes);
    invocations += other.invocations;
    ok += other.ok;
    faults += other.faults;
    preempts += other.preempts;
    disk_faults += other.disk_faults;
    rejected_quarantined += other.rejected_quarantined;
    rejected_detached += other.rejected_detached;
    rejected_degraded += other.rejected_degraded;
    fuel_used += other.fuel_used;
    latency.Merge(other.latency);
  }
};

// Point-in-time, cross-worker view of every supervised graft.
struct TelemetrySnapshot {
  struct Row {
    std::string name;
    Supervisor::GraftStatus supervision;
    GraftCounters counters;
  };
  std::vector<Row> grafts;

  // Fault-injection counters, present when a faultlab::Injector is attached
  // to the dispatcher: one row per site.
  std::vector<faultlab::Injector::SiteCounters> injections;

  // Column-aligned table (src/stats/table.h) with one row per graft:
  // state, invocation outcomes, quarantine history, latency summary —
  // followed by the injection-site table when an injector is attached.
  std::string ToText() const;

  // The same data as a JSON object: grafts keyed by name, plus a reserved
  // "__faultlab__" key carrying the injection counters when present.
  std::string ToJson() const;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
