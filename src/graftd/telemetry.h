// Per-graft telemetry: counters + latency histograms, merged at snapshot.
//
// Workers keep graft counters worker-locally (one short mutex per update so
// a snapshot can read mid-run without tearing) and Dispatcher::Snapshot()
// merges the shards. Rendering goes through src/stats/ Table for the text
// form the benches print, plus a machine-readable JSON dump.

#ifndef GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
#define GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/faultlab/injector.h"
#include "src/graftd/histogram.h"
#include "src/graftd/supervisor.h"

namespace graftd {

// Power-of-two histogram of dequeue batch sizes: bucket b counts batches
// whose size has bit width b+1 (1, 2-3, 4-7, ...). Small and mergeable,
// like LatencyHistogram, but labeled in invocations rather than time.
struct BatchHistogram {
  static constexpr std::size_t kBuckets = 12;  // 2^11 = 2048 max labeled

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t batches = 0;
  std::uint64_t total = 0;

  static std::size_t BucketFor(std::uint64_t n) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(n));
    return width == 0 ? 0 : (width - 1 < kBuckets ? width - 1 : kBuckets - 1);
  }

  void Record(std::uint64_t batch_size) {
    ++counts[BucketFor(batch_size)];
    ++batches;
    total += batch_size;
  }

  void Merge(const BatchHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts[i] += other.counts[i];
    }
    batches += other.batches;
    total += other.total;
  }

  double mean() const {
    return batches == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(batches);
  }

  // "1:40 2-3:12 4-7:3" — occupied buckets only; "-" when empty.
  std::string Summary() const;
};

// Per-worker dispatch-path accounting (how invocations moved, not what
// they did): filled by the worker under its stats lock.
struct DispatchCounters {
  std::uint64_t batches = 0;   // dequeue episodes that yielded work
  std::uint64_t dequeued = 0;  // invocations that arrived via the lanes
  BatchHistogram batch_sizes;
};

struct GraftCounters {
  std::uint64_t invocations = 0;  // attempts that reached a worker
  std::uint64_t ok = 0;
  std::uint64_t faults = 0;       // contained extension faults
  std::uint64_t preempts = 0;     // budget/fuel exhaustion
  std::uint64_t disk_faults = 0;  // device failures (DiskFull, hard, injected)
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t rejected_detached = 0;
  std::uint64_t rejected_degraded = 0;  // shed while the device was failing
  std::uint64_t shed_expired = 0;       // deadline passed in queue; body never ran
  std::uint64_t fuel_used = 0;  // summed over metered invocations
  LatencyHistogram latency;     // service latency of executed invocations

  // Per-opcode retire counts reported through StreamGraft::ExecutionProfile
  // (profiled Minnow VMs). Each worker records its instance's cumulative
  // counts, so Merge sums across workers to a fleet-wide frequency table —
  // the data the superinstruction fusion set is selected from.
  std::vector<std::pair<std::string, std::uint64_t>> vm_opcodes;

  // Rows of the profile that describe the loaded program or its compiled
  // form rather than execution volume. Every worker's instance of a graft
  // loads the same program, so these are identical per instance and summing
  // them across shards would multiply a static fact by the worker count
  // (checks_elided reported 8x on an 8-worker dispatcher). Merge takes the
  // max instead, which is idempotent for identical instances and still
  // surfaces the largest footprint if instances ever diverge. Runtime
  // counters (opcode retires, jit_deopts) keep summing.
  static bool IsStaticProfileRow(const std::string& name) {
    return name == "checks_elided" || name == "checks_retained" ||
           name == "jit_compiled_fns" || name == "jit_bytes" || name == "jit_bailouts";
  }

  // Sort-and-fold merge: O((n+m) log (n+m)) regardless of either side's
  // order, instead of the old O(n*m) scan-per-entry — snapshot cost stays
  // bounded as the opcode and superinstruction-pair tables grow.
  void MergeOpcodes(const std::vector<std::pair<std::string, std::uint64_t>>& other) {
    if (other.empty()) {
      return;
    }
    vm_opcodes.insert(vm_opcodes.end(), other.begin(), other.end());
    std::sort(vm_opcodes.begin(), vm_opcodes.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t out = 0;
    for (std::size_t i = 0; i < vm_opcodes.size();) {
      std::size_t j = i;
      std::uint64_t total = 0;
      const bool take_max = IsStaticProfileRow(vm_opcodes[i].first);
      for (; j < vm_opcodes.size() && vm_opcodes[j].first == vm_opcodes[i].first; ++j) {
        total = take_max ? std::max(total, vm_opcodes[j].second) : total + vm_opcodes[j].second;
      }
      vm_opcodes[out] = {std::move(vm_opcodes[i].first), total};
      ++out;
      i = j;
    }
    vm_opcodes.resize(out);
  }

  void Merge(const GraftCounters& other) {
    MergeOpcodes(other.vm_opcodes);
    invocations += other.invocations;
    ok += other.ok;
    faults += other.faults;
    preempts += other.preempts;
    disk_faults += other.disk_faults;
    rejected_quarantined += other.rejected_quarantined;
    rejected_detached += other.rejected_detached;
    rejected_degraded += other.rejected_degraded;
    shed_expired += other.shed_expired;
    fuel_used += other.fuel_used;
    latency.Merge(other.latency);
  }
};

// The network front-end's contribution to a telemetry snapshot: plain
// data filled by netfront::Server::FillTelemetry (graftd deliberately does
// not depend on netfront — the section struct lives here so the snapshot
// renders it alongside everything else as "__netfront__").
struct NetfrontSection {
  bool present = false;

  // Per-tenant admission accounting. `accepted` counts requests handed to
  // the dispatcher; the shed/rejected counters were answered at the socket
  // and never reached a queue.
  struct TenantRow {
    std::string name;
    std::uint64_t weight = 1;        // DRR share under contention
    std::uint64_t accepted = 0;      // submitted into dispatch lanes
    std::uint64_t completed_ok = 0;  // replies carrying a result
    std::uint64_t completed_error = 0;  // replies carrying a dispatch error
    std::uint64_t shed_degraded = 0;    // kRejectDegraded state, shed at read
    std::uint64_t shed_overload = 0;    // staging backlog full
    std::uint64_t quota_rejected = 0;   // token bucket empty
    std::uint64_t breaker_open = 0;     // circuit breaker open, shed at admission
    std::uint64_t retries_deduped = 0;  // replayed from the dedup window (no re-execution)
  };

  // Per-IO-thread mechanics: how frames moved from sockets into the lanes.
  struct IoThreadRow {
    std::size_t thread = 0;
    std::uint64_t decoded_frames = 0;
    std::uint64_t submit_batches = 0;       // TrySubmitBatch episodes
    BatchHistogram submit_sizes;            // accepted-per-batch histogram
    std::uint64_t wakeups = 0;              // eventfd wakes received
  };

  std::uint64_t connections_opened = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frame_errors = 0;        // hostile/desynced streams (fatal per conn)
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t read_pauses = 0;         // backpressure: EPOLLIN dropped
  std::uint64_t slow_reader_closes = 0;  // write buffer hit the hard cap
  // chaoslab: injected IO-thread crashes and what the survivors inherited.
  std::uint64_t io_thread_crashes = 0;   // IO threads killed by injection
  std::uint64_t conns_adopted = 0;       // connections migrated to survivors
  std::uint64_t crash_orphans = 0;       // staged requests lost in a crash
  std::vector<TenantRow> tenants;
  std::vector<IoThreadRow> io_threads;
};

// Point-in-time, cross-worker view of every supervised graft.
struct TelemetrySnapshot {
  struct Row {
    std::string name;
    Supervisor::GraftStatus supervision;
    GraftCounters counters;
  };
  std::vector<Row> grafts;

  // Fault-injection counters, present when a faultlab::Injector is attached
  // to the dispatcher: one row per site.
  std::vector<faultlab::Injector::SiteCounters> injections;

  // --- tracelab section, populated when a tracer is attached ---

  // Per-stage timing for one graft, aggregated from the trace by
  // tracelab::Aggregate at snapshot time. All times come from observed
  // spans, so an empty cell means the stage never ran for this graft.
  struct StageCell {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double mean_us() const {
      return count == 0 ? 0.0 : total_us / static_cast<double>(count);
    }
  };
  struct StageRow {
    std::string graft;
    StageCell queue;     // submit -> worker dequeue (cross-thread)
    StageCell dispatch;  // worker-side service: admit -> outcome recorded
    StageCell crossing;  // host -> technology entry machinery
    StageCell body;      // the graft's own work
    StageCell disk;      // simulated device time
    std::uint64_t ops = 0;  // shape operations (eviction lookups, ldisk writes)
  };

  // Live break-even figures: the §5 formulas from src/stats/break_even.h
  // fed with the observed per-stage means above instead of offline bench
  // medians. `value` is the formula result; per_op/reference are its inputs.
  struct BreakEvenRow {
    std::string graft;
    std::string metric;  // eviction_break_even | md5_disk_ratio | per_block_overhead_us
    double per_op_us = 0.0;     // technology-side cost per operation
    double reference_us = 0.0;  // the kernel/device cost it competes with
    double value = 0.0;
  };

  bool traced = false;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<StageRow> stages;
  std::vector<BreakEvenRow> break_even;

  // --- dispatch-path section: how the lanes moved the invocations ---

  // One row per worker shard. Spin/park/notify fields come from the lane
  // implementation in use: SPSC lanes report spin wakeups and producer
  // notify decisions; the mutex queue reports condvar waits and skipped
  // notifies (producer_waits is mutex-mode only).
  struct WorkerLaneRow {
    std::size_t worker = 0;
    std::uint64_t batches = 0;
    std::uint64_t dequeued = 0;
    BatchHistogram batch_sizes;
    std::uint64_t spin_wakeups = 0;      // work arrived during the spin phase
    std::uint64_t parks = 0;             // condvar sleeps entered
    std::uint64_t notifies_sent = 0;     // producer wakes actually issued
    std::uint64_t notifies_skipped = 0;  // skipped because nobody waited
    std::uint64_t producer_waits = 0;    // pushes that slept on a full queue
    std::size_t lanes = 0;               // producer lanes registered (SPSC)
  };

  // Submission/dispatch mechanics for the whole dispatcher; present
  // (rendered) whenever `workers` is non-empty.
  struct DispatchStats {
    std::string lane_mode;  // "spsc" | "mutex"
    std::uint64_t inline_hits = 0;    // invocations run on the caller's thread
    std::uint64_t inline_misses = 0;  // claim lost; fell back to the lanes
    std::uint64_t shed_expired = 0;   // deadline passed in queue; body never ran
    std::vector<WorkerLaneRow> workers;
  };
  DispatchStats dispatch;

  // Network front-end section, filled by netfront::Server::FillTelemetry
  // when a server fronts this dispatcher.
  NetfrontSection netfront;

  // Column-aligned table (src/stats/table.h) with one row per graft:
  // state, invocation outcomes, quarantine history, latency summary —
  // followed by the injection-site table when an injector is attached, and
  // the per-stage timing table plus live break-even panel when traced.
  std::string ToText() const;

  // The same data as a JSON object: grafts keyed by name, plus reserved
  // "__faultlab__" (injection counters), "__tracelab__" (stage timings and
  // break-even panel), and "__netfront__" (front-end admission/connection
  // accounting) keys when the respective subsystem is attached.
  std::string ToJson() const;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_TELEMETRY_H_
