// Log-bucketed latency histogram.
//
// Each graftd worker records invocation latencies into its own histogram
// (no synchronization on the hot path beyond the worker's stats lock);
// Snapshot() merges the per-worker histograms bucket-wise, which is exact —
// unlike merging means or percentiles. Buckets are powers of two in
// nanoseconds: bucket i counts latencies in [2^(i-1), 2^i), i.e. ~2x
// resolution, which is plenty for a runtime whose per-technology spreads
// span four orders of magnitude (paper Table 5).

#ifndef GRAFTLAB_SRC_GRAFTD_HISTOGRAM_H_
#define GRAFTLAB_SRC_GRAFTD_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstdint>
#include <string>

namespace graftd {

class LatencyHistogram {
 public:
  // 2^47 ns ~ 39 hours; everything slower clamps into the last bucket.
  static constexpr std::size_t kBuckets = 48;

  void Record(std::uint64_t ns) {
    ++counts_[BucketFor(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_) {
      max_ns_ = ns;
    }
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.max_ns_ > max_ns_) {
      max_ns_ = other.max_ns_;
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

  double mean_us() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / static_cast<double>(count_) / 1e3;
  }

  // Upper bound of the bucket holding the p-th percentile sample (p in
  // [0, 100]). A bucket estimate — within 2x of the true value by design.
  double PercentileUs(double p) const {
    if (count_ == 0) {
      return 0.0;
    }
    std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_));
    if (rank >= count_) {
      rank = count_ - 1;
    }
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) {
        return static_cast<double>(BucketUpperNs(i)) / 1e3;
      }
    }
    return static_cast<double>(max_ns_) / 1e3;
  }

  // "p50<=82us p90<=164us p99<=328us p999<=655us" — upper-bound markers,
  // compact enough for one table cell. The p999 marker is what tail-latency
  // gates (bench/netfront_loadgen) read.
  std::string Summary() const;

  static std::size_t BucketFor(std::uint64_t ns) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(ns));
    return width < kBuckets ? width : kBuckets - 1;
  }

  // Largest ns value bucket i can hold (bucket i = values of bit width i).
  static std::uint64_t BucketUpperNs(std::size_t i) {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_HISTOGRAM_H_
