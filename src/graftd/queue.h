// Bounded multi-producer single-consumer invocation queue.
//
// Each dispatch worker owns one of these; any number of producer threads
// push into it. Capacity is fixed at construction: TryPush fails when the
// queue is full (backpressure surfaces to the producer instead of memory
// growing without bound under overload), Push blocks until space frees.
// The consumer dequeues in batches — one lock round-trip amortized over up
// to `max_batch` invocations, which is where the dispatch engine gets its
// per-invocation overhead down.
//
// Implementation is a mutex-guarded ring over a pre-sized vector. A lock
// per batch is far below the noise floor of even the cheapest graft
// invocation, and it keeps the queue trivially ThreadSanitizer-clean.

#ifndef GRAFTLAB_SRC_GRAFTD_QUEUE_H_
#define GRAFTLAB_SRC_GRAFTD_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace graftd {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), ring_(capacity_) {}

  // Non-blocking push; false when full or closed (backpressure signal).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == capacity_) {
        return false;
      }
      Enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking push; waits for space. False only if the queue is closed.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
      if (closed_) {
        return false;
      }
      Enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Dequeues up to `max_batch` items into `out` (appended). Blocks while
  // the queue is empty and open; returns the number dequeued, 0 only after
  // Close() with the queue drained.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_batch) {
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
      while (popped < max_batch && size_ > 0) {
        out.push_back(std::move(ring_[head_]));
        head_ = (head_ + 1) % capacity_;
        --size_;
        ++popped;
      }
    }
    if (popped > 0) {
      not_full_.notify_all();
    }
    return popped;
  }

  // Wakes everyone; subsequent pushes fail, PopBatch drains then returns 0.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  void Enqueue(T item) {
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_QUEUE_H_
