// Bounded multi-producer single-consumer invocation queue.
//
// Each dispatch worker owns one of these; any number of producer threads
// push into it. Capacity is fixed at construction (rounded up to a power
// of two so ring indexing is a mask, not a modulo): TryPush fails when the
// queue is full (backpressure surfaces to the producer instead of memory
// growing without bound under overload), Push blocks until space frees.
// The consumer dequeues in batches — one lock round-trip amortized over up
// to `max_batch` invocations — and producers can amortize the same way
// with PushBatch/TryPushBatch: one lock, one wakeup, many items.
//
// Wakeups are waiter-counted: both condition variables track how many
// threads are blocked on them (the counts only change under the queue
// mutex), and notify is skipped entirely when nobody waits. In the common
// fast-flowing case — producers ahead of the consumer, or the consumer
// ahead of producers — pushes and pops are then pure lock/unlock pairs
// with no condvar traffic at all.
//
// Implementation is a mutex-guarded ring over a pre-sized vector. A lock
// per batch is far below the noise floor of even the cheapest graft
// invocation, and it keeps the queue trivially ThreadSanitizer-clean.
// This is graftd's selectable fallback dispatch lane
// (DispatcherOptions::lane_mode = kMutex); the lock-free hot path lives
// in src/graftd/lanes.h.

#ifndef GRAFTLAB_SRC_GRAFTD_QUEUE_H_
#define GRAFTLAB_SRC_GRAFTD_QUEUE_H_

#include <bit>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace graftd {

template <typename T>
class BoundedMpscQueue {
 public:
  // `eager_notify` restores the seed behavior this queue shipped with:
  // notify_one on every push regardless of waiters. It exists so the
  // throughput bench can measure the waiter-count fix against the exact
  // baseline it replaced; production callers leave it false.
  explicit BoundedMpscQueue(std::size_t capacity, bool eager_notify = false)
      : capacity_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(capacity_ - 1),
        eager_notify_(eager_notify),
        ring_(capacity_) {}

  // Non-blocking push; false when full or closed (backpressure signal).
  bool TryPush(T item) {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == capacity_) {
        return false;
      }
      Enqueue(std::move(item));
      wake = eager_notify_ || not_empty_waiters_ > 0;
      notifies_skipped_ += wake ? 0 : 1;
    }
    if (wake) {
      not_empty_.notify_one();
    }
    return true;
  }

  // Blocking push; waits for space. False only if the queue is closed.
  bool Push(T item) {
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      WaitForSpace(lock);
      if (closed_) {
        return false;
      }
      Enqueue(std::move(item));
      wake = eager_notify_ || not_empty_waiters_ > 0;
      notifies_skipped_ += wake ? 0 : 1;
    }
    if (wake) {
      not_empty_.notify_one();
    }
    return true;
  }

  // Blocking batch push: one lock/wakeup episode amortized over the whole
  // span (re-waiting for space as needed). Returns the number pushed —
  // short only when the queue is closed mid-batch.
  std::size_t PushBatch(std::span<T> items) {
    std::size_t pushed = 0;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (T& item : items) {
        WaitForSpace(lock);
        if (closed_) {
          break;
        }
        Enqueue(std::move(item));
        ++pushed;
      }
      wake = pushed > 0 && not_empty_waiters_ > 0;
      notifies_skipped_ += (pushed > 0 && !wake) ? 1 : 0;
    }
    if (wake) {
      not_empty_.notify_one();
    }
    return pushed;
  }

  // Non-blocking batch push: pushes as many items as fit right now.
  // Returns the number accepted (0 when full or closed).
  std::size_t TryPushBatch(std::span<T> items) {
    std::size_t pushed = 0;
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return 0;
      }
      for (T& item : items) {
        if (size_ == capacity_) {
          break;
        }
        Enqueue(std::move(item));
        ++pushed;
      }
      wake = pushed > 0 && not_empty_waiters_ > 0;
      notifies_skipped_ += (pushed > 0 && !wake) ? 1 : 0;
    }
    if (wake) {
      not_empty_.notify_one();
    }
    return pushed;
  }

  // Dequeues up to `max_batch` items into `out` (appended). Blocks while
  // the queue is empty and open; returns the number dequeued, 0 only after
  // Close() with the queue drained.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_batch) {
    std::size_t popped = 0;
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!closed_ && size_ == 0) {
        ++not_empty_waiters_;
        ++consumer_waits_;
        not_empty_.wait(lock);
        --not_empty_waiters_;
      }
      while (popped < max_batch && size_ > 0) {
        out.push_back(std::move(ring_[head_ & mask_]));
        ++head_;
        --size_;
        ++popped;
      }
      wake = popped > 0 && (eager_notify_ || not_full_waiters_ > 0);
      notifies_skipped_ += (popped > 0 && !wake) ? 1 : 0;
    }
    if (wake) {
      not_full_.notify_all();
    }
    return popped;
  }

  // Wakes everyone; subsequent pushes fail, PopBatch drains then returns 0.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

  // Wakeup accounting, for the dispatch telemetry: how often the waiter
  // count let a push/pop skip the condvar, how often blocking waits
  // actually slept.
  struct WaitStats {
    std::uint64_t notifies_skipped = 0;
    std::uint64_t consumer_waits = 0;  // PopBatch slept on empty
    std::uint64_t producer_waits = 0;  // Push/PushBatch slept on full
  };
  WaitStats wait_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return WaitStats{notifies_skipped_, consumer_waits_, producer_waits_};
  }

 private:
  void Enqueue(T item) {
    ring_[(head_ + size_) & mask_] = std::move(item);
    ++size_;
  }

  // Caller holds `lock`; returns with space available or closed_ set.
  // Before sleeping on full, wakes a consumer parked on empty: the batch
  // push defers its notify to batch end, so a full ring with a parked
  // consumer means items were queued that nobody was told about — without
  // this handoff both sides would sleep forever.
  void WaitForSpace(std::unique_lock<std::mutex>& lock) {
    while (!closed_ && size_ == capacity_) {
      if (not_empty_waiters_ > 0) {
        not_empty_.notify_one();
      }
      ++not_full_waiters_;
      ++producer_waits_;
      not_full_.wait(lock);
      --not_full_waiters_;
    }
  }

  const std::size_t capacity_;  // power of two
  const std::size_t mask_;
  const bool eager_notify_;  // seed-compat: notify on every push/pop
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t not_empty_waiters_ = 0;
  std::size_t not_full_waiters_ = 0;
  std::uint64_t notifies_skipped_ = 0;
  std::uint64_t consumer_waits_ = 0;
  std::uint64_t producer_waits_ = 0;
  bool closed_ = false;
};

}  // namespace graftd

#endif  // GRAFTLAB_SRC_GRAFTD_QUEUE_H_
