#include "src/upcall/upcall_engine.h"

namespace upcall {

UpcallEngine::UpcallEngine(Handler handler)
    : handler_(std::move(handler)), server_([this] { ServerLoop(); }) {}

UpcallEngine::~UpcallEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = State::kShutdown;
  }
  cv_.notify_all();
  server_.join();
}

void UpcallEngine::ServerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return state_ == State::kRequest || state_ == State::kShutdown; });
    if (state_ == State::kShutdown) {
      return;
    }
    const std::uint64_t arg = arg_;
    lock.unlock();
    const std::uint64_t reply = handler_ ? handler_(arg) : arg;
    lock.lock();
    if (state_ == State::kShutdown) {
      return;
    }
    reply_ = reply;
    state_ = State::kReply;
    cv_.notify_all();
  }
}

std::uint64_t UpcallEngine::Upcall(std::uint64_t arg) {
  std::unique_lock<std::mutex> lock(mu_);
  arg_ = arg;
  state_ = State::kRequest;
  cv_.notify_all();
  cv_.wait(lock, [this] { return state_ == State::kReply || state_ == State::kShutdown; });
  ++upcalls_;
  state_ = State::kIdle;
  return reply_;
}

UpcallEngine::RoundTrip UpcallEngine::MeasureRoundTrip(std::size_t runs,
                                                       std::size_t iters_per_run) {
  stats::RunningStats per_call_us;
  // Warmup.
  for (int i = 0; i < 100; ++i) {
    Upcall(0);
  }
  for (std::size_t run = 0; run < runs; ++run) {
    stats::Timer timer;
    for (std::size_t i = 0; i < iters_per_run; ++i) {
      Upcall(i);
    }
    per_call_us.Add(timer.ElapsedUs() / static_cast<double>(iters_per_run));
  }
  return RoundTrip{per_call_us.mean(), per_call_us.stddev_percent()};
}

SyntheticUpcall::SyntheticUpcall() {
  // Calibrate: time a large spin and derive iterations per microsecond.
  volatile std::uint64_t sink = 0;
  constexpr std::uint64_t kProbe = 20'000'000;
  stats::Timer timer;
  for (std::uint64_t i = 0; i < kProbe; ++i) {
    sink = sink + i;
  }
  const double us = timer.ElapsedUs();
  iterations_per_us_ = us > 0 ? static_cast<double>(kProbe) / us : 1e3;
}

void SyntheticUpcall::Invoke(double cost_us) const {
  if (cost_us <= 0.0) {
    return;
  }
  const auto iters = static_cast<std::uint64_t>(cost_us * iterations_per_us_);
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink = sink + i;
  }
}

}  // namespace upcall
