#include "src/upcall/process_upcall.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

#include "src/stats/harness.h"
#include "src/stats/running_stats.h"

namespace upcall {

namespace {

bool ReadAll(int fd, void* buffer, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buffer);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* buffer, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buffer);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ProcessUpcallEngine::ProcessUpcallEngine(Handler handler) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("ProcessUpcallEngine: socketpair failed");
  }
  child_ = ::fork();
  if (child_ < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("ProcessUpcallEngine: fork failed");
  }
  if (child_ == 0) {
    // Server process: serve until the client end closes.
    ::close(fds[0]);
    std::uint64_t arg = 0;
    while (ReadAll(fds[1], &arg, sizeof(arg))) {
      const std::uint64_t reply = handler ? handler(arg) : arg;
      if (!WriteAll(fds[1], &reply, sizeof(reply))) {
        break;
      }
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  fd_ = fds[0];
}

ProcessUpcallEngine::~ProcessUpcallEngine() {
  if (fd_ >= 0) {
    ::close(fd_);  // server sees EOF and exits
  }
  if (child_ > 0) {
    int status = 0;
    if (::waitpid(child_, &status, WNOHANG) == 0) {
      // Give it a moment, then insist.
      ::usleep(10000);
      if (::waitpid(child_, &status, WNOHANG) == 0) {
        ::kill(child_, SIGKILL);
        ::waitpid(child_, &status, 0);
      }
    }
  }
}

std::uint64_t ProcessUpcallEngine::Upcall(std::uint64_t arg) {
  std::uint64_t reply = 0;
  if (!WriteAll(fd_, &arg, sizeof(arg)) || !ReadAll(fd_, &reply, sizeof(reply))) {
    throw std::runtime_error("ProcessUpcallEngine: server gone");
  }
  ++upcalls_;
  return reply;
}

ProcessUpcallEngine::RoundTrip ProcessUpcallEngine::MeasureRoundTrip(std::size_t runs,
                                                                     std::size_t iters_per_run) {
  stats::RunningStats per_call_us;
  for (int i = 0; i < 50; ++i) {
    Upcall(0);  // warmup
  }
  for (std::size_t run = 0; run < runs; ++run) {
    stats::Timer timer;
    for (std::size_t i = 0; i < iters_per_run; ++i) {
      Upcall(i);
    }
    per_call_us.Add(timer.ElapsedUs() / static_cast<double>(iters_per_run));
  }
  return RoundTrip{per_call_us.mean(), per_call_us.stddev_percent()};
}

}  // namespace upcall
