// Process-based upcall engine: the genuine hardware-protection-domain
// crossing of the paper's §4.1.
//
// The thread-handoff engine (upcall_engine.h) shares an address space; this
// one forks a real server *process* and crosses the kernel twice per upcall
// over a socketpair — the closest a portable user-level program gets to the
// microkernel upcall the paper measured against (their BSD/OS upcall took
// ~60% of signal-delivery time; a socketpair round trip has the same
// two-crossings shape).
//
// Because the server is a separate process, handler state lives in the
// server and is invisible to the client except through replies — exactly
// the isolation property the paper's user-level servers pay for.

#ifndef GRAFTLAB_SRC_UPCALL_PROCESS_UPCALL_H_
#define GRAFTLAB_SRC_UPCALL_PROCESS_UPCALL_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>

namespace upcall {

class ProcessUpcallEngine {
 public:
  using Handler = std::function<std::uint64_t(std::uint64_t)>;

  // Forks the server; `handler` runs in the child on every upcall. Throws
  // std::runtime_error if the process machinery is unavailable.
  explicit ProcessUpcallEngine(Handler handler);
  ~ProcessUpcallEngine();

  ProcessUpcallEngine(const ProcessUpcallEngine&) = delete;
  ProcessUpcallEngine& operator=(const ProcessUpcallEngine&) = delete;

  // Synchronous upcall: two kernel crossings (send + receive).
  std::uint64_t Upcall(std::uint64_t arg);

  struct RoundTrip {
    double mean_us = 0.0;
    double stddev_pct = 0.0;
  };
  RoundTrip MeasureRoundTrip(std::size_t runs = 10, std::size_t iters_per_run = 1000);

  std::uint64_t upcalls() const { return upcalls_; }

 private:
  int fd_ = -1;  // parent end of the socketpair
  pid_t child_ = -1;
  std::uint64_t upcalls_ = 0;
};

}  // namespace upcall

#endif  // GRAFTLAB_SRC_UPCALL_PROCESS_UPCALL_H_
