// User-level-server upcall machinery (the paper's hardware-protection
// technology, §4.1).
//
// UpcallEngine models the microkernel structure: extension code lives in a
// "server" (here a separate thread standing in for a separate protection
// domain), and the kernel invokes it by upcalling — transferring control,
// waiting for the answer, and resuming. The measured round-trip cost plays
// the role of the paper's upcall estimate (their signal-time proxy, and
// their hand-built BSD/OS upcall at ~60% of signal time).
//
// SyntheticUpcall provides a *parameterized* upcall cost for the Figure 1
// sweep: break-even as a function of upcall time from 0 to 50us.

#ifndef GRAFTLAB_SRC_UPCALL_UPCALL_ENGINE_H_
#define GRAFTLAB_SRC_UPCALL_UPCALL_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "src/stats/harness.h"
#include "src/stats/running_stats.h"

namespace upcall {

// A server thread handling synchronous upcalls. Handler runs on the server
// thread; Upcall() blocks the caller until the reply arrives.
class UpcallEngine {
 public:
  using Handler = std::function<std::uint64_t(std::uint64_t)>;

  explicit UpcallEngine(Handler handler);
  ~UpcallEngine();

  UpcallEngine(const UpcallEngine&) = delete;
  UpcallEngine& operator=(const UpcallEngine&) = delete;

  // Synchronous upcall: delivers `arg` to the server, returns its reply.
  std::uint64_t Upcall(std::uint64_t arg);

  // Round-trip cost of a no-op-payload upcall, per the stats harness.
  struct RoundTrip {
    double mean_us = 0.0;
    double stddev_pct = 0.0;
  };
  RoundTrip MeasureRoundTrip(std::size_t runs = 10, std::size_t iters_per_run = 2000);

  std::uint64_t upcalls() const { return upcalls_; }

 private:
  void ServerLoop();

  Handler handler_;
  std::mutex mu_;
  std::condition_variable cv_;
  enum class State { kIdle, kRequest, kReply, kShutdown } state_ = State::kIdle;
  std::uint64_t arg_ = 0;
  std::uint64_t reply_ = 0;
  std::uint64_t upcalls_ = 0;
  std::thread server_;
};

// Models an upcall of a chosen cost by spinning a calibrated delay: used to
// sweep Figure 1's x axis without depending on host scheduler behavior.
class SyntheticUpcall {
 public:
  // Calibrates the spin loop on construction.
  SyntheticUpcall();

  // Burns approximately `cost_us` microseconds (0 = free upcall).
  void Invoke(double cost_us) const;

 private:
  double iterations_per_us_;
};

}  // namespace upcall

#endif  // GRAFTLAB_SRC_UPCALL_UPCALL_ENGINE_H_
