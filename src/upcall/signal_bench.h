// Signal-handling latency (the paper's Table 1 methodology).
//
// "The test program forks a child process, which registers handlers for a
// group of twenty signals and then suspends itself [...] We then measured
// the time to post the signals to the child when the child ignores (rather
// than handles) the group of signals. The latter time is subtracted from
// the former; the result is divided by the number of signals handled."
//
// We reproduce that protocol exactly with 20 POSIX real-time signals (each
// distinct signal pends independently while the child is stopped, so all 20
// are delivered on SIGCONT): fork a child, stop it, post the group, continue
// it, wait for it to re-stop, and difference the handled and ignored modes.

#ifndef GRAFTLAB_SRC_UPCALL_SIGNAL_BENCH_H_
#define GRAFTLAB_SRC_UPCALL_SIGNAL_BENCH_H_

#include <cstddef>

namespace upcall {

struct SignalBenchResult {
  double per_signal_us = 0.0;    // the Table 1 figure
  double stddev_pct = 0.0;       // across runs
  double handled_us = 0.0;       // mean round total, handled mode
  double ignored_us = 0.0;       // mean round total, ignored mode
  bool ok = false;               // false if fork/signal machinery failed
};

// Runs `runs` runs of `rounds_per_run` stop/post/continue rounds in each
// mode. The paper used 30 runs of 1000 iterations; the defaults are smaller
// so the whole suite stays fast — pass the paper's numbers to replicate.
SignalBenchResult MeasureSignalHandling(std::size_t runs = 10, std::size_t rounds_per_run = 200);

}  // namespace upcall

#endif  // GRAFTLAB_SRC_UPCALL_SIGNAL_BENCH_H_
