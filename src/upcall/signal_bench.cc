#include "src/upcall/signal_bench.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include "src/stats/harness.h"
#include "src/stats/running_stats.h"

namespace upcall {

namespace {

constexpr int kNumSignals = 20;
volatile sig_atomic_t g_handled = 0;

void CountingHandler(int) { g_handled = g_handled + 1; }

// Child body: install the handlers (or SIG_IGN), then stop repeatedly.
[[noreturn]] void ChildLoop(bool handle) {
  for (int s = 0; s < kNumSignals; ++s) {
    struct sigaction action = {};
    action.sa_handler = handle ? &CountingHandler : SIG_IGN;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGRTMIN + s, &action, nullptr);
  }
  for (;;) {
    ::raise(SIGSTOP);
    // Woken by SIGCONT after the parent posted the group; the pending
    // signals are delivered here, then we loop back and stop again.
  }
}

// Waits until the child is stopped (WUNTRACED reports the stop).
bool AwaitStopped(pid_t child) {
  int status = 0;
  for (;;) {
    if (::waitpid(child, &status, WUNTRACED | WCONTINUED) < 0) {
      return false;
    }
    if (WIFSTOPPED(status)) {
      return true;
    }
    if (WIFEXITED(status) || WIFSIGNALED(status)) {
      return false;
    }
  }
}

// One timed pass of `rounds` stop/post/continue rounds. Returns
// microseconds, or a negative value on failure.
double TimedRounds(pid_t child, std::size_t rounds) {
  stats::Timer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (int s = 0; s < kNumSignals; ++s) {
      if (::kill(child, SIGRTMIN + s) != 0) {
        return -1.0;
      }
    }
    if (::kill(child, SIGCONT) != 0) {
      return -1.0;
    }
    if (!AwaitStopped(child)) {
      return -1.0;
    }
  }
  return timer.ElapsedUs();
}

struct Child {
  pid_t pid = -1;

  explicit Child(bool handle) {
    pid = ::fork();
    if (pid == 0) {
      ChildLoop(handle);
    }
  }
  ~Child() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
  bool ok() const { return pid > 0; }
};

}  // namespace

SignalBenchResult MeasureSignalHandling(std::size_t runs, std::size_t rounds_per_run) {
  SignalBenchResult result;

  Child handler_child(/*handle=*/true);
  Child ignorer_child(/*handle=*/false);
  if (!handler_child.ok() || !ignorer_child.ok()) {
    return result;
  }
  if (!AwaitStopped(handler_child.pid) || !AwaitStopped(ignorer_child.pid)) {
    return result;
  }

  // Warm both paths.
  if (TimedRounds(handler_child.pid, 5) < 0 || TimedRounds(ignorer_child.pid, 5) < 0) {
    return result;
  }

  stats::RunningStats handled;
  stats::RunningStats ignored;
  stats::RunningStats per_signal;
  for (std::size_t run = 0; run < runs; ++run) {
    const double h = TimedRounds(handler_child.pid, rounds_per_run);
    const double i = TimedRounds(ignorer_child.pid, rounds_per_run);
    if (h < 0 || i < 0) {
      return result;
    }
    handled.Add(h);
    ignored.Add(i);
    per_signal.Add((h - i) / static_cast<double>(rounds_per_run * kNumSignals));
  }

  result.per_signal_us = per_signal.mean();
  result.stddev_pct = per_signal.stddev_percent();
  result.handled_us = handled.mean();
  result.ignored_us = ignored.mean();
  result.ok = true;
  return result;
}

}  // namespace upcall
