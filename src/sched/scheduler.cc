#include "src/sched/scheduler.h"

namespace sched {

TaskId Scheduler::AddTask(TaskKind kind) {
  Task task;
  task.id = static_cast<TaskId>(tasks_.size());
  task.kind = kind;
  tasks_.push_back(task);
  return task.id;
}

TaskId Scheduler::DefaultPick() const {
  // Round-robin: first runnable task after the cursor.
  const std::size_t n = tasks_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const TaskId id = static_cast<TaskId>((rr_cursor_ + 1 + step) % n);
    if (tasks_[id].runnable) {
      return id;
    }
  }
  return kNoTask;
}

bool Scheduler::Validate(TaskId id) const {
  return id < tasks_.size() && tasks_[id].runnable;
}

void Scheduler::Tick() {
  ++stats_.ticks;

  const TaskId fallback = DefaultPick();
  TaskId chosen = fallback;
  if (graft_ != nullptr) {
    const TaskId proposed = graft_->PickNext(tasks_);
    if (proposed == kNoTask || !Validate(proposed)) {
      if (proposed != kNoTask) {
        ++stats_.graft_rejections;
      }
    } else {
      if (proposed != fallback) {
        ++stats_.graft_overrides;
      }
      chosen = proposed;
    }
  }

  if (chosen == kNoTask) {
    ++stats_.idle_ticks;
    return;
  }
  rr_cursor_ = chosen;

  // Account waiting for everyone else who was runnable.
  for (Task& task : tasks_) {
    if (task.runnable && task.id != chosen) {
      ++task.ticks_waited;
    }
    if (task.kind == TaskKind::kClient && task.waiting_on_server) {
      ++stats_.request_latency_ticks;
    }
  }

  Task& task = tasks_[chosen];
  ++task.ticks_run;

  switch (task.kind) {
    case TaskKind::kClient:
      // With probability 1/4, issue a request and block on the server.
      lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
      if ((lcg_ >> 33) % 4 == 0) {
        task.runnable = false;
        task.waiting_on_server = true;
        waiting_clients_.push_back(task.id);
        for (Task& maybe_server : tasks_) {
          if (maybe_server.kind == TaskKind::kServer) {
            ++maybe_server.pending_requests;
            break;  // single-server model
          }
        }
      }
      break;
    case TaskKind::kServer:
      if (task.pending_requests > 0) {
        --task.pending_requests;
        ++stats_.requests_completed;
        if (!waiting_clients_.empty()) {
          Task& client = tasks_[waiting_clients_.front()];
          waiting_clients_.erase(waiting_clients_.begin());
          client.runnable = true;
          client.waiting_on_server = false;
        }
      }
      break;
    case TaskKind::kBatch:
      break;
  }
}

TaskId ClientServerPolicy::PickNext(const std::vector<Task>& tasks) {
  // Server first, iff it has outstanding requests.
  for (const Task& task : tasks) {
    if (task.kind == TaskKind::kServer && task.runnable && task.pending_requests > 0) {
      return task.id;
    }
  }
  // Otherwise round-robin among runnable non-servers.
  const std::size_t n = tasks.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (cursor_ + 1 + step) % n;
    if (tasks[i].runnable && tasks[i].kind != TaskKind::kServer) {
      cursor_ = i;
      return tasks[i].id;
    }
  }
  return kNoTask;  // defer to the kernel (e.g. only the idle server remains)
}

}  // namespace sched
