// Process-scheduler substrate — the paper's third Prioritization example
// (§3.1): "Process scheduling is another example of a prioritization
// policy. At each scheduling point the kernel has a list of candidates, and
// chooses one to run. No scheduling algorithm is appropriate for all
// application mixes ... a client-server application may not want the server
// to be scheduled unless there is an outstanding client request, in which
// case it should be scheduled ahead of any client."
//
// A small tick-driven scheduler: tasks are runnable or blocked, each tick
// the kernel asks the policy for the next task, runs it for a quantum, and
// accounts waiting times. The default policy is round-robin; a
// SchedulerGraft replaces the choice, and the kernel validates every answer
// (the chosen task must be a runnable member of the queue) exactly as the
// page cache validates eviction proposals.

#ifndef GRAFTLAB_SRC_SCHED_SCHEDULER_H_
#define GRAFTLAB_SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sched {

using TaskId = std::uint32_t;
inline constexpr TaskId kNoTask = ~TaskId{0};

enum class TaskKind : std::uint8_t {
  kClient,
  kServer,
  kBatch,
};

struct Task {
  TaskId id = kNoTask;
  TaskKind kind = TaskKind::kBatch;
  bool runnable = true;

  // Client-server bookkeeping: a client with an outstanding request is
  // waiting on the server; the server has work iff pending_requests > 0.
  std::uint32_t pending_requests = 0;  // meaningful for servers
  bool waiting_on_server = false;      // meaningful for clients

  // Accounting.
  std::uint64_t ticks_run = 0;
  std::uint64_t ticks_waited = 0;  // runnable but not chosen
};

// A scheduling-policy graft: given the run queue, return the id of the task
// to run next (kNoTask = defer to the kernel's default).
class SchedulerGraft {
 public:
  virtual ~SchedulerGraft() = default;
  virtual TaskId PickNext(const std::vector<Task>& tasks) = 0;
  virtual const char* technology() const = 0;
};

struct SchedStats {
  std::uint64_t ticks = 0;
  std::uint64_t idle_ticks = 0;
  std::uint64_t graft_overrides = 0;   // graft chose != round-robin default
  std::uint64_t graft_rejections = 0;  // graft answer failed validation
  std::uint64_t requests_completed = 0;
  std::uint64_t request_latency_ticks = 0;  // summed client wait per request
};

class Scheduler {
 public:
  TaskId AddTask(TaskKind kind);

  Task& task(TaskId id) { return tasks_[id]; }
  const Task& task(TaskId id) const { return tasks_[id]; }
  const std::vector<Task>& tasks() const { return tasks_; }

  void SetGraft(SchedulerGraft* graft) { graft_ = graft; }

  // Runs one scheduling decision + quantum. The workload model:
  //   * a running client issues a request to the server (blocking itself)
  //     with probability ~1/4 (deterministic LCG, reproducible);
  //   * a running server completes one pending request per quantum,
  //     unblocking its client;
  //   * batch tasks just burn their quantum.
  void Tick();

  // Convenience: run many ticks.
  void Run(std::uint64_t ticks) {
    for (std::uint64_t i = 0; i < ticks; ++i) {
      Tick();
    }
  }

  const SchedStats& stats() const { return stats_; }

  // The kernel's default policy: round-robin over runnable tasks.
  TaskId DefaultPick() const;

 private:
  bool Validate(TaskId id) const;

  std::vector<Task> tasks_;
  std::vector<TaskId> waiting_clients_;  // FIFO of clients awaiting replies
  SchedulerGraft* graft_ = nullptr;
  SchedStats stats_;
  TaskId rr_cursor_ = 0;
  std::uint64_t lcg_ = 88172645463325252ull;
};

// The paper's client-server policy, natively: run the server ahead of any
// client whenever it has outstanding requests; otherwise round-robin among
// runnable non-server tasks (the server is not scheduled without work).
class ClientServerPolicy : public SchedulerGraft {
 public:
  TaskId PickNext(const std::vector<Task>& tasks) override;
  const char* technology() const override { return "C"; }

 private:
  std::size_t cursor_ = 0;
};

}  // namespace sched

#endif  // GRAFTLAB_SRC_SCHED_SCHEDULER_H_
