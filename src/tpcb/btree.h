// Page-based B-tree modeling the paper's TPC-B database (§3.1).
//
// "The database holds 1,000,000 records in a four-level b-tree; [...] The
// b-tree is 50% full, and has one root page, four pages at the second
// level, 391 pages at the third level, and approximately 50,000 pages at
// the fourth level; each third-level page points to up to 128 fourth level
// pages."
//
// The tree is built bottom-up over 4KB pages at a configurable fill factor.
// With the paper's parameters (1M records, 100-byte records, 50% fill) the
// default geometry reproduces the paper's page counts exactly: 20 records
// per leaf -> 50,000 leaves; 128 children per third-level page -> 391
// third-level pages; 98 per second-level page -> 4; one root.
//
// Two access patterns matter to the reproduction:
//   * Lookup(key): the TPC-B transaction path, root to leaf — it reports the
//     PageIds visited so a vmsim::PageCache can replay the paging behavior.
//   * Scan(visitor): the "non-keyed lookup" depth-first traversal; on
//     entering a third-level page the visitor receives that page's children
//     as the application's new hot list, exactly the event that loads the
//     eviction graft's hot list in the paper's model.

#ifndef GRAFTLAB_SRC_TPCB_BTREE_H_
#define GRAFTLAB_SRC_TPCB_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/vmsim/frame.h"

namespace tpcb {

using vmsim::PageId;

// ~100-byte account record (104 with alignment padding; 20 per 4KB leaf at
// 50% fill, reproducing the paper's 50,000 data pages for 1M records).
struct AccountRecord {
  std::int64_t key = 0;
  std::int64_t balance = 0;
  std::uint8_t filler[84] = {};
};
static_assert(sizeof(AccountRecord) == 104);

struct BTreeConfig {
  std::int64_t num_records = 1000000;
  std::size_t records_per_leaf = 20;       // 4096B / 100B at 50% fill
  std::size_t leaves_per_level3 = 128;     // the paper's "up to 128"
  std::size_t level3_per_level2 = 98;      // yields 4 second-level pages
  std::size_t level2_per_root = 256;       // root always fits
};

struct LookupResult {
  bool found = false;
  std::int64_t balance = 0;
  // Pages visited, root first; size() == tree height for a 4-level tree.
  std::vector<PageId> path;
};

// Scan callback. EnterLevel3 delivers the hot list; VisitLeaf is called for
// every data page in key order.
class ScanVisitor {
 public:
  virtual ~ScanVisitor() = default;
  virtual void EnterLevel3(PageId page, std::span<const PageId> leaf_children) = 0;
  virtual void VisitLeaf(PageId page) = 0;
};

class BTree {
 public:
  explicit BTree(const BTreeConfig& config = BTreeConfig{});

  LookupResult Lookup(std::int64_t key) const;

  // Updates a record balance in place (the TPC-B write); returns false for a
  // missing key. The page path is appended to `path` if non-null.
  bool UpdateBalance(std::int64_t key, std::int64_t delta, std::vector<PageId>* path = nullptr);

  // Depth-first traversal of the whole tree.
  void Scan(ScanVisitor& visitor) const;

  // Geometry introspection.
  int height() const { return 4; }
  PageId root_page() const;
  std::size_t num_leaf_pages() const { return leaves_.size(); }
  std::size_t num_level3_pages() const { return level3_.size(); }
  std::size_t num_level2_pages() const { return level2_.size(); }
  std::size_t num_internal_pages() const { return 1 + level2_.size() + level3_.size(); }
  std::size_t num_pages() const { return num_internal_pages() + leaves_.size(); }
  std::int64_t num_records() const { return config_.num_records; }

  // Children of a level-3 page (for tests and hot-list assertions).
  std::span<const PageId> Level3Children(std::size_t level3_index) const;

 private:
  struct InternalNode {
    // children[i] covers keys in [first_key[i], first_key[i+1]).
    std::vector<std::int64_t> first_key;
    std::vector<std::uint32_t> child;  // index into the next level down
  };
  struct LeafNode {
    std::vector<AccountRecord> records;  // sorted by key
  };

  // PageId layout: root = 0, level2 pages follow, then level3, then leaves.
  PageId Level2PageId(std::size_t i) const { return 1 + i; }
  PageId Level3PageId(std::size_t i) const { return 1 + level2_.size() + i; }
  PageId LeafPageId(std::size_t i) const { return 1 + level2_.size() + level3_.size() + i; }

  static std::size_t FindChild(const InternalNode& node, std::int64_t key);
  const LeafNode* FindLeaf(std::int64_t key, std::vector<PageId>* path) const;

  BTreeConfig config_;
  InternalNode root_;
  std::vector<InternalNode> level2_;
  std::vector<InternalNode> level3_;
  std::vector<LeafNode> leaves_;
  std::vector<std::vector<PageId>> level3_children_;  // precomputed hot lists
};

}  // namespace tpcb

#endif  // GRAFTLAB_SRC_TPCB_BTREE_H_
