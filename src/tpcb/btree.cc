#include "src/tpcb/btree.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tpcb {

BTree::BTree(const BTreeConfig& config) : config_(config) {
  if (config_.num_records <= 0 || config_.records_per_leaf == 0 ||
      config_.leaves_per_level3 == 0 || config_.level3_per_level2 == 0) {
    throw std::invalid_argument("BTree: degenerate configuration");
  }

  // Build leaves: records keyed 0..num_records-1 in order.
  const auto num_leaves = static_cast<std::size_t>(
      (config_.num_records + static_cast<std::int64_t>(config_.records_per_leaf) - 1) /
      static_cast<std::int64_t>(config_.records_per_leaf));
  leaves_.resize(num_leaves);
  std::int64_t key = 0;
  for (std::size_t i = 0; i < num_leaves; ++i) {
    LeafNode& leaf = leaves_[i];
    const std::int64_t remaining = config_.num_records - key;
    const std::size_t count =
        std::min<std::int64_t>(static_cast<std::int64_t>(config_.records_per_leaf), remaining);
    leaf.records.resize(count);
    for (std::size_t r = 0; r < count; ++r) {
      leaf.records[r].key = key;
      leaf.records[r].balance = 1000;  // TPC-B initial account balance
      ++key;
    }
  }

  // Build level 3 over leaves.
  auto build_level = [](std::size_t num_children, std::size_t fanout) {
    return (num_children + fanout - 1) / fanout;
  };

  const std::size_t n3 = build_level(num_leaves, config_.leaves_per_level3);
  level3_.resize(n3);
  level3_children_.resize(n3);
  for (std::size_t i = 0; i < n3; ++i) {
    InternalNode& node = level3_[i];
    const std::size_t first = i * config_.leaves_per_level3;
    const std::size_t last = std::min(first + config_.leaves_per_level3, num_leaves);
    for (std::size_t c = first; c < last; ++c) {
      node.first_key.push_back(leaves_[c].records.front().key);
      node.child.push_back(static_cast<std::uint32_t>(c));
      level3_children_[i].push_back(LeafPageId(c));
    }
  }

  // Build level 2 over level 3.
  const std::size_t n2 = build_level(n3, config_.level3_per_level2);
  level2_.resize(n2);
  for (std::size_t i = 0; i < n2; ++i) {
    InternalNode& node = level2_[i];
    const std::size_t first = i * config_.level3_per_level2;
    const std::size_t last = std::min(first + config_.level3_per_level2, n3);
    for (std::size_t c = first; c < last; ++c) {
      node.first_key.push_back(level3_[c].first_key.front());
      node.child.push_back(static_cast<std::uint32_t>(c));
    }
  }

  // Root over level 2.
  if (n2 > config_.level2_per_root) {
    throw std::invalid_argument("BTree: root fanout exceeded; tree would need 5 levels");
  }
  for (std::size_t c = 0; c < n2; ++c) {
    root_.first_key.push_back(level2_[c].first_key.front());
    root_.child.push_back(static_cast<std::uint32_t>(c));
  }
}

PageId BTree::root_page() const { return 0; }

std::size_t BTree::FindChild(const InternalNode& node, std::int64_t key) {
  // Last child whose first_key <= key (keys below the first child's
  // separator also route to child 0, matching standard B-tree search).
  const auto it = std::upper_bound(node.first_key.begin(), node.first_key.end(), key);
  const std::size_t idx = static_cast<std::size_t>(it - node.first_key.begin());
  return idx == 0 ? 0 : idx - 1;
}

const BTree::LeafNode* BTree::FindLeaf(std::int64_t key, std::vector<PageId>* path) const {
  if (path != nullptr) {
    path->push_back(root_page());
  }
  const std::size_t i2 = FindChild(root_, key);
  const InternalNode& n2 = level2_[root_.child[i2]];
  if (path != nullptr) {
    path->push_back(Level2PageId(root_.child[i2]));
  }
  const std::size_t i3 = FindChild(n2, key);
  const InternalNode& n3 = level3_[n2.child[i3]];
  if (path != nullptr) {
    path->push_back(Level3PageId(n2.child[i3]));
  }
  const std::size_t il = FindChild(n3, key);
  if (path != nullptr) {
    path->push_back(LeafPageId(n3.child[il]));
  }
  return &leaves_[n3.child[il]];
}

LookupResult BTree::Lookup(std::int64_t key) const {
  LookupResult result;
  const LeafNode* leaf = FindLeaf(key, &result.path);
  const auto it = std::lower_bound(
      leaf->records.begin(), leaf->records.end(), key,
      [](const AccountRecord& r, std::int64_t k) { return r.key < k; });
  if (it != leaf->records.end() && it->key == key) {
    result.found = true;
    result.balance = it->balance;
  }
  return result;
}

bool BTree::UpdateBalance(std::int64_t key, std::int64_t delta, std::vector<PageId>* path) {
  LeafNode* leaf = const_cast<LeafNode*>(FindLeaf(key, path));
  const auto it =
      std::lower_bound(leaf->records.begin(), leaf->records.end(), key,
                       [](const AccountRecord& r, std::int64_t k) { return r.key < k; });
  if (it == leaf->records.end() || it->key != key) {
    return false;
  }
  it->balance += delta;
  return true;
}

void BTree::Scan(ScanVisitor& visitor) const {
  // Depth-first, which for this key-ordered build is left-to-right over the
  // level-3 pages and their leaves.
  for (std::size_t c2 = 0; c2 < root_.child.size(); ++c2) {
    const InternalNode& n2 = level2_[root_.child[c2]];
    for (std::size_t c3 = 0; c3 < n2.child.size(); ++c3) {
      const std::size_t l3 = n2.child[c3];
      visitor.EnterLevel3(Level3PageId(l3), level3_children_[l3]);
      for (const std::uint32_t leaf : level3_[l3].child) {
        visitor.VisitLeaf(LeafPageId(leaf));
      }
    }
  }
}

std::span<const PageId> BTree::Level3Children(std::size_t level3_index) const {
  return level3_children_.at(level3_index);
}

}  // namespace tpcb
