// TPC-B-style transaction workload over the B-tree.
//
// The paper's model server alternates keyed transactions with non-keyed
// scans; the paging side effect is what matters here, so each transaction
// yields the page path it touched for replay against a vmsim::PageCache.

#ifndef GRAFTLAB_SRC_TPCB_WORKLOAD_H_
#define GRAFTLAB_SRC_TPCB_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/tpcb/btree.h"

namespace tpcb {

class TpcbWorkload {
 public:
  TpcbWorkload(BTree& tree, std::uint64_t seed = 1996)
      : tree_(tree), rng_(seed), key_dist_(0, tree.num_records() - 1) {}

  // Runs one transaction (random account debit/credit) and returns the pages
  // it touched, root first. The reference stays valid until the next call.
  const std::vector<PageId>& NextTransaction() {
    path_.clear();
    const std::int64_t key = key_dist_(rng_);
    const std::int64_t delta = static_cast<std::int64_t>(rng_() % 1999) - 999;
    tree_.UpdateBalance(key, delta, &path_);
    ++transactions_;
    return path_;
  }

  std::uint64_t transactions() const { return transactions_; }

 private:
  BTree& tree_;
  std::mt19937_64 rng_;
  std::uniform_int_distribution<std::int64_t> key_dist_;
  std::vector<PageId> path_;
  std::uint64_t transactions_ = 0;
};

}  // namespace tpcb

#endif  // GRAFTLAB_SRC_TPCB_WORKLOAD_H_
