#include "src/md5/md5.h"

#include <cstring>

namespace md5 {

namespace {

// Per-round shift amounts (RFC 1321 §3.4).
constexpr unsigned kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,   // round 1
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,   // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,   // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};  // round 4

// Sine-derived constants: T[i] = floor(2^32 * |sin(i + 1)|).
constexpr std::uint32_t kT[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

// Message-word index for step i (RFC 1321 §3.4 round orderings).
constexpr std::size_t WordIndex(std::size_t i) {
  if (i < 16) {
    return i;
  }
  if (i < 32) {
    return (5 * i + 1) % 16;
  }
  if (i < 48) {
    return (3 * i + 5) % 16;
  }
  return (7 * i) % 16;
}

constexpr std::uint32_t RotL(std::uint32_t v, unsigned n) { return (v << n) | (v >> (32 - n)); }

}  // namespace

void Context::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  bit_count_ = 0;
  buffered_ = 0;
}

void Context::Transform(const std::uint8_t block[64]) {
  std::uint32_t x[16];
  for (std::size_t k = 0; k < 16; ++k) {
    x[k] = static_cast<std::uint32_t>(block[k * 4]) |
           (static_cast<std::uint32_t>(block[k * 4 + 1]) << 8) |
           (static_cast<std::uint32_t>(block[k * 4 + 2]) << 16) |
           (static_cast<std::uint32_t>(block[k * 4 + 3]) << 24);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  for (std::size_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    if (i < 16) {
      f = (b & c) | (~b & d);
    } else if (i < 32) {
      f = (d & b) | (~d & c);
    } else if (i < 48) {
      f = b ^ c ^ d;
    } else {
      f = c ^ (b | ~d);
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + x[WordIndex(i)] + kT[i], kShift[i]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Context::Update(std::span<const std::uint8_t> data) {
  bit_count_ += static_cast<std::uint64_t>(data.size()) * 8;

  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      Transform(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    Transform(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Context::Final() {
  const std::uint64_t bits = bit_count_;

  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  Update(std::span<const std::uint8_t>(kPad, pad_len));

  std::uint8_t length_le[8];
  for (std::size_t i = 0; i < 8; ++i) {
    length_le[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  Update(std::span<const std::uint8_t>(length_le, 8));

  Digest digest;
  for (std::size_t i = 0; i < 4; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(state_[i]);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(state_[i] >> 24);
  }
  return digest;
}

Digest Sum(std::span<const std::uint8_t> data) {
  Context ctx;
  ctx.Update(data);
  return ctx.Final();
}

std::string ToHex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace md5
