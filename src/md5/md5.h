// MD5 Message-Digest Algorithm (RFC 1321), implemented from scratch.
//
// This is the paper's Stream graft workload (§3.2, §5.5): an expensive,
// array- and 32-bit-arithmetic-heavy filter whose only job is to keep up
// with the disk. This header is the native ("C") implementation used as the
// baseline and as the correctness oracle for every other technology's MD5;
// md5_env.h holds the policy-templated variant, and the grafts module ships
// Minnow and Tclet MD5 sources that must produce bit-identical digests.

#ifndef GRAFTLAB_SRC_MD5_MD5_H_
#define GRAFTLAB_SRC_MD5_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace md5 {

using Digest = std::array<std::uint8_t, 16>;

// Incremental MD5 context: Reset() -> Update()* -> Final().
class Context {
 public:
  Context() { Reset(); }

  void Reset();

  // Absorbs `data`; may be called any number of times with any chunking.
  void Update(std::span<const std::uint8_t> data);

  // Pads, appends the length, and returns the digest. The context must be
  // Reset() before reuse.
  Digest Final();

 private:
  void Transform(const std::uint8_t block[64]);

  std::uint32_t state_[4];
  std::uint64_t bit_count_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

// One-shot digest.
Digest Sum(std::span<const std::uint8_t> data);

// Lower-case hex rendering ("d41d8cd98f00b204e9800998ecf8427e").
std::string ToHex(const Digest& digest);

}  // namespace md5

#endif  // GRAFTLAB_SRC_MD5_MD5_H_
