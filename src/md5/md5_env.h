// Policy-templated MD5 — the same RFC 1321 algorithm under each compiled
// extension technology.
//
// All graft-owned mutable state (chaining state, decoded message words,
// partial-block buffer) lives in Env arrays, so every subscript pays the
// environment's instrumentation: nothing for UnsafeEnv, a bounds check for
// SafeLangEnv, address masking for SfiEnv. Round constants and shift tables
// compile to immediates (registers and code constants are never
// instrumented, in GraftLab as in the real systems), and the a/b/c/d working
// variables stay in locals across a block exactly as the RFC reference code
// keeps them in registers.
//
// Input bytes are read straight from the kernel's buffer. That is faithful
// for every mode the paper measured (Omniware had no read protection); under
// SfiEnvT<Protection::kFull> it models the kernel delivering the stream into
// a sandbox-mapped window, which costs the graft nothing extra.
//
// The Word module parameter reproduces the paper's Alpha story (§5.5): with
// envs::Word32 arithmetic is native 32-bit; with envs::Word32On64 every
// operation runs in 64-bit registers with explicit truncation — the
// "correct checksum on a 64-bit machine" variant. Both produce RFC-correct
// digests here; bench/micro_primitives measures the truncation tax.

#ifndef GRAFTLAB_SRC_MD5_MD5_ENV_H_
#define GRAFTLAB_SRC_MD5_MD5_ENV_H_

#include <cstddef>
#include <cstdint>

#include "src/envs/word.h"
#include "src/md5/md5.h"

namespace md5 {

template <typename Env, typename W = envs::Word32>
class EnvMd5 {
 public:
  using Word = typename W::T;

  explicit EnvMd5(Env& env)
      : env_(env),
        state_(env.template NewArray<Word>(4)),
        x_(env.template NewArray<Word>(16)),
        buffer_(env.template NewArray<std::uint8_t>(64)) {
    Reset();
  }

  void Reset() {
    state_.Set(0, Word{0x67452301});
    state_.Set(1, Word{0xefcdab89});
    state_.Set(2, Word{0x98badcfe});
    state_.Set(3, Word{0x10325476});
    bit_count_ = 0;
    buffered_ = 0;
  }

  void Update(const std::uint8_t* data, std::size_t len) {
    bit_count_ += static_cast<std::uint64_t>(len) * 8;

    std::size_t offset = 0;
    if (buffered_ > 0) {
      const std::size_t need = 64 - buffered_;
      const std::size_t take = len < need ? len : need;
      for (std::size_t i = 0; i < take; ++i) {
        buffer_.Set(buffered_ + i, data[i]);
      }
      buffered_ += take;
      offset = take;
      if (buffered_ == 64) {
        DecodeBuffered();
        StepRounds();
        buffered_ = 0;
      }
    }
    while (offset + 64 <= len) {
      DecodeRaw(data + offset);
      StepRounds();
      offset += 64;
      env_.Poll();
    }
    for (std::size_t i = offset; i < len; ++i) {
      buffer_.Set(buffered_++, data[i]);
    }
  }

  Digest Final() {
    const std::uint64_t bits = bit_count_;

    static constexpr std::uint8_t kPad[64] = {0x80};
    const std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
    Update(kPad, pad_len);

    std::uint8_t length_le[8];
    for (std::size_t i = 0; i < 8; ++i) {
      length_le[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    }
    Update(length_le, 8);

    Digest digest;
    for (std::size_t i = 0; i < 4; ++i) {
      const Word s = state_.Get(i);
      digest[i * 4] = static_cast<std::uint8_t>(s);
      digest[i * 4 + 1] = static_cast<std::uint8_t>(s >> 8);
      digest[i * 4 + 2] = static_cast<std::uint8_t>(s >> 16);
      digest[i * 4 + 3] = static_cast<std::uint8_t>(s >> 24);
    }
    return digest;
  }

 private:
  static constexpr unsigned kShift[64] = {
      7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
      5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
      4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
      6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

  static constexpr std::uint32_t kT[64] = {
      0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
      0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
      0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
      0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
      0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
      0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
      0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
      0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
      0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
      0xeb86d391};

  static constexpr std::size_t WordIndex(std::size_t i) {
    if (i < 16) {
      return i;
    }
    if (i < 32) {
      return (5 * i + 1) % 16;
    }
    if (i < 48) {
      return (3 * i + 5) % 16;
    }
    return (7 * i) % 16;
  }

  void DecodeRaw(const std::uint8_t* block) {
    for (std::size_t k = 0; k < 16; ++k) {
      x_.Set(k, static_cast<Word>(static_cast<std::uint32_t>(block[k * 4]) |
                                  (static_cast<std::uint32_t>(block[k * 4 + 1]) << 8) |
                                  (static_cast<std::uint32_t>(block[k * 4 + 2]) << 16) |
                                  (static_cast<std::uint32_t>(block[k * 4 + 3]) << 24)));
    }
  }

  void DecodeBuffered() {
    for (std::size_t k = 0; k < 16; ++k) {
      x_.Set(k, static_cast<Word>(
                    static_cast<std::uint32_t>(buffer_.Get(k * 4)) |
                    (static_cast<std::uint32_t>(buffer_.Get(k * 4 + 1)) << 8) |
                    (static_cast<std::uint32_t>(buffer_.Get(k * 4 + 2)) << 16) |
                    (static_cast<std::uint32_t>(buffer_.Get(k * 4 + 3)) << 24)));
    }
  }

  void StepRounds() {
    Word a = state_.Get(0);
    Word b = state_.Get(1);
    Word c = state_.Get(2);
    Word d = state_.Get(3);

    for (std::size_t i = 0; i < 64; ++i) {
      Word f;
      if (i < 16) {
        f = W::Or(W::And(b, c), W::And(W::Not(b), d));
      } else if (i < 32) {
        f = W::Or(W::And(d, b), W::And(W::Not(d), c));
      } else if (i < 48) {
        f = W::Xor(W::Xor(b, c), d);
      } else {
        f = W::Xor(c, W::Or(b, W::Not(d)));
      }
      const Word temp = d;
      d = c;
      c = b;
      const Word sum =
          W::Plus(W::Plus(W::Plus(a, f), x_.Get(WordIndex(i))), static_cast<Word>(kT[i]));
      b = W::Plus(b, W::Rotate(sum, kShift[i]));
      a = temp;
    }

    state_.Set(0, W::Plus(state_.Get(0), a));
    state_.Set(1, W::Plus(state_.Get(1), b));
    state_.Set(2, W::Plus(state_.Get(2), c));
    state_.Set(3, W::Plus(state_.Get(3), d));
  }

  Env& env_;
  typename Env::template Array<Word> state_;
  typename Env::template Array<Word> x_;
  typename Env::template Array<std::uint8_t> buffer_;
  std::uint64_t bit_count_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace md5

#endif  // GRAFTLAB_SRC_MD5_MD5_ENV_H_
