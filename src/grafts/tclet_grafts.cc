#include "src/grafts/tclet_grafts.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace grafts {

namespace {

using tclet::Code;
using tclet::Interp;

constexpr char kEvictionScript[] = R"tcl(
set hotlist {}

proc hot_add {page} {
  global hotlist
  lappend hotlist $page
}

proc hot_remove {page} {
  global hotlist
  set out {}
  foreach p $hotlist {
    if {$p != $page} { lappend out $p }
  }
  set hotlist $out
}

proc hot_clear {} {
  global hotlist
  set hotlist {}
}

proc is_hot {page} {
  global hotlist
  foreach p $hotlist {
    if {$p == $page} { return 1 }
  }
  return 0
}

proc choose {candidate} {
  if {[is_hot $candidate] == 0} { return 0 }
  set pos 1
  while {1} {
    set page [lru_page $pos]
    if {$page < 0} { return 0 }
    if {[is_hot $page] == 0} { return $pos }
    incr pos
  }
}
)tcl";

// The MD5 rounds in Tcl. The state lives in the array state(0..3), the
// decoded message words in x(0..15), constants in T(i)/S(i). in_byte is the
// host command delivering the current 64-byte block.
constexpr char kMd5Script[] = R"tcl(
proc md5_init {} {
  global state
  set state(0) 1732584193
  set state(1) 4023233417
  set state(2) 2562383102
  set state(3) 271733878
}

proc rotl {v n} {
  return [expr {(($v << $n) | ($v >> (32 - $n))) & 0xffffffff}]
}

proc md5_block {} {
  global state x T S
  for {set k 0} {$k < 16} {incr k} {
    set b0 [in_byte [expr {$k * 4}]]
    set b1 [in_byte [expr {$k * 4 + 1}]]
    set b2 [in_byte [expr {$k * 4 + 2}]]
    set b3 [in_byte [expr {$k * 4 + 3}]]
    set x($k) [expr {$b0 | ($b1 << 8) | ($b2 << 16) | ($b3 << 24)}]
  }
  set a $state(0)
  set b $state(1)
  set c $state(2)
  set d $state(3)
  for {set i 0} {$i < 64} {incr i} {
    if {$i < 16} {
      set f [expr {($b & $c) | ((~$b) & $d) & 0xffffffff}]
      set k $i
    } elseif {$i < 32} {
      set f [expr {($d & $b) | ((~$d) & $c) & 0xffffffff}]
      set k [expr {(5 * $i + 1) % 16}]
    } elseif {$i < 48} {
      set f [expr {$b ^ $c ^ $d}]
      set k [expr {(3 * $i + 5) % 16}]
    } else {
      set f [expr {$c ^ ($b | ((~$d) & 0xffffffff))}]
      set k [expr {(7 * $i) % 16}]
    }
    set f [expr {$f & 0xffffffff}]
    set tmp $d
    set d $c
    set c $b
    set sum [expr {($a + $f + $x($k) + $T($i)) & 0xffffffff}]
    set b [expr {($b + [rotl $sum $S($i)]) & 0xffffffff}]
    set a $tmp
  }
  set state(0) [expr {($state(0) + $a) & 0xffffffff}]
  set state(1) [expr {($state(1) + $b) & 0xffffffff}]
  set state(2) [expr {($state(2) + $c) & 0xffffffff}]
  set state(3) [expr {($state(3) + $d) & 0xffffffff}]
}

proc md5_digest {} {
  global state
  set out {}
  for {set i 0} {$i < 4} {incr i} {
    set s $state($i)
    lappend out [expr {$s & 0xff}]
    lappend out [expr {($s >> 8) & 0xff}]
    lappend out [expr {($s >> 16) & 0xff}]
    lappend out [expr {($s >> 24) & 0xff}]
  }
  return $out
}
)tcl";

constexpr char kLogicalDiskScript[] = R"tcl(
set next_phys 0
set nblocks 0
set segsize 16

proc ld_init {n seg} {
  global next_phys nblocks segsize map rev segliv
  set nblocks $n
  set segsize $seg
  set next_phys 0
  for {set i 0} {$i < $n} {incr i} {
    set map($i) -1
    set rev($i) -1
  }
  set nseg [expr {$n / $seg}]
  for {set s 0} {$s < $nseg} {incr s} { set segliv($s) 0 }
}

proc ld_write {lb} {
  global next_phys nblocks segsize map rev segliv
  if {$next_phys >= $nblocks} { return -1 }
  set old $map($lb)
  if {$old >= 0} {
    set rev($old) -1
    set oseg [expr {$old / $segsize}]
    set segliv($oseg) [expr {$segliv($oseg) - 1}]
  }
  set p $next_phys
  incr next_phys
  set map($lb) $p
  set rev($p) $lb
  set nseg [expr {$p / $segsize}]
  set segliv($nseg) [expr {$segliv($nseg) + 1}]
  return $p
}

proc ld_translate {lb} {
  global map
  return $map($lb)
}
)tcl";

std::int64_t ResultInt(Interp& interp) {
  std::int64_t value = 0;
  if (!tclet::ParseInt(interp.result(), value)) {
    throw std::runtime_error("tclet graft returned non-integer: " + interp.result());
  }
  return value;
}

void EvalOrThrow(Interp& interp, const std::string& script) {
  if (interp.Eval(script) == Code::kError) {
    throw std::runtime_error("tclet graft error: " + interp.result());
  }
}

}  // namespace

const char* TcletEvictionSource() { return kEvictionScript; }
const char* TcletMd5Source() { return kMd5Script; }
const char* TcletLogicalDiskSource() { return kLogicalDiskScript; }

// --- TcletEvictionGraft ---

TcletEvictionGraft::TcletEvictionGraft() {
  interp_.RegisterCommand(
      "lru_page", [this](Interp& interp, const std::vector<std::string>& argv) {
        if (argv.size() != 2) {
          return interp.Error("usage: lru_page pos");
        }
        std::int64_t pos = 0;
        if (!tclet::ParseInt(argv[1], pos)) {
          return interp.Error("bad position");
        }
        if (walk_cursor_ == nullptr || pos <= walk_pos_) {
          walk_cursor_ = walk_head_;
          walk_pos_ = 0;
        }
        while (walk_cursor_ != nullptr && walk_pos_ < pos) {
          walk_cursor_ = walk_cursor_->lru_next;
          ++walk_pos_;
        }
        interp.set_result(tclet::IntToString(
            walk_cursor_ == nullptr ? -1 : static_cast<std::int64_t>(walk_cursor_->page)));
        return Code::kOk;
      });
  EvalOrThrow(interp_, kEvictionScript);
}

vmsim::Frame* TcletEvictionGraft::ChooseVictim(vmsim::Frame* lru_head) {
  walk_head_ = lru_head;
  walk_cursor_ = lru_head;
  walk_pos_ = 0;
  EvalOrThrow(interp_,
              "choose " + tclet::IntToString(static_cast<std::int64_t>(lru_head->page)));
  const std::int64_t pos = ResultInt(interp_);
  vmsim::Frame* frame = lru_head;
  for (std::int64_t i = 0; i < pos && frame != nullptr; ++i) {
    frame = frame->lru_next;
  }
  return frame != nullptr ? frame : lru_head;
}

void TcletEvictionGraft::HotListAdd(vmsim::PageId page) {
  EvalOrThrow(interp_, "hot_add " + tclet::IntToString(static_cast<std::int64_t>(page)));
}

void TcletEvictionGraft::HotListRemove(vmsim::PageId page) {
  EvalOrThrow(interp_, "hot_remove " + tclet::IntToString(static_cast<std::int64_t>(page)));
}

void TcletEvictionGraft::HotListClear() { EvalOrThrow(interp_, "hot_clear"); }

// --- TcletMd5Graft ---

TcletMd5Graft::TcletMd5Graft() {
  interp_.RegisterCommand("in_byte",
                          [this](Interp& interp, const std::vector<std::string>& argv) {
                            if (argv.size() != 2 || current_block_ == nullptr) {
                              return interp.Error("in_byte: no block");
                            }
                            std::int64_t index = 0;
                            if (!tclet::ParseInt(argv[1], index) || index < 0 || index >= 64) {
                              return interp.Error("in_byte: bad index");
                            }
                            interp.set_result(tclet::IntToString(
                                current_block_[static_cast<std::size_t>(index)]));
                            return Code::kOk;
                          });
  EvalOrThrow(interp_, kMd5Script);

  // Load the constant tables (T from the RFC's sine definition, S shifts).
  static constexpr int kShifts[64] = {
      7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
      5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
      4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
      6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};
  std::string setup;
  for (int i = 0; i < 64; ++i) {
    const auto t = static_cast<std::uint64_t>(
        std::floor(4294967296.0 * std::fabs(std::sin(i + 1.0))));
    setup += "set T(" + std::to_string(i) + ") " + std::to_string(t) + "\n";
    setup += "set S(" + std::to_string(i) + ") " + std::to_string(kShifts[i]) + "\n";
  }
  EvalOrThrow(interp_, setup);
  EvalOrThrow(interp_, "md5_init");
}

void TcletMd5Graft::ProcessBlock(const std::uint8_t block[64]) {
  current_block_ = block;
  EvalOrThrow(interp_, "md5_block");
  current_block_ = nullptr;
}

void TcletMd5Graft::Consume(const std::uint8_t* data, std::size_t len) {
  total_ += len;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    while (buffered_ < 64 && offset < len) {
      buffer_[buffered_++] = data[offset++];
    }
    if (buffered_ == 64) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= len) {
    ProcessBlock(data + offset);
    offset += 64;
  }
  while (offset < len) {
    buffer_[buffered_++] = data[offset++];
  }
}

md5::Digest TcletMd5Graft::Finish() {
  // RFC padding layout (mechanical byte plumbing; the arithmetic — rounds,
  // state folding, digest extraction — all happens in Tcl).
  const std::uint64_t bits = total_ * 8;
  buffer_[buffered_++] = 0x80;
  if (buffered_ > 56) {
    while (buffered_ < 64) {
      buffer_[buffered_++] = 0;
    }
    ProcessBlock(buffer_);
    buffered_ = 0;
  }
  while (buffered_ < 56) {
    buffer_[buffered_++] = 0;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  ProcessBlock(buffer_);

  EvalOrThrow(interp_, "md5_digest");
  std::vector<std::string> bytes;
  if (!tclet::SplitList(interp_.result(), bytes) || bytes.size() != 16) {
    throw std::runtime_error("tclet md5: bad digest list");
  }
  md5::Digest digest{};
  for (std::size_t i = 0; i < 16; ++i) {
    std::int64_t value = 0;
    if (!tclet::ParseInt(bytes[i], value)) {
      throw std::runtime_error("tclet md5: bad digest byte");
    }
    digest[i] = static_cast<std::uint8_t>(value);
  }

  buffered_ = 0;
  total_ = 0;
  EvalOrThrow(interp_, "md5_init");
  return digest;
}

// --- TcletLogicalDiskGraft ---

TcletLogicalDiskGraft::TcletLogicalDiskGraft(const ldisk::Geometry& geometry) {
  EvalOrThrow(interp_, kLogicalDiskScript);
  EvalOrThrow(interp_, "ld_init " + std::to_string(geometry.num_blocks) + " " +
                           std::to_string(geometry.blocks_per_segment));
}

ldisk::BlockId TcletLogicalDiskGraft::OnWrite(ldisk::BlockId logical) {
  EvalOrThrow(interp_, "ld_write " + std::to_string(logical));
  const std::int64_t physical = ResultInt(interp_);
  if (physical < 0) {
    throw ldisk::DiskFull();
  }
  return static_cast<ldisk::BlockId>(physical);
}

ldisk::BlockId TcletLogicalDiskGraft::Translate(ldisk::BlockId logical) {
  EvalOrThrow(interp_, "ld_translate " + std::to_string(logical));
  const std::int64_t physical = ResultInt(interp_);
  return physical < 0 ? ldisk::kUnmapped : static_cast<ldisk::BlockId>(physical);
}

}  // namespace grafts
