#include "src/grafts/factory.h"

#include <stdexcept>

#include "src/envs/safe_env.h"
#include "src/envs/sfi_env.h"
#include "src/envs/unsafe_env.h"
#include "src/grafts/eviction_env.h"
#include "src/grafts/ldisk_env.h"
#include "src/grafts/md5_graft_env.h"
#include "src/grafts/minnow_grafts.h"
#include "src/grafts/tclet_grafts.h"
#include "src/grafts/upcall_grafts.h"

namespace grafts {

namespace {

using core::Technology;

std::size_t RoundUpPow2(std::size_t bytes) {
  std::size_t size = 4096;
  while (size < bytes) {
    size <<= 1;
  }
  return size;
}

// Sandbox sized for the logical-disk graft's three arrays plus slack.
std::size_t LdiskSandboxBytes(const ldisk::Geometry& geometry) {
  return RoundUpPow2(geometry.num_blocks * 8 * 2 + geometry.num_segments() * 8 + (1u << 16));
}

constexpr std::size_t kSmallSandbox = 1u << 20;

}  // namespace

std::unique_ptr<core::PrioritizationGraft> CreateEvictionGraft(Technology technology,
                                                               envs::PreemptToken* preempt) {
  switch (technology) {
    case Technology::kC:
      return std::make_unique<EnvEvictionGraft<envs::UnsafeEnv>>();
    case Technology::kModula3:
      return std::make_unique<EnvEvictionGraft<envs::SafeLangEnv>>(preempt);
    case Technology::kModula3Trap:
      return std::make_unique<EnvEvictionGraft<envs::SafeLangTrapEnv>>(preempt);
    case Technology::kSfi:
      return std::make_unique<EnvEvictionGraft<envs::SfiEnv>>(kSmallSandbox, preempt);
    case Technology::kSfiFull:
      return std::make_unique<MarshaledEvictionGraft<envs::SfiFullEnv>>(kSmallSandbox, preempt);
    case Technology::kJava:
      return std::make_unique<MinnowEvictionGraft>(MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowEvictionGraft>(MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletEvictionGraft>();
    case Technology::kUpcall:
      return std::make_unique<UpcallEvictionGraft>();
  }
  throw std::invalid_argument("unknown technology");
}

std::unique_ptr<core::StreamGraft> CreateMd5Graft(Technology technology,
                                                  envs::PreemptToken* preempt) {
  switch (technology) {
    case Technology::kC:
      return std::make_unique<EnvMd5Graft<envs::UnsafeEnv>>();
    case Technology::kModula3:
      return std::make_unique<EnvMd5Graft<envs::SafeLangEnv>>(preempt);
    case Technology::kModula3Trap:
      return std::make_unique<EnvMd5Graft<envs::SafeLangTrapEnv>>(preempt);
    case Technology::kSfi:
      return std::make_unique<EnvMd5Graft<envs::SfiEnv>>(kSmallSandbox, preempt);
    case Technology::kSfiFull:
      return std::make_unique<EnvMd5Graft<envs::SfiFullEnv>>(kSmallSandbox, preempt);
    case Technology::kJava:
      return std::make_unique<MinnowMd5Graft>(MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowMd5Graft>(MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletMd5Graft>();
    case Technology::kUpcall:
      return std::make_unique<UpcallMd5Graft>();
  }
  throw std::invalid_argument("unknown technology");
}

std::unique_ptr<core::BlackBoxGraft> CreateLogicalDiskGraft(Technology technology,
                                                            const ldisk::Geometry& geometry,
                                                            envs::PreemptToken* preempt) {
  switch (technology) {
    case Technology::kC:
      return std::make_unique<EnvLogicalDiskGraft<envs::UnsafeEnv>>(geometry);
    case Technology::kModula3:
      return std::make_unique<EnvLogicalDiskGraft<envs::SafeLangEnv>>(geometry, preempt);
    case Technology::kModula3Trap:
      return std::make_unique<EnvLogicalDiskGraft<envs::SafeLangTrapEnv>>(geometry, preempt);
    case Technology::kSfi:
      return std::make_unique<EnvLogicalDiskGraft<envs::SfiEnv>>(geometry,
                                                                 LdiskSandboxBytes(geometry),
                                                                 preempt);
    case Technology::kSfiFull:
      return std::make_unique<EnvLogicalDiskGraft<envs::SfiFullEnv>>(geometry,
                                                                     LdiskSandboxBytes(geometry),
                                                                     preempt);
    case Technology::kJava:
      return std::make_unique<MinnowLogicalDiskGraft>(geometry, MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowLogicalDiskGraft>(geometry, MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletLogicalDiskGraft>(geometry);
    case Technology::kUpcall:
      return std::make_unique<UpcallLogicalDiskGraft>(geometry);
  }
  throw std::invalid_argument("unknown technology");
}

}  // namespace grafts
