// The paper grafts written in Tclet ("Tcl") plus their kernel adapters
// (core::Technology::kTcl).
//
// The eviction graft keeps its hot list as a Tcl list in a global variable
// and walks the kernel's LRU chain through a registered host command; the
// MD5 graft does all the arithmetic (decode, 64 rounds, state folding) in
// Tcl with `expr`, reading input bytes through a host command — the adapter
// only shuttles bytes and performs the RFC's mechanical padding layout. The
// paper did not measure Tcl on the logical-disk test ("Because of
// performance of Tcl on the first two tests, we did not take Tcl
// measurements for this test"); a graft is provided anyway for completeness
// and small-scale testing.

#ifndef GRAFTLAB_SRC_GRAFTS_TCLET_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_TCLET_GRAFTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/graft.h"
#include "src/tclet/interp.h"

namespace grafts {

class TcletEvictionGraft : public core::PrioritizationGraft {
 public:
  TcletEvictionGraft();

  vmsim::Frame* ChooseVictim(vmsim::Frame* lru_head) override;
  void HotListAdd(vmsim::PageId page) override;
  void HotListRemove(vmsim::PageId page) override;
  void HotListClear() override;
  const char* technology() const override { return "Tcl"; }

  tclet::Interp& interp() { return interp_; }

 private:
  tclet::Interp interp_;
  vmsim::Frame* walk_head_ = nullptr;
  vmsim::Frame* walk_cursor_ = nullptr;
  std::int64_t walk_pos_ = 0;
};

class TcletMd5Graft : public core::StreamGraft {
 public:
  TcletMd5Graft();

  void Consume(const std::uint8_t* data, std::size_t len) override;
  md5::Digest Finish() override;
  const char* technology() const override { return "Tcl"; }

  // Supervisor fuel seam: one fuel unit per Tcl command evaluation.
  void SetFuel(std::int64_t fuel) override { interp_.SetFuel(fuel); }
  std::int64_t FuelRemaining() const override { return interp_.fuel(); }

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  tclet::Interp interp_;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
  const std::uint8_t* current_block_ = nullptr;  // host-command input window
};

class TcletLogicalDiskGraft : public core::BlackBoxGraft {
 public:
  explicit TcletLogicalDiskGraft(const ldisk::Geometry& geometry);

  ldisk::BlockId OnWrite(ldisk::BlockId logical) override;
  ldisk::BlockId Translate(ldisk::BlockId logical) override;
  const char* technology() const override { return "Tcl"; }

 private:
  tclet::Interp interp_;
};

// Exposed for tests.
const char* TcletEvictionSource();
const char* TcletMd5Source();
const char* TcletLogicalDiskSource();

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_TCLET_GRAFTS_H_
