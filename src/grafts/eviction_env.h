// The VM page-eviction graft for compiled technologies (paper §3.1, §5.4).
//
// One algorithm, templated over the execution environment: the graft keeps
// the application's hot list as a linked list of nodes in its own (env)
// heap — "the C graft searches a linked list of structs, where the Modula-3
// graft searches a linked list of Modula-3 RECORDs" — and, handed the LRU
// chain head, accepts the kernel's candidate unless it is hot, in which
// case it walks the chain for the first non-hot page.
//
// EnvEvictionGraft reads the kernel's frames directly through
// Env::AdoptKernel (valid for unsafe C, the safe language, and write+jump
// SFI). MarshaledEvictionGraft is the full-protection variant: the graft
// cannot read kernel memory, so a trusted kernel-side stub feeds it each
// candidate's page number by value; the graft's own hot-list accesses still
// pay full (read+write) masking.

#ifndef GRAFTLAB_SRC_GRAFTS_EVICTION_ENV_H_
#define GRAFTLAB_SRC_GRAFTS_EVICTION_ENV_H_

#include <cstdint>

#include "src/core/graft.h"
#include "src/envs/env_concept.h"
#include "src/vmsim/frame.h"

namespace grafts {

template <typename Env>
class EnvEvictionGraft : public core::PrioritizationGraft {
 public:
  template <typename... EnvArgs>
  explicit EnvEvictionGraft(EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...) {}

  vmsim::Frame* ChooseVictim(vmsim::Frame* lru_head) override {
    auto candidate = env_.AdoptKernel(lru_head);
    while (!candidate.IsNull()) {
      env_.Poll();
      const vmsim::PageId page = candidate.Get(&vmsim::Frame::page);
      if (!IsHot(static_cast<std::int64_t>(page))) {
        return candidate.KernelPointer();
      }
      candidate = env_.AdoptKernel(candidate.Get(&vmsim::Frame::lru_next));
    }
    // Everything resident is hot: accept the kernel's default.
    return lru_head;
  }

  void HotListAdd(vmsim::PageId page) override {
    auto node = env_.template New<HotNode>();
    node.Set(&HotNode::page, static_cast<std::int64_t>(page));
    node.Set(&HotNode::next, head_);
    head_ = node;
    ++size_;
  }

  void HotListRemove(vmsim::PageId page) override {
    const std::int64_t target = static_cast<std::int64_t>(page);
    Ref prev;
    for (Ref cur = head_; !cur.IsNull(); cur = cur.Get(&HotNode::next)) {
      if (cur.Get(&HotNode::page) == target) {
        if (prev.IsNull()) {
          head_ = cur.Get(&HotNode::next);
        } else {
          prev.Set(&HotNode::next, cur.Get(&HotNode::next));
        }
        --size_;
        return;
      }
      prev = cur;
    }
  }

  void HotListClear() override {
    head_ = Ref();
    size_ = 0;
    env_.ResetHeap();
  }

  const char* technology() const override { return Env::kName; }
  std::size_t hot_list_size() const { return size_; }

 private:
  struct HotNode;
  using Ref = typename Env::template Ref<HotNode>;
  struct HotNode {
    std::int64_t page = 0;
    Ref next;
  };

  bool IsHot(std::int64_t page) {
    for (Ref cur = head_; !cur.IsNull(); cur = cur.Get(&HotNode::next)) {
      if (cur.Get(&HotNode::page) == page) {
        return true;
      }
    }
    return false;
  }

  Env env_;
  Ref head_;
  std::size_t size_ = 0;
};

// Full-protection SFI variant: a kernel stub reads the frames and passes
// page numbers by value; all graft-private accesses are fully masked.
template <typename Env>
class MarshaledEvictionGraft : public core::PrioritizationGraft {
 public:
  template <typename... EnvArgs>
  explicit MarshaledEvictionGraft(EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...) {}

  vmsim::Frame* ChooseVictim(vmsim::Frame* lru_head) override {
    for (vmsim::Frame* cursor = lru_head; cursor != nullptr; cursor = cursor->lru_next) {
      env_.Poll();
      // Kernel stub hands the page number across the protection boundary.
      if (!IsHot(static_cast<std::int64_t>(cursor->page))) {
        return cursor;
      }
    }
    return lru_head;
  }

  void HotListAdd(vmsim::PageId page) override {
    auto node = env_.template New<HotNode>();
    node.Set(&HotNode::page, static_cast<std::int64_t>(page));
    node.Set(&HotNode::next, head_);
    head_ = node;
  }

  void HotListRemove(vmsim::PageId page) override {
    const std::int64_t target = static_cast<std::int64_t>(page);
    Ref prev;
    for (Ref cur = head_; !cur.IsNull(); cur = cur.Get(&HotNode::next)) {
      if (cur.Get(&HotNode::page) == target) {
        if (prev.IsNull()) {
          head_ = cur.Get(&HotNode::next);
        } else {
          prev.Set(&HotNode::next, cur.Get(&HotNode::next));
        }
        return;
      }
      prev = cur;
    }
  }

  void HotListClear() override {
    head_ = Ref();
    env_.ResetHeap();
  }

  const char* technology() const override { return Env::kName; }

 private:
  struct HotNode;
  using Ref = typename Env::template Ref<HotNode>;
  struct HotNode {
    std::int64_t page = 0;
    Ref next;
  };

  bool IsHot(std::int64_t page) {
    for (Ref cur = head_; !cur.IsNull(); cur = cur.Get(&HotNode::next)) {
      if (cur.Get(&HotNode::page) == page) {
        return true;
      }
    }
    return false;
  }

  Env env_;
  Ref head_;
};

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_EVICTION_ENV_H_
