// Access-control-list graft — the paper's canonical Black Box example
// (§3.3): "at the center of the code that implements Access Control Lists
// is a small database that (at an abstract level) accepts a triple
// containing a file access request, a user ID, and a file ID, and responds
// 'yes' or 'no.'"
//
// The database is an open-addressing hash table keyed by (file, user) with
// a permission mask per entry, plus per-file world entries (user id 0).
// The env-templated version stores the table in environment arrays, so the
// per-lookup probe sequence pays each technology's safety tax; Minnow,
// Tclet and upcall implementations live in acl_grafts.{h,cc}.

#ifndef GRAFTLAB_SRC_GRAFTS_ACL_ENV_H_
#define GRAFTLAB_SRC_GRAFTS_ACL_ENV_H_

#include <cstdint>

#include "src/core/acl.h"

namespace grafts {

template <typename Env>
class EnvAclGraft : public core::AccessControlGraft {
 public:
  // `capacity` must be a power of two, comfortably above the expected entry
  // count (the table rejects inserts beyond 3/4 load).
  template <typename... EnvArgs>
  explicit EnvAclGraft(std::size_t capacity, EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...),
        mask_(capacity - 1),
        keys_(env_.template NewArray<std::int64_t>(capacity)),
        masks_(env_.template NewArray<std::int64_t>(capacity)) {
    for (std::size_t i = 0; i < capacity; ++i) {
      keys_.Set(i, kEmpty);
    }
  }

  bool Check(core::UserId user, core::FileId file, core::Access access) override {
    env_.Poll();
    const auto want = static_cast<std::int64_t>(access);
    const std::int64_t direct = Find(Key(user, file));
    if (direct >= 0 && (masks_.Get(static_cast<std::size_t>(direct)) & want) == want) {
      return true;
    }
    const std::int64_t world = Find(Key(core::kWorld, file));
    return world >= 0 && (masks_.Get(static_cast<std::size_t>(world)) & want) == want;
  }

  bool Grant(core::UserId user, core::FileId file, core::Access access) override {
    const std::int64_t key = Key(user, file);
    std::int64_t slot = Find(key);
    if (slot < 0) {
      if (entries_ * 4 >= (mask_ + 1) * 3) {
        return false;  // table full (kernel policy: reject, never grow)
      }
      slot = FindFree(key);
      keys_.Set(static_cast<std::size_t>(slot), key);
      masks_.Set(static_cast<std::size_t>(slot), std::int64_t{0});
      ++entries_;
    }
    masks_.Set(static_cast<std::size_t>(slot),
               masks_.Get(static_cast<std::size_t>(slot)) | static_cast<std::int64_t>(access));
    return true;
  }

  void Revoke(core::UserId user, core::FileId file, core::Access access) override {
    const std::int64_t slot = Find(Key(user, file));
    if (slot < 0) {
      return;
    }
    const std::int64_t remaining = masks_.Get(static_cast<std::size_t>(slot)) &
                                   ~static_cast<std::int64_t>(access);
    // Entries stay occupied with an empty mask (tombstone-free open
    // addressing: deletion by mask clearing keeps probe chains intact).
    masks_.Set(static_cast<std::size_t>(slot), remaining);
  }

  const char* technology() const override { return Env::kName; }

 private:
  static constexpr std::int64_t kEmpty = -1;

  static std::int64_t Key(core::UserId user, core::FileId file) {
    return static_cast<std::int64_t>((file << 20) | (user & 0xFFFFF));
  }

  std::size_t Hash(std::int64_t key) const {
    auto h = static_cast<std::uint64_t>(key);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  // Returns the slot holding `key`, or -1.
  std::int64_t Find(std::int64_t key) {
    std::size_t slot = Hash(key);
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      const std::int64_t occupant = keys_.Get(slot);
      if (occupant == key) {
        return static_cast<std::int64_t>(slot);
      }
      if (occupant == kEmpty) {
        return -1;
      }
      slot = (slot + 1) & mask_;
    }
    return -1;
  }

  std::int64_t FindFree(std::int64_t key) {
    std::size_t slot = Hash(key);
    while (keys_.Get(slot) != kEmpty) {
      slot = (slot + 1) & mask_;
    }
    return static_cast<std::int64_t>(slot);
  }

  Env env_;
  std::size_t mask_;
  std::size_t entries_ = 0;
  typename Env::template Array<std::int64_t> keys_;
  typename Env::template Array<std::int64_t> masks_;
};

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_ACL_ENV_H_
