#include "src/grafts/readahead_grafts.h"

#include <stdexcept>
#include <string>

#include "src/envs/safe_env.h"
#include "src/envs/sfi_env.h"
#include "src/envs/unsafe_env.h"
#include "src/grafts/minnow_grafts.h"
#include "src/minnow/compiler.h"
#include "src/minnow/regir.h"
#include "src/minnow/vm.h"
#include "src/tclet/interp.h"
#include "src/upcall/upcall_engine.h"

namespace grafts {

namespace {

constexpr char kMinnowSource[] = R"minnow(
var expected: int = 0 - 1;
var window: int = 1;
var have_last: bool = false;

fn ra_window(page: int) -> int {
  if (have_last && page == expected) {
    window = window * 2;
    if (window > 16) { window = 16; }
  } else {
    window = 1;
  }
  expected = page + window;
  have_last = true;
  return window;
}
)minnow";

constexpr char kTcletSource[] = R"tcl(
set expected -1
set window 1
set have_last 0

proc ra_window {page} {
  global expected window have_last
  if {$have_last && $page == $expected} {
    set window [expr {$window * 2}]
    if {$window > 16} { set window 16 }
  } else {
    set window 1
  }
  set expected [expr {$page + $window}]
  set have_last 1
  return $window
}
)tcl";

class MinnowReadAheadGraft : public vmsim::ReadAheadGraft {
 public:
  explicit MinnowReadAheadGraft(MinnowEngine engine) : engine_(engine) {
    vm_ = std::make_unique<minnow::VM>(minnow::Compile(kMinnowSource));
    vm_->RunInit();
    if (engine_ == MinnowEngine::kTranslated) {
      executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
    }
  }

  int Window(vmsim::PageId page) override {
    const minnow::Value arg = minnow::Value::Int(static_cast<std::int64_t>(page));
    const std::span<const minnow::Value> args(&arg, 1);
    const minnow::Value result = engine_ == MinnowEngine::kTranslated
                                     ? executor_->Call("ra_window", args)
                                     : vm_->Call("ra_window", args);
    return static_cast<int>(result.AsInt());
  }

  const char* technology() const override {
    return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
  }

 private:
  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;
};

class TcletReadAheadGraft : public vmsim::ReadAheadGraft {
 public:
  TcletReadAheadGraft() {
    if (interp_.Eval(kTcletSource) == tclet::Code::kError) {
      throw std::runtime_error("tclet readahead: " + interp_.result());
    }
  }

  int Window(vmsim::PageId page) override {
    if (interp_.Eval("ra_window " + std::to_string(page)) == tclet::Code::kError) {
      throw std::runtime_error("tclet readahead: " + interp_.result());
    }
    std::int64_t window = 1;
    tclet::ParseInt(interp_.result(), window);
    return static_cast<int>(window);
  }

  const char* technology() const override { return "Tcl"; }

 private:
  tclet::Interp interp_;
};

class UpcallReadAheadGraft : public vmsim::ReadAheadGraft {
 public:
  UpcallReadAheadGraft()
      : engine_([this](std::uint64_t arg) {
          return static_cast<std::uint64_t>(server_.Window(arg));
        }) {}

  int Window(vmsim::PageId page) override {
    return static_cast<int>(engine_.Upcall(page));
  }
  const char* technology() const override { return "Upcall"; }

 private:
  vmsim::AdaptiveReadAhead server_;
  upcall::UpcallEngine engine_;
};

}  // namespace

const char* MinnowReadAheadSource() { return kMinnowSource; }
const char* TcletReadAheadSource() { return kTcletSource; }

std::unique_ptr<vmsim::ReadAheadGraft> CreateReadAheadGraft(core::Technology technology,
                                                            envs::PreemptToken* preempt) {
  using core::Technology;
  switch (technology) {
    case Technology::kC:
      return std::make_unique<EnvReadAheadGraft<envs::UnsafeEnv>>();
    case Technology::kModula3:
      return std::make_unique<EnvReadAheadGraft<envs::SafeLangEnv>>(preempt);
    case Technology::kModula3Trap:
      return std::make_unique<EnvReadAheadGraft<envs::SafeLangTrapEnv>>(preempt);
    case Technology::kSfi:
      return std::make_unique<EnvReadAheadGraft<envs::SfiEnv>>(std::size_t{4096}, preempt);
    case Technology::kSfiFull:
      return std::make_unique<EnvReadAheadGraft<envs::SfiFullEnv>>(std::size_t{4096}, preempt);
    case Technology::kJava:
      return std::make_unique<MinnowReadAheadGraft>(MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowReadAheadGraft>(MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletReadAheadGraft>();
    case Technology::kUpcall:
      return std::make_unique<UpcallReadAheadGraft>();
  }
  throw std::invalid_argument("unknown technology");
}

}  // namespace grafts
