#include "src/grafts/sched_grafts.h"

#include <stdexcept>
#include <string>

#include "src/grafts/minnow_grafts.h"
#include "src/minnow/compiler.h"
#include "src/minnow/regir.h"
#include "src/minnow/vm.h"
#include "src/tclet/interp.h"
#include "src/upcall/upcall_engine.h"

namespace grafts {

namespace {

using minnow::Value;

// Task kinds as integers across the boundary: 0=client, 1=server, 2=batch.
constexpr char kMinnowSource[] = R"minnow(
var cursor: int = 0;

fn pick_next() -> int {
  var n: int = task_count();
  // Server first, iff it has outstanding requests.
  for (var i: int = 0; i < n; i = i + 1) {
    if (task_kind(i) == 1 && task_runnable(i) && task_pending(i) > 0) {
      return i;
    }
  }
  // Otherwise round-robin among runnable non-servers.
  for (var step: int = 0; step < n; step = step + 1) {
    var i: int = (cursor + 1 + step) % n;
    if (task_runnable(i) && task_kind(i) != 1) {
      cursor = i;
      return i;
    }
  }
  return 0 - 1;
}
)minnow";

constexpr char kTcletSource[] = R"tcl(
set cursor 0

proc pick_next {} {
  global cursor
  set n [task_count]
  for {set i 0} {$i < $n} {incr i} {
    if {[task_kind $i] == 1 && [task_runnable $i] && [task_pending $i] > 0} {
      return $i
    }
  }
  for {set step 0} {$step < $n} {incr step} {
    set i [expr {($cursor + 1 + $step) % $n}]
    if {[task_runnable $i] && [task_kind $i] != 1} {
      set cursor $i
      return $i
    }
  }
  return -1
}
)tcl";

int KindCode(sched::TaskKind kind) {
  switch (kind) {
    case sched::TaskKind::kClient: return 0;
    case sched::TaskKind::kServer: return 1;
    case sched::TaskKind::kBatch: return 2;
  }
  return 2;
}

class MinnowSchedulerGraft : public sched::SchedulerGraft {
 public:
  explicit MinnowSchedulerGraft(MinnowEngine engine) : engine_(engine) {
    minnow::HostDecl count{"task_count", {}, minnow::Type::Int()};
    minnow::HostDecl kind{"task_kind", {minnow::Type::Int()}, minnow::Type::Int()};
    minnow::HostDecl runnable{"task_runnable", {minnow::Type::Int()}, minnow::Type::Bool()};
    minnow::HostDecl pending{"task_pending", {minnow::Type::Int()}, minnow::Type::Int()};

    vm_ = std::make_unique<minnow::VM>(
        minnow::Compile(kMinnowSource, {count, kind, runnable, pending}));
    vm_->BindHost("task_count", [this](minnow::VM&, std::span<const Value>) {
      return Value::Int(static_cast<std::int64_t>(tasks_->size()));
    });
    vm_->BindHost("task_kind", [this](minnow::VM&, std::span<const Value> args) {
      return Value::Int(KindCode(At(args).kind));
    });
    vm_->BindHost("task_runnable", [this](minnow::VM&, std::span<const Value> args) {
      return Value::Int(At(args).runnable ? 1 : 0);
    });
    vm_->BindHost("task_pending", [this](minnow::VM&, std::span<const Value> args) {
      return Value::Int(At(args).pending_requests);
    });
    vm_->RunInit();
    if (engine_ == MinnowEngine::kTranslated) {
      executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
    }
  }

  sched::TaskId PickNext(const std::vector<sched::Task>& tasks) override {
    tasks_ = &tasks;
    const Value result = engine_ == MinnowEngine::kTranslated ? executor_->Call("pick_next", {})
                                                              : vm_->Call("pick_next", {});
    tasks_ = nullptr;
    const std::int64_t id = result.AsInt();
    return id < 0 ? sched::kNoTask : static_cast<sched::TaskId>(id);
  }

  const char* technology() const override {
    return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
  }

 private:
  const sched::Task& At(std::span<const Value> args) const {
    static const sched::Task kDummy;
    const std::int64_t i = args[0].AsInt();
    if (tasks_ == nullptr || i < 0 || static_cast<std::size_t>(i) >= tasks_->size()) {
      return kDummy;  // hostile index: harmless answer, kernel validates
    }
    return (*tasks_)[static_cast<std::size_t>(i)];
  }

  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;
  const std::vector<sched::Task>* tasks_ = nullptr;
};

class TcletSchedulerGraft : public sched::SchedulerGraft {
 public:
  TcletSchedulerGraft() {
    auto lookup = [this](tclet::Interp& interp, const std::vector<std::string>& argv,
                         auto&& project) {
      std::int64_t i = 0;
      if (argv.size() != 2 || !tclet::ParseInt(argv[1], i) || tasks_ == nullptr || i < 0 ||
          static_cast<std::size_t>(i) >= tasks_->size()) {
        interp.set_result("0");
        return tclet::Code::kOk;
      }
      interp.set_result(
          tclet::IntToString(project((*tasks_)[static_cast<std::size_t>(i)])));
      return tclet::Code::kOk;
    };
    interp_.RegisterCommand("task_count",
                            [this](tclet::Interp& interp, const std::vector<std::string>&) {
                              interp.set_result(tclet::IntToString(
                                  tasks_ == nullptr
                                      ? 0
                                      : static_cast<std::int64_t>(tasks_->size())));
                              return tclet::Code::kOk;
                            });
    interp_.RegisterCommand("task_kind",
                            [lookup](tclet::Interp& interp, const std::vector<std::string>& argv) {
                              return lookup(interp, argv, [](const sched::Task& task) {
                                return static_cast<std::int64_t>(KindCode(task.kind));
                              });
                            });
    interp_.RegisterCommand(
        "task_runnable",
        [lookup](tclet::Interp& interp, const std::vector<std::string>& argv) {
          return lookup(interp, argv, [](const sched::Task& task) {
            return static_cast<std::int64_t>(task.runnable ? 1 : 0);
          });
        });
    interp_.RegisterCommand(
        "task_pending",
        [lookup](tclet::Interp& interp, const std::vector<std::string>& argv) {
          return lookup(interp, argv, [](const sched::Task& task) {
            return static_cast<std::int64_t>(task.pending_requests);
          });
        });
    if (interp_.Eval(kTcletSource) == tclet::Code::kError) {
      throw std::runtime_error("tclet scheduler: " + interp_.result());
    }
  }

  sched::TaskId PickNext(const std::vector<sched::Task>& tasks) override {
    tasks_ = &tasks;
    const tclet::Code code = interp_.Eval("pick_next");
    tasks_ = nullptr;
    if (code == tclet::Code::kError) {
      throw std::runtime_error("tclet scheduler: " + interp_.result());
    }
    std::int64_t id = -1;
    tclet::ParseInt(interp_.result(), id);
    return id < 0 ? sched::kNoTask : static_cast<sched::TaskId>(id);
  }

  const char* technology() const override { return "Tcl"; }

 private:
  tclet::Interp interp_;
  const std::vector<sched::Task>* tasks_ = nullptr;
};

class UpcallSchedulerGraft : public sched::SchedulerGraft {
 public:
  UpcallSchedulerGraft()
      : engine_([this](std::uint64_t) {
          const sched::TaskId id = server_.PickNext(*tasks_);
          return id == sched::kNoTask ? ~std::uint64_t{0} : id;
        }) {}

  sched::TaskId PickNext(const std::vector<sched::Task>& tasks) override {
    tasks_ = &tasks;  // shared-memory model: the server reads the run queue
    const std::uint64_t reply = engine_.Upcall(0);
    tasks_ = nullptr;
    return reply == ~std::uint64_t{0} ? sched::kNoTask
                                      : static_cast<sched::TaskId>(reply);
  }

  const char* technology() const override { return "Upcall"; }

 private:
  sched::ClientServerPolicy server_;
  upcall::UpcallEngine engine_;
  const std::vector<sched::Task>* tasks_ = nullptr;
};

}  // namespace

const char* MinnowSchedulerSource() { return kMinnowSource; }
const char* TcletSchedulerSource() { return kTcletSource; }

std::unique_ptr<sched::SchedulerGraft> CreateSchedulerGraft(core::Technology technology) {
  using core::Technology;
  switch (technology) {
    case Technology::kJava:
      return std::make_unique<MinnowSchedulerGraft>(MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowSchedulerGraft>(MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletSchedulerGraft>();
    case Technology::kUpcall:
      return std::make_unique<UpcallSchedulerGraft>();
    default:
      // The compiled technologies share the native policy: its state is two
      // integers and its inputs arrive via kernel reads either way.
      return std::make_unique<sched::ClientServerPolicy>();
  }
}

}  // namespace grafts
