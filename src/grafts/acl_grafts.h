// ACL graft implementations for the interpreted and upcall technologies.

#ifndef GRAFTLAB_SRC_GRAFTS_ACL_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_ACL_GRAFTS_H_

#include <memory>

#include "src/core/acl.h"
#include "src/core/technology.h"
#include "src/envs/preempt.h"
#include "src/envs/unsafe_env.h"
#include "src/grafts/acl_env.h"
#include "src/grafts/minnow_grafts.h"
#include "src/minnow/regir.h"
#include "src/minnow/vm.h"
#include "src/tclet/interp.h"
#include "src/upcall/upcall_engine.h"

namespace grafts {

class MinnowAclGraft : public core::AccessControlGraft {
 public:
  explicit MinnowAclGraft(std::size_t capacity,
                          MinnowEngine engine = MinnowEngine::kInterpreter);

  bool Check(core::UserId user, core::FileId file, core::Access access) override;
  bool Grant(core::UserId user, core::FileId file, core::Access access) override;
  void Revoke(core::UserId user, core::FileId file, core::Access access) override;
  const char* technology() const override;

 private:
  minnow::Value Invoke(const std::string& fn, std::span<const minnow::Value> args);

  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;
};

class TcletAclGraft : public core::AccessControlGraft {
 public:
  TcletAclGraft();

  bool Check(core::UserId user, core::FileId file, core::Access access) override;
  bool Grant(core::UserId user, core::FileId file, core::Access access) override;
  void Revoke(core::UserId user, core::FileId file, core::Access access) override;
  const char* technology() const override { return "Tcl"; }

 private:
  tclet::Interp interp_;
};

class UpcallAclGraft : public core::AccessControlGraft {
 public:
  explicit UpcallAclGraft(std::size_t capacity)
      : server_graft_(capacity),
        engine_([this](std::uint64_t arg) { return Dispatch(arg); }) {}

  bool Check(core::UserId user, core::FileId file, core::Access access) override {
    op_ = Op::kCheck;
    return Call(user, file, access) != 0;
  }
  bool Grant(core::UserId user, core::FileId file, core::Access access) override {
    op_ = Op::kGrant;
    return Call(user, file, access) != 0;
  }
  void Revoke(core::UserId user, core::FileId file, core::Access access) override {
    op_ = Op::kRevoke;
    Call(user, file, access);
  }
  const char* technology() const override { return "Upcall"; }

 private:
  enum class Op { kCheck, kGrant, kRevoke };

  std::uint64_t Call(core::UserId user, core::FileId file, core::Access access) {
    user_ = user;
    file_ = file;
    access_ = access;
    return engine_.Upcall(0);
  }

  std::uint64_t Dispatch(std::uint64_t) {
    switch (op_) {
      case Op::kCheck:
        return server_graft_.Check(user_, file_, access_) ? 1 : 0;
      case Op::kGrant:
        return server_graft_.Grant(user_, file_, access_) ? 1 : 0;
      case Op::kRevoke:
        server_graft_.Revoke(user_, file_, access_);
        return 0;
    }
    return 0;
  }

  EnvAclGraft<envs::UnsafeEnv> server_graft_;
  Op op_ = Op::kCheck;
  core::UserId user_ = 0;
  core::FileId file_ = 0;
  core::Access access_ = core::kRead;
  upcall::UpcallEngine engine_;
};

// Factory covering every technology. `capacity` (power of two) bounds the
// compiled/VM hash tables; the Tcl implementation is backed by an
// associative array and effectively unbounded.
std::unique_ptr<core::AccessControlGraft> CreateAclGraft(core::Technology technology,
                                                         std::size_t capacity = 4096,
                                                         envs::PreemptToken* preempt = nullptr);

// Exposed for tests.
const char* MinnowAclSource();
const char* TcletAclSource();

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_ACL_GRAFTS_H_
