// Factory: every (graft shape x technology) combination the paper compares,
// behind one call.

#ifndef GRAFTLAB_SRC_GRAFTS_FACTORY_H_
#define GRAFTLAB_SRC_GRAFTS_FACTORY_H_

#include <memory>

#include "src/core/graft.h"
#include "src/core/technology.h"
#include "src/envs/preempt.h"

namespace grafts {

// Creates the page-eviction (Prioritization) graft for `technology`.
// `preempt` (optional) is polled by the safe compiled technologies.
std::unique_ptr<core::PrioritizationGraft> CreateEvictionGraft(
    core::Technology technology, envs::PreemptToken* preempt = nullptr);

// Creates the MD5 fingerprint (Stream) graft for `technology`.
std::unique_ptr<core::StreamGraft> CreateMd5Graft(core::Technology technology,
                                                  envs::PreemptToken* preempt = nullptr);

// Creates the logical-disk bookkeeping (Black Box) graft for `technology`.
std::unique_ptr<core::BlackBoxGraft> CreateLogicalDiskGraft(
    core::Technology technology, const ldisk::Geometry& geometry,
    envs::PreemptToken* preempt = nullptr);

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_FACTORY_H_
