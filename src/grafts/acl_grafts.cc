#include "src/grafts/acl_grafts.h"

#include <stdexcept>

#include "src/envs/safe_env.h"
#include "src/envs/sfi_env.h"
#include "src/minnow/compiler.h"

namespace grafts {

namespace {

using minnow::Value;

// The same open-addressing table as EnvAclGraft, in Minnow. Entries stay
// occupied with an empty mask after revocation so probe chains never break.
constexpr char kMinnowAclSource[] = R"minnow(
var keys: int[];
var masks: int[];
var cap: int = 0;
var entries: int = 0;

fn acl_init(capacity: int) {
  cap = capacity;
  keys = new int[capacity];
  masks = new int[capacity];
  for (var i: int = 0; i < capacity; i = i + 1) {
    keys[i] = 0 - 1;
  }
  entries = 0;
}

fn key_of(user: int, file: int) -> int {
  return file * 1048576 + user % 1048576;
}

fn hash_of(key: int) -> int {
  // Keys are non-negative, so the remainders stay non-negative.
  return ((key % 999983) * 31 + key % 8191) % cap;
}

fn find(key: int) -> int {
  var slot: int = hash_of(key);
  var probes: int = 0;
  while (probes < cap) {
    var occupant: int = keys[slot];
    if (occupant == key) { return slot; }
    if (occupant < 0) { return 0 - 1; }
    slot = (slot + 1) % cap;
    probes = probes + 1;
  }
  return 0 - 1;
}

fn acl_check(user: int, file: int, want: int) -> bool {
  var direct: int = find(key_of(user, file));
  if (direct >= 0 && (masks[direct] & want) == want) { return true; }
  var world: int = find(key_of(0, file));
  if (world >= 0 && (masks[world] & want) == want) { return true; }
  return false;
}

fn acl_grant(user: int, file: int, bits: int) -> bool {
  var key: int = key_of(user, file);
  var slot: int = find(key);
  if (slot < 0) {
    if (entries * 4 >= cap * 3) { return false; }
    slot = hash_of(key);
    while (keys[slot] >= 0) { slot = (slot + 1) % cap; }
    keys[slot] = key;
    masks[slot] = 0;
    entries = entries + 1;
  }
  masks[slot] = masks[slot] | bits;
  return true;
}

fn acl_revoke(user: int, file: int, bits: int) {
  var slot: int = find(key_of(user, file));
  if (slot >= 0) {
    masks[slot] = masks[slot] & ~bits;
  }
}
)minnow";

constexpr char kTcletAclSource[] = R"tcl(
proc acl_key {user file} { return "$file,$user" }

proc acl_check {user file want} {
  global acl
  set k [acl_key $user $file]
  if {[info exists acl($k)]} {
    if {($acl($k) & $want) == $want} { return 1 }
  }
  set w [acl_key 0 $file]
  if {[info exists acl($w)]} {
    if {($acl($w) & $want) == $want} { return 1 }
  }
  return 0
}

proc acl_grant {user file bits} {
  global acl
  set k [acl_key $user $file]
  if {[info exists acl($k)]} {
    set acl($k) [expr {$acl($k) | $bits}]
  } else {
    set acl($k) $bits
  }
  return 1
}

proc acl_revoke {user file bits} {
  global acl
  set k [acl_key $user $file]
  if {[info exists acl($k)]} {
    set acl($k) [expr {$acl($k) & ~$bits}]
  }
}
)tcl";

}  // namespace

const char* MinnowAclSource() { return kMinnowAclSource; }
const char* TcletAclSource() { return kTcletAclSource; }

// --- MinnowAclGraft ---

MinnowAclGraft::MinnowAclGraft(std::size_t capacity, MinnowEngine engine) : engine_(engine) {
  vm_ = std::make_unique<minnow::VM>(minnow::Compile(kMinnowAclSource));
  vm_->RunInit();
  if (engine_ == MinnowEngine::kTranslated) {
    executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
  }
  const Value arg = Value::Int(static_cast<std::int64_t>(capacity));
  Invoke("acl_init", std::span<const Value>(&arg, 1));
}

minnow::Value MinnowAclGraft::Invoke(const std::string& fn, std::span<const Value> args) {
  return engine_ == MinnowEngine::kTranslated ? executor_->Call(fn, args) : vm_->Call(fn, args);
}

bool MinnowAclGraft::Check(core::UserId user, core::FileId file, core::Access access) {
  const Value args[3] = {Value::Int(static_cast<std::int64_t>(user)),
                         Value::Int(static_cast<std::int64_t>(file)),
                         Value::Int(static_cast<std::int64_t>(access))};
  return Invoke("acl_check", args).AsBool();
}

bool MinnowAclGraft::Grant(core::UserId user, core::FileId file, core::Access access) {
  const Value args[3] = {Value::Int(static_cast<std::int64_t>(user)),
                         Value::Int(static_cast<std::int64_t>(file)),
                         Value::Int(static_cast<std::int64_t>(access))};
  return Invoke("acl_grant", args).AsBool();
}

void MinnowAclGraft::Revoke(core::UserId user, core::FileId file, core::Access access) {
  const Value args[3] = {Value::Int(static_cast<std::int64_t>(user)),
                         Value::Int(static_cast<std::int64_t>(file)),
                         Value::Int(static_cast<std::int64_t>(access))};
  Invoke("acl_revoke", args);
}

const char* MinnowAclGraft::technology() const {
  return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
}

// --- TcletAclGraft ---

TcletAclGraft::TcletAclGraft() {
  if (interp_.Eval(kTcletAclSource) == tclet::Code::kError) {
    throw std::runtime_error("tclet acl: " + interp_.result());
  }
}

namespace {
std::int64_t TclCall(tclet::Interp& interp, const std::string& command) {
  if (interp.Eval(command) == tclet::Code::kError) {
    throw std::runtime_error("tclet acl: " + interp.result());
  }
  std::int64_t value = 0;
  tclet::ParseInt(interp.result(), value);
  return value;
}
}  // namespace

bool TcletAclGraft::Check(core::UserId user, core::FileId file, core::Access access) {
  return TclCall(interp_, "acl_check " + std::to_string(user) + " " + std::to_string(file) +
                              " " + std::to_string(access)) != 0;
}

bool TcletAclGraft::Grant(core::UserId user, core::FileId file, core::Access access) {
  return TclCall(interp_, "acl_grant " + std::to_string(user) + " " + std::to_string(file) +
                              " " + std::to_string(access)) != 0;
}

void TcletAclGraft::Revoke(core::UserId user, core::FileId file, core::Access access) {
  TclCall(interp_, "acl_revoke " + std::to_string(user) + " " + std::to_string(file) + " " +
                       std::to_string(access));
}

// --- factory ---

std::unique_ptr<core::AccessControlGraft> CreateAclGraft(core::Technology technology,
                                                         std::size_t capacity,
                                                         envs::PreemptToken* preempt) {
  using core::Technology;
  switch (technology) {
    case Technology::kC:
      return std::make_unique<EnvAclGraft<envs::UnsafeEnv>>(capacity);
    case Technology::kModula3:
      return std::make_unique<EnvAclGraft<envs::SafeLangEnv>>(capacity, preempt);
    case Technology::kModula3Trap:
      return std::make_unique<EnvAclGraft<envs::SafeLangTrapEnv>>(capacity, preempt);
    case Technology::kSfi:
      return std::make_unique<EnvAclGraft<envs::SfiEnv>>(capacity, 1u << 20, preempt);
    case Technology::kSfiFull:
      return std::make_unique<EnvAclGraft<envs::SfiFullEnv>>(capacity, 1u << 20, preempt);
    case Technology::kJava:
      return std::make_unique<MinnowAclGraft>(capacity, MinnowEngine::kInterpreter);
    case Technology::kJavaTranslated:
      return std::make_unique<MinnowAclGraft>(capacity, MinnowEngine::kTranslated);
    case Technology::kTcl:
      return std::make_unique<TcletAclGraft>();
    case Technology::kUpcall:
      return std::make_unique<UpcallAclGraft>(capacity);
  }
  throw std::invalid_argument("unknown technology");
}

}  // namespace grafts
