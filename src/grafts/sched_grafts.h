// Scheduling-policy grafts: the paper's client-server policy (§3.1) as a
// downloadable extension, across technologies.
//
// The compiled variants walk the kernel's task vector directly; the Minnow
// and Tclet variants inspect it through host calls (task_kind/task_runnable/
// task_pending), the same kernel-call surface mChoices-style systems would
// expose. Every implementation must make the identical decision for the
// identical state — conformance-tested in tests/sched_test.cc.

#ifndef GRAFTLAB_SRC_GRAFTS_SCHED_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_SCHED_GRAFTS_H_

#include <memory>

#include "src/core/technology.h"
#include "src/sched/scheduler.h"

namespace grafts {

// Creates the client-server scheduling graft for `technology`. Supported:
// kC (native), kJava, kJavaTranslated, kTcl, kUpcall; other technologies
// return the native policy (the decision logic has no memory accesses worth
// instrumenting — its cost is the traversal, measured via the host calls).
std::unique_ptr<sched::SchedulerGraft> CreateSchedulerGraft(core::Technology technology);

// Exposed for tests.
const char* MinnowSchedulerSource();
const char* TcletSchedulerSource();

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_SCHED_GRAFTS_H_
