// Grafts served from a user-level server (core::Technology::kUpcall).
//
// The extension logic is plain compiled code (the UnsafeEnv graft), but it
// lives behind a protection boundary: every kernel->graft interaction is a
// synchronous upcall through upcall::UpcallEngine (a server thread standing
// in for a separate protection domain). This is the paper's
// hardware-protection column: per-invocation cost = upcall round trip +
// the work itself.

#ifndef GRAFTLAB_SRC_GRAFTS_UPCALL_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_UPCALL_GRAFTS_H_

#include <memory>

#include "src/core/graft.h"
#include "src/envs/safe_env.h"
#include "src/envs/sfi_env.h"
#include "src/envs/unsafe_env.h"
#include "src/grafts/eviction_env.h"
#include "src/grafts/ldisk_env.h"
#include "src/grafts/md5_graft_env.h"
#include "src/upcall/upcall_engine.h"

namespace grafts {

class UpcallEvictionGraft : public core::PrioritizationGraft {
 public:
  UpcallEvictionGraft()
      : server_graft_(),
        engine_([this](std::uint64_t arg) { return Dispatch(arg); }) {}

  vmsim::Frame* ChooseVictim(vmsim::Frame* lru_head) override {
    op_ = Op::kChoose;
    return reinterpret_cast<vmsim::Frame*>(
        engine_.Upcall(reinterpret_cast<std::uint64_t>(lru_head)));
  }
  void HotListAdd(vmsim::PageId page) override {
    op_ = Op::kAdd;
    engine_.Upcall(page);
  }
  void HotListRemove(vmsim::PageId page) override {
    op_ = Op::kRemove;
    engine_.Upcall(page);
  }
  void HotListClear() override {
    op_ = Op::kClear;
    engine_.Upcall(0);
  }
  const char* technology() const override { return "Upcall"; }

  std::uint64_t upcalls() const { return engine_.upcalls(); }

 private:
  enum class Op { kChoose, kAdd, kRemove, kClear };

  std::uint64_t Dispatch(std::uint64_t arg) {
    switch (op_) {
      case Op::kChoose:
        return reinterpret_cast<std::uint64_t>(
            server_graft_.ChooseVictim(reinterpret_cast<vmsim::Frame*>(arg)));
      case Op::kAdd:
        server_graft_.HotListAdd(arg);
        return 0;
      case Op::kRemove:
        server_graft_.HotListRemove(arg);
        return 0;
      case Op::kClear:
        server_graft_.HotListClear();
        return 0;
    }
    return 0;
  }

  EnvEvictionGraft<envs::UnsafeEnv> server_graft_;
  Op op_ = Op::kChoose;
  upcall::UpcallEngine engine_;  // must construct after op_/server_graft_
};

class UpcallMd5Graft : public core::StreamGraft {
 public:
  UpcallMd5Graft()
      : server_graft_(), engine_([this](std::uint64_t arg) { return Dispatch(arg); }) {}

  // One upcall per chunk — the paper assumes one per 64KB disk transfer.
  void Consume(const std::uint8_t* data, std::size_t len) override {
    op_ = Op::kConsume;
    data_ = data;
    len_ = len;
    engine_.Upcall(0);
  }

  md5::Digest Finish() override {
    op_ = Op::kFinish;
    engine_.Upcall(0);
    return digest_;
  }

  const char* technology() const override { return "Upcall"; }
  std::uint64_t upcalls() const { return engine_.upcalls(); }

 private:
  enum class Op { kConsume, kFinish };

  std::uint64_t Dispatch(std::uint64_t) {
    if (op_ == Op::kConsume) {
      server_graft_.Consume(data_, len_);
    } else {
      digest_ = server_graft_.Finish();
    }
    return 0;
  }

  EnvMd5Graft<envs::UnsafeEnv> server_graft_;
  Op op_ = Op::kConsume;
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
  md5::Digest digest_{};
  upcall::UpcallEngine engine_;
};

class UpcallLogicalDiskGraft : public core::BlackBoxGraft {
 public:
  explicit UpcallLogicalDiskGraft(const ldisk::Geometry& geometry)
      : server_graft_(geometry),
        engine_([this](std::uint64_t arg) { return Dispatch(arg); }) {}

  ldisk::BlockId OnWrite(ldisk::BlockId logical) override {
    op_ = Op::kWrite;
    const std::uint64_t reply = engine_.Upcall(logical);
    if (reply == ldisk::kUnmapped) {
      throw ldisk::DiskFull();
    }
    return reply;
  }
  ldisk::BlockId Translate(ldisk::BlockId logical) override {
    op_ = Op::kTranslate;
    return engine_.Upcall(logical);
  }
  const char* technology() const override { return "Upcall"; }
  std::uint64_t upcalls() const { return engine_.upcalls(); }

 private:
  enum class Op { kWrite, kTranslate };

  std::uint64_t Dispatch(std::uint64_t arg) {
    if (op_ == Op::kWrite) {
      try {
        return server_graft_.OnWrite(arg);
      } catch (const ldisk::DiskFull&) {
        return ldisk::kUnmapped;  // marshaled back across the boundary
      }
    }
    return server_graft_.Translate(arg);
  }

  EnvLogicalDiskGraft<envs::UnsafeEnv> server_graft_;
  Op op_ = Op::kWrite;
  upcall::UpcallEngine engine_;
};

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_UPCALL_GRAFTS_H_
