#include "src/grafts/minnow_grafts.h"

#include <cmath>
#include <cstring>

#include "src/minnow/compiler.h"
#include "src/minnow/optimizer.h"
#include "src/minnow/verifier.h"

namespace grafts {

namespace {

using minnow::HostDecl;
using minnow::Type;
using minnow::TypeKind;
using minnow::Value;

// RFC 1321 round constants, computed as the RFC defines them:
// T[i] = floor(2^32 * |sin(i + 1)|).
std::int64_t SineConstant(int i) {
  return static_cast<std::int64_t>(std::floor(4294967296.0 * std::fabs(std::sin(i + 1.0))));
}

constexpr int kShiftTable[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr char kEvictionSource[] = R"minnow(
// VM page-eviction graft (paper section 3.1), in Minnow.
struct Node { page: int; next: Node; }
var head: Node;

fn hot_add(page: int) {
  var n: Node = new Node();
  n.page = page;
  n.next = head;
  head = n;
}

fn hot_remove(page: int) {
  var prev: Node = null;
  var cur: Node = head;
  while (cur != null) {
    if (cur.page == page) {
      if (prev == null) { head = cur.next; } else { prev.next = cur.next; }
      return;
    }
    prev = cur;
    cur = cur.next;
  }
}

fn hot_clear() { head = null; }

fn is_hot(page: int) -> bool {
  var cur: Node = head;
  while (cur != null) {
    if (cur.page == page) { return true; }
    cur = cur.next;
  }
  return false;
}

// Returns the LRU-chain position of the chosen victim. Position 0 is the
// kernel's candidate; the chain beyond it is read via the lru_page upcall.
fn choose(candidate_page: int) -> int {
  if (!is_hot(candidate_page)) { return 0; }
  var pos: int = 1;
  while (true) {
    var page: int = lru_page(pos);
    if (page < 0) { return 0; }
    if (!is_hot(page)) { return pos; }
    pos = pos + 1;
  }
  return 0;
}
)minnow";

constexpr char kMd5Source[] = R"minnow(
// RFC 1321 MD5 (paper section 3.2), in Minnow.
var state: u32[] = new u32[4];
var xbuf: u32[] = new u32[16];
var buffer: byte[] = new byte[64];
var digest: byte[] = new byte[16];
var kt: u32[] = new u32[64];
var ks: int[] = new int[64];
var buffered: int = 0;
var total: int = 0;

fn set_const(i: int, t: int, s: int) {
  kt[i] = u32(t);
  ks[i] = s;
}

fn md5_init() {
  state[0] = u32(0x67452301);
  state[1] = u32(0xefcdab89);
  state[2] = u32(0x98badcfe);
  state[3] = u32(0x10325476);
  buffered = 0;
  total = 0;
}

fn rotl(v: u32, n: int) -> u32 {
  if (n == 0) { return v; }
  return (v << n) | (v >> (32 - n));
}

fn word_index(i: int) -> int {
  if (i < 16) { return i; }
  if (i < 32) { return (5 * i + 1) % 16; }
  if (i < 48) { return (3 * i + 5) % 16; }
  return (7 * i) % 16;
}

fn rounds() {
  var a: u32 = state[0];
  var b: u32 = state[1];
  var c: u32 = state[2];
  var d: u32 = state[3];
  for (var i: int = 0; i < 64; i = i + 1) {
    var f: u32 = u32(0);
    if (i < 16) {
      f = (b & c) | (~b & d);
    } else if (i < 32) {
      f = (d & b) | (~d & c);
    } else if (i < 48) {
      f = b ^ c ^ d;
    } else {
      f = c ^ (b | ~d);
    }
    var temp: u32 = d;
    d = c;
    c = b;
    var sum: u32 = a + f + xbuf[word_index(i)] + kt[i];
    b = b + rotl(sum, ks[i]);
    a = temp;
  }
  state[0] = state[0] + a;
  state[1] = state[1] + b;
  state[2] = state[2] + c;
  state[3] = state[3] + d;
}

fn decode_buffer() {
  for (var k: int = 0; k < 16; k = k + 1) {
    xbuf[k] = u32(buffer[k * 4])
        | (u32(buffer[k * 4 + 1]) << 8)
        | (u32(buffer[k * 4 + 2]) << 16)
        | (u32(buffer[k * 4 + 3]) << 24);
  }
}

fn md5_update(data: byte[], len: int) {
  total = total + len;
  var off: int = 0;
  if (buffered > 0) {
    while (buffered < 64 && off < len) {
      buffer[buffered] = data[off];
      buffered = buffered + 1;
      off = off + 1;
    }
    if (buffered == 64) {
      decode_buffer();
      rounds();
      buffered = 0;
    }
  }
  while (off + 64 <= len) {
    for (var k: int = 0; k < 16; k = k + 1) {
      xbuf[k] = u32(data[off + k * 4])
          | (u32(data[off + k * 4 + 1]) << 8)
          | (u32(data[off + k * 4 + 2]) << 16)
          | (u32(data[off + k * 4 + 3]) << 24);
    }
    rounds();
    off = off + 64;
  }
  while (off < len) {
    buffer[buffered] = data[off];
    buffered = buffered + 1;
    off = off + 1;
  }
}

fn md5_final() {
  var bits: int = total * 8;
  buffer[buffered] = 128;
  buffered = buffered + 1;
  if (buffered > 56) {
    while (buffered < 64) { buffer[buffered] = 0; buffered = buffered + 1; }
    decode_buffer();
    rounds();
    buffered = 0;
  }
  while (buffered < 56) { buffer[buffered] = 0; buffered = buffered + 1; }
  for (var i: int = 0; i < 8; i = i + 1) {
    buffer[56 + i] = (bits >> (8 * i)) & 255;
  }
  decode_buffer();
  rounds();
  for (var i: int = 0; i < 4; i = i + 1) {
    var s: u32 = state[i];
    digest[i * 4] = int(s) & 255;
    digest[i * 4 + 1] = int(s >> 8) & 255;
    digest[i * 4 + 2] = int(s >> 16) & 255;
    digest[i * 4 + 3] = int(s >> 24) & 255;
  }
  buffered = 0;
}
)minnow";

constexpr char kLogicalDiskSource[] = R"minnow(
// Log-structured block mapping (paper section 3.3), in Minnow.
var map: int[];
var rev: int[];
var segliv: int[];
var next_phys: int = 0;
var nblocks: int = 0;
var segsize: int = 16;

fn ld_init(n: int, seg: int) {
  nblocks = n;
  segsize = seg;
  map = new int[n];
  rev = new int[n];
  segliv = new int[n / seg];
  for (var i: int = 0; i < n; i = i + 1) {
    map[i] = 0 - 1;
    rev[i] = 0 - 1;
  }
  next_phys = 0;
}

fn ld_write(lb: int) -> int {
  if (next_phys >= nblocks) { return 0 - 1; }
  var old: int = map[lb];
  if (old >= 0) {
    rev[old] = 0 - 1;
    segliv[old / segsize] = segliv[old / segsize] - 1;
  }
  var p: int = next_phys;
  next_phys = p + 1;
  map[lb] = p;
  rev[p] = lb;
  segliv[p / segsize] = segliv[p / segsize] + 1;
  return p;
}

fn ld_translate(lb: int) -> int { return map[lb]; }
)minnow";

minnow::Program Prepare(minnow::Program program, const MinnowConfig& config) {
  if (config.optimize) {
    minnow::Optimize(program);
    minnow::VerifyProgram(program);  // recompute max_stack after shrinking
  }
  // Fusion only helps (and only works) on the interpreter: the register
  // translator refuses superinstructions because it fuses at the IR level.
  if (config.fuse && config.engine == MinnowEngine::kInterpreter) {
    minnow::FuseSuperinstructions(program);
    minnow::VerifyProgram(program);
  }
  return program;
}

minnow::VmOptions GraftVmOptions(const MinnowConfig& config) {
  minnow::VmOptions options;
  options.heap_limit = 96u << 20;  // the full-scale ldisk map needs ~12MB
  options.dispatch = config.dispatch;
  options.profile_opcodes = config.profile_opcodes;
  options.elide_checks = config.elide;
  // The jit flag only means something on the interpreter engine: the
  // translated engine executes through RegExecutor, so compiling the
  // bytecode natively as well would only waste the arena.
  if (config.jit && config.engine == MinnowEngine::kInterpreter) {
    options.dispatch = minnow::DispatchMode::kJit;
  }
  return options;
}

}  // namespace

const char* MinnowEvictionSource() { return kEvictionSource; }
const char* MinnowMd5Source() { return kMd5Source; }
const char* MinnowLogicalDiskSource() { return kLogicalDiskSource; }

// --- MinnowEvictionGraft ---

MinnowEvictionGraft::MinnowEvictionGraft(MinnowConfig config) : engine_(config.engine) {
  HostDecl lru_page;
  lru_page.name = "lru_page";
  lru_page.params = {Type::Int()};
  lru_page.ret = Type::Int();

  vm_ = std::make_unique<minnow::VM>(
      Prepare(minnow::Compile(kEvictionSource, {lru_page}), config), GraftVmOptions(config));
  vm_->BindHost("lru_page", [this](minnow::VM&, std::span<const Value> args) {
    const std::int64_t pos = args[0].AsInt();
    // Amortized O(1): continue from the cached cursor when the graft scans
    // forward; otherwise rewalk from the head.
    if (walk_cursor_ == nullptr || pos <= walk_pos_) {
      walk_cursor_ = walk_head_;
      walk_pos_ = 0;
    }
    while (walk_cursor_ != nullptr && walk_pos_ < pos) {
      walk_cursor_ = walk_cursor_->lru_next;
      ++walk_pos_;
    }
    if (walk_cursor_ == nullptr) {
      return Value::Int(-1);
    }
    return Value::Int(static_cast<std::int64_t>(walk_cursor_->page));
  });
  vm_->RunInit();
  if (engine_ == MinnowEngine::kTranslated) {
    executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
  }
}

minnow::Value MinnowEvictionGraft::Invoke(const std::string& fn,
                                          std::span<const Value> args) {
  return engine_ == MinnowEngine::kTranslated ? executor_->Call(fn, args) : vm_->Call(fn, args);
}

vmsim::Frame* MinnowEvictionGraft::ChooseVictim(vmsim::Frame* lru_head) {
  walk_head_ = lru_head;
  walk_cursor_ = lru_head;
  walk_pos_ = 0;

  const Value candidate = Value::Int(static_cast<std::int64_t>(lru_head->page));
  const std::int64_t pos = Invoke("choose", std::span<const Value>(&candidate, 1)).AsInt();

  vmsim::Frame* frame = lru_head;
  for (std::int64_t i = 0; i < pos && frame != nullptr; ++i) {
    frame = frame->lru_next;
  }
  return frame != nullptr ? frame : lru_head;
}

void MinnowEvictionGraft::HotListAdd(vmsim::PageId page) {
  const Value arg = Value::Int(static_cast<std::int64_t>(page));
  Invoke("hot_add", std::span<const Value>(&arg, 1));
}

void MinnowEvictionGraft::HotListRemove(vmsim::PageId page) {
  const Value arg = Value::Int(static_cast<std::int64_t>(page));
  Invoke("hot_remove", std::span<const Value>(&arg, 1));
}

void MinnowEvictionGraft::HotListClear() { Invoke("hot_clear", {}); }

const char* MinnowEvictionGraft::technology() const {
  return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
}

// --- MinnowMd5Graft ---

MinnowMd5Graft::MinnowMd5Graft(MinnowConfig config) : engine_(config.engine) {
  vm_ = std::make_unique<minnow::VM>(
      Prepare(minnow::Compile(kMd5Source), config), GraftVmOptions(config));
  vm_->RunInit();
  if (engine_ == MinnowEngine::kTranslated) {
    executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
  }
  // Load the round-constant tables, then initialize the chaining state.
  for (int i = 0; i < 64; ++i) {
    const Value args[3] = {Value::Int(i), Value::Int(SineConstant(i)),
                           Value::Int(kShiftTable[i])};
    Invoke("set_const", args);
  }
  Invoke("md5_init", {});
}

minnow::Value MinnowMd5Graft::Invoke(const std::string& fn, std::span<const Value> args) {
  return engine_ == MinnowEngine::kTranslated ? executor_->Call(fn, args) : vm_->Call(fn, args);
}

void MinnowMd5Graft::EnsureBuffer(std::size_t len) {
  if (buffer_ != nullptr && buffer_->bytes.size() >= len) {
    return;
  }
  vm_->UnpinAll();
  buffer_ = vm_->heap().NewArray(TypeKind::kByte, len < 4096 ? 4096 : len);
  vm_->Pin(buffer_);
}

void MinnowMd5Graft::Consume(const std::uint8_t* data, std::size_t len) {
  if (len == 0) {
    return;
  }
  EnsureBuffer(len);
  std::memcpy(buffer_->bytes.data(), data, len);
  const Value args[2] = {Value::Ref(buffer_), Value::Int(static_cast<std::int64_t>(len))};
  Invoke("md5_update", args);
}

md5::Digest MinnowMd5Graft::Finish() {
  Invoke("md5_final", {});
  md5::Digest digest{};
  const Value global = vm_->GetGlobal("digest");
  const auto* array = reinterpret_cast<const minnow::Object*>(global.bits);
  for (std::size_t i = 0; i < digest.size(); ++i) {
    digest[i] = array->bytes[i];
  }
  Invoke("md5_init", {});
  return digest;
}

const char* MinnowMd5Graft::technology() const {
  return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
}

// --- MinnowLogicalDiskGraft ---

MinnowLogicalDiskGraft::MinnowLogicalDiskGraft(const ldisk::Geometry& geometry,
                                               MinnowConfig config)
    : engine_(config.engine) {
  vm_ = std::make_unique<minnow::VM>(
      Prepare(minnow::Compile(kLogicalDiskSource), config), GraftVmOptions(config));
  vm_->RunInit();
  if (engine_ == MinnowEngine::kTranslated) {
    executor_ = std::make_unique<minnow::RegExecutor>(*vm_);
  }
  const Value args[2] = {Value::Int(static_cast<std::int64_t>(geometry.num_blocks)),
                         Value::Int(static_cast<std::int64_t>(geometry.blocks_per_segment))};
  Invoke("ld_init", args);
}

minnow::Value MinnowLogicalDiskGraft::Invoke(const std::string& fn,
                                             std::span<const Value> args) {
  return engine_ == MinnowEngine::kTranslated ? executor_->Call(fn, args) : vm_->Call(fn, args);
}

ldisk::BlockId MinnowLogicalDiskGraft::OnWrite(ldisk::BlockId logical) {
  const Value arg = Value::Int(static_cast<std::int64_t>(logical));
  const std::int64_t physical = Invoke("ld_write", std::span<const Value>(&arg, 1)).AsInt();
  if (physical < 0) {
    throw ldisk::DiskFull();
  }
  return static_cast<ldisk::BlockId>(physical);
}

ldisk::BlockId MinnowLogicalDiskGraft::Translate(ldisk::BlockId logical) {
  const Value arg = Value::Int(static_cast<std::int64_t>(logical));
  const std::int64_t physical = Invoke("ld_translate", std::span<const Value>(&arg, 1)).AsInt();
  return physical < 0 ? ldisk::kUnmapped : static_cast<ldisk::BlockId>(physical);
}

const char* MinnowLogicalDiskGraft::technology() const {
  return engine_ == MinnowEngine::kTranslated ? "Java/translated" : "Java";
}

}  // namespace grafts
