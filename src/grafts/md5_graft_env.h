// MD5 stream graft for compiled technologies: the policy-templated RFC 1321
// implementation behind the StreamGraft interface (paper §3.2, §5.5).

#ifndef GRAFTLAB_SRC_GRAFTS_MD5_GRAFT_ENV_H_
#define GRAFTLAB_SRC_GRAFTS_MD5_GRAFT_ENV_H_

#include "src/core/graft.h"
#include "src/envs/word.h"
#include "src/md5/md5_env.h"

namespace grafts {

template <typename Env, typename Word = envs::Word32>
class EnvMd5Graft : public core::StreamGraft {
 public:
  template <typename... EnvArgs>
  explicit EnvMd5Graft(EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...), md5_(env_) {}

  void Consume(const std::uint8_t* data, std::size_t len) override { md5_.Update(data, len); }

  md5::Digest Finish() override {
    const md5::Digest digest = md5_.Final();
    md5_.Reset();
    return digest;
  }

  const char* technology() const override { return Env::kName; }

 private:
  Env env_;
  md5::EnvMd5<Env, Word> md5_;
};

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_MD5_GRAFT_ENV_H_
