// Read-ahead policy grafts (§5.4's "obvious candidate for grafting") for
// every technology: the same adaptive policy — double the window on
// sequential streaks, snap to 1 on random faults — with its two words of
// state held in each technology's own storage.

#ifndef GRAFTLAB_SRC_GRAFTS_READAHEAD_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_READAHEAD_GRAFTS_H_

#include <memory>

#include "src/core/technology.h"
#include "src/envs/preempt.h"
#include "src/vmsim/read_ahead.h"

namespace grafts {

// Env-templated adaptive policy: state in environment storage so the
// per-fault decision pays the technology's access costs.
template <typename Env>
class EnvReadAheadGraft : public vmsim::ReadAheadGraft {
 public:
  template <typename... EnvArgs>
  explicit EnvReadAheadGraft(EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...),
        state_(env_.template NewArray<std::int64_t>(3)) {
    state_.Set(kExpected, -1);
    state_.Set(kWindow, 1);
    state_.Set(kHaveLast, 0);
  }

  int Window(vmsim::PageId page) override {
    env_.Poll();
    const auto p = static_cast<std::int64_t>(page);
    std::int64_t window = state_.Get(kWindow);
    if (state_.Get(kHaveLast) != 0 && p == state_.Get(kExpected)) {
      window *= 2;
      if (window > vmsim::kMaxReadAheadWindow) {
        window = vmsim::kMaxReadAheadWindow;
      }
    } else {
      window = 1;
    }
    state_.Set(kWindow, window);
    state_.Set(kExpected, p + window);
    state_.Set(kHaveLast, std::int64_t{1});
    return static_cast<int>(window);
  }

  const char* technology() const override { return Env::kName; }

 private:
  enum : std::size_t { kExpected = 0, kWindow = 1, kHaveLast = 2 };
  Env env_;
  typename Env::template Array<std::int64_t> state_;
};

// Factory across all technologies (Minnow/Tclet/upcall variants in the .cc).
std::unique_ptr<vmsim::ReadAheadGraft> CreateReadAheadGraft(
    core::Technology technology, envs::PreemptToken* preempt = nullptr);

// Exposed for tests.
const char* MinnowReadAheadSource();
const char* TcletReadAheadSource();

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_READAHEAD_GRAFTS_H_
