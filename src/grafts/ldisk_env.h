// Logical-disk bookkeeping graft for compiled technologies (paper §3.3,
// §5.6).
//
// Per write: retire the block's previous physical location (reverse map +
// per-segment live count), allocate the next log slot, and record the new
// mapping — five or six instrumented array accesses, the working set of a
// [DEJON93]-style logical disk. All state lives in the environment's heap,
// so every access pays the technology's safety tax.

#ifndef GRAFTLAB_SRC_GRAFTS_LDISK_ENV_H_
#define GRAFTLAB_SRC_GRAFTS_LDISK_ENV_H_

#include <cstdint>

#include "src/core/graft.h"
#include "src/ldisk/logical_disk.h"

namespace grafts {

template <typename Env>
class EnvLogicalDiskGraft : public core::BlackBoxGraft {
 public:
  template <typename... EnvArgs>
  explicit EnvLogicalDiskGraft(const ldisk::Geometry& geometry, EnvArgs&&... env_args)
      : env_(static_cast<EnvArgs&&>(env_args)...),
        geometry_(geometry),
        map_(env_.template NewArray<std::int64_t>(geometry.num_blocks)),
        reverse_(env_.template NewArray<std::int64_t>(geometry.num_blocks)),
        segment_live_(env_.template NewArray<std::int64_t>(geometry.num_segments())),
        cursor_(env_.template NewArray<std::int64_t>(1)) {
    for (std::uint64_t i = 0; i < geometry.num_blocks; ++i) {
      map_.Set(i, -1);
      reverse_.Set(i, -1);
    }
  }

  ldisk::BlockId OnWrite(ldisk::BlockId logical) override {
    env_.Poll();
    const std::int64_t next = cursor_.Get(0);
    if (next >= static_cast<std::int64_t>(geometry_.num_blocks)) {
      throw ldisk::DiskFull();
    }

    const std::int64_t old = map_.Get(logical);
    if (old >= 0) {
      reverse_.Set(static_cast<std::size_t>(old), std::int64_t{-1});
      const std::size_t old_segment =
          static_cast<std::size_t>(old) / geometry_.blocks_per_segment;
      segment_live_.Set(old_segment, segment_live_.Get(old_segment) - 1);
    }

    cursor_.Set(0, next + 1);
    map_.Set(logical, next);
    reverse_.Set(static_cast<std::size_t>(next), static_cast<std::int64_t>(logical));
    const std::size_t segment = static_cast<std::size_t>(next) / geometry_.blocks_per_segment;
    segment_live_.Set(segment, segment_live_.Get(segment) + 1);
    return static_cast<ldisk::BlockId>(next);
  }

  ldisk::BlockId Translate(ldisk::BlockId logical) override {
    const std::int64_t physical = map_.Get(logical);
    return physical < 0 ? ldisk::kUnmapped : static_cast<ldisk::BlockId>(physical);
  }

  const char* technology() const override { return Env::kName; }

 private:
  Env env_;
  ldisk::Geometry geometry_;
  typename Env::template Array<std::int64_t> map_;
  typename Env::template Array<std::int64_t> reverse_;
  typename Env::template Array<std::int64_t> segment_live_;
  typename Env::template Array<std::int64_t> cursor_;
};

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_LDISK_ENV_H_
