// The three paper grafts written in Minnow ("Java") and the kernel-side
// adapters that run them on the bytecode interpreter or the translated
// executor (core::Technology::kJava / kJavaTranslated).
//
// The grafts are genuine Minnow programs: the eviction graft keeps its hot
// list as a linked list of VM objects and walks the kernel's LRU chain
// through a host call; the MD5 graft implements all of RFC 1321 (buffering,
// rounds, padding) over VM arrays; the logical-disk graft keeps the block
// map, reverse map and segment live counts as VM arrays. The adapters do
// only what a real kernel/VM boundary does: marshal arguments, pin shared
// buffers, translate traps into extension faults.

#ifndef GRAFTLAB_SRC_GRAFTS_MINNOW_GRAFTS_H_
#define GRAFTLAB_SRC_GRAFTS_MINNOW_GRAFTS_H_

#include <memory>
#include <string>

#include "src/core/graft.h"
#include "src/minnow/jit.h"
#include "src/minnow/regir.h"
#include "src/minnow/vm.h"

namespace grafts {

// Which execution engine runs the bytecode.
enum class MinnowEngine {
  kInterpreter,  // Technology::kJava
  kTranslated,   // Technology::kJavaTranslated
};

// Per-graft VM configuration. `optimize` runs the bytecode optimizer
// (minnow/optimizer.h) at load time — off by default so the Technology
// rows model a plain 1995-style javac pipeline; the ablation benches turn
// it on explicitly. `fuse` applies superinstruction fusion, which is a
// load-time interpreter speedup with no semantic footprint, so it defaults
// on (and is skipped automatically for the translated engine, whose
// register IR does its own fusion and refuses fused bytecode). `dispatch`
// and `profile_opcodes` pass straight through to VmOptions. `elide` runs
// the load-time check-elision pass (minnow/elide.h): accesses whose safety
// checks the abstract interpreter proves dead execute unchecked. `jit`
// selects DispatchMode::kJit — verified bytecode compiled to native code at
// load time (minnow/jit.h) with the interpreter as the deopt fallback; it
// applies only to the interpreter engine (the translated engine has its own
// executor) and degrades to the interpreter in builds without JIT support.
struct MinnowConfig {
  MinnowEngine engine = MinnowEngine::kInterpreter;
  bool optimize = false;
  bool fuse = true;
  minnow::DispatchMode dispatch = minnow::DispatchMode::kDefault;
  bool profile_opcodes = false;
  bool elide = false;
  bool jit = false;
};

// --- Prioritization ---

class MinnowEvictionGraft : public core::PrioritizationGraft {
 public:
  explicit MinnowEvictionGraft(MinnowEngine engine = MinnowEngine::kInterpreter)
      : MinnowEvictionGraft(MinnowConfig{engine, false}) {}
  explicit MinnowEvictionGraft(MinnowConfig config);

  vmsim::Frame* ChooseVictim(vmsim::Frame* lru_head) override;
  void HotListAdd(vmsim::PageId page) override;
  void HotListRemove(vmsim::PageId page) override;
  void HotListClear() override;
  const char* technology() const override;

  minnow::VM& vm() { return *vm_; }

 private:
  minnow::Value Invoke(const std::string& fn, std::span<const minnow::Value> args);

  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;

  // Walk context for the lru_page host call (valid during ChooseVictim).
  vmsim::Frame* walk_head_ = nullptr;
  vmsim::Frame* walk_cursor_ = nullptr;
  std::int64_t walk_pos_ = 0;
};

// --- Stream (MD5) ---

class MinnowMd5Graft : public core::StreamGraft {
 public:
  explicit MinnowMd5Graft(MinnowEngine engine = MinnowEngine::kInterpreter)
      : MinnowMd5Graft(MinnowConfig{engine, false}) {}
  explicit MinnowMd5Graft(MinnowConfig config);

  void Consume(const std::uint8_t* data, std::size_t len) override;
  md5::Digest Finish() override;
  const char* technology() const override;

  // Supervisor fuel seam: one fuel unit per VM instruction.
  void SetFuel(std::int64_t fuel) override { vm_->SetFuel(fuel); }
  std::int64_t FuelRemaining() const override { return vm_->fuel(); }

  // Telemetry seam: cumulative per-opcode retire counts when the config
  // enables profile_opcodes; empty otherwise. Certified (check-elided)
  // programs additionally report their static checks_elided /
  // checks_retained certificate counts, so graftd telemetry can surface
  // how much of the safety tax the proof removed; JIT-compiled programs
  // report the compiled footprint and the deopt/bailout counts the same way.
  std::vector<std::pair<std::string, std::uint64_t>> ExecutionProfile() const override {
    auto counts = vm_->OpcodeCounts();
    if (vm_->program().elision.attached) {
      counts.emplace_back("checks_elided", vm_->program().elision.checks_elided);
      counts.emplace_back("checks_retained", vm_->program().elision.checks_retained);
    }
    if (const minnow::JitStats* jit = vm_->jit_stats()) {
      counts.emplace_back("jit_compiled_fns", jit->compiled_fns);
      counts.emplace_back("jit_bytes", jit->bytes);
      counts.emplace_back("jit_deopts", jit->deopts);
      counts.emplace_back("jit_bailouts", jit->bailouts);
    }
    return counts;
  }

  minnow::VM& vm() { return *vm_; }

 private:
  minnow::Value Invoke(const std::string& fn, std::span<const minnow::Value> args);
  void EnsureBuffer(std::size_t len);

  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;
  minnow::Object* buffer_ = nullptr;  // pinned shared byte[] for chunks
};

// --- Black Box (logical disk) ---

class MinnowLogicalDiskGraft : public core::BlackBoxGraft {
 public:
  MinnowLogicalDiskGraft(const ldisk::Geometry& geometry,
                         MinnowEngine engine = MinnowEngine::kInterpreter)
      : MinnowLogicalDiskGraft(geometry, MinnowConfig{engine, false}) {}
  MinnowLogicalDiskGraft(const ldisk::Geometry& geometry, MinnowConfig config);

  ldisk::BlockId OnWrite(ldisk::BlockId logical) override;
  ldisk::BlockId Translate(ldisk::BlockId logical) override;
  const char* technology() const override;

  minnow::VM& vm() { return *vm_; }

 private:
  minnow::Value Invoke(const std::string& fn, std::span<const minnow::Value> args);

  MinnowEngine engine_;
  std::unique_ptr<minnow::VM> vm_;
  std::unique_ptr<minnow::RegExecutor> executor_;
};

// Exposed for tests: the graft sources.
const char* MinnowEvictionSource();
const char* MinnowMd5Source();
const char* MinnowLogicalDiskSource();

}  // namespace grafts

#endif  // GRAFTLAB_SRC_GRAFTS_MINNOW_GRAFTS_H_
