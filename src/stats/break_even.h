// Break-even arithmetic from the paper's §5.
//
// A graft pays a per-invocation cost and occasionally saves a much larger
// kernel cost (a page fault, a disk read, a seek). The paper condenses each
// comparison into a single "break-even" figure; these helpers compute every
// variant used in Tables 2, 5, 6 and Figure 1.

#ifndef GRAFTLAB_SRC_STATS_BREAK_EVEN_H_
#define GRAFTLAB_SRC_STATS_BREAK_EVEN_H_

namespace stats {

// Table 2: how many times the graft can run in the time one page fault
// takes. If this is below the workload's save rate (once per 781
// invocations for the paper's TPC-B model), the graft loses.
double EvictionBreakEven(double fault_time_us, double graft_time_us);

// Figure 1: break-even for a user-level server, where each invocation costs
// an upcall plus the server-side work.
double UpcallBreakEven(double fault_time_us, double upcall_time_us, double server_work_us);

// Table 5: ratio of fingerprint-computation time to disk-read time for the
// same data. Below 1.0 the computation hides behind I/O; above 1.0 it
// throttles the stream.
double Md5DiskRatio(double md5_time_us, double disk_read_time_us);

// Table 6: bookkeeping overhead per block write, in microseconds — the time
// that batching must save per write for the logical disk to break even.
double PerBlockOverheadUs(double total_time_us, double num_blocks);

// Paper §3.1: expected invocations per saved eviction for the TPC-B model
// (hot-list hits arrive once every data_pages / hot_pages invocations).
double ExpectedInvocationsPerSave(double data_pages, double hot_pages);

}  // namespace stats

#endif  // GRAFTLAB_SRC_STATS_BREAK_EVEN_H_
