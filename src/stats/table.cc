#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/stats/harness.h"

namespace stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string FormatSig3(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

std::string RenderTechnologyTable(const std::string& title, const std::string& platform,
                                  const std::vector<TechnologyResult>& results,
                                  const std::string& baseline, const std::string& extra_label) {
  double baseline_us = 0.0;
  for (const auto& r : results) {
    if (r.name == baseline && !r.not_run) {
      baseline_us = r.raw_us;
    }
  }

  std::vector<std::string> headers{"Platform", "row"};
  for (const auto& r : results) {
    headers.push_back(r.name);
  }
  Table table(std::move(headers));

  std::vector<std::string> raw_row{platform, "raw"};
  std::vector<std::string> norm_row{"", "normalized"};
  std::vector<std::string> extra_row{"", extra_label};
  for (const auto& r : results) {
    if (r.not_run) {
      raw_row.push_back("N.A.");
      norm_row.push_back("N.A.");
      extra_row.push_back("N.A.");
      continue;
    }
    raw_row.push_back(FormatTimeUs(r.raw_us, r.stddev_pct));
    norm_row.push_back(baseline_us > 0.0 ? FormatSig3(r.raw_us / baseline_us) : "-");
    if (r.break_even.has_value()) {
      extra_row.push_back(FormatSig3(*r.break_even));
    } else if (r.ratio.has_value()) {
      extra_row.push_back(FormatSig3(*r.ratio));
    } else if (r.per_block_us.has_value()) {
      extra_row.push_back(FormatSig3(*r.per_block_us) + "us");
    } else {
      extra_row.push_back("-");
    }
  }

  table.AddRow(std::move(raw_row));
  table.AddRow(std::move(norm_row));
  if (!extra_label.empty()) {
    table.AddRow(std::move(extra_row));
  }

  std::ostringstream out;
  out << title << '\n' << table.ToString();
  return out.str();
}

}  // namespace stats
