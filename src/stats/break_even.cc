#include "src/stats/break_even.h"

#include <limits>

namespace stats {

double EvictionBreakEven(double fault_time_us, double graft_time_us) {
  if (graft_time_us <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return fault_time_us / graft_time_us;
}

double UpcallBreakEven(double fault_time_us, double upcall_time_us, double server_work_us) {
  return EvictionBreakEven(fault_time_us, upcall_time_us + server_work_us);
}

double Md5DiskRatio(double md5_time_us, double disk_read_time_us) {
  if (disk_read_time_us <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return md5_time_us / disk_read_time_us;
}

double PerBlockOverheadUs(double total_time_us, double num_blocks) {
  if (num_blocks <= 0.0) {
    return 0.0;
  }
  return total_time_us / num_blocks;
}

double ExpectedInvocationsPerSave(double data_pages, double hot_pages) {
  if (hot_pages <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return data_pages / hot_pages;
}

}  // namespace stats
