// Measurement harness reproducing the paper's methodology.
//
// Every benchmark in the paper is "the mean of R runs of N iterations each
// (standard deviations in parenthesis)". Measure() times R runs of a
// callable that performs N iterations internally, and reports per-iteration
// statistics. A DoNotOptimize escape hatch keeps the compiler from deleting
// the measured work.

#ifndef GRAFTLAB_SRC_STATS_HARNESS_H_
#define GRAFTLAB_SRC_STATS_HARNESS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "src/stats/running_stats.h"

namespace stats {

// Prevents the value from being optimized away without costing a store.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

// Busy-spins for roughly `us` microseconds so CPU frequency scaling settles
// before a timed region starts.
void SpinWarmup(double us = 10000.0);

// Monotonic wall-clock timer with nanosecond reads.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Nanoseconds since construction or the last Reset().
  std::int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) / 1e3; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Result of a Measure() call. All times are per *iteration*, matching the
// per-operation numbers in the paper's tables.
struct Measurement {
  RunningStats per_iter_us;  // per-iteration time in microseconds, one sample per run
  std::size_t runs = 0;
  std::size_t iters_per_run = 0;

  double mean_us() const { return per_iter_us.mean(); }
  double stddev_pct() const { return per_iter_us.stddev_percent(); }
  double total_us() const {
    return per_iter_us.mean() * static_cast<double>(iters_per_run);  // mean time of one run
  }
};

struct MeasureOptions {
  std::size_t runs = 30;           // the paper's 30 runs
  std::size_t iters_per_run = 1;   // iterations timed together inside one run
  std::size_t warmup_runs = 2;     // untimed runs before measuring
};

// Times `body(iters_per_run)` options.runs times; `body` must perform the
// requested number of iterations and is responsible for keeping its work
// observable (use DoNotOptimize on results).
Measurement Measure(const MeasureOptions& options, const std::function<void(std::size_t)>& body);

// Convenience wrapper: picks iters_per_run so that one run of `body` takes
// roughly `target_run_us` microseconds, then measures with `runs` runs.
// Useful because host hardware is ~10^2-10^3 times faster than the paper's.
Measurement MeasureAutoScaled(std::size_t runs, double target_run_us,
                              const std::function<void(std::size_t)>& body);

// Formats "12.3us(1.4%)" in the paper's style.
std::string FormatTimeUs(double us, double stddev_pct);

}  // namespace stats

#endif  // GRAFTLAB_SRC_STATS_HARNESS_H_
