// Paper-style table rendering.
//
// The benchmark binaries print tables with the same row structure as the
// paper's Tables 1-6 (raw time with stddev%, time normalized to unsafe C,
// and a break-even / ratio row). Table is a small column-aligned text table
// builder; TechnologyTable adds the raw/normalized/break-even row triple.

#ifndef GRAFTLAB_SRC_STATS_TABLE_H_
#define GRAFTLAB_SRC_STATS_TABLE_H_

#include <optional>
#include <string>
#include <vector>

namespace stats {

// Column-aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and two-space column gaps.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// One technology column of a paper-style comparison table.
struct TechnologyResult {
  std::string name;                       // "C", "Modula-3", "SFI", ...
  double raw_us = 0.0;                    // per-op or per-run time
  double stddev_pct = 0.0;                // sigma as % of mean
  std::optional<double> break_even;       // Table 2 style
  std::optional<double> ratio;            // Table 5 "MD5/disk" style
  std::optional<double> per_block_us;     // Table 6 style
  bool not_run = false;                   // renders as "N.A."
};

// Renders the paper's row triple: raw / normalized / extra, with the
// baseline technology (the one named `baseline`) used for normalization.
// `extra_label` names the third row ("break-even", "MD5/disk", "per block");
// pass an empty string to omit it.
std::string RenderTechnologyTable(const std::string& title, const std::string& platform,
                                  const std::vector<TechnologyResult>& results,
                                  const std::string& baseline, const std::string& extra_label);

// Formats a double with 3 significant digits ("1.4", "113", "0.67").
std::string FormatSig3(double v);

}  // namespace stats

#endif  // GRAFTLAB_SRC_STATS_TABLE_H_
