#include "src/stats/harness.h"

#include <algorithm>
#include <cstdio>

namespace stats {

Measurement Measure(const MeasureOptions& options, const std::function<void(std::size_t)>& body) {
  Measurement result;
  result.runs = options.runs;
  result.iters_per_run = options.iters_per_run;

  for (std::size_t i = 0; i < options.warmup_runs; ++i) {
    body(options.iters_per_run);
  }
  for (std::size_t run = 0; run < options.runs; ++run) {
    Timer timer;
    body(options.iters_per_run);
    const double run_us = timer.ElapsedUs();
    result.per_iter_us.Add(run_us / static_cast<double>(options.iters_per_run));
  }
  return result;
}

void SpinWarmup(double us) {
  Timer warm;
  volatile std::uint64_t sink = 0;
  while (warm.ElapsedUs() < us) {
    for (int i = 0; i < 4096; ++i) {
      sink = sink + 1;
    }
  }
}

Measurement MeasureAutoScaled(std::size_t runs, double target_run_us,
                              const std::function<void(std::size_t)>& body) {
  // Spin briefly so frequency scaling settles before the probe calibrates;
  // otherwise early runs measure a different clock than later ones.
  SpinWarmup();
  // Probe with geometrically growing iteration counts until one run takes at
  // least 1/8 of the target, then scale linearly.
  std::size_t iters = 1;
  double probe_us = 0.0;
  for (;;) {
    Timer timer;
    body(iters);
    probe_us = timer.ElapsedUs();
    if (probe_us >= target_run_us / 8.0 || iters >= (1u << 24)) {
      break;
    }
    iters *= 4;
  }
  double per_iter = probe_us / static_cast<double>(iters);
  if (per_iter <= 0.0) {
    per_iter = 0.001;  // sub-ns op; avoid a divide by zero below
  }
  std::size_t scaled = static_cast<std::size_t>(target_run_us / per_iter);
  scaled = std::clamp<std::size_t>(scaled, 1, 1u << 26);

  MeasureOptions options;
  options.runs = runs;
  options.iters_per_run = scaled;
  return Measure(options, body);
}

std::string FormatTimeUs(double us, double stddev_pct) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3gs(%.1f%%)", us / 1e6, stddev_pct);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gms(%.1f%%)", us / 1e3, stddev_pct);
  } else if (us >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3gus(%.1f%%)", us, stddev_pct);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gns(%.1f%%)", us * 1e3, stddev_pct);
  }
  return buf;
}

}  // namespace stats
