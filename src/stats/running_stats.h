// Streaming summary statistics (Welford's algorithm).
//
// The paper reports every measurement as "mean of 30 runs (standard
// deviation in parenthesis)"; RunningStats is the accumulator behind all of
// those numbers. Welford's update is used so that long runs of small
// magnitudes do not lose precision to catastrophic cancellation.

#ifndef GRAFTLAB_SRC_STATS_RUNNING_STATS_H_
#define GRAFTLAB_SRC_STATS_RUNNING_STATS_H_

#include <cmath>
#include <cstddef>
#include <limits>

namespace stats {

// Accumulates count / mean / variance / min / max of a stream of doubles.
class RunningStats {
 public:
  // Adds one observation.
  void Add(double x) {
    count_ += 1;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }

  // Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const double n = static_cast<double>(count_);
    const double m = static_cast<double>(other.count_);
    mean_ += delta * m / (n + m);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    count_ += other.count_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  // Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const {
    if (count_ < 2) {
      return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  // Standard deviation as a percentage of the mean — the "(1.4%)" figures in
  // the paper's tables. Returns 0 when the mean is 0.
  double stddev_percent() const {
    if (mean_ == 0.0) {
      return 0.0;
    }
    return 100.0 * stddev() / std::abs(mean_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stats

#endif  // GRAFTLAB_SRC_STATS_RUNNING_STATS_H_
