// DiskIo: the device seam faults are injected through.
//
// DiskModel is a pure cost model; subsystems that must *survive* device
// misbehavior need an operation boundary where an access can fail, stall,
// or tear. DiskIo is that boundary: ModelDiskIo is the well-behaved device
// (every access succeeds and costs what the model says), and FaultyDisk
// wraps any DiskIo to inject faultlab's schedule at the sites
// "<prefix>.read" / "<prefix>.write":
//
//   * kTransientError — the access throws faultlab::TransientError; the
//     caller's retry policy decides whether the device "recovers";
//   * kLatencySpike   — the access succeeds but costs `param` extra us;
//   * kTornWrite      — a write persists only floor(param * bytes) bytes
//     (reads treat it as a transient short read);
//   * kCrash          — the machine dies mid-access (CrashFault); durable
//     state is whatever previous completed writes left behind.

#ifndef GRAFTLAB_SRC_DISKMOD_FAULTY_DISK_H_
#define GRAFTLAB_SRC_DISKMOD_FAULTY_DISK_H_

#include <cstddef>
#include <string>

#include "src/diskmod/disk_model.h"
#include "src/faultlab/injector.h"

namespace diskmod {

// Outcome of one modeled access. durable_bytes < the requested size means
// the write tore: only a prefix reached the platter.
struct IoResult {
  double time_us = 0.0;
  std::size_t durable_bytes = 0;
};

class DiskIo {
 public:
  virtual ~DiskIo() = default;

  // One random access of `bytes`. May throw faultlab::TransientError (retry
  // may succeed) or faultlab::CrashFault (simulation of a machine crash).
  virtual IoResult Read(std::size_t bytes) = 0;
  virtual IoResult Write(std::size_t bytes) = 0;
};

// The well-behaved device: charges the cost model, never fails.
class ModelDiskIo : public DiskIo {
 public:
  explicit ModelDiskIo(DiskModel model = DiskModel{}) : model_(model) {}

  IoResult Read(std::size_t bytes) override {
    return IoResult{model_.RandomAccessUs(bytes), bytes};
  }
  IoResult Write(std::size_t bytes) override {
    return IoResult{model_.RandomAccessUs(bytes), bytes};
  }

  const DiskModel& model() const { return model_; }

 private:
  DiskModel model_;
};

// Fault-injecting wrapper around any DiskIo.
class FaultyDisk : public DiskIo {
 public:
  FaultyDisk(DiskIo& base, faultlab::Injector& injector, std::string site_prefix = "disk")
      : base_(base),
        injector_(injector),
        read_site_(site_prefix + ".read"),
        write_site_(site_prefix + ".write") {}

  IoResult Read(std::size_t bytes) override { return Access(read_site_, bytes, false); }
  IoResult Write(std::size_t bytes) override { return Access(write_site_, bytes, true); }

 private:
  IoResult Access(const std::string& site, std::size_t bytes, bool is_write) {
    const auto fault = injector_.Hit(site);
    if (!fault) {
      return is_write ? base_.Write(bytes) : base_.Read(bytes);
    }
    switch (fault->kind) {
      case faultlab::FaultKind::kCrash:
        throw faultlab::CrashFault(site);
      case faultlab::FaultKind::kTransientError:
        throw faultlab::TransientError(site);
      case faultlab::FaultKind::kLatencySpike: {
        IoResult result = is_write ? base_.Write(bytes) : base_.Read(bytes);
        result.time_us += fault->param;
        return result;
      }
      case faultlab::FaultKind::kTornWrite: {
        if (!is_write) {
          // A torn read is just a short read: retryable.
          throw faultlab::TransientError(site);
        }
        IoResult result = base_.Write(bytes);
        result.durable_bytes = static_cast<std::size_t>(fault->param * static_cast<double>(bytes));
        return result;
      }
    }
    return is_write ? base_.Write(bytes) : base_.Read(bytes);
  }

  DiskIo& base_;
  faultlab::Injector& injector_;
  const std::string read_site_;
  const std::string write_site_;
};

}  // namespace diskmod

#endif  // GRAFTLAB_SRC_DISKMOD_FAULTY_DISK_H_
