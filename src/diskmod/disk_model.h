// Parameterized disk model.
//
// The paper's break-even arithmetic needs three disk quantities: the time to
// read/write a stream (Table 4's bandwidth and "1MB access time"), the cost
// of a seek (Table 6's "1% of a typical disk seek"), and the cost of a
// demand-paging fault that goes to disk (Table 2/3's break-even
// denominator). Host hardware no longer resembles a 1995 SCSI disk, so the
// benchmarks compute break-evens against *both* a measured host figure
// (bandwidth_probe.h) and this model, whose default parameters are chosen to
// match the paper's Table 3/4 measurements; EXPERIMENTS.md reports the two
// side by side.

#ifndef GRAFTLAB_SRC_DISKMOD_DISK_MODEL_H_
#define GRAFTLAB_SRC_DISKMOD_DISK_MODEL_H_

#include <cstddef>

namespace diskmod {

struct DiskModel {
  double seek_ms = 8.0;             // average seek
  double rotational_ms = 4.2;       // half-rotation at 7200 RPM
  double bandwidth_kb_s = 3126.0;   // sustained transfer (paper's Solaris row)

  // Pure transfer time for `bytes` at the sustained rate.
  double TransferUs(std::size_t bytes) const {
    return static_cast<double>(bytes) / 1024.0 / bandwidth_kb_s * 1e6;
  }

  // One random access: seek + rotational delay + transfer.
  double RandomAccessUs(std::size_t bytes) const {
    return (seek_ms + rotational_ms) * 1000.0 + TransferUs(bytes);
  }

  // Sequential streaming time for `bytes` (no per-block seeks).
  double SequentialUs(std::size_t bytes) const { return TransferUs(bytes); }

  // Time to service a page fault that reads `pages_per_fault` disk pages of
  // `page_bytes` each in one random access.
  double PageFaultUs(int pages_per_fault, std::size_t page_bytes = 4096) const {
    return RandomAccessUs(static_cast<std::size_t>(pages_per_fault) * page_bytes);
  }
};

// The four platform rows from the paper's Tables 3 and 4, for replaying the
// paper's own break-even arithmetic against our measured graft times.
struct PaperPlatform {
  const char* name;
  double fault_time_us;     // Table 3
  int pages_per_fault;      // Table 3
  double bandwidth_kb_s;    // Table 4
  double mb_access_time_us; // Table 4 (1MB)
};

inline constexpr PaperPlatform kPaperPlatforms[] = {
    {"Alpha", 25100.0, 16, 4364.0, 235000.0},
    {"HP-UX", 17900.0, 4, 1855.0, 552000.0},
    {"Linux", 4700.0, 1, 1694.0, 604000.0},
    {"Solaris", 6900.0, 1, 3126.0, 320000.0},
};

// A disk with the paper's Solaris-row characteristics (break-evens computed
// against it land in the paper's reported ranges).
inline DiskModel PaperEraDisk() { return DiskModel{}; }

// A modern NVMe-class device, for the "does the conclusion still hold in
// 2026" variant the EXPERIMENTS.md discussion uses.
inline DiskModel ModernNvme() {
  return DiskModel{.seek_ms = 0.02, .rotational_ms = 0.0, .bandwidth_kb_s = 3.0e6};
}

}  // namespace diskmod

#endif  // GRAFTLAB_SRC_DISKMOD_DISK_MODEL_H_
