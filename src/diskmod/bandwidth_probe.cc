#include "src/diskmod/bandwidth_probe.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "src/stats/harness.h"
#include "src/stats/running_stats.h"

namespace diskmod {

BandwidthResult MeasureWriteBandwidth(std::size_t bytes_per_run, std::size_t runs) {
  BandwidthResult result;
  result.bytes_per_run = bytes_per_run;

  char path[] = "/tmp/graftlab_bwprobe_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) {
    return result;
  }
  ::unlink(path);

  constexpr std::size_t kBlock = 64 * 1024;  // the paper's 64KB transfer unit
  std::vector<std::uint8_t> block(kBlock, 0xA5);

  stats::RunningStats kb_per_s;
  for (std::size_t run = 0; run < runs; ++run) {
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      break;
    }
    stats::Timer timer;
    std::size_t written = 0;
    while (written < bytes_per_run) {
      const ssize_t n = ::write(fd, block.data(), kBlock);
      if (n <= 0) {
        ::close(fd);
        return result;
      }
      written += static_cast<std::size_t>(n);
    }
    ::fdatasync(fd);
    const double seconds = timer.ElapsedUs() / 1e6;
    kb_per_s.Add(static_cast<double>(written) / 1024.0 / seconds);
  }
  ::close(fd);

  result.bandwidth_kb_s = kb_per_s.mean();
  result.stddev_pct = kb_per_s.stddev_percent();
  if (result.bandwidth_kb_s > 0.0) {
    result.mb_access_time_us = 1024.0 / result.bandwidth_kb_s * 1e6;
  }
  return result;
}

}  // namespace diskmod
