// Measured disk write bandwidth (the paper's Table 4, lmbench lmdd
// methodology): write a stream of blocks through the filesystem, sync, and
// divide. The result feeds the MD5/disk ratio in Table 5 alongside the
// modeled figure from disk_model.h.

#ifndef GRAFTLAB_SRC_DISKMOD_BANDWIDTH_PROBE_H_
#define GRAFTLAB_SRC_DISKMOD_BANDWIDTH_PROBE_H_

#include <cstddef>

namespace diskmod {

struct BandwidthResult {
  double bandwidth_kb_s = 0.0;    // mean across runs
  double stddev_pct = 0.0;
  double mb_access_time_us = 0.0; // derived: time to move 1MB
  std::size_t bytes_per_run = 0;
};

// Writes `bytes_per_run` bytes (64KB blocks) to a scratch file `runs` times,
// fdatasync'ing each run, and reports the achieved bandwidth. Returns a
// zeroed result if the scratch directory is not writable.
BandwidthResult MeasureWriteBandwidth(std::size_t bytes_per_run = 32u << 20,
                                      std::size_t runs = 5);

}  // namespace diskmod

#endif  // GRAFTLAB_SRC_DISKMOD_BANDWIDTH_PROBE_H_
