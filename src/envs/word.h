// Modula-3 `Word` module analog: machine-word modular arithmetic.
//
// MD5 depends on arithmetic modulo 2^32. C gets this by "silently ignoring
// numeric overflow"; Modula-3 provides it through the Word interface, which
// computes modulo the *native* word size. On the 64-bit Alpha that meant
// modulo 2^64 — wrong for MD5 — and the paper measured both a fast/incorrect
// 64-bit variant and a slow/correct 32-bit-emulated variant (§5.5). Word32
// is the natural 32-bit module; Word32On64 reproduces the Alpha emulation
// (64-bit registers with explicit truncation after every operation), used by
// the md5 module's "Alpha" variant.

#ifndef GRAFTLAB_SRC_ENVS_WORD_H_
#define GRAFTLAB_SRC_ENVS_WORD_H_

#include <cstdint>

namespace envs {

// Arithmetic modulo 2^32 on native 32-bit values.
struct Word32 {
  using T = std::uint32_t;
  static constexpr T Plus(T a, T b) { return a + b; }
  static constexpr T Minus(T a, T b) { return a - b; }
  static constexpr T Times(T a, T b) { return a * b; }
  static constexpr T And(T a, T b) { return a & b; }
  static constexpr T Or(T a, T b) { return a | b; }
  static constexpr T Xor(T a, T b) { return a ^ b; }
  static constexpr T Not(T a) { return ~a; }
  static constexpr T LeftShift(T a, unsigned n) { return a << n; }
  static constexpr T RightShift(T a, unsigned n) { return a >> n; }
  static constexpr T Rotate(T a, unsigned n) { return (a << n) | (a >> (32u - n)); }
};

// 32-bit arithmetic emulated in 64-bit registers: every result is truncated
// back to 32 bits with an explicit mask, the extra work the paper's §5.5
// attributes the ~10x slowdown of the "correct checksum" Alpha variant to
// (amplified there by a compiler artifact; here the mask ops alone are
// measured by bench/micro_primitives).
struct Word32On64 {
  using T = std::uint64_t;
  static constexpr T kMask = 0xFFFFFFFFull;
  static constexpr T Trunc(T a) { return a & kMask; }
  static constexpr T Plus(T a, T b) { return Trunc(a + b); }
  static constexpr T Minus(T a, T b) { return Trunc(a - b); }
  static constexpr T Times(T a, T b) { return Trunc(a * b); }
  static constexpr T And(T a, T b) { return a & b; }
  static constexpr T Or(T a, T b) { return Trunc(a | b); }
  static constexpr T Xor(T a, T b) { return Trunc(a ^ b); }
  static constexpr T Not(T a) { return Trunc(~a); }
  static constexpr T LeftShift(T a, unsigned n) { return Trunc(a << n); }
  static constexpr T RightShift(T a, unsigned n) { return Trunc(a) >> n; }
  static constexpr T Rotate(T a, unsigned n) {
    const T t = Trunc(a);
    return Trunc((t << n) | (t >> (32u - n)));
  }
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_WORD_H_
