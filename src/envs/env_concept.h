// The execution-environment concept shared by the compiled technologies.
//
// The paper's compiled technologies — unsafe C, Modula-3, and Omniware-style
// SFI — run the *same algorithms* under different safety instrumentation.
// GraftLab makes that literal: each compiled graft is written once as a C++
// template over an environment policy `Env`, and the three policies differ
// only in what every data access costs:
//
//   UnsafeEnv     raw loads/stores, no checks, no preemption polls   ("C")
//   SafeLangEnv   bounds check per subscript, NIL check per deref    ("Modula-3")
//   SfiEnv<P>     address masking per store (and per load when P is
//                 Protection::kFull), masked host calls              ("Omniware")
//
// An environment provides:
//
//   template <typename T> class Array;  // fixed-size typed array handle
//     T Get(std::size_t i) const;
//     void Set(std::size_t i, T v);
//     std::size_t size() const;
//
//   template <typename T> class Ref;    // nullable typed reference
//     F Get(F T::*field) const;
//     void Set(F T::*field, F v);
//     bool IsNull() const;              // never faults
//
//   Array<T> NewArray<T>(std::size_t n);          // arena allocation
//   Ref<T>   New<T>(args...);
//   void Poll();                        // preemption poll at loop back edges
//   void ResetHeap();                   // reclaim all graft allocations
//   static constexpr const char* kName;
//
// T must be trivially destructible (arena reclamation is wholesale), and
// struct fields accessed through Ref must be members of standard-layout
// types. Default-constructed Ref is NIL; Array and Ref are cheap values.
//
// The EnvLike concept below lets graft templates state their requirement.

#ifndef GRAFTLAB_SRC_ENVS_ENV_CONCEPT_H_
#define GRAFTLAB_SRC_ENVS_ENV_CONCEPT_H_

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace envs {

template <typename E>
concept EnvLike = requires(E env, std::size_t n) {
  { env.template NewArray<std::uint32_t>(n) };
  { env.template New<std::uint64_t>() };
  { env.Poll() };
  { env.ResetHeap() };
  { E::kName } -> std::convertible_to<const char*>;
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_ENV_CONCEPT_H_
