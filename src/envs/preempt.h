// Preemption of runaway grafts.
//
// The paper (§4): "we need a mechanism to ensure that extension code not
// monopolize the CPU; we must be able to preempt an extension that runs too
// long." Interpreted technologies use a fuel counter inside the VM; compiled
// safe technologies poll a shared flag at loop back-edges (one relaxed
// atomic load per iteration — the cost shows up in the ablation benches).
// Unsafe C polls nothing: it is unsafe, which is the point.

#ifndef GRAFTLAB_SRC_ENVS_PREEMPT_H_
#define GRAFTLAB_SRC_ENVS_PREEMPT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/envs/fault.h"

namespace envs {

// Shared abort flag between the kernel (or its watchdog) and a graft.
class PreemptToken {
 public:
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  void Reset() { stop_.store(false, std::memory_order_relaxed); }
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  // Called by safe environments at back edges; throws when stop requested.
  void Poll() const {
    if (stop_requested()) {
      throw PreemptFault();
    }
  }

 private:
  std::atomic<bool> stop_{false};
};

// Resets the token when the scope exits — including by exception — so a
// token tripped during an invocation can never leak into the next one and
// make an innocent graft's Poll() throw spuriously.
class TokenResetGuard {
 public:
  explicit TokenResetGuard(PreemptToken& token) : token_(token) {}
  TokenResetGuard(const TokenResetGuard&) = delete;
  TokenResetGuard& operator=(const TokenResetGuard&) = delete;
  ~TokenResetGuard() { token_.Reset(); }

 private:
  PreemptToken& token_;
};

// Deadline service: arms "trip this token after `deadline`" without
// prescribing the mechanism. The kernel's default is a thread-per-call
// Watchdog (below); graftd installs a shared deadline wheel so N concurrent
// budgeted invocations cost one timer thread total instead of N.
class DeadlineTimer {
 public:
  using Ticket = std::uint64_t;

  virtual ~DeadlineTimer() = default;

  // Arms a deadline on `token`; the token outlives the ticket or is
  // cancelled first. Returns a ticket for Cancel().
  virtual Ticket Arm(PreemptToken& token, std::chrono::microseconds deadline) = 0;

  // Disarms. After Cancel returns the timer will not touch the token again
  // (it may already have tripped it; pair with TokenResetGuard).
  virtual void Cancel(Ticket ticket) = 0;
};

// RAII arm/cancel over a DeadlineTimer.
class ArmGuard {
 public:
  ArmGuard(DeadlineTimer& timer, PreemptToken& token, std::chrono::microseconds deadline)
      : timer_(timer), ticket_(timer.Arm(token, deadline)) {}
  ArmGuard(const ArmGuard&) = delete;
  ArmGuard& operator=(const ArmGuard&) = delete;
  ~ArmGuard() { timer_.Cancel(ticket_); }

 private:
  DeadlineTimer& timer_;
  DeadlineTimer::Ticket ticket_;
};

// Arms a deadline on construction; if the guarded scope is still running
// when the deadline passes, the token is tripped and the next Poll() in the
// graft throws PreemptFault. Disarms (joins) on destruction.
class Watchdog {
 public:
  Watchdog(PreemptToken& token, std::chrono::microseconds deadline) : token_(token) {
    thread_ = std::thread([this, deadline] {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cv_.wait_for(lock, deadline, [this] { return cancelled_; })) {
        token_.RequestStop();
      }
    });
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  PreemptToken& token_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  std::thread thread_;
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_PREEMPT_H_
