// SafeLangEnv — the paper's "Modula-3" technology.
//
// A typesafe compiled language: the code is native, but every array
// subscript carries a bounds check and every reference dereference carries a
// NIL check. The paper found (§5.4) that the DEC SRC Modula-3 compiler
// emitted *explicit* NIL checks on Linux (where page 0 was mapped) and used
// hardware traps on Solaris/Alpha (no explicit check); the NilCheckMode
// template parameter reproduces both codegen strategies, and
// bench/ablate_nil_checks measures the difference the paper reports
// (Linux's 2.5x vs Alpha's 1.1x eviction slowdown).
//
// Trap mode carries a real-kernel caveat the paper also raises: a NIL deref
// must be caught by the kernel fault logic. In GraftLab trap mode simply
// omits the check, so a NIL dereference in trap mode is undefined behavior
// exactly as it would be un-trappable in a kernel without that support —
// tests exercise trap mode only on non-NIL paths.

#ifndef GRAFTLAB_SRC_ENVS_SAFE_ENV_H_
#define GRAFTLAB_SRC_ENVS_SAFE_ENV_H_

#include <cstddef>
#include <utility>

#include "src/envs/arena.h"
#include "src/envs/fault.h"
#include "src/envs/preempt.h"

namespace envs {

enum class NilCheckMode {
  kExplicit,  // compare-and-branch before every dereference (paper's Linux codegen)
  kTrap,      // rely on the MMU fault, no inline check (paper's Solaris/Alpha codegen)
};

template <NilCheckMode kNilMode = NilCheckMode::kExplicit>
class SafeLangEnvT {
 public:
  static constexpr const char* kName =
      kNilMode == NilCheckMode::kExplicit ? "Modula-3" : "Modula-3/trap";

  template <typename T>
  class Array {
   public:
    Array() = default;
    Array(T* data, std::size_t n) : data_(data), n_(n) {}

    T Get(std::size_t i) const {
      Check(i);
      return data_[i];
    }
    void Set(std::size_t i, T v) {
      Check(i);
      data_[i] = v;
    }
    std::size_t size() const { return n_; }

   private:
    void Check(std::size_t i) const {
      if (i >= n_) [[unlikely]] {
        throw BoundsFault(i, n_);
      }
    }
    T* data_ = nullptr;
    std::size_t n_ = 0;
  };

  template <typename T>
  class Ref {
   public:
    Ref() = default;
    explicit Ref(T* p) : p_(p) {}

    template <typename F, typename U = T>
    F Get(F U::*field) const {
      CheckNil();
      return p_->*field;
    }
    template <typename F, typename U = T>
    void Set(F U::*field, F v) {
      CheckNil();
      p_->*field = v;
    }
    bool IsNull() const { return p_ == nullptr; }
    friend bool operator==(const Ref& a, const Ref& b) { return a.p_ == b.p_; }

    // Unwraps at the kernel boundary (e.g. to return a chosen frame).
    T* KernelPointer() const { return p_; }

   private:
    void CheckNil() const {
      if constexpr (kNilMode == NilCheckMode::kExplicit) {
        if (p_ == nullptr) [[unlikely]] {
          throw NilFault();
        }
      }
    }
    T* p_ = nullptr;
  };

  explicit SafeLangEnvT(PreemptToken* preempt = nullptr) : preempt_(preempt) {}

  template <typename T>
  Array<T> NewArray(std::size_t n) {
    return Array<T>(arena_.NewArray<T>(n), n);
  }

  template <typename T, typename... Args>
  Ref<T> New(Args&&... args) {
    return Ref<T>(arena_.New<T>(std::forward<Args>(args)...));
  }

  // Wraps a kernel object for graft traversal. SPIN-style systems expose
  // kernel structures as safe-language records; accesses still carry the
  // language's NIL checks.
  template <typename T>
  Ref<T> AdoptKernel(T* p) {
    return Ref<T>(p);
  }

  // Safe-language back edges poll the preemption token: one relaxed load.
  void Poll() {
    if (preempt_ != nullptr) {
      preempt_->Poll();
    }
  }

  void ResetHeap() { arena_.Reset(); }

 private:
  Arena arena_;
  PreemptToken* preempt_ = nullptr;
};

using SafeLangEnv = SafeLangEnvT<NilCheckMode::kExplicit>;
using SafeLangTrapEnv = SafeLangEnvT<NilCheckMode::kTrap>;

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_SAFE_ENV_H_
