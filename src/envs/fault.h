// Runtime faults raised by safe execution environments.
//
// A Modula-3-style environment turns bounds violations and NIL dereferences
// into runtime errors instead of memory corruption; a preemption guard turns
// runaway grafts into aborts. These exception types are how those events
// surface to the GraftHost, which converts them into a failed graft
// invocation rather than a dead kernel.

#ifndef GRAFTLAB_SRC_ENVS_FAULT_H_
#define GRAFTLAB_SRC_ENVS_FAULT_H_

#include <cstddef>
#include <stdexcept>
#include <string>

namespace envs {

// Base class for all extension-environment faults.
class EnvFault : public std::runtime_error {
 public:
  explicit EnvFault(const std::string& what) : std::runtime_error(what) {}
};

// Array access outside [0, size) — the check Modula-3 compiles into every
// subscript.
class BoundsFault : public EnvFault {
 public:
  BoundsFault(std::size_t index, std::size_t size)
      : EnvFault("array index " + std::to_string(index) + " out of bounds [0, " +
                 std::to_string(size) + ")") {}
};

// Dereference of a NIL reference.
class NilFault : public EnvFault {
 public:
  NilFault() : EnvFault("NIL dereference") {}
};

// The preemption guard fired: the graft exceeded its CPU allowance.
class PreemptFault : public EnvFault {
 public:
  PreemptFault() : EnvFault("graft preempted: CPU allowance exceeded") {}
};

// Arena exhausted or allocation failed inside an environment.
class AllocFault : public EnvFault {
 public:
  explicit AllocFault(const std::string& what) : EnvFault(what) {}
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_FAULT_H_
