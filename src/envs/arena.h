// Plain bump arena used by the unsafe and safe-language environments.
//
// All three compiled environments place graft data in an arena that is
// reclaimed wholesale between graft instantiations, so that the *only*
// difference between them is access instrumentation, never allocator
// behavior. (The SFI environment uses sfi::Sandbox, which has the same bump
// interface over an aligned region.)

#ifndef GRAFTLAB_SRC_ENVS_ARENA_H_
#define GRAFTLAB_SRC_ENVS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "src/envs/fault.h"

namespace envs {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 1 << 20) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align) {
    if (align > alignof(std::max_align_t)) {
      throw AllocFault("arena alignment beyond max_align_t");
    }
    std::size_t offset = (bump_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || offset + bytes > current_block_bytes_) {
      // Oversized requests get a dedicated block of exactly the right size.
      current_block_bytes_ = bytes > block_bytes_ ? bytes : block_bytes_;
      blocks_.push_back(std::make_unique<std::byte[]>(current_block_bytes_));
      offset = 0;
    }
    bump_ = offset + bytes;
    return blocks_.back().get() + offset;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>, "arena objects are reclaimed wholesale");
    return ::new (Allocate(sizeof(T), alignof(T))) T(static_cast<Args&&>(args)...);
  }

  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>, "arena objects are reclaimed wholesale");
    return ::new (Allocate(sizeof(T) * n, alignof(T))) T[n]();
  }

  // Drops every allocation.
  void Reset() {
    blocks_.clear();
    current_block_bytes_ = 0;
    bump_ = 0;
  }

  std::size_t blocks_in_use() const { return blocks_.size(); }

 private:
  std::size_t block_bytes_;
  std::size_t current_block_bytes_ = 0;
  std::size_t bump_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_ARENA_H_
