// SfiEnv — the paper's "Omniware" technology (software fault isolation).
//
// Graft data lives inside an aligned sfi::Sandbox; every store runs through
// the two-ALU-op sandboxing transformation (addr & mask | base), so a wild
// store can at worst clobber the graft's own data. The Omniware release the
// paper measured protected writes and jumps only — reads ran unmasked — so
// SfiEnv defaults to Protection::kWriteJump and offers Protection::kFull
// (masked loads too), the configuration the paper's conclusion calls a
// "compelling candidate" that was "not available today". The delta between
// the two is measured by bench/ablate_sfi_protection.
//
// Note the containment semantics: SFI never *detects* a bad access the way
// SafeLangEnv does — a NIL or out-of-bounds address is silently redirected
// into the sandbox. Property tests in tests/sfi_env_test.cc fuzz stores at
// wild addresses and assert nothing outside the region changes.

#ifndef GRAFTLAB_SRC_ENVS_SFI_ENV_H_
#define GRAFTLAB_SRC_ENVS_SFI_ENV_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/envs/preempt.h"
#include "src/sfi/sandbox.h"

namespace envs {

template <sfi::Protection kProtection = sfi::Protection::kWriteJump>
class SfiEnvT {
 public:
  static constexpr const char* kName =
      kProtection == sfi::Protection::kWriteJump ? "SFI" : "SFI/full";

  template <typename T>
  class Array {
   public:
    Array() = default;
    Array(std::uintptr_t addr, std::size_t n, const sfi::Sandbox* sandbox)
        : addr_(addr), n_(n), sandbox_(sandbox) {}

    T Get(std::size_t i) const {
      std::uintptr_t a = addr_ + i * sizeof(T);
      if constexpr (kProtection == sfi::Protection::kFull) {
        a = sandbox_->MaskAddress(a);
      }
      return *reinterpret_cast<const T*>(a);
    }
    void Set(std::size_t i, T v) {
      const std::uintptr_t a = sandbox_->MaskAddress(addr_ + i * sizeof(T));
      *reinterpret_cast<T*>(a) = v;
    }
    std::size_t size() const { return n_; }

   private:
    std::uintptr_t addr_ = 0;
    std::size_t n_ = 0;
    const sfi::Sandbox* sandbox_ = nullptr;
  };

  template <typename T>
  class Ref {
   public:
    Ref() = default;
    Ref(std::uintptr_t addr, const sfi::Sandbox* sandbox) : addr_(addr), sandbox_(sandbox) {}

    template <typename F, typename U = T>
    F Get(F U::*field) const {
      std::uintptr_t a = FieldAddress(field);
      if constexpr (kProtection == sfi::Protection::kFull) {
        a = sandbox_->MaskAddress(a);
      }
      return *reinterpret_cast<const F*>(a);
    }
    template <typename F, typename U = T>
    void Set(F U::*field, F v) {
      const std::uintptr_t a = sandbox_->MaskAddress(FieldAddress(field));
      *reinterpret_cast<F*>(a) = v;
    }
    bool IsNull() const { return addr_ == 0; }
    friend bool operator==(const Ref& a, const Ref& b) { return a.addr_ == b.addr_; }

    // Unwraps at the kernel boundary (e.g. to return a chosen frame).
    T* KernelPointer() const { return reinterpret_cast<T*>(addr_); }

   private:
    template <typename F, typename U>
    std::uintptr_t FieldAddress(F U::*field) const {
      // Compute the member offset without dereferencing: standard-layout
      // member offsets are position-independent.
      const T* probe = reinterpret_cast<const T*>(addr_);
      return reinterpret_cast<std::uintptr_t>(&(probe->*field));
    }

    std::uintptr_t addr_ = 0;
    const sfi::Sandbox* sandbox_ = nullptr;
  };

  // `sandbox_bytes` must be a power of two large enough for the graft's data.
  explicit SfiEnvT(std::size_t sandbox_bytes = 1 << 24, PreemptToken* preempt = nullptr)
      : sandbox_(sandbox_bytes), preempt_(preempt) {}

  template <typename T>
  Array<T> NewArray(std::size_t n) {
    T* p = sandbox_.NewArray<T>(n);
    return Array<T>(reinterpret_cast<std::uintptr_t>(p), n, &sandbox_);
  }

  template <typename T, typename... Args>
  Ref<T> New(Args&&... args) {
    T* p = sandbox_.New<T>(std::forward<Args>(args)...);
    return Ref<T>(reinterpret_cast<std::uintptr_t>(p), &sandbox_);
  }

  // Wraps a kernel object for graft traversal. Under write+jump protection
  // reads of kernel memory run unmasked (the Omniware configuration the
  // paper measured); stores through the ref would be redirected into the
  // sandbox, so the graft cannot corrupt the kernel structure. Under
  // Protection::kFull this wrapper is unusable for kernel data (loads are
  // masked too) — full-protection grafts use the marshaled adapters instead.
  template <typename T>
  Ref<T> AdoptKernel(T* p) {
    static_assert(kProtection == sfi::Protection::kWriteJump,
                  "full-protection SFI cannot read kernel memory directly; marshal instead");
    return Ref<T>(reinterpret_cast<std::uintptr_t>(p), &sandbox_);
  }

  void Poll() {
    if (preempt_ != nullptr) {
      preempt_->Poll();
    }
  }

  void ResetHeap() { sandbox_.Reset(); }

  const sfi::Sandbox& sandbox() const { return sandbox_; }

 private:
  sfi::Sandbox sandbox_;
  PreemptToken* preempt_ = nullptr;
};

using SfiEnv = SfiEnvT<sfi::Protection::kWriteJump>;
using SfiFullEnv = SfiEnvT<sfi::Protection::kFull>;

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_SFI_ENV_H_
