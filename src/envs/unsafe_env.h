// UnsafeEnv — the paper's "C" technology.
//
// Code compiled and linked straight into the kernel: raw loads and stores,
// no bounds checks, no NIL checks, no preemption polls. This is the baseline
// every other technology is normalized against, and it is exactly as safe as
// it sounds.

#ifndef GRAFTLAB_SRC_ENVS_UNSAFE_ENV_H_
#define GRAFTLAB_SRC_ENVS_UNSAFE_ENV_H_

#include <cstddef>
#include <utility>

#include "src/envs/arena.h"

namespace envs {

class UnsafeEnv {
 public:
  static constexpr const char* kName = "C";

  template <typename T>
  class Array {
   public:
    Array() = default;
    Array(T* data, std::size_t n) : data_(data), n_(n) {}

    T Get(std::size_t i) const { return data_[i]; }
    void Set(std::size_t i, T v) { data_[i] = v; }
    std::size_t size() const { return n_; }

   private:
    T* data_ = nullptr;
    std::size_t n_ = 0;
  };

  template <typename T>
  class Ref {
   public:
    Ref() = default;
    explicit Ref(T* p) : p_(p) {}

    template <typename F, typename U = T>
    F Get(F U::*field) const {
      return p_->*field;
    }
    template <typename F, typename U = T>
    void Set(F U::*field, F v) {
      p_->*field = v;
    }
    bool IsNull() const { return p_ == nullptr; }
    friend bool operator==(const Ref& a, const Ref& b) { return a.p_ == b.p_; }

    // Unwraps at the kernel boundary (e.g. to return a chosen frame).
    T* KernelPointer() const { return p_; }

   private:
    T* p_ = nullptr;
  };

  UnsafeEnv() = default;

  // Wraps a kernel object (e.g. an LRU frame) for traversal by the graft.
  // Unsafe C reads kernel memory directly, at full speed.
  template <typename T>
  Ref<T> AdoptKernel(T* p) {
    return Ref<T>(p);
  }

  template <typename T>
  Array<T> NewArray(std::size_t n) {
    return Array<T>(arena_.NewArray<T>(n), n);
  }

  template <typename T, typename... Args>
  Ref<T> New(Args&&... args) {
    return Ref<T>(arena_.New<T>(std::forward<Args>(args)...));
  }

  // Unsafe code admits no preemption point: nothing stops a runaway C graft.
  void Poll() {}

  void ResetHeap() { arena_.Reset(); }

 private:
  Arena arena_;
};

}  // namespace envs

#endif  // GRAFTLAB_SRC_ENVS_UNSAFE_ENV_H_
