// Minnow lexer: source text to token stream.

#ifndef GRAFTLAB_SRC_MINNOW_LEXER_H_
#define GRAFTLAB_SRC_MINNOW_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/minnow/token.h"

namespace minnow {

// Tokenizes the whole source. Throws CompileError on malformed input.
// Supports // line comments, decimal and 0x hex integer literals.
std::vector<Token> Lex(std::string_view source);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_LEXER_H_
