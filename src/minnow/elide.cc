#include "src/minnow/elide.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/minnow/verifier.h"

namespace minnow {

namespace {

constexpr std::int64_t kIntMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kIntMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kU32Max = 0xFFFFFFFFll;
constexpr std::int64_t kMaxArrayLen = 1 << 28;  // kNewArray traps above this
constexpr int kWidenAfter = 3;   // visits to a pc before widening kicks in
constexpr int kInvariantRounds = 10;

// --- interval arithmetic -------------------------------------------------
// The VM wraps on overflow, so a range is only propagated when the 128-bit
// computation proves no endpoint combination can wrap; otherwise TOP.

using i128 = __int128;

bool FitsI64(i128 v) { return v >= static_cast<i128>(kIntMin) && v <= static_cast<i128>(kIntMax); }

AbsVal RangeAdd(const AbsVal& a, const AbsVal& b) {
  const i128 lo = static_cast<i128>(a.lo) + b.lo;
  const i128 hi = static_cast<i128>(a.hi) + b.hi;
  if (!FitsI64(lo) || !FitsI64(hi)) {
    return AbsVal::Top();
  }
  return AbsVal::Range(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
}

AbsVal RangeSub(const AbsVal& a, const AbsVal& b) {
  const i128 lo = static_cast<i128>(a.lo) - b.hi;
  const i128 hi = static_cast<i128>(a.hi) - b.lo;
  if (!FitsI64(lo) || !FitsI64(hi)) {
    return AbsVal::Top();
  }
  return AbsVal::Range(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
}

AbsVal RangeMul(const AbsVal& a, const AbsVal& b) {
  const i128 p1 = static_cast<i128>(a.lo) * b.lo;
  const i128 p2 = static_cast<i128>(a.lo) * b.hi;
  const i128 p3 = static_cast<i128>(a.hi) * b.lo;
  const i128 p4 = static_cast<i128>(a.hi) * b.hi;
  const i128 lo = std::min(std::min(p1, p2), std::min(p3, p4));
  const i128 hi = std::max(std::max(p1, p2), std::max(p3, p4));
  if (!FitsI64(lo) || !FitsI64(hi)) {
    return AbsVal::Top();
  }
  return AbsVal::Range(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi));
}

AbsVal RangeNeg(const AbsVal& a) {
  if (a.lo == kIntMin) {
    return AbsVal::Top();  // -INT64_MIN wraps
  }
  return AbsVal::Range(-a.hi, -a.lo);
}

// Post-state of a division that fell through (divisor was nonzero and no
// INT64_MIN/-1). Only the easy nonnegative case is kept precise.
AbsVal RangeDiv(const AbsVal& a, const AbsVal& b) {
  if (a.lo >= 0 && b.lo >= 1) {
    return AbsVal::Range(0, a.hi);
  }
  return AbsVal::Top();
}

// a % b with C++ truncation: same sign as a, |a % b| <= min(|a|, |b| - 1).
AbsVal RangeMod(const AbsVal& a, const AbsVal& b) {
  std::int64_t m = kIntMax;
  if (b.lo != kIntMin) {
    m = std::max(std::abs(b.lo), b.hi == kIntMin ? kIntMax : std::abs(b.hi));
    m = m > 0 ? m - 1 : 0;
  }
  const std::int64_t lo = a.lo < 0 ? std::max(-m, a.lo) : 0;
  const std::int64_t hi = a.hi > 0 ? std::min(m, a.hi) : 0;
  return AbsVal::Range(lo, hi);
}

AbsVal RangeAnd(const AbsVal& a, const AbsVal& b) {
  // A nonnegative operand bounds the result on its own: every set bit of
  // (a & b) is a set bit of that operand, so 0 <= result <= it. This is the
  // classic mask idiom `x & (len - 1)` — x may be anything, including
  // negative.
  if (a.lo >= 0 || b.lo >= 0) {
    const std::int64_t hi = a.lo >= 0 ? (b.lo >= 0 ? std::min(a.hi, b.hi) : a.hi) : b.hi;
    return AbsVal::Range(0, hi);
  }
  return AbsVal::Top();
}

AbsVal RangeOrXor(const AbsVal& a, const AbsVal& b) {
  if (a.lo >= 0 && b.lo >= 0) {
    const std::uint64_t m = static_cast<std::uint64_t>(std::max(a.hi, b.hi));
    const int bits = std::bit_width(m);
    const std::int64_t hi =
        bits >= 63 ? kIntMax : static_cast<std::int64_t>((1ull << bits) - 1);
    return AbsVal::Range(0, hi);
  }
  return AbsVal::Top();
}

AbsVal RangeShrI(const AbsVal& a) {
  if (a.lo >= 0) {
    return AbsVal::Range(0, a.hi);  // shift count in [0,63], a >> 0 == a
  }
  return AbsVal::Top();
}

AbsVal RangeClamp(const AbsVal& a, std::int64_t lo, std::int64_t hi) {
  if (a.lo >= lo && a.hi <= hi) {
    return AbsVal::Range(a.lo, a.hi);  // cast is the identity on this range
  }
  return AbsVal::Range(lo, hi);
}

AbsVal ElemLoadRange(const AbsVal& array) {
  if (!array.elem_known) {
    return AbsVal::Top();
  }
  switch (array.elem) {
    case TypeKind::kBool:
      return AbsVal::Range(0, 1);
    case TypeKind::kByte:
      return AbsVal::Range(0, 255);
    case TypeKind::kU32:
      return AbsVal::Range(0, kU32Max);
    default:
      return AbsVal::Top();
  }
}

// --- abstract state ------------------------------------------------------

struct Origin {
  enum Kind : std::uint8_t { kNone, kLocal, kGlobal };
  Kind kind = kNone;
  std::uint32_t index = 0;

  friend bool operator==(const Origin& a, const Origin& b) {
    return a.kind == b.kind && (a.kind == kNone || a.index == b.index);
  }
};

// A comparison outcome still on the stack: which compare produced it and the
// operand facts at compare time, so a later conditional branch can refine
// the operands' origins along each edge.
struct Pred {
  bool valid = false;
  Op cmp = Op::kNop;
  Origin lhs_origin, rhs_origin;
  AbsVal lhs, rhs;

  friend bool operator==(const Pred& a, const Pred& b) {
    if (a.valid != b.valid) {
      return false;
    }
    if (!a.valid) {
      return true;
    }
    return a.cmp == b.cmp && a.lhs_origin == b.lhs_origin && a.rhs_origin == b.rhs_origin &&
           a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

struct Slot {
  AbsVal v;
  Origin origin;
  Pred pred;

  friend bool operator==(const Slot& a, const Slot& b) {
    return a.v == b.v && a.origin == b.origin && a.pred == b.pred;
  }
};

struct State {
  std::vector<Slot> stack;
  std::vector<AbsVal> locals;
  std::vector<AbsVal> globals;

  friend bool operator==(const State& a, const State& b) {
    return a.stack == b.stack && a.locals == b.locals && a.globals == b.globals;
  }
};

Slot JoinSlot(const Slot& a, const Slot& b) {
  Slot out;
  out.v = Join(a.v, b.v);
  out.origin = a.origin == b.origin ? a.origin : Origin{};
  // Preds that compare the same operands survive a merge with their captured
  // facts joined (still an over-approximation of either path, so both edge
  // refinement and infeasibility pruning stay sound). This is what lets a
  // loop-head compare keep refining the counter after the back-edge join.
  if (a.pred.valid && b.pred.valid && a.pred.cmp == b.pred.cmp &&
      a.pred.lhs_origin == b.pred.lhs_origin && a.pred.rhs_origin == b.pred.rhs_origin) {
    out.pred = a.pred;
    out.pred.lhs = Join(a.pred.lhs, b.pred.lhs);
    out.pred.rhs = Join(a.pred.rhs, b.pred.rhs);
  } else if (a.pred == b.pred) {
    out.pred = a.pred;
  }
  return out;
}

// Join `from` into `into`; returns false on a stack-shape mismatch (cannot
// happen on verifier-accepted code, but the caller bails out defensively).
bool JoinState(State& into, const State& from) {
  if (into.stack.size() != from.stack.size() || into.locals.size() != from.locals.size() ||
      into.globals.size() != from.globals.size()) {
    return false;
  }
  for (std::size_t i = 0; i < into.stack.size(); ++i) {
    into.stack[i] = JoinSlot(into.stack[i], from.stack[i]);
  }
  for (std::size_t i = 0; i < into.locals.size(); ++i) {
    into.locals[i] = Join(into.locals[i], from.locals[i]);
  }
  for (std::size_t i = 0; i < into.globals.size(); ++i) {
    into.globals[i] = Join(into.globals[i], from.globals[i]);
  }
  return true;
}

void WidenState(const State& prev, State& next) {
  for (std::size_t i = 0; i < next.stack.size(); ++i) {
    next.stack[i].v = Widen(prev.stack[i].v, next.stack[i].v);
    // Captured pred facts widen alongside the values they were taken from,
    // so a pred surviving a loop join cannot keep creeping forever.
    if (next.stack[i].pred.valid && prev.stack[i].pred.valid) {
      next.stack[i].pred.lhs = Widen(prev.stack[i].pred.lhs, next.stack[i].pred.lhs);
      next.stack[i].pred.rhs = Widen(prev.stack[i].pred.rhs, next.stack[i].pred.rhs);
    }
  }
  for (std::size_t i = 0; i < next.locals.size(); ++i) {
    next.locals[i] = Widen(prev.locals[i], next.locals[i]);
  }
  for (std::size_t i = 0; i < next.globals.size(); ++i) {
    next.globals[i] = Widen(prev.globals[i], next.globals[i]);
  }
}

// --- refinement ----------------------------------------------------------

Op NegateCmp(Op op) {
  switch (op) {
    case Op::kEqI: return Op::kNeI;
    case Op::kNeI: return Op::kEqI;
    case Op::kLtI: return Op::kGeI;
    case Op::kLeI: return Op::kGtI;
    case Op::kGtI: return Op::kLeI;
    case Op::kGeI: return Op::kLtI;
    case Op::kLtU: return Op::kGeU;
    case Op::kLeU: return Op::kGtU;
    case Op::kGtU: return Op::kLeU;
    case Op::kGeU: return Op::kLtU;
    case Op::kEqRef: return Op::kNeRef;
    case Op::kNeRef: return Op::kEqRef;
    default: return Op::kNop;
  }
}

// Meet (intersection) of facts known about one and the same value; false if
// the intersection is empty (the edge is infeasible).
bool MeetVal(AbsVal& into, const AbsVal& fact) {
  into.lo = std::max(into.lo, fact.lo);
  into.hi = std::min(into.hi, fact.hi);
  if (into.lo > into.hi) {
    return false;
  }
  into.nonnull = into.nonnull || fact.nonnull || into.lo > 0 || into.hi < 0;
  if (into.nonnull && into.lo == 0 && into.hi == 0) {
    return false;  // proven nonzero yet proven zero
  }
  into.is_array = into.is_array || fact.is_array;
  if (fact.elem_known && !into.elem_known) {
    into.elem_known = true;
    into.elem = fact.elem;
  }
  into.len_lo = std::max(into.len_lo, fact.len_lo);
  return true;
}

// Writes a refined fact back to the value's origin slot, if it still has
// one. The origin is cleared whenever the local/global is reassigned, so a
// surviving origin means the slot still holds the compared value.
bool WriteBack(State& state, const Origin& origin, const AbsVal& fact) {
  switch (origin.kind) {
    case Origin::kLocal:
      return MeetVal(state.locals[origin.index], fact);
    case Origin::kGlobal:
      return MeetVal(state.globals[origin.index], fact);
    case Origin::kNone:
      return true;
  }
  return true;
}

// Derives the operand facts implied by `cmp(lhs, rhs) == true` and meets
// them into the edge state. Returns false when the edge is infeasible.
bool RefineCompare(State& state, Op cmp, const Origin& lhs_origin, const AbsVal& lhs,
                   const Origin& rhs_origin, const AbsVal& rhs) {
  // Unsigned compares refine like signed ones only when both sides are
  // proven nonnegative (the orders agree there).
  switch (cmp) {
    case Op::kLtU:
    case Op::kLeU:
    case Op::kGtU:
    case Op::kGeU:
      if (lhs.lo < 0 || rhs.lo < 0) {
        return true;
      }
      cmp = cmp == Op::kLtU   ? Op::kLtI
            : cmp == Op::kLeU ? Op::kLeI
            : cmp == Op::kGtU ? Op::kGtI
                              : Op::kGeI;
      break;
    default:
      break;
  }

  AbsVal lf = AbsVal::Top();  // fact derived for lhs
  AbsVal rf = AbsVal::Top();  // fact derived for rhs
  switch (cmp) {
    case Op::kEqI:
    case Op::kEqRef:
      // Equal values: each side inherits everything known about the other.
      lf = rhs;
      rf = lhs;
      if (cmp == Op::kEqRef) {
        // The slots hold identical bits, so the reference facts transfer
        // wholesale; MeetVal already handles that via lf/rf.
      }
      break;
    case Op::kNeI:
    case Op::kNeRef:
      if (cmp == Op::kNeRef) {
        if (rhs.lo == 0 && rhs.hi == 0) {
          lf.nonnull = true;
          lf.lo = lhs.lo == 0 ? 1 : lhs.lo;  // bits != 0; trim a touching endpoint
        }
        if (lhs.lo == 0 && lhs.hi == 0) {
          rf.nonnull = true;
          rf.lo = rhs.lo == 0 ? 1 : rhs.lo;
        }
      }
      // Singleton on one side trims a touching endpoint of the other.
      if (rhs.lo == rhs.hi) {
        if (lhs.lo == rhs.lo && lhs.hi == rhs.hi) {
          return false;  // both provably equal to the same constant
        }
        if (lhs.lo == rhs.lo && lhs.lo < kIntMax) {
          lf.lo = lhs.lo + 1;
        }
        if (lhs.hi == rhs.lo && lhs.hi > kIntMin) {
          lf.hi = lhs.hi - 1;
        }
      }
      if (lhs.lo == lhs.hi) {
        if (rhs.lo == lhs.lo && rhs.lo < kIntMax) {
          rf.lo = rhs.lo + 1;
        }
        if (rhs.hi == lhs.lo && rhs.hi > kIntMin) {
          rf.hi = rhs.hi - 1;
        }
      }
      break;
    case Op::kLtI:
      if (rhs.hi == kIntMin || lhs.lo == kIntMax) {
        return false;
      }
      lf.hi = rhs.hi - 1;
      rf.lo = lhs.lo + 1;
      break;
    case Op::kLeI:
      lf.hi = rhs.hi;
      rf.lo = lhs.lo;
      break;
    case Op::kGtI:
      if (rhs.lo == kIntMax || lhs.hi == kIntMin) {
        return false;
      }
      lf.lo = rhs.lo + 1;
      rf.hi = lhs.hi - 1;
      break;
    case Op::kGeI:
      lf.lo = rhs.lo;
      rf.hi = lhs.hi;
      break;
    default:
      return true;
  }

  // Check feasibility against the compare-time values, then write back.
  AbsVal lhs_now = lhs;
  AbsVal rhs_now = rhs;
  if (!MeetVal(lhs_now, lf) || !MeetVal(rhs_now, rf)) {
    return false;
  }
  return WriteBack(state, lhs_origin, lf) && WriteBack(state, rhs_origin, rf);
}

bool RefineByPred(State& state, const Pred& pred, bool truth) {
  if (!pred.valid) {
    return true;
  }
  const Op cmp = truth ? pred.cmp : NegateCmp(pred.cmp);
  if (cmp == Op::kNop) {
    return true;
  }
  return RefineCompare(state, cmp, pred.lhs_origin, pred.lhs, pred.rhs_origin, pred.rhs);
}

// --- per-function dataflow -----------------------------------------------

bool IsCandidate(Op op) {
  switch (op) {
    case Op::kLoadElem:
    case Op::kStoreElem:
    case Op::kLoadField:
    case Op::kStoreField:
    case Op::kDivI:
    case Op::kModI:
    case Op::kArrayLen:
      return true;
    default:
      return false;
  }
}

struct FnAnalysis {
  // Joined input state per pc; disengaged means unreachable.
  std::vector<std::optional<State>> in;
  // Join of the globals at every function exit (for the @init end state).
  std::vector<AbsVal> exit_globals;
  bool any_exit = false;
  bool ok = true;  // false => analysis bailed; retain everything in this fn
};

class Analyzer {
 public:
  Analyzer(const Program& program, const std::vector<AbsVal>& ginv, bool kill_globals_at_calls,
           std::vector<AbsVal>* store_accum)
      : program_(program),
        ginv_(ginv),
        kill_globals_at_calls_(kill_globals_at_calls),
        store_accum_(store_accum) {}

  FnAnalysis Run(const FunctionCode& fn, const std::vector<AbsVal>& entry_globals) {
    FnAnalysis out;
    const std::size_t n = fn.code.size();
    out.in.resize(n);
    out.exit_globals.assign(program_.globals.size(), AbsVal::Top());
    std::vector<int> visits(n, 0);

    State entry;
    entry.locals.assign(static_cast<std::size_t>(fn.num_locals), AbsVal::Top());
    // Params come from the host or any call site: TOP. Non-param locals are
    // nulled by PushFrame: exactly zero.
    for (int i = fn.num_params; i < fn.num_locals; ++i) {
      entry.locals[static_cast<std::size_t>(i)] = AbsVal::Null();
    }
    entry.globals = entry_globals;

    std::vector<std::size_t> worklist;
    out.in[0] = entry;
    worklist.push_back(0);

    while (!worklist.empty() && out.ok) {
      const std::size_t pc = worklist.back();
      worklist.pop_back();
      State state = *out.in[pc];
      Step(fn, pc, state, out, visits, worklist);
    }
    return out;
  }

 private:
  void FlowTo(FnAnalysis& out, std::vector<int>& visits, std::vector<std::size_t>& worklist,
              std::size_t from_pc, std::size_t target, const State& state) {
    if (target >= out.in.size()) {
      out.ok = false;
      return;
    }
    if (!out.in[target].has_value()) {
      out.in[target] = state;
      visits[target] = 1;
      worklist.push_back(target);
      return;
    }
    State joined = *out.in[target];
    const State before = joined;
    if (!JoinState(joined, state)) {
      out.ok = false;
      return;
    }
    // Widen only at back-edge targets (loop heads). Forward joins must stay
    // exact: the branch-refined body state arrives after the loop head has
    // already widened, and widening a forward join would blow that refinement
    // back to top. Termination still holds — every cycle passes through its
    // back-edge target, which widens, and the forward-only remainder of the
    // graph is a DAG that converges once its loop-head inputs stabilise.
    if (visits[target] >= kWidenAfter && target <= from_pc) {
      WidenState(before, joined);
    }
    if (!(joined == before)) {
      out.in[target] = std::move(joined);
      ++visits[target];
      worklist.push_back(target);
    }
  }

  void RecordExit(FnAnalysis& out, const State& state) {
    if (!out.any_exit) {
      out.exit_globals = state.globals;
      out.any_exit = true;
      return;
    }
    for (std::size_t g = 0; g < out.exit_globals.size(); ++g) {
      out.exit_globals[g] = Join(out.exit_globals[g], state.globals[g]);
    }
  }

  // Clears stale origins (and pred operand origins) after a write.
  static void KillOrigin(State& state, Origin::Kind kind, std::uint32_t index) {
    const Origin dead{kind, index};
    for (Slot& slot : state.stack) {
      if (slot.origin == dead) {
        slot.origin = Origin{};
      }
      if (slot.pred.valid) {
        if (slot.pred.lhs_origin == dead) {
          slot.pred.lhs_origin = Origin{};
        }
        if (slot.pred.rhs_origin == dead) {
          slot.pred.rhs_origin = Origin{};
        }
      }
    }
  }

  static void KillAllGlobalOrigins(State& state) {
    for (Slot& slot : state.stack) {
      if (slot.origin.kind == Origin::kGlobal) {
        slot.origin = Origin{};
      }
      if (slot.pred.valid) {
        if (slot.pred.lhs_origin.kind == Origin::kGlobal) {
          slot.pred.lhs_origin = Origin{};
        }
        if (slot.pred.rhs_origin.kind == Origin::kGlobal) {
          slot.pred.rhs_origin = Origin{};
        }
      }
    }
  }

  void KillGlobalsToInvariant(State& state) {
    state.globals = ginv_;
    KillAllGlobalOrigins(state);
  }

  // After a checked access fell through, its receiver was a valid array /
  // non-null object — meet that back into the receiver's origin.
  static void RefineReceiver(State& state, const Origin& origin, bool array,
                             std::int64_t len_lo_seen) {
    AbsVal fact = AbsVal::Top();
    fact.nonnull = true;
    if (array) {
      fact.is_array = true;
      fact.len_lo = len_lo_seen;
    }
    (void)WriteBack(state, origin, fact);  // infeasible here only on dead code
  }

  void Step(const FunctionCode& fn, std::size_t pc, State state, FnAnalysis& out,
            std::vector<int>& visits, std::vector<std::size_t>& worklist) {
    const Insn& insn = fn.code[pc];
    auto push = [&state](Slot slot) { state.stack.push_back(std::move(slot)); };
    auto push_val = [&state](AbsVal v) {
      Slot slot;
      slot.v = v;
      state.stack.push_back(std::move(slot));
    };
    auto pop = [&state]() {
      Slot slot = std::move(state.stack.back());
      state.stack.pop_back();
      return slot;
    };
    auto bin_i = [&](AbsVal (*f)(const AbsVal&, const AbsVal&)) {
      const Slot b = pop();
      const Slot a = pop();
      push_val(f(a.v, b.v));
    };
    auto next = [&] { FlowTo(out, visits, worklist, pc, pc + 1, state); };
    auto jump = [&](std::size_t target) { FlowTo(out, visits, worklist, pc, target, state); };

    switch (insn.op) {
      case Op::kNop:
        next();
        return;
      case Op::kConstInt:
        push_val(AbsVal::Const(insn.operand));
        next();
        return;
      case Op::kConstNull:
        push_val(AbsVal::Null());
        next();
        return;
      case Op::kLoadLocal: {
        Slot slot;
        slot.v = state.locals[static_cast<std::size_t>(insn.operand)];
        slot.origin = Origin{Origin::kLocal, static_cast<std::uint32_t>(insn.operand)};
        push(std::move(slot));
        next();
        return;
      }
      case Op::kStoreLocal: {
        const Slot v = pop();
        state.locals[static_cast<std::size_t>(insn.operand)] = v.v;
        KillOrigin(state, Origin::kLocal, static_cast<std::uint32_t>(insn.operand));
        next();
        return;
      }
      case Op::kLoadGlobal: {
        Slot slot;
        slot.v = state.globals[static_cast<std::size_t>(insn.operand)];
        slot.origin = Origin{Origin::kGlobal, static_cast<std::uint32_t>(insn.operand)};
        push(std::move(slot));
        next();
        return;
      }
      case Op::kStoreGlobal: {
        const Slot v = pop();
        const auto g = static_cast<std::size_t>(insn.operand);
        state.globals[g] = v.v;
        if (store_accum_ != nullptr) {
          (*store_accum_)[g] = Join((*store_accum_)[g], v.v);
        }
        KillOrigin(state, Origin::kGlobal, static_cast<std::uint32_t>(insn.operand));
        next();
        return;
      }
      case Op::kPop:
        pop();
        next();
        return;
      case Op::kDup:
        push(state.stack.back());
        next();
        return;
      case Op::kAddI:
        bin_i(RangeAdd);
        next();
        return;
      case Op::kSubI:
        bin_i(RangeSub);
        next();
        return;
      case Op::kMulI:
        bin_i(RangeMul);
        next();
        return;
      case Op::kDivI:
        bin_i(RangeDiv);
        next();
        return;
      case Op::kModI:
        bin_i(RangeMod);
        next();
        return;
      case Op::kNegI: {
        const Slot a = pop();
        push_val(RangeNeg(a.v));
        next();
        return;
      }
      case Op::kAndI:
        bin_i(RangeAnd);
        next();
        return;
      case Op::kOrI:
      case Op::kXorI:
        bin_i(RangeOrXor);
        next();
        return;
      case Op::kShlI:
        pop();
        pop();
        push_val(AbsVal::Top());
        next();
        return;
      case Op::kShrI: {
        pop();  // count
        const Slot a = pop();
        push_val(RangeShrI(a.v));
        next();
        return;
      }
      case Op::kNotI: {
        const Slot a = pop();
        if (a.v.hi == kIntMax || a.v.lo == kIntMin) {
          push_val(AbsVal::Top());
        } else {
          push_val(AbsVal::Range(-a.v.hi - 1, -a.v.lo - 1));
        }
        next();
        return;
      }
      case Op::kAddU:
      case Op::kSubU:
      case Op::kMulU:
      case Op::kDivU:
      case Op::kModU:
      case Op::kShlU:
      case Op::kShrU:
        pop();
        pop();
        push_val(AbsVal::Range(0, kU32Max));
        next();
        return;
      case Op::kNotU:
        pop();
        push_val(AbsVal::Range(0, kU32Max));
        next();
        return;
      case Op::kEqI:
      case Op::kNeI:
      case Op::kLtI:
      case Op::kLeI:
      case Op::kGtI:
      case Op::kGeI:
      case Op::kLtU:
      case Op::kLeU:
      case Op::kGtU:
      case Op::kGeU:
      case Op::kEqRef:
      case Op::kNeRef: {
        const Slot b = pop();
        const Slot a = pop();
        Slot res;
        res.v = AbsVal::Range(0, 1);
        res.pred.valid = true;
        res.pred.cmp = insn.op;
        res.pred.lhs_origin = a.origin;
        res.pred.rhs_origin = b.origin;
        res.pred.lhs = a.v;
        res.pred.rhs = b.v;
        push(std::move(res));
        next();
        return;
      }
      case Op::kNotB: {
        Slot a = pop();
        Slot res;
        res.v = AbsVal::Range(0, 1);
        if (a.pred.valid && NegateCmp(a.pred.cmp) != Op::kNop) {
          res.pred = a.pred;
          res.pred.cmp = NegateCmp(a.pred.cmp);
        }
        push(std::move(res));
        next();
        return;
      }
      case Op::kCastU32: {
        const Slot a = pop();
        push_val(RangeClamp(a.v, 0, kU32Max));
        next();
        return;
      }
      case Op::kCastByte: {
        const Slot a = pop();
        push_val(RangeClamp(a.v, 0, 255));
        next();
        return;
      }
      case Op::kJmp:
        jump(static_cast<std::size_t>(insn.operand));
        return;
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue: {
        const Slot cond = pop();
        const bool taken_truth = insn.op == Op::kJmpIfTrue;
        const auto target = static_cast<std::size_t>(insn.operand);
        // Constant conditions prune an edge outright. kJmpIfFalse jumps when
        // the condition is false; kJmpIfTrue when it is true — `taken_truth`
        // picks the edge's destination, while the refinement always asserts
        // the edge's own truth value.
        if (!(cond.v.lo >= 1)) {  // condition can be false
          State edge = state;
          if (RefineByPred(edge, cond.pred, /*truth=*/false)) {
            FlowTo(out, visits, worklist, pc, taken_truth ? pc + 1 : target, edge);
          }
        }
        if (!(cond.v.lo == 0 && cond.v.hi == 0)) {  // condition can be true
          State edge = std::move(state);
          if (RefineByPred(edge, cond.pred, /*truth=*/true)) {
            FlowTo(out, visits, worklist, pc, taken_truth ? target : pc + 1, edge);
          }
        }
        return;
      }
      case Op::kCall: {
        const auto& callee = program_.functions[static_cast<std::size_t>(insn.operand)];
        for (int i = 0; i < callee.num_params; ++i) {
          pop();
        }
        if (kill_globals_at_calls_) {
          KillGlobalsToInvariant(state);
        }
        if (callee.returns_value) {
          push_val(AbsVal::Top());
        }
        next();
        return;
      }
      case Op::kCallHost: {
        const auto& host = program_.host_imports[static_cast<std::size_t>(insn.operand)];
        for (int i = 0; i < host.arity; ++i) {
          pop();
        }
        if (kill_globals_at_calls_) {
          KillGlobalsToInvariant(state);
        }
        if (host.returns_value) {
          push_val(AbsVal::Top());
        }
        next();
        return;
      }
      case Op::kRet:
        pop();
        RecordExit(out, state);
        return;
      case Op::kRetVoid:
        RecordExit(out, state);
        return;
      case Op::kTrap:
        return;
      case Op::kNewStruct: {
        AbsVal ref = AbsVal::Top();
        ref.nonnull = true;
        push_val(ref);
        next();
        return;
      }
      case Op::kNewArray: {
        const Slot len = pop();
        AbsVal arr = AbsVal::Top();
        arr.nonnull = true;
        arr.is_array = true;
        arr.elem_known = true;
        arr.elem = static_cast<TypeKind>(insn.operand);
        arr.len_lo = std::min(std::max<std::int64_t>(0, len.v.lo), kMaxArrayLen);
        push_val(arr);
        next();
        return;
      }
      case Op::kLoadField: {
        const Slot obj = pop();
        RefineReceiver(state, obj.origin, /*array=*/false, 0);
        push_val(AbsVal::Top());
        next();
        return;
      }
      case Op::kStoreField: {
        pop();  // value
        const Slot obj = pop();
        RefineReceiver(state, obj.origin, /*array=*/false, 0);
        next();
        return;
      }
      case Op::kLoadElem: {
        const Slot idx = pop();
        const Slot arr = pop();
        RefineReceiver(state, arr.origin, /*array=*/true,
                       idx.v.lo >= 0 ? std::min(idx.v.lo, kMaxArrayLen - 1) + 1 : 0);
        push_val(ElemLoadRange(arr.v));
        next();
        return;
      }
      case Op::kStoreElem: {
        pop();  // value
        const Slot idx = pop();
        const Slot arr = pop();
        RefineReceiver(state, arr.origin, /*array=*/true,
                       idx.v.lo >= 0 ? std::min(idx.v.lo, kMaxArrayLen - 1) + 1 : 0);
        next();
        return;
      }
      case Op::kArrayLen: {
        const Slot arr = pop();
        RefineReceiver(state, arr.origin, /*array=*/true, 0);
        push_val(AbsVal::Range(std::max<std::int64_t>(0, arr.v.len_lo), kMaxArrayLen));
        next();
        return;
      }
      // --- superinstructions (analysis mirrors vm_dispatch.inc) ---
      case Op::kLoadAddI: {
        const Slot a = pop();
        push_val(RangeAdd(a.v, state.locals[static_cast<std::size_t>(insn.operand)]));
        next();
        return;
      }
      case Op::kAddConstI: {
        const Slot a = pop();
        push_val(RangeAdd(a.v, AbsVal::Const(insn.operand)));
        next();
        return;
      }
      case Op::kConstStore: {
        const auto slot = ConstStoreSlot(insn.operand);
        state.locals[slot] = AbsVal::Const(ConstStoreValue(insn.operand));
        KillOrigin(state, Origin::kLocal, slot);
        next();
        return;
      }
      case Op::kBrEqI:
      case Op::kBrNeI:
      case Op::kBrLtI:
      case Op::kBrLeI:
      case Op::kBrGtI:
      case Op::kBrGeI:
      case Op::kBrEqRef:
      case Op::kBrNeRef: {
        const Slot b = pop();
        const Slot a = pop();
        Op cmp;
        switch (insn.op) {
          case Op::kBrEqI: cmp = Op::kEqI; break;
          case Op::kBrNeI: cmp = Op::kNeI; break;
          case Op::kBrLtI: cmp = Op::kLtI; break;
          case Op::kBrLeI: cmp = Op::kLeI; break;
          case Op::kBrGtI: cmp = Op::kGtI; break;
          case Op::kBrGeI: cmp = Op::kGeI; break;
          case Op::kBrEqRef: cmp = Op::kEqRef; break;
          default: cmp = Op::kNeRef; break;
        }
        const auto target = static_cast<std::size_t>(insn.operand);
        State taken = state;
        if (RefineCompare(taken, cmp, a.origin, a.v, b.origin, b.v)) {
          FlowTo(out, visits, worklist, pc, target, taken);
        }
        State fall = std::move(state);
        if (RefineCompare(fall, NegateCmp(cmp), a.origin, a.v, b.origin, b.v)) {
          FlowTo(out, visits, worklist, pc, pc + 1, fall);
        }
        return;
      }
      case Op::kBrEqImmI:
      case Op::kBrNeImmI:
      case Op::kBrLtImmI:
      case Op::kBrLeImmI:
      case Op::kBrGtImmI:
      case Op::kBrGeImmI: {
        const Slot a = pop();
        const AbsVal imm = AbsVal::Const(ImmBranchValue(insn.operand));
        Op cmp;
        switch (insn.op) {
          case Op::kBrEqImmI: cmp = Op::kEqI; break;
          case Op::kBrNeImmI: cmp = Op::kNeI; break;
          case Op::kBrLtImmI: cmp = Op::kLtI; break;
          case Op::kBrLeImmI: cmp = Op::kLeI; break;
          case Op::kBrGtImmI: cmp = Op::kGtI; break;
          default: cmp = Op::kGeI; break;
        }
        const auto target = static_cast<std::size_t>(ImmBranchTarget(insn.operand));
        State taken = state;
        if (RefineCompare(taken, cmp, a.origin, a.v, Origin{}, imm)) {
          FlowTo(out, visits, worklist, pc, target, taken);
        }
        State fall = std::move(state);
        if (RefineCompare(fall, NegateCmp(cmp), a.origin, a.v, Origin{}, imm)) {
          FlowTo(out, visits, worklist, pc, pc + 1, fall);
        }
        return;
      }
      case Op::kLoadLocal2: {
        Slot s1;
        s1.v = state.locals[SlotPairA(insn.operand)];
        s1.origin = Origin{Origin::kLocal, SlotPairA(insn.operand)};
        push(std::move(s1));
        Slot s2;
        s2.v = state.locals[SlotPairB(insn.operand)];
        s2.origin = Origin{Origin::kLocal, SlotPairB(insn.operand)};
        push(std::move(s2));
        next();
        return;
      }
      case Op::kLoadConstI: {
        Slot s1;
        s1.v = state.locals[ConstStoreSlot(insn.operand)];
        s1.origin = Origin{Origin::kLocal, ConstStoreSlot(insn.operand)};
        push(std::move(s1));
        push_val(AbsVal::Const(ConstStoreValue(insn.operand)));
        next();
        return;
      }
      case Op::kMoveLocal: {
        state.locals[SlotPairB(insn.operand)] = state.locals[SlotPairA(insn.operand)];
        KillOrigin(state, Origin::kLocal, SlotPairB(insn.operand));
        next();
        return;
      }
      case Op::kStoreLoad: {
        const Slot v = pop();
        state.locals[SlotPairA(insn.operand)] = v.v;
        KillOrigin(state, Origin::kLocal, SlotPairA(insn.operand));
        Slot s;
        s.v = state.locals[SlotPairB(insn.operand)];
        s.origin = Origin{Origin::kLocal, SlotPairB(insn.operand)};
        push(std::move(s));
        next();
        return;
      }
      case Op::kLoadGlobalLocal: {
        Slot s1;
        s1.v = state.globals[SlotPairA(insn.operand)];
        s1.origin = Origin{Origin::kGlobal, SlotPairA(insn.operand)};
        push(std::move(s1));
        Slot s2;
        s2.v = state.locals[SlotPairB(insn.operand)];
        s2.origin = Origin{Origin::kLocal, SlotPairB(insn.operand)};
        push(std::move(s2));
        next();
        return;
      }
      default:
        // Unchecked opcodes (or anything unknown) must never reach the
        // analyzer; the caller screens them out.
        out.ok = false;
        return;
    }
  }

  const Program& program_;
  const std::vector<AbsVal>& ginv_;
  const bool kill_globals_at_calls_;
  std::vector<AbsVal>* store_accum_;
};

// --- decisions -----------------------------------------------------------

bool InBounds(const AbsVal& arr, const AbsVal& idx) {
  return arr.nonnull && arr.is_array && idx.lo >= 0 && arr.len_lo > 0 && idx.hi < arr.len_lo;
}

bool DivSafe(const AbsVal& dividend, const AbsVal& divisor) {
  if (!divisor.ExcludesZero()) {
    return false;
  }
  const bool excludes_minus_one = divisor.lo > -1 || divisor.hi < -1;
  return dividend.lo > kIntMin || excludes_minus_one;
}

// Decides one candidate site from its joined input state; returns the
// unchecked replacement opcode, or nullopt to retain the check.
std::optional<Op> Decide(const Insn& insn, const State& state) {
  const auto& stack = state.stack;
  const auto top = [&](std::size_t depth_from_top) -> const AbsVal& {
    return stack[stack.size() - 1 - depth_from_top].v;
  };
  switch (insn.op) {
    case Op::kLoadElem:
      if (InBounds(top(1), top(0))) {
        return Op::kLoadElemNC;
      }
      return std::nullopt;
    case Op::kStoreElem:
      if (InBounds(top(2), top(1))) {
        return Op::kStoreElemNC;
      }
      return std::nullopt;
    case Op::kLoadField:
      if (top(0).nonnull) {
        return Op::kLoadFieldNC;
      }
      return std::nullopt;
    case Op::kStoreField:
      if (top(1).nonnull) {
        return Op::kStoreFieldNC;
      }
      return std::nullopt;
    case Op::kDivI:
      if (DivSafe(top(1), top(0))) {
        return Op::kDivNZ;
      }
      return std::nullopt;
    case Op::kModI:
      if (DivSafe(top(1), top(0))) {
        return Op::kModNZ;
      }
      return std::nullopt;
    case Op::kArrayLen:
      if (top(0).nonnull && top(0).is_array) {
        return Op::kArrayLenNC;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

bool ContainsOp(const FunctionCode& fn, Op op) {
  for (const Insn& insn : fn.code) {
    if (insn.op == op) {
      return true;
    }
  }
  return false;
}

bool ProgramHasUncheckedOps(const Program& program) {
  for (const auto& fn : program.functions) {
    for (const Insn& insn : fn.code) {
      if (IsUncheckedOp(insn.op)) {
        return true;
      }
    }
  }
  return false;
}

void HashBytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void HashU64(std::uint64_t& h, std::uint64_t v) { HashBytes(h, &v, sizeof(v)); }

}  // namespace

AbsVal Join(const AbsVal& a, const AbsVal& b) {
  AbsVal out;
  out.lo = std::min(a.lo, b.lo);
  out.hi = std::max(a.hi, b.hi);
  out.nonnull = a.nonnull && b.nonnull;
  out.is_array = a.is_array && b.is_array;
  out.elem_known = a.elem_known && b.elem_known && a.elem == b.elem;
  out.elem = out.elem_known ? a.elem : TypeKind::kVoid;
  out.len_lo = std::min(a.len_lo, b.len_lo);
  return out;
}

AbsVal Widen(const AbsVal& prev, const AbsVal& next) {
  AbsVal out = next;
  if (next.lo < prev.lo) {
    out.lo = kIntMin;
  }
  if (next.hi > prev.hi) {
    out.hi = kIntMax;
  }
  if (next.len_lo < prev.len_lo) {
    out.len_lo = 0;
  }
  return out;
}

std::uint64_t ElisionCodeHash(const Program& program) {
  std::uint64_t h = 1469598103934665603ull;
  HashU64(h, program.globals.size());
  HashU64(h, program.structs.size());
  for (const auto& layout : program.structs) {
    HashU64(h, static_cast<std::uint64_t>(layout.num_fields));
  }
  HashU64(h, program.functions.size());
  for (const auto& fn : program.functions) {
    HashBytes(h, fn.name.data(), fn.name.size());
    HashU64(h, static_cast<std::uint64_t>(fn.num_params));
    HashU64(h, static_cast<std::uint64_t>(fn.num_locals));
    HashU64(h, fn.returns_value ? 1 : 0);
    HashU64(h, fn.code.size());
    for (const Insn& insn : fn.code) {
      HashU64(h, static_cast<std::uint64_t>(insn.op));
      HashU64(h, static_cast<std::uint64_t>(insn.operand));
    }
  }
  return h;
}

bool ElisionCertificateValid(const Program& program) {
  return program.elision.attached && program.elision.code_hash == ElisionCodeHash(program);
}

ElideStats ElideChecks(Program& program) {
  if (program.elision.attached) {
    if (!ElisionCertificateValid(program)) {
      throw std::invalid_argument("elision certificate does not match the code");
    }
    ElideStats stats;  // idempotent: report the certified counts
    stats.checks_elided = program.elision.checks_elided;
    stats.checks_retained = program.elision.checks_retained;
    stats.elem_loads_elided = program.elision.elem_loads_elided;
    stats.elem_stores_elided = program.elision.elem_stores_elided;
    stats.field_accesses_elided = program.elision.field_accesses_elided;
    stats.divs_elided = program.elision.divs_elided;
    stats.array_lens_elided = program.elision.array_lens_elided;
    return stats;
  }
  if (ProgramHasUncheckedOps(program)) {
    throw std::invalid_argument("unchecked opcodes present without an elision certificate");
  }
  {
    const VerifyReport report = VerifyProgram(program);
    if (!report.ok) {
      throw std::invalid_argument("ElideChecks on unverifiable program: " + report.message);
    }
  }

  const std::size_t num_globals = program.globals.size();
  const int init_index = program.FindFunction("@init");

  // Globals start as zero/null before @init runs.
  std::vector<AbsVal> zeros(num_globals, AbsVal::Null());
  std::vector<AbsVal> tops(num_globals, AbsVal::Top());

  // If @init calls another function, code runs before initialization
  // finished, so no global invariant is safe.
  bool have_invariants = true;
  if (init_index >= 0 &&
      ContainsOp(program.functions[static_cast<std::size_t>(init_index)], Op::kCall)) {
    have_invariants = false;
  }

  // @init end state: globals after initialization (reentry during @init is
  // impossible for certified programs — the VM refuses Call before RunInit).
  std::vector<AbsVal> ginv = zeros;
  if (have_invariants && init_index >= 0) {
    Analyzer init_analyzer(program, tops, /*kill_globals_at_calls=*/false, nullptr);
    FnAnalysis init_out =
        init_analyzer.Run(program.functions[static_cast<std::size_t>(init_index)], zeros);
    if (!init_out.ok || !init_out.any_exit) {
      have_invariants = false;
    } else {
      ginv = init_out.exit_globals;
    }
  }
  if (!have_invariants) {
    ginv = tops;
  }

  // Fixpoint: the invariant must absorb every value any function (except
  // @init, whose effect is the end state above) ever stores to a global.
  if (have_invariants) {
    for (int round = 0; round < kInvariantRounds; ++round) {
      std::vector<AbsVal> accum = ginv;
      Analyzer analyzer(program, ginv, /*kill_globals_at_calls=*/true, &accum);
      for (std::size_t f = 0; f < program.functions.size(); ++f) {
        if (static_cast<int>(f) == init_index) {
          continue;
        }
        FnAnalysis result = analyzer.Run(program.functions[f], ginv);
        (void)result;
      }
      if (accum == ginv) {
        break;
      }
      if (round + 1 >= kWidenAfter) {
        for (std::size_t g = 0; g < num_globals; ++g) {
          accum[g] = Widen(ginv[g], accum[g]);
        }
      }
      ginv = std::move(accum);
      if (round == kInvariantRounds - 1) {
        ginv = tops;  // did not converge; fall back to no invariants
      }
    }
  }

  // Final pass under the converged invariant: decide and rewrite.
  ElideStats stats;
  Analyzer analyzer(program, ginv, /*kill_globals_at_calls=*/true, nullptr);
  Analyzer init_analyzer(program, tops, /*kill_globals_at_calls=*/false, nullptr);
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    FunctionCode& fn = program.functions[f];
    const bool is_init = static_cast<int>(f) == init_index;
    FnAnalysis result =
        is_init ? init_analyzer.Run(fn, zeros) : analyzer.Run(fn, ginv);
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      Insn& insn = fn.code[pc];
      if (!IsCandidate(insn.op)) {
        continue;
      }
      std::optional<Op> replacement;
      if (result.ok && result.in[pc].has_value()) {
        replacement = Decide(insn, *result.in[pc]);
      }
      if (!replacement.has_value()) {
        ++stats.checks_retained;
        continue;
      }
      switch (insn.op) {
        case Op::kLoadElem:
          ++stats.elem_loads_elided;
          break;
        case Op::kStoreElem:
          ++stats.elem_stores_elided;
          break;
        case Op::kLoadField:
        case Op::kStoreField:
          ++stats.field_accesses_elided;
          break;
        case Op::kDivI:
        case Op::kModI:
          ++stats.divs_elided;
          break;
        default:
          ++stats.array_lens_elided;
          break;
      }
      ++stats.checks_elided;
      insn.op = *replacement;
    }
  }

  program.elision.attached = true;
  program.elision.checks_elided = stats.checks_elided;
  program.elision.checks_retained = stats.checks_retained;
  program.elision.elem_loads_elided = stats.elem_loads_elided;
  program.elision.elem_stores_elided = stats.elem_stores_elided;
  program.elision.field_accesses_elided = stats.field_accesses_elided;
  program.elision.divs_elided = stats.divs_elided;
  program.elision.array_lens_elided = stats.array_lens_elided;
  program.elision.code_hash = ElisionCodeHash(program);
  return stats;
}

std::string DumpElision(const Program& program) {
  std::ostringstream out;
  std::uint64_t elided = 0;
  std::uint64_t retained = 0;
  for (const auto& fn : program.functions) {
    bool any = false;
    for (const Insn& insn : fn.code) {
      if (IsCandidate(insn.op) || IsUncheckedOp(insn.op)) {
        any = true;
        break;
      }
    }
    if (!any) {
      continue;
    }
    out << "fn " << fn.name << "\n";
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Insn& insn = fn.code[pc];
      if (IsUncheckedOp(insn.op)) {
        out << "  " << pc << ": " << OpName(insn.op) << " elided\n";
        ++elided;
      } else if (IsCandidate(insn.op)) {
        out << "  " << pc << ": " << OpName(insn.op) << " retained\n";
        ++retained;
      }
    }
  }
  out << "total elided=" << elided << " retained=" << retained << "\n";
  return out.str();
}

}  // namespace minnow
