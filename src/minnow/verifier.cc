#include "src/minnow/verifier.h"

#include <vector>

#include "src/minnow/elide.h"

namespace minnow {

namespace {

struct Effect {
  int pops = 0;
  int pushes = 0;
  bool terminal = false;  // control does not fall through
  bool branch = false;    // has a jump-target operand
};

// Returns false if the opcode itself is unknown.
bool StackEffect(const Program& program, const Insn& insn, Effect& effect, std::string& error) {
  switch (insn.op) {
    case Op::kNop:
      break;
    case Op::kConstInt:
    case Op::kConstNull:
    case Op::kLoadLocal:
    case Op::kLoadGlobal:
      effect.pushes = 1;
      break;
    case Op::kStoreLocal:
    case Op::kStoreGlobal:
    case Op::kPop:
      effect.pops = 1;
      break;
    case Op::kDup:
      effect.pops = 1;
      effect.pushes = 2;
      break;
    case Op::kNegI:
    case Op::kNotI:
    case Op::kNotU:
    case Op::kNotB:
    case Op::kCastU32:
    case Op::kCastByte:
    case Op::kArrayLen:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    case Op::kAddI:
    case Op::kSubI:
    case Op::kMulI:
    case Op::kDivI:
    case Op::kModI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kShlI:
    case Op::kShrI:
    case Op::kAddU:
    case Op::kSubU:
    case Op::kMulU:
    case Op::kDivU:
    case Op::kModU:
    case Op::kShlU:
    case Op::kShrU:
    case Op::kEqI:
    case Op::kNeI:
    case Op::kLtI:
    case Op::kLeI:
    case Op::kGtI:
    case Op::kGeI:
    case Op::kLtU:
    case Op::kLeU:
    case Op::kGtU:
    case Op::kGeU:
    case Op::kEqRef:
    case Op::kNeRef:
      effect.pops = 2;
      effect.pushes = 1;
      break;
    case Op::kJmp:
      effect.branch = true;
      effect.terminal = true;
      break;
    case Op::kJmpIfFalse:
    case Op::kJmpIfTrue:
      effect.pops = 1;
      effect.branch = true;
      break;
    case Op::kCall: {
      if (insn.operand < 0 ||
          static_cast<std::size_t>(insn.operand) >= program.functions.size()) {
        error = "call target out of range";
        return false;
      }
      const auto& callee = program.functions[static_cast<std::size_t>(insn.operand)];
      effect.pops = callee.num_params;
      effect.pushes = callee.returns_value ? 1 : 0;
      break;
    }
    case Op::kCallHost: {
      if (insn.operand < 0 ||
          static_cast<std::size_t>(insn.operand) >= program.host_imports.size()) {
        error = "host import index out of range";
        return false;
      }
      const auto& host = program.host_imports[static_cast<std::size_t>(insn.operand)];
      effect.pops = host.arity;
      effect.pushes = host.returns_value ? 1 : 0;
      break;
    }
    case Op::kRet:
      effect.pops = 1;
      effect.terminal = true;
      break;
    case Op::kRetVoid:
    case Op::kTrap:
      effect.terminal = true;
      break;
    case Op::kNewStruct:
      if (insn.operand < 0 || static_cast<std::size_t>(insn.operand) >= program.structs.size()) {
        error = "struct id out of range";
        return false;
      }
      effect.pushes = 1;
      break;
    case Op::kNewArray:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    case Op::kLoadField:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    case Op::kStoreField:
      effect.pops = 2;
      break;
    case Op::kLoadElem:
      effect.pops = 2;
      effect.pushes = 1;
      break;
    case Op::kStoreElem:
      effect.pops = 3;
      break;
    case Op::kLoadAddI:
    case Op::kAddConstI:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    case Op::kConstStore:
      break;
    case Op::kBrEqI:
    case Op::kBrNeI:
    case Op::kBrLtI:
    case Op::kBrLeI:
    case Op::kBrGtI:
    case Op::kBrGeI:
    case Op::kBrEqRef:
    case Op::kBrNeRef:
      effect.pops = 2;
      effect.branch = true;
      break;
    case Op::kBrEqImmI:
    case Op::kBrNeImmI:
    case Op::kBrLtImmI:
    case Op::kBrLeImmI:
    case Op::kBrGtImmI:
    case Op::kBrGeImmI:
      effect.pops = 1;
      effect.branch = true;
      break;
    case Op::kLoadLocal2:
    case Op::kLoadConstI:
    case Op::kLoadGlobalLocal:
      effect.pushes = 2;
      break;
    case Op::kMoveLocal:
      break;
    case Op::kStoreLoad:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    // Unchecked variants mirror their checked originals' stack shapes.
    case Op::kLoadElemNC:
      effect.pops = 2;
      effect.pushes = 1;
      break;
    case Op::kStoreElemNC:
      effect.pops = 3;
      break;
    case Op::kLoadFieldNC:
    case Op::kArrayLenNC:
      effect.pops = 1;
      effect.pushes = 1;
      break;
    case Op::kStoreFieldNC:
      effect.pops = 2;
      break;
    case Op::kDivNZ:
    case Op::kModNZ:
      effect.pops = 2;
      effect.pushes = 1;
      break;
    default:
      error = "unknown opcode";
      return false;
  }
  return true;
}

// Imm-branch operands pack immediate<<32 | target; everything else branches
// on the raw operand.
std::int64_t BranchTargetOf(const Insn& insn) {
  switch (insn.op) {
    case Op::kBrEqImmI:
    case Op::kBrNeImmI:
    case Op::kBrLtImmI:
    case Op::kBrLeImmI:
    case Op::kBrGtImmI:
    case Op::kBrGeImmI:
      return static_cast<std::int64_t>(ImmBranchTarget(insn.operand));
    default:
      return insn.operand;
  }
}

bool ValidElemKind(std::int64_t operand) {
  const auto kind = static_cast<TypeKind>(operand);
  return kind == TypeKind::kInt || kind == TypeKind::kU32 || kind == TypeKind::kByte ||
         kind == TypeKind::kBool;
}

// Operand range checks that don't affect stack shape.
bool CheckOperand(const Program& program, const FunctionCode& fn, const Insn& insn,
                  std::string& error) {
  switch (insn.op) {
    case Op::kLoadLocal:
    case Op::kStoreLocal:
    case Op::kLoadAddI:
      if (insn.operand < 0 || insn.operand >= fn.num_locals) {
        error = "local slot out of range";
        return false;
      }
      break;
    case Op::kConstStore:
    case Op::kLoadConstI:
      if (ConstStoreSlot(insn.operand) >= static_cast<std::uint32_t>(fn.num_locals)) {
        error = "local slot out of range";
        return false;
      }
      break;
    case Op::kLoadLocal2:
    case Op::kMoveLocal:
    case Op::kStoreLoad:
      if (SlotPairA(insn.operand) >= static_cast<std::uint32_t>(fn.num_locals) ||
          SlotPairB(insn.operand) >= static_cast<std::uint32_t>(fn.num_locals)) {
        error = "local slot out of range";
        return false;
      }
      break;
    case Op::kLoadGlobalLocal:
      if (SlotPairA(insn.operand) >= program.globals.size() ||
          SlotPairB(insn.operand) >= static_cast<std::uint32_t>(fn.num_locals)) {
        error = "global index out of range";
        return false;
      }
      break;
    case Op::kLoadGlobal:
    case Op::kStoreGlobal:
      if (insn.operand < 0 || static_cast<std::size_t>(insn.operand) >= program.globals.size()) {
        error = "global index out of range";
        return false;
      }
      break;
    case Op::kNewArray:
    case Op::kLoadElem:
    case Op::kStoreElem:
    case Op::kLoadElemNC:
    case Op::kStoreElemNC:
      if (!ValidElemKind(insn.operand)) {
        error = "invalid array element kind";
        return false;
      }
      break;
    case Op::kLoadField:
    case Op::kStoreField:
    case Op::kLoadFieldNC:
    case Op::kStoreFieldNC:
      // Field indices are checked against the receiver's layout at run time
      // (the verifier tracks no types); they must at least be non-negative
      // and within the largest layout.
      {
        int max_fields = 0;
        for (const auto& layout : program.structs) {
          if (layout.num_fields > max_fields) {
            max_fields = layout.num_fields;
          }
        }
        if (insn.operand < 0 || insn.operand >= max_fields) {
          error = "field index out of range for every struct layout";
          return false;
        }
      }
      break;
    default:
      break;
  }
  return true;
}

VerifyReport VerifyFunction(const Program& program, FunctionCode& fn, int fn_index) {
  auto fail = [&](std::size_t pc, const std::string& message) {
    VerifyReport report;
    report.ok = false;
    report.message = "fn '" + fn.name + "': " + message;
    report.function = fn_index;
    report.pc = pc;
    return report;
  };

  if (fn.num_params > fn.num_locals) {
    return fail(0, "params exceed locals");
  }
  if (fn.code.empty()) {
    return fail(0, "empty code");
  }

  const std::size_t n = fn.code.size();
  std::vector<int> depth_at(n, -1);
  std::vector<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);
  int max_stack = 0;

  while (!worklist.empty()) {
    const std::size_t pc = worklist.back();
    worklist.pop_back();
    const Insn& insn = fn.code[pc];
    const int depth = depth_at[pc];

    std::string error;
    Effect effect;
    if (!StackEffect(program, insn, effect, error)) {
      return fail(pc, error);
    }
    if (!CheckOperand(program, fn, insn, error)) {
      return fail(pc, error);
    }
    if (depth < effect.pops) {
      return fail(pc, "stack underflow");
    }
    const int after = depth - effect.pops + effect.pushes;
    if (after > kMaxStack) {
      return fail(pc, "stack overflow (static)");
    }
    if (after > max_stack) {
      max_stack = after;
    }

    auto flow_to = [&](std::size_t target) -> bool {
      if (target >= n) {
        return false;
      }
      if (depth_at[target] == -1) {
        depth_at[target] = after;
        worklist.push_back(target);
      } else if (depth_at[target] != after) {
        return false;  // inconsistent merge depth — treated as range error below
      }
      return true;
    };

    if (effect.branch) {
      const std::int64_t target = BranchTargetOf(insn);
      if (target < 0 || static_cast<std::size_t>(target) >= n) {
        return fail(pc, "branch target out of range");
      }
      if (!flow_to(static_cast<std::size_t>(target))) {
        return fail(pc, "inconsistent stack depth at branch target");
      }
    }
    if (!effect.terminal) {
      if (pc + 1 >= n) {
        return fail(pc, "control falls off the end of the function");
      }
      if (!flow_to(pc + 1)) {
        return fail(pc, "inconsistent stack depth at fall-through");
      }
    }
  }

  fn.max_stack = max_stack;
  return VerifyReport{};
}

}  // namespace

VerifyReport VerifyProgram(Program& program) {
  // Unchecked opcodes are only legal under a matching elision certificate:
  // the proof that made them safe is bound to this exact opcode stream.
  bool has_unchecked = false;
  for (const auto& fn : program.functions) {
    for (const Insn& insn : fn.code) {
      if (IsUncheckedOp(insn.op)) {
        has_unchecked = true;
        break;
      }
    }
    if (has_unchecked) {
      break;
    }
  }
  if (has_unchecked && !ElisionCertificateValid(program)) {
    VerifyReport report;
    report.ok = false;
    report.message = program.elision.attached
                         ? "unchecked opcodes with a stale elision certificate"
                         : "unchecked opcodes without an elision certificate";
    return report;
  }
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    VerifyReport report = VerifyFunction(program, program.functions[i], static_cast<int>(i));
    if (!report.ok) {
      return report;
    }
  }
  return VerifyReport{};
}

}  // namespace minnow
