// Minnow's type system.
//
// Scalars: int (i64), u32 (wraps modulo 2^32 — MD5's arithmetic), bool,
// byte (u8). Reference types: named structs (nullable, heap-allocated,
// garbage collected) and typed arrays of scalars. Everything fits in one
// 64-bit VM slot at runtime; the static types exist so the compiler can
// pick the right opcodes and reject unsafe programs.

#ifndef GRAFTLAB_SRC_MINNOW_TYPES_H_
#define GRAFTLAB_SRC_MINNOW_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace minnow {

enum class TypeKind : std::uint8_t {
  kVoid,
  kInt,    // signed 64-bit
  kU32,    // unsigned, wraps modulo 2^32
  kBool,
  kByte,   // unsigned 8-bit
  kStruct, // reference to a named struct (nullable)
  kArray,  // reference to an array of a scalar element kind (nullable)
  kNull,   // the type of the literal `null` (assignable to any reference)
};

struct Type {
  TypeKind kind = TypeKind::kVoid;
  int struct_id = -1;             // kStruct: index into Program::structs
  TypeKind elem = TypeKind::kVoid;  // kArray: element kind (scalar only)

  static Type Void() { return {}; }
  static Type Int() { return {TypeKind::kInt, -1, TypeKind::kVoid}; }
  static Type U32() { return {TypeKind::kU32, -1, TypeKind::kVoid}; }
  static Type Bool() { return {TypeKind::kBool, -1, TypeKind::kVoid}; }
  static Type Byte() { return {TypeKind::kByte, -1, TypeKind::kVoid}; }
  static Type Null() { return {TypeKind::kNull, -1, TypeKind::kVoid}; }
  static Type Struct(int id) { return {TypeKind::kStruct, id, TypeKind::kVoid}; }
  static Type Array(TypeKind element) { return {TypeKind::kArray, -1, element}; }

  bool IsReference() const {
    return kind == TypeKind::kStruct || kind == TypeKind::kArray || kind == TypeKind::kNull;
  }
  bool IsScalar() const {
    return kind == TypeKind::kInt || kind == TypeKind::kU32 || kind == TypeKind::kBool ||
           kind == TypeKind::kByte;
  }
  bool IsNumeric() const {
    return kind == TypeKind::kInt || kind == TypeKind::kU32 || kind == TypeKind::kByte;
  }

  friend bool operator==(const Type& a, const Type& b) {
    return a.kind == b.kind && a.struct_id == b.struct_id && a.elem == b.elem;
  }
};

// `from` may be stored where `to` is expected: exact match, or null into any
// reference slot.
inline bool Assignable(const Type& to, const Type& from) {
  if (to == from) {
    return true;
  }
  return from.kind == TypeKind::kNull && to.IsReference() && to.kind != TypeKind::kNull;
}

std::string TypeName(const Type& type, const std::vector<std::string>& struct_names);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_TYPES_H_
