#include "src/minnow/optimizer.h"

#include <limits>
#include <vector>

namespace minnow {

namespace {

constexpr std::uint64_t kU32Mask = 0xFFFFFFFFull;

// Evaluates a foldable binary op; returns false for ops that must be left to
// the runtime (traps, calls, memory). Mirrors vm.cc exactly.
bool EvalBinop(Op op, std::int64_t a, std::int64_t b, std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case Op::kAddI: out = static_cast<std::int64_t>(ua + ub); return true;
    case Op::kSubI: out = static_cast<std::int64_t>(ua - ub); return true;
    case Op::kMulI: out = static_cast<std::int64_t>(ua * ub); return true;
    case Op::kDivI:
      if (b == 0 || (a == std::numeric_limits<std::int64_t>::min() && b == -1)) {
        return false;  // would trap: preserve
      }
      out = a / b;
      return true;
    case Op::kModI:
      if (b == 0 || (a == std::numeric_limits<std::int64_t>::min() && b == -1)) {
        return false;
      }
      out = a % b;
      return true;
    case Op::kAndI: out = a & b; return true;
    case Op::kOrI: out = a | b; return true;
    case Op::kXorI: out = a ^ b; return true;
    case Op::kShlI: out = static_cast<std::int64_t>(ua << (ub & 63)); return true;
    case Op::kShrI: out = a >> (ub & 63); return true;
    case Op::kAddU: out = static_cast<std::int64_t>(((ua & kU32Mask) + (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kSubU: out = static_cast<std::int64_t>(((ua & kU32Mask) - (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kMulU: out = static_cast<std::int64_t>(((ua & kU32Mask) * (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kDivU:
      if ((ub & kU32Mask) == 0) {
        return false;
      }
      out = static_cast<std::int64_t>((ua & kU32Mask) / (ub & kU32Mask));
      return true;
    case Op::kModU:
      if ((ub & kU32Mask) == 0) {
        return false;
      }
      out = static_cast<std::int64_t>((ua & kU32Mask) % (ub & kU32Mask));
      return true;
    case Op::kShlU: out = static_cast<std::int64_t>(((ua & kU32Mask) << (ub & 31)) & kU32Mask); return true;
    case Op::kShrU: out = static_cast<std::int64_t>((ua & kU32Mask) >> (ub & 31)); return true;
    case Op::kEqI: out = a == b ? 1 : 0; return true;
    case Op::kNeI: out = a != b ? 1 : 0; return true;
    case Op::kLtI: out = a < b ? 1 : 0; return true;
    case Op::kLeI: out = a <= b ? 1 : 0; return true;
    case Op::kGtI: out = a > b ? 1 : 0; return true;
    case Op::kGeI: out = a >= b ? 1 : 0; return true;
    case Op::kLtU: out = ua < ub ? 1 : 0; return true;
    case Op::kLeU: out = ua <= ub ? 1 : 0; return true;
    case Op::kGtU: out = ua > ub ? 1 : 0; return true;
    case Op::kGeU: out = ua >= ub ? 1 : 0; return true;
    default:
      return false;
  }
}

bool EvalUnary(Op op, std::int64_t a, std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  switch (op) {
    case Op::kNegI: out = static_cast<std::int64_t>(0 - ua); return true;
    case Op::kNotI: out = ~a; return true;
    case Op::kNotU: out = static_cast<std::int64_t>((~ua) & kU32Mask); return true;
    case Op::kNotB: out = a == 0 ? 1 : 0; return true;
    case Op::kCastU32: out = static_cast<std::int64_t>(ua & kU32Mask); return true;
    case Op::kCastByte: out = static_cast<std::int64_t>(ua & 0xFF); return true;
    default:
      return false;
  }
}

bool IsBranch(Op op) {
  return op == Op::kJmp || op == Op::kJmpIfFalse || op == Op::kJmpIfTrue;
}

std::vector<bool> JumpTargets(const FunctionCode& fn) {
  std::vector<bool> targets(fn.code.size() + 1, false);
  for (const Insn& insn : fn.code) {
    if (IsBranch(insn.op)) {
      targets[static_cast<std::size_t>(insn.operand)] = true;
    }
  }
  return targets;
}

// Removes instructions where keep[i] is false, remapping branch targets to
// the first kept instruction at or after the old target.
void Compact(FunctionCode& fn, const std::vector<bool>& keep) {
  std::vector<std::int64_t> remap(fn.code.size() + 1, 0);
  std::int64_t next = 0;
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    remap[i] = next;
    if (keep[i]) {
      ++next;
    }
  }
  remap[fn.code.size()] = next;

  std::vector<Insn> out;
  out.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    if (!keep[i]) {
      continue;
    }
    Insn insn = fn.code[i];
    if (IsBranch(insn.op)) {
      insn.operand = remap[static_cast<std::size_t>(insn.operand)];
    }
    out.push_back(insn);
  }
  fn.code = std::move(out);
}

// One pass of local folding; returns the number of folds performed.
std::size_t FoldConstants(FunctionCode& fn, OptimizeStats& stats) {
  const auto targets = JumpTargets(fn);
  std::vector<bool> keep(fn.code.size(), true);
  std::size_t folds = 0;

  for (std::size_t i = 0; i + 1 < fn.code.size(); ++i) {
    if (!keep[i] || fn.code[i].op != Op::kConstInt) {
      continue;
    }
    // Unary fold: [Const a][unop], no label between.
    if (!targets[i + 1]) {
      std::int64_t folded;
      if (EvalUnary(fn.code[i + 1].op, fn.code[i].operand, folded)) {
        fn.code[i + 1] = {Op::kConstInt, folded};
        keep[i] = false;
        ++folds;
        ++stats.constants_folded;
        continue;
      }
      // Constant-condition branch: [Const c][JmpIfX t].
      const Op branch = fn.code[i + 1].op;
      if (branch == Op::kJmpIfFalse || branch == Op::kJmpIfTrue) {
        const bool truthy = fn.code[i].operand != 0;
        const bool taken = (branch == Op::kJmpIfTrue) == truthy;
        if (taken) {
          fn.code[i + 1] = {Op::kJmp, fn.code[i + 1].operand};
        } else {
          keep[i + 1] = false;
        }
        keep[i] = false;
        ++folds;
        ++stats.branches_folded;
        continue;
      }
    }
    // Binary fold: [Const a][Const b][binop], no labels inside.
    if (i + 2 < fn.code.size() && fn.code[i + 1].op == Op::kConstInt && !targets[i + 1] &&
        !targets[i + 2]) {
      std::int64_t folded;
      if (EvalBinop(fn.code[i + 2].op, fn.code[i].operand, fn.code[i + 1].operand, folded)) {
        fn.code[i + 2] = {Op::kConstInt, folded};
        keep[i] = false;
        keep[i + 1] = false;
        ++folds;
        ++stats.constants_folded;
      }
    }
  }

  if (folds > 0) {
    Compact(fn, keep);
  }
  return folds;
}

std::size_t ThreadJumps(FunctionCode& fn, OptimizeStats& stats) {
  std::size_t threaded = 0;
  for (Insn& insn : fn.code) {
    if (!IsBranch(insn.op)) {
      continue;
    }
    // Follow chains of unconditional jumps (cycle-bounded).
    std::int64_t target = insn.operand;
    int hops = 0;
    while (hops < 64 && static_cast<std::size_t>(target) < fn.code.size() &&
           fn.code[static_cast<std::size_t>(target)].op == Op::kJmp &&
           fn.code[static_cast<std::size_t>(target)].operand != target) {
      target = fn.code[static_cast<std::size_t>(target)].operand;
      ++hops;
    }
    if (target != insn.operand) {
      insn.operand = target;
      ++threaded;
      ++stats.jumps_threaded;
    }
  }
  return threaded;
}

std::size_t RemoveUnreachable(const Program& program, FunctionCode& fn, OptimizeStats& stats) {
  // Reachability over the CFG (same walk as the verifier's).
  std::vector<bool> reachable(fn.code.size(), false);
  std::vector<std::size_t> worklist{0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.back();
    worklist.pop_back();
    const Insn& insn = fn.code[pc];
    const bool terminal = insn.op == Op::kJmp || insn.op == Op::kRet ||
                          insn.op == Op::kRetVoid || insn.op == Op::kTrap;
    if (IsBranch(insn.op)) {
      const auto target = static_cast<std::size_t>(insn.operand);
      if (target < fn.code.size() && !reachable[target]) {
        reachable[target] = true;
        worklist.push_back(target);
      }
    }
    if (!terminal && pc + 1 < fn.code.size() && !reachable[pc + 1]) {
      reachable[pc + 1] = true;
      worklist.push_back(pc + 1);
    }
  }
  (void)program;

  std::size_t removed = 0;
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    if (!reachable[i]) {
      ++removed;
    }
  }
  if (removed > 0) {
    Compact(fn, reachable);
    stats.unreachable_removed += removed;
  }
  return removed;
}

}  // namespace

OptimizeStats Optimize(Program& program) {
  OptimizeStats stats;
  for (auto& fn : program.functions) {
    stats.instructions_before += fn.code.size();
    // Iterate to a (bounded) fixpoint: folding exposes more folds and new
    // dead code; threading exposes dead jump islands.
    for (int round = 0; round < 8; ++round) {
      std::size_t changes = 0;
      changes += FoldConstants(fn, stats);
      changes += ThreadJumps(fn, stats);
      changes += RemoveUnreachable(program, fn, stats);
      if (changes == 0) {
        break;
      }
    }
    stats.instructions_after += fn.code.size();
  }
  return stats;
}

}  // namespace minnow
