#include "src/minnow/optimizer.h"

#include <limits>
#include <vector>

namespace minnow {

namespace {

constexpr std::uint64_t kU32Mask = 0xFFFFFFFFull;

// Evaluates a foldable binary op; returns false for ops that must be left to
// the runtime (traps, calls, memory). Mirrors vm.cc exactly.
bool EvalBinop(Op op, std::int64_t a, std::int64_t b, std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case Op::kAddI: out = static_cast<std::int64_t>(ua + ub); return true;
    case Op::kSubI: out = static_cast<std::int64_t>(ua - ub); return true;
    case Op::kMulI: out = static_cast<std::int64_t>(ua * ub); return true;
    case Op::kDivI:
      if (b == 0 || (a == std::numeric_limits<std::int64_t>::min() && b == -1)) {
        return false;  // would trap: preserve
      }
      out = a / b;
      return true;
    case Op::kModI:
      if (b == 0 || (a == std::numeric_limits<std::int64_t>::min() && b == -1)) {
        return false;
      }
      out = a % b;
      return true;
    case Op::kAndI: out = a & b; return true;
    case Op::kOrI: out = a | b; return true;
    case Op::kXorI: out = a ^ b; return true;
    case Op::kShlI: out = static_cast<std::int64_t>(ua << (ub & 63)); return true;
    case Op::kShrI: out = a >> (ub & 63); return true;
    case Op::kAddU: out = static_cast<std::int64_t>(((ua & kU32Mask) + (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kSubU: out = static_cast<std::int64_t>(((ua & kU32Mask) - (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kMulU: out = static_cast<std::int64_t>(((ua & kU32Mask) * (ub & kU32Mask)) & kU32Mask); return true;
    case Op::kDivU:
      if ((ub & kU32Mask) == 0) {
        return false;
      }
      out = static_cast<std::int64_t>((ua & kU32Mask) / (ub & kU32Mask));
      return true;
    case Op::kModU:
      if ((ub & kU32Mask) == 0) {
        return false;
      }
      out = static_cast<std::int64_t>((ua & kU32Mask) % (ub & kU32Mask));
      return true;
    case Op::kShlU: out = static_cast<std::int64_t>(((ua & kU32Mask) << (ub & 31)) & kU32Mask); return true;
    case Op::kShrU: out = static_cast<std::int64_t>((ua & kU32Mask) >> (ub & 31)); return true;
    case Op::kEqI: out = a == b ? 1 : 0; return true;
    case Op::kNeI: out = a != b ? 1 : 0; return true;
    case Op::kLtI: out = a < b ? 1 : 0; return true;
    case Op::kLeI: out = a <= b ? 1 : 0; return true;
    case Op::kGtI: out = a > b ? 1 : 0; return true;
    case Op::kGeI: out = a >= b ? 1 : 0; return true;
    case Op::kLtU: out = ua < ub ? 1 : 0; return true;
    case Op::kLeU: out = ua <= ub ? 1 : 0; return true;
    case Op::kGtU: out = ua > ub ? 1 : 0; return true;
    case Op::kGeU: out = ua >= ub ? 1 : 0; return true;
    default:
      return false;
  }
}

bool EvalUnary(Op op, std::int64_t a, std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  switch (op) {
    case Op::kNegI: out = static_cast<std::int64_t>(0 - ua); return true;
    case Op::kNotI: out = ~a; return true;
    case Op::kNotU: out = static_cast<std::int64_t>((~ua) & kU32Mask); return true;
    case Op::kNotB: out = a == 0 ? 1 : 0; return true;
    case Op::kCastU32: out = static_cast<std::int64_t>(ua & kU32Mask); return true;
    case Op::kCastByte: out = static_cast<std::int64_t>(ua & 0xFF); return true;
    default:
      return false;
  }
}

bool IsImmBranch(Op op) {
  return op == Op::kBrEqImmI || op == Op::kBrNeImmI || op == Op::kBrLtImmI ||
         op == Op::kBrLeImmI || op == Op::kBrGtImmI || op == Op::kBrGeImmI;
}

bool IsBranch(Op op) {
  switch (op) {
    case Op::kJmp:
    case Op::kJmpIfFalse:
    case Op::kJmpIfTrue:
    case Op::kBrEqI:
    case Op::kBrNeI:
    case Op::kBrLtI:
    case Op::kBrLeI:
    case Op::kBrGtI:
    case Op::kBrGeI:
    case Op::kBrEqRef:
    case Op::kBrNeRef:
      return true;
    default:
      return IsImmBranch(op);
  }
}

std::int64_t GetBranchTarget(const Insn& insn) {
  return IsImmBranch(insn.op) ? static_cast<std::int64_t>(ImmBranchTarget(insn.operand))
                              : insn.operand;
}

void SetBranchTarget(Insn& insn, std::int64_t target) {
  if (IsImmBranch(insn.op)) {
    insn.operand = PackImmBranch(ImmBranchValue(insn.operand), static_cast<std::uint32_t>(target));
  } else {
    insn.operand = target;
  }
}

std::vector<bool> JumpTargets(const FunctionCode& fn) {
  std::vector<bool> targets(fn.code.size() + 1, false);
  for (const Insn& insn : fn.code) {
    if (IsBranch(insn.op)) {
      targets[static_cast<std::size_t>(GetBranchTarget(insn))] = true;
    }
  }
  return targets;
}

// Removes instructions where keep[i] is false, remapping branch targets to
// the first kept instruction at or after the old target.
void Compact(FunctionCode& fn, const std::vector<bool>& keep) {
  std::vector<std::int64_t> remap(fn.code.size() + 1, 0);
  std::int64_t next = 0;
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    remap[i] = next;
    if (keep[i]) {
      ++next;
    }
  }
  remap[fn.code.size()] = next;

  std::vector<Insn> out;
  out.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    if (!keep[i]) {
      continue;
    }
    Insn insn = fn.code[i];
    if (IsBranch(insn.op)) {
      SetBranchTarget(insn, remap[static_cast<std::size_t>(GetBranchTarget(insn))]);
    }
    out.push_back(insn);
  }
  fn.code = std::move(out);
}

// One pass of local folding; returns the number of folds performed.
std::size_t FoldConstants(FunctionCode& fn, OptimizeStats& stats) {
  const auto targets = JumpTargets(fn);
  std::vector<bool> keep(fn.code.size(), true);
  std::size_t folds = 0;

  for (std::size_t i = 0; i + 1 < fn.code.size(); ++i) {
    if (!keep[i] || fn.code[i].op != Op::kConstInt) {
      continue;
    }
    // Unary fold: [Const a][unop], no label between.
    if (!targets[i + 1]) {
      std::int64_t folded;
      if (EvalUnary(fn.code[i + 1].op, fn.code[i].operand, folded)) {
        fn.code[i + 1] = {Op::kConstInt, folded};
        keep[i] = false;
        ++folds;
        ++stats.constants_folded;
        continue;
      }
      // Constant-condition branch: [Const c][JmpIfX t].
      const Op branch = fn.code[i + 1].op;
      if (branch == Op::kJmpIfFalse || branch == Op::kJmpIfTrue) {
        const bool truthy = fn.code[i].operand != 0;
        const bool taken = (branch == Op::kJmpIfTrue) == truthy;
        if (taken) {
          fn.code[i + 1] = {Op::kJmp, fn.code[i + 1].operand};
        } else {
          keep[i + 1] = false;
        }
        keep[i] = false;
        ++folds;
        ++stats.branches_folded;
        continue;
      }
    }
    // Binary fold: [Const a][Const b][binop], no labels inside.
    if (i + 2 < fn.code.size() && fn.code[i + 1].op == Op::kConstInt && !targets[i + 1] &&
        !targets[i + 2]) {
      std::int64_t folded;
      if (EvalBinop(fn.code[i + 2].op, fn.code[i].operand, fn.code[i + 1].operand, folded)) {
        fn.code[i + 2] = {Op::kConstInt, folded};
        keep[i] = false;
        keep[i + 1] = false;
        ++folds;
        ++stats.constants_folded;
      }
    }
  }

  if (folds > 0) {
    Compact(fn, keep);
  }
  return folds;
}

std::size_t ThreadJumps(FunctionCode& fn, OptimizeStats& stats) {
  std::size_t threaded = 0;
  for (Insn& insn : fn.code) {
    if (!IsBranch(insn.op)) {
      continue;
    }
    // Follow chains of unconditional jumps (cycle-bounded).
    const std::int64_t original = GetBranchTarget(insn);
    std::int64_t target = original;
    int hops = 0;
    while (hops < 64 && static_cast<std::size_t>(target) < fn.code.size() &&
           fn.code[static_cast<std::size_t>(target)].op == Op::kJmp &&
           fn.code[static_cast<std::size_t>(target)].operand != target) {
      target = fn.code[static_cast<std::size_t>(target)].operand;
      ++hops;
    }
    if (target != original) {
      SetBranchTarget(insn, target);
      ++threaded;
      ++stats.jumps_threaded;
    }
  }
  return threaded;
}

std::size_t RemoveUnreachable(const Program& program, FunctionCode& fn, OptimizeStats& stats) {
  // Reachability over the CFG (same walk as the verifier's).
  std::vector<bool> reachable(fn.code.size(), false);
  std::vector<std::size_t> worklist{0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const std::size_t pc = worklist.back();
    worklist.pop_back();
    const Insn& insn = fn.code[pc];
    const bool terminal = insn.op == Op::kJmp || insn.op == Op::kRet ||
                          insn.op == Op::kRetVoid || insn.op == Op::kTrap;
    if (IsBranch(insn.op)) {
      const auto target = static_cast<std::size_t>(GetBranchTarget(insn));
      if (target < fn.code.size() && !reachable[target]) {
        reachable[target] = true;
        worklist.push_back(target);
      }
    }
    if (!terminal && pc + 1 < fn.code.size() && !reachable[pc + 1]) {
      reachable[pc + 1] = true;
      worklist.push_back(pc + 1);
    }
  }
  (void)program;

  std::size_t removed = 0;
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    if (!reachable[i]) {
      ++removed;
    }
  }
  if (removed > 0) {
    Compact(fn, reachable);
    stats.unreachable_removed += removed;
  }
  return removed;
}

// Maps a comparison followed by kJmpIfTrue (or, when `inverted`, kJmpIfFalse)
// to the equivalent fused compare-and-branch opcode. Returns false for
// comparisons with no fused form (the unsigned family).
bool FusedCompareBranch(Op cmp, bool inverted, Op& out) {
  switch (cmp) {
    case Op::kEqI: out = inverted ? Op::kBrNeI : Op::kBrEqI; return true;
    case Op::kNeI: out = inverted ? Op::kBrEqI : Op::kBrNeI; return true;
    case Op::kLtI: out = inverted ? Op::kBrGeI : Op::kBrLtI; return true;
    case Op::kLeI: out = inverted ? Op::kBrGtI : Op::kBrLeI; return true;
    case Op::kGtI: out = inverted ? Op::kBrLeI : Op::kBrGtI; return true;
    case Op::kGeI: out = inverted ? Op::kBrLtI : Op::kBrGeI; return true;
    case Op::kEqRef: out = inverted ? Op::kBrNeRef : Op::kBrEqRef; return true;
    case Op::kNeRef: out = inverted ? Op::kBrEqRef : Op::kBrNeRef; return true;
    default: return false;
  }
}

// The imm forms only exist for the signed-integer comparisons.
bool FusedImmCompareBranch(Op cmp, bool inverted, Op& out) {
  switch (cmp) {
    case Op::kEqI: out = inverted ? Op::kBrNeImmI : Op::kBrEqImmI; return true;
    case Op::kNeI: out = inverted ? Op::kBrEqImmI : Op::kBrNeImmI; return true;
    case Op::kLtI: out = inverted ? Op::kBrGeImmI : Op::kBrLtImmI; return true;
    case Op::kLeI: out = inverted ? Op::kBrGtImmI : Op::kBrLeImmI; return true;
    case Op::kGtI: out = inverted ? Op::kBrLeImmI : Op::kBrGtImmI; return true;
    case Op::kGeI: out = inverted ? Op::kBrLtImmI : Op::kBrGeImmI; return true;
    default: return false;
  }
}

bool FitsInt32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

std::size_t FuseFunction(FunctionCode& fn, FuseStats& stats) {
  const auto targets = JumpTargets(fn);
  std::vector<bool> keep(fn.code.size(), true);
  std::size_t fused = 0;

  for (std::size_t i = 0; i + 1 < fn.code.size(); ++i) {
    if (!keep[i] || targets[i + 1]) {
      continue;
    }
    const Insn a = fn.code[i];
    const Insn b = fn.code[i + 1];

    // Triple: [Const c][int cmp][JmpIfX t] -> one pop-compare-branch, when the
    // constant and the target both fit the packed operand.
    if (i + 2 < fn.code.size() && !targets[i + 2] && a.op == Op::kConstInt && FitsInt32(a.operand)) {
      const Insn& c = fn.code[i + 2];
      Op fused_op;
      if ((c.op == Op::kJmpIfTrue || c.op == Op::kJmpIfFalse) &&
          c.operand <= std::numeric_limits<std::uint32_t>::max() &&
          FusedImmCompareBranch(b.op, c.op == Op::kJmpIfFalse, fused_op)) {
        fn.code[i + 2] = {fused_op, PackImmBranch(static_cast<std::int32_t>(a.operand),
                                                  static_cast<std::uint32_t>(c.operand))};
        keep[i] = false;
        keep[i + 1] = false;
        ++fused;
        ++stats.imm_compare_branches_fused;
        ++i;  // the pair scan must not reconsider the consumed comparison
        continue;
      }
    }

    // Pair: [cmp][JmpIfX t] -> fused compare-and-branch (sense-inverted for
    // JmpIfFalse so six opcodes cover both polarities).
    if (b.op == Op::kJmpIfTrue || b.op == Op::kJmpIfFalse) {
      Op fused_op;
      if (FusedCompareBranch(a.op, b.op == Op::kJmpIfFalse, fused_op)) {
        fn.code[i + 1] = {fused_op, b.operand};
        keep[i] = false;
        ++fused;
        ++stats.compare_branches_fused;
        continue;
      }
      // [NotB][JmpIfX] -> the opposite branch; no new opcode needed.
      if (a.op == Op::kNotB) {
        fn.code[i + 1] = {b.op == Op::kJmpIfFalse ? Op::kJmpIfTrue : Op::kJmpIfFalse, b.operand};
        keep[i] = false;
        ++fused;
        ++stats.branches_inverted;
        continue;
      }
    }

    // Pair: [LoadLocal s][AddI] -> LoadAddI s.
    if (a.op == Op::kLoadLocal && b.op == Op::kAddI) {
      fn.code[i + 1] = {Op::kLoadAddI, a.operand};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [Const c][AddI] -> AddConstI c.
    if (a.op == Op::kConstInt && b.op == Op::kAddI) {
      fn.code[i + 1] = {Op::kAddConstI, a.operand};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [Const c][StoreLocal s] -> ConstStore, when c fits 32 bits.
    if (a.op == Op::kConstInt && b.op == Op::kStoreLocal && FitsInt32(a.operand)) {
      fn.code[i + 1] = {Op::kConstStore, PackConstStore(static_cast<std::int32_t>(a.operand),
                                                        static_cast<std::uint32_t>(b.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // The remaining pairs are the hot-profile local/global traffic (see the
    // pair table in bench/ablate_minnow_exec). Each packs two u32 indices
    // into the operand.
    // Pair: [LoadLocal a][LoadLocal b] -> LoadLocal2.
    if (a.op == Op::kLoadLocal && b.op == Op::kLoadLocal) {
      fn.code[i + 1] = {Op::kLoadLocal2, PackSlotPair(static_cast<std::uint32_t>(a.operand),
                                                      static_cast<std::uint32_t>(b.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [LoadLocal s][Const c] -> LoadConstI, when c fits 32 bits.
    // (When the constant starts a compare-branch triple this costs nothing:
    // the comparison still pair-fuses with the branch, so both paths retire
    // two dispatches.)
    if (a.op == Op::kLoadLocal && b.op == Op::kConstInt && FitsInt32(b.operand)) {
      fn.code[i + 1] = {Op::kLoadConstI, PackConstStore(static_cast<std::int32_t>(b.operand),
                                                        static_cast<std::uint32_t>(a.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [LoadLocal src][StoreLocal dst] -> MoveLocal.
    if (a.op == Op::kLoadLocal && b.op == Op::kStoreLocal) {
      fn.code[i + 1] = {Op::kMoveLocal, PackSlotPair(static_cast<std::uint32_t>(a.operand),
                                                     static_cast<std::uint32_t>(b.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [StoreLocal a][LoadLocal b] -> StoreLoad (b == a reloads the
    // just-stored value without touching the operand stack twice).
    if (a.op == Op::kStoreLocal && b.op == Op::kLoadLocal) {
      fn.code[i + 1] = {Op::kStoreLoad, PackSlotPair(static_cast<std::uint32_t>(a.operand),
                                                     static_cast<std::uint32_t>(b.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
    // Pair: [LoadGlobal g][LoadLocal s] -> LoadGlobalLocal.
    if (a.op == Op::kLoadGlobal && b.op == Op::kLoadLocal) {
      fn.code[i + 1] = {Op::kLoadGlobalLocal, PackSlotPair(static_cast<std::uint32_t>(a.operand),
                                                           static_cast<std::uint32_t>(b.operand))};
      keep[i] = false;
      ++fused;
      ++stats.pairs_fused;
      continue;
    }
  }

  if (fused > 0) {
    Compact(fn, keep);
  }
  return fused;
}

}  // namespace

OptimizeStats Optimize(Program& program) {
  OptimizeStats stats;
  for (auto& fn : program.functions) {
    stats.instructions_before += fn.code.size();
    // Iterate to a (bounded) fixpoint: folding exposes more folds and new
    // dead code; threading exposes dead jump islands.
    for (int round = 0; round < 8; ++round) {
      std::size_t changes = 0;
      changes += FoldConstants(fn, stats);
      changes += ThreadJumps(fn, stats);
      changes += RemoveUnreachable(program, fn, stats);
      if (changes == 0) {
        break;
      }
    }
    stats.instructions_after += fn.code.size();
  }
  return stats;
}

FuseStats FuseSuperinstructions(Program& program) {
  FuseStats stats;
  for (auto& fn : program.functions) {
    stats.instructions_before += fn.code.size();
    // One round exposes no second-order fusions (no pattern starts with a
    // superinstruction), so a single pass per function is a fixpoint.
    FuseFunction(fn, stats);
    stats.instructions_after += fn.code.size();
  }
  return stats;
}

}  // namespace minnow
