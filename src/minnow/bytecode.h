// Minnow bytecode: the machine-independent format grafts are shipped in.
//
// A compact stack machine, in the mold of the JVM bytecode the paper's Java
// numbers come from. Every instruction is an opcode plus one signed 64-bit
// operand. The compiler guarantees type soundness; the load-time verifier
// (verifier.h) independently re-checks the structural properties the kernel
// must not take on faith (jump targets, stack discipline, slot and pool
// indices), mirroring how a kernel would treat downloaded code.

#ifndef GRAFTLAB_SRC_MINNOW_BYTECODE_H_
#define GRAFTLAB_SRC_MINNOW_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/minnow/types.h"

namespace minnow {

enum class Op : std::uint8_t {
  kNop,

  // Stack and slots.
  kConstInt,     // push operand
  kConstNull,    // push null reference
  kLoadLocal,    // push locals[operand]
  kStoreLocal,   // locals[operand] = pop
  kLoadGlobal,   // push globals[operand]
  kStoreGlobal,  // globals[operand] = pop
  kPop,
  kDup,

  // Signed 64-bit integer arithmetic (b = pop, a = pop, push a OP b).
  kAddI,
  kSubI,
  kMulI,
  kDivI,  // traps on divide by zero / INT64_MIN / -1
  kModI,
  kNegI,
  kAndI,
  kOrI,
  kXorI,
  kShlI,  // count masked to 63
  kShrI,  // arithmetic shift
  kNotI,  // bitwise complement

  // u32 arithmetic: same stack discipline, result truncated modulo 2^32.
  kAddU,
  kSubU,
  kMulU,
  kDivU,
  kModU,
  kShlU,  // count masked to 31
  kShrU,  // logical shift
  kNotU,

  // Comparisons (push bool).
  kEqI,
  kNeI,
  kLtI,
  kLeI,
  kGtI,
  kGeI,
  kLtU,
  kLeU,
  kGtU,
  kGeU,
  kEqRef,
  kNeRef,
  kNotB,  // logical not

  // Narrowing casts.
  kCastU32,
  kCastByte,

  // Control flow. Branch operands are absolute instruction indices.
  kJmp,
  kJmpIfFalse,
  kJmpIfTrue,
  kCall,      // operand = function index; args on stack left-to-right
  kCallHost,  // operand = host import index
  kRet,       // return top of stack
  kRetVoid,

  // Heap.
  kNewStruct,   // operand = struct id
  kNewArray,    // operand = element TypeKind; length popped from stack
  kLoadField,   // operand = field index; object popped
  kStoreField,  // value = pop, object = pop
  kLoadElem,    // index = pop, array = pop
  kStoreElem,   // value = pop, index = pop, array = pop
  kArrayLen,    // array popped

  kTrap,  // unconditional trap; operand selects the message (fell-off-end)
};

struct Insn {
  Op op = Op::kNop;
  std::int64_t operand = 0;
};

struct FunctionCode {
  std::string name;
  int num_params = 0;
  int num_locals = 0;  // including params
  bool returns_value = false;
  std::vector<Insn> code;
  int max_stack = 0;  // filled by the verifier
};

// A struct's runtime layout: slot count plus which slots hold references
// (the GC's field map).
struct StructLayout {
  std::string name;
  int num_fields = 0;
  std::vector<bool> field_is_ref;
};

// One imported host function.
struct HostImport {
  std::string name;
  int arity = 0;
  bool returns_value = false;
};

struct GlobalSlot {
  std::string name;
  bool is_ref = false;
};

// A compiled, shippable Minnow module.
struct Program {
  std::vector<StructLayout> structs;
  std::vector<GlobalSlot> globals;
  std::vector<FunctionCode> functions;
  std::vector<HostImport> host_imports;

  // Index of a function by name, -1 if absent.
  int FindFunction(const std::string& name) const {
    for (std::size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

const char* OpName(Op op);

// Human-readable disassembly, for tests and debugging.
std::string Disassemble(const FunctionCode& fn);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_BYTECODE_H_
