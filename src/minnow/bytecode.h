// Minnow bytecode: the machine-independent format grafts are shipped in.
//
// A compact stack machine, in the mold of the JVM bytecode the paper's Java
// numbers come from. Every instruction is an opcode plus one signed 64-bit
// operand. The compiler guarantees type soundness; the load-time verifier
// (verifier.h) independently re-checks the structural properties the kernel
// must not take on faith (jump targets, stack discipline, slot and pool
// indices), mirroring how a kernel would treat downloaded code.
//
// The opcode set is defined once through GRAFTLAB_MINNOW_OPS so the enum, the
// name table, the interpreter's computed-goto label table, and the opcode
// profiler can never drift out of sync. Opcode semantics:
//
//   kNop
//   kConstInt      push operand
//   kConstNull     push null reference
//   kLoadLocal     push locals[operand]
//   kStoreLocal    locals[operand] = pop
//   kLoadGlobal    push globals[operand]
//   kStoreGlobal   globals[operand] = pop
//   kPop, kDup
//
//   Signed 64-bit integer arithmetic (b = pop, a = pop, push a OP b):
//   kAddI kSubI kMulI kDivI kModI kNegI kAndI kOrI kXorI kShlI kShrI kNotI
//   (kDivI/kModI trap on divide by zero and INT64_MIN / -1; shift counts
//   masked to 63; kShrI is an arithmetic shift.)
//
//   u32 arithmetic, result truncated modulo 2^32:
//   kAddU kSubU kMulU kDivU kModU kShlU kShrU kNotU
//   (shift counts masked to 31; kShrU is a logical shift.)
//
//   Comparisons (push bool): kEqI kNeI kLtI kLeI kGtI kGeI kLtU kLeU kGtU
//   kGeU kEqRef kNeRef; kNotB is logical not.
//
//   Narrowing casts: kCastU32, kCastByte.
//
//   Control flow (branch operands are absolute instruction indices):
//   kJmp kJmpIfFalse kJmpIfTrue
//   kCall          operand = function index; args on stack left-to-right
//   kCallHost      operand = host import index
//   kRet           return top of stack
//   kRetVoid
//
//   Heap:
//   kNewStruct     operand = struct id
//   kNewArray      operand = element TypeKind; length popped from stack
//   kLoadField     operand = field index; object popped
//   kStoreField    value = pop, object = pop
//   kLoadElem      index = pop, array = pop
//   kStoreElem     value = pop, index = pop, array = pop
//   kArrayLen      array popped
//
//   kTrap          unconditional trap; operand selects the message
//
// Superinstructions (emitted only by optimizer.h's FuseSuperinstructions,
// never by the compiler; the register translator refuses them):
//
//   kLoadAddI      tos += locals[operand]            (kLoadLocal + kAddI)
//   kAddConstI     tos += operand                    (kConstInt + kAddI)
//   kConstStore    locals[slot] = const              (kConstInt + kStoreLocal;
//                  operand packs const<<32 | slot, see PackConstStore)
//   kBrEqI..kBrGeI pop b, pop a, jump to operand when a CMP b
//                  (comparison + kJmpIfTrue, or the inverted comparison +
//                  kJmpIfFalse)
//   kBrEqRef/kBrNeRef  reference forms of the above
//   kBrEqImmI..kBrGeImmI  pop a, jump to target when a CMP imm
//                  (kConstInt + comparison + branch; operand packs
//                  imm<<32 | target, see PackImmBranch)
//   kLoadLocal2    push locals[a], push locals[b]    (kLoadLocal + kLoadLocal;
//                  operand packs a<<32 | b, see PackSlotPair)
//   kLoadConstI    push locals[slot], push const     (kLoadLocal + kConstInt;
//                  operand packs const<<32 | slot like kConstStore)
//   kMoveLocal     locals[dst] = locals[src]         (kLoadLocal + kStoreLocal;
//                  operand packs src<<32 | dst)
//   kStoreLoad     locals[a] = pop, push locals[b]   (kStoreLocal + kLoadLocal;
//                  operand packs a<<32 | b)
//   kLoadGlobalLocal  push globals[g], push locals[s]  (kLoadGlobal +
//                  kLoadLocal; operand packs g<<32 | s)
//
// Unchecked variants (emitted only by elide.h's load-time check-elision
// pass, and only when its abstract interpreter has proven the elided
// runtime check can never fire; the verifier refuses them unless the
// program carries a matching elision certificate — see ElisionCertificate):
//
//   kLoadElemNC    kLoadElem without the null, array-kind, and bounds checks
//   kStoreElemNC   kStoreElem without the null, array-kind, and bounds checks
//   kLoadFieldNC   kLoadField without the null check (field-index check kept)
//   kStoreFieldNC  kStoreField without the null check (field-index check kept)
//   kDivNZ         kDivI without the zero-divisor and INT64_MIN/-1 checks
//   kModNZ         kModI without the zero-divisor and INT64_MIN/-1 checks
//   kArrayLenNC    kArrayLen without the null and array-kind checks

#ifndef GRAFTLAB_SRC_MINNOW_BYTECODE_H_
#define GRAFTLAB_SRC_MINNOW_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/minnow/types.h"

// X-macro over every opcode, in enum order. New opcodes go at the end so
// fused programs disassembled in old logs stay readable.
#define GRAFTLAB_MINNOW_OPS(X) \
  X(kNop)                      \
  X(kConstInt)                 \
  X(kConstNull)                \
  X(kLoadLocal)                \
  X(kStoreLocal)               \
  X(kLoadGlobal)               \
  X(kStoreGlobal)              \
  X(kPop)                      \
  X(kDup)                      \
  X(kAddI)                     \
  X(kSubI)                     \
  X(kMulI)                     \
  X(kDivI)                     \
  X(kModI)                     \
  X(kNegI)                     \
  X(kAndI)                     \
  X(kOrI)                      \
  X(kXorI)                     \
  X(kShlI)                     \
  X(kShrI)                     \
  X(kNotI)                     \
  X(kAddU)                     \
  X(kSubU)                     \
  X(kMulU)                     \
  X(kDivU)                     \
  X(kModU)                     \
  X(kShlU)                     \
  X(kShrU)                     \
  X(kNotU)                     \
  X(kEqI)                      \
  X(kNeI)                      \
  X(kLtI)                      \
  X(kLeI)                      \
  X(kGtI)                      \
  X(kGeI)                      \
  X(kLtU)                      \
  X(kLeU)                      \
  X(kGtU)                      \
  X(kGeU)                      \
  X(kEqRef)                    \
  X(kNeRef)                    \
  X(kNotB)                     \
  X(kCastU32)                  \
  X(kCastByte)                 \
  X(kJmp)                      \
  X(kJmpIfFalse)               \
  X(kJmpIfTrue)                \
  X(kCall)                     \
  X(kCallHost)                 \
  X(kRet)                      \
  X(kRetVoid)                  \
  X(kNewStruct)                \
  X(kNewArray)                 \
  X(kLoadField)                \
  X(kStoreField)               \
  X(kLoadElem)                 \
  X(kStoreElem)                \
  X(kArrayLen)                 \
  X(kTrap)                     \
  X(kLoadAddI)                 \
  X(kAddConstI)                \
  X(kConstStore)               \
  X(kBrEqI)                    \
  X(kBrNeI)                    \
  X(kBrLtI)                    \
  X(kBrLeI)                    \
  X(kBrGtI)                    \
  X(kBrGeI)                    \
  X(kBrEqRef)                  \
  X(kBrNeRef)                  \
  X(kBrEqImmI)                 \
  X(kBrNeImmI)                 \
  X(kBrLtImmI)                 \
  X(kBrLeImmI)                 \
  X(kBrGtImmI)                 \
  X(kBrGeImmI)                 \
  X(kLoadLocal2)               \
  X(kLoadConstI)               \
  X(kMoveLocal)                \
  X(kStoreLoad)                \
  X(kLoadGlobalLocal)          \
  X(kLoadElemNC)               \
  X(kStoreElemNC)              \
  X(kLoadFieldNC)              \
  X(kStoreFieldNC)             \
  X(kDivNZ)                    \
  X(kModNZ)                    \
  X(kArrayLenNC)

namespace minnow {

enum class Op : std::uint8_t {
#define GRAFTLAB_MINNOW_ENUM_ENTRY(name) name,
  GRAFTLAB_MINNOW_OPS(GRAFTLAB_MINNOW_ENUM_ENTRY)
#undef GRAFTLAB_MINNOW_ENUM_ENTRY
};

inline constexpr std::size_t kNumOps = 0
#define GRAFTLAB_MINNOW_COUNT_ENTRY(name) +1
    GRAFTLAB_MINNOW_OPS(GRAFTLAB_MINNOW_COUNT_ENTRY)
#undef GRAFTLAB_MINNOW_COUNT_ENTRY
    ;

// True for opcodes only FuseSuperinstructions may emit.
inline constexpr bool IsSuperinstruction(Op op) {
  return op >= Op::kLoadAddI && op <= Op::kLoadGlobalLocal;
}

// True for the unchecked opcode variants only the check-elision pass
// (elide.h) may emit. The verifier rejects them unless the program's
// elision certificate is attached and its code hash matches.
inline constexpr bool IsUncheckedOp(Op op) {
  return op >= Op::kLoadElemNC;
}

// kConstStore packs a 32-bit constant and a local slot into one operand.
inline constexpr std::int64_t PackConstStore(std::int32_t value, std::uint32_t slot) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(static_cast<std::uint32_t>(value)) << 32 |
                                   slot);
}
inline constexpr std::int32_t ConstStoreValue(std::int64_t operand) {
  return static_cast<std::int32_t>(static_cast<std::uint64_t>(operand) >> 32);
}
inline constexpr std::uint32_t ConstStoreSlot(std::int64_t operand) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(operand));
}

// kBr*ImmI packs a 32-bit immediate and a branch target the same way.
inline constexpr std::int64_t PackImmBranch(std::int32_t imm, std::uint32_t target) {
  return PackConstStore(imm, target);
}
inline constexpr std::int32_t ImmBranchValue(std::int64_t operand) { return ConstStoreValue(operand); }
inline constexpr std::uint32_t ImmBranchTarget(std::int64_t operand) { return ConstStoreSlot(operand); }

// kLoadLocal2/kMoveLocal/kStoreLoad/kLoadGlobalLocal pack two u32 indices
// (slot/slot, src/dst, or global/slot) into one operand. kLoadConstI reuses
// the PackConstStore layout (const<<32 | slot).
inline constexpr std::int64_t PackSlotPair(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) << 32 | b);
}
inline constexpr std::uint32_t SlotPairA(std::int64_t operand) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(operand) >> 32);
}
inline constexpr std::uint32_t SlotPairB(std::int64_t operand) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(operand));
}

struct Insn {
  Op op = Op::kNop;
  std::int64_t operand = 0;
};

struct FunctionCode {
  std::string name;
  int num_params = 0;
  int num_locals = 0;  // including params
  bool returns_value = false;
  std::vector<Insn> code;
  int max_stack = 0;  // filled by the verifier
};

// A struct's runtime layout: slot count plus which slots hold references
// (the GC's field map).
struct StructLayout {
  std::string name;
  int num_fields = 0;
  std::vector<bool> field_is_ref;
};

// One imported host function.
struct HostImport {
  std::string name;
  int arity = 0;
  bool returns_value = false;
};

struct GlobalSlot {
  std::string name;
  bool is_ref = false;
};

// Proof-carrying stamp attached by the check-elision pass (elide.h). The
// pass only rewrites an access to its unchecked variant when its abstract
// interpreter has proven the elided check can never fire; the certificate
// binds that proof to the exact post-rewrite opcode stream via an FNV-1a
// hash, so the verifier and the regir translator can refuse unchecked
// opcodes that did not come out of the elision pass (or were edited after
// it ran).
struct ElisionCertificate {
  bool attached = false;
  std::uint64_t code_hash = 0;  // ElisionCodeHash over the rewritten program
  // Static rewrite counts, by category (each elided site is one opcode
  // replaced 1:1, so fuel and retired-instruction counts are unchanged).
  std::uint64_t checks_elided = 0;    // total sites rewritten
  std::uint64_t checks_retained = 0;  // candidate sites left checked
  std::uint64_t elem_loads_elided = 0;
  std::uint64_t elem_stores_elided = 0;
  std::uint64_t field_accesses_elided = 0;
  std::uint64_t divs_elided = 0;
  std::uint64_t array_lens_elided = 0;
};

// A compiled, shippable Minnow module.
struct Program {
  std::vector<StructLayout> structs;
  std::vector<GlobalSlot> globals;
  std::vector<FunctionCode> functions;
  std::vector<HostImport> host_imports;
  ElisionCertificate elision;

  // Index of a function by name, -1 if absent.
  int FindFunction(const std::string& name) const {
    for (std::size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

const char* OpName(Op op);

// Human-readable disassembly, for tests and debugging.
std::string Disassemble(const FunctionCode& fn);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_BYTECODE_H_
