// Minnow abstract syntax tree.
//
// Produced by the parser, annotated in place by the type checker (each
// expression's `type` field), consumed by the bytecode compiler.

#ifndef GRAFTLAB_SRC_MINNOW_AST_H_
#define GRAFTLAB_SRC_MINNOW_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/minnow/token.h"
#include "src/minnow/types.h"

namespace minnow {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// Source-level type spelling: a base name ("int", "u32", "bool", "byte", or
// a struct name), optionally suffixed with [] for an array. Resolved to a
// Type by the type checker.
struct TypeSpec {
  std::string base;
  bool is_array = false;
  int line = 0;
  int column = 0;
};


enum class ExprKind : std::uint8_t {
  kIntLit,
  kBoolLit,
  kNullLit,
  kVarRef,      // local, parameter, or global
  kBinary,
  kUnary,
  kCall,        // user function or host function
  kCast,        // int(x), u32(x), byte(x)
  kField,       // expr.field
  kIndex,       // expr[expr]
  kNewStruct,   // new Name()
  kNewArray,    // new int[expr] / new u32[n] / new byte[n]
  kArrayLen,    // expr.len
};

struct Expr {
  ExprKind kind;
  int line = 0;
  int column = 0;

  // Filled by the type checker.
  Type type;

  // kIntLit / kBoolLit
  std::uint64_t int_value = 0;
  bool bool_value = false;

  // kVarRef: name; resolution filled by sema.
  std::string name;
  enum class Binding : std::uint8_t { kUnresolved, kLocal, kGlobal } binding = Binding::kUnresolved;
  int slot = -1;  // local slot or global index

  // kBinary / kUnary: op is the source token.
  Tok op = Tok::kEof;
  ExprPtr lhs;
  ExprPtr rhs;  // also: kIndex index, kNewArray length

  // kCall: name + args; sema fills callee indices.
  std::vector<ExprPtr> args;
  int fn_index = -1;    // user function
  int host_index = -1;  // host function (exclusive with fn_index)

  // kCast: target type named by `name` ("int"/"u32"/"byte").

  // kField / kArrayLen: lhs is the object; field resolution by sema.
  int field_index = -1;

  // kNewStruct: name = struct name; kNewArray: name = element type name.
};

enum class StmtKind : std::uint8_t {
  kExpr,
  kVarDecl,   // var name: type = init;
  kAssign,    // target = value;  (target: VarRef, Field, or Index expr)
  kIf,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int column = 0;

  ExprPtr expr;    // kExpr value; kIf/kWhile/kFor condition; kReturn value
  ExprPtr target;  // kAssign destination
  ExprPtr value;   // kAssign source

  // kVarDecl
  std::string var_name;
  TypeSpec var_spec;
  Type declared_type;  // resolved
  int slot = -1;       // filled by sema

  // kIf
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  // kWhile / kFor / kBlock share `body`; kFor adds init/step.
  std::vector<StmtPtr> body;
  StmtPtr init;
  StmtPtr step;
};

struct Param {
  std::string name;
  TypeSpec spec;
  Type type;  // resolved
};

struct FnDecl {
  std::string name;
  std::vector<Param> params;
  TypeSpec return_spec;  // base empty = void
  Type return_type;      // resolved
  std::vector<StmtPtr> body;
  int line = 0;

  // Filled by sema.
  int num_locals = 0;  // params + locals
};

struct FieldDecl {
  std::string name;
  TypeSpec spec;
  Type type;  // resolved
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  int line = 0;
};

struct GlobalDecl {
  std::string name;
  TypeSpec spec;
  Type type;     // resolved
  ExprPtr init;  // may be null (zero/null-initialized)
  int line = 0;
};

struct Module {
  std::vector<StructDecl> structs;
  std::vector<GlobalDecl> globals;
  std::vector<FnDecl> functions;
};

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_AST_H_
