// Minnow recursive-descent parser: tokens to AST.

#ifndef GRAFTLAB_SRC_MINNOW_PARSER_H_
#define GRAFTLAB_SRC_MINNOW_PARSER_H_

#include <string_view>

#include "src/minnow/ast.h"

namespace minnow {

// Parses a whole module. Throws CompileError on syntax errors.
Module Parse(std::string_view source);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_PARSER_H_
