// Register-IR translation — Minnow's "runtime code generation" executor.
//
// The paper (§4.3) notes the flexible line between interpretation and
// load-time code generation, and its conclusion names "compiled Java" as a
// compelling future candidate. RegTranslator is that candidate built for
// Minnow: at load time each verified stack-bytecode function is rewritten
// into a register IR and executed by a much leaner dispatch loop.
//
// The translation exploits the verifier's guarantee that the operand-stack
// depth at every pc is fixed: stack slot d simply becomes virtual register
// num_locals + d, which turns push/pop traffic into register moves. Within a
// basic block the translator then runs copy- and constant-propagation so
// most moves disappear, folds constants into immediate-form instructions,
// and fuses compare+branch pairs into conditional-branch instructions. The
// result executes the same programs with roughly 2-5x fewer dispatches —
// partway from the interpreter toward compiled code, exactly the trajectory
// the paper predicted for Java. bench/ablate_minnow_exec measures the gap.
//
// Safety is unchanged: the IR performs the same null/bounds/div checks and
// burns the same fuel discipline (one unit per IR instruction).

#ifndef GRAFTLAB_SRC_MINNOW_REGIR_H_
#define GRAFTLAB_SRC_MINNOW_REGIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/minnow/vm.h"

namespace minnow {

enum class ROp : std::uint8_t {
  kMov,      // r[dst] = r[a]
  kMovImm,   // r[dst] = imm

  // Integer ALU: r[dst] = r[a] OP r[b]; *Imm forms use imm as the rhs.
  kAddI, kAddImmI, kSubI, kSubImmI, kMulI, kDivI, kModI,
  kAndI, kOrI, kXorI, kShlI, kShrI,
  kNegI, kNotI, kNotB,

  // u32 ALU (results truncated).
  kAddU, kAddImmU, kSubU, kMulU, kDivU, kModU, kShlU, kShlImmU, kShrU, kShrImmU, kNotU,
  kCastU32, kCastByte,

  // Compares into a register (unfused fallback).
  kCmpEqI, kCmpNeI, kCmpLtI, kCmpLeI, kCmpGtI, kCmpGeI,
  kCmpLtU, kCmpLeU, kCmpGtU, kCmpGeU, kCmpEqRef, kCmpNeRef,

  // Globals.
  kLoadGlobalR,   // r[dst] = globals[imm]
  kStoreGlobalR,  // globals[imm] = r[a]

  // Control flow. Every branch stores its target IR index in imm.
  kBr,          // goto imm
  kBrTrue,      // if r[a] goto imm
  kBrFalse,     // if !r[a] goto imm
  // Fused compare+branch: if (r[a] OP r[b]) goto imm. The *ImmI forms
  // compare r[a] against the 32-bit constant packed in the b field.
  kBrEqI, kBrNeI, kBrLtI, kBrLeI, kBrGtI, kBrGeI,
  kBrEqImmI, kBrNeImmI, kBrLtImmI, kBrLeImmI, kBrGtImmI, kBrGeImmI,
  kBrLtU, kBrLeU, kBrGtU, kBrGeU,
  kBrEqRef, kBrNeRef,

  kCall,      // imm = fn index; a = first arg register, b = argc; dst = result
  kCallHost,  // imm = host index; same convention
  kRet,       // return r[a]
  kRetVoid,

  // Heap.
  kNewStruct,   // r[dst] = new struct imm
  kNewArray,    // r[dst] = new array (elem kind imm) of length r[a]
  kLoadField,   // r[dst] = r[a].field[imm]
  kStoreField,  // r[a].field[imm] = r[b]
  kLoadElem,    // r[dst] = r[a][r[b]]   (elem kind in imm)
  kStoreElem,   // r[a][r[b]] = r[c]     (c packed in dst)
  kArrayLen,    // r[dst] = r[a].len

  kTrap,
};

struct RInsn {
  ROp op = ROp::kTrap;
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int64_t imm = 0;
};

struct RFunction {
  std::string name;
  int num_params = 0;
  int num_regs = 0;  // locals + max stack depth
  bool returns_value = false;
  std::vector<RInsn> code;
};

// Executes translated functions against a VM's heap/globals/hosts. The VM is
// used for its state; its bytecode interpreter is bypassed.
class RegExecutor {
 public:
  // Translates every function of vm.program() at construction.
  explicit RegExecutor(VM& vm);

  Value Call(const std::string& name, std::span<const Value> args);
  Value Call(const std::string& name, std::initializer_list<Value> args) {
    return Call(name, std::span<const Value>(args.begin(), args.size()));
  }
  Value CallIndex(int fn_index, std::span<const Value> args);

  const RFunction& function(int index) const {
    return functions_[static_cast<std::size_t>(index)];
  }
  std::uint64_t instructions_retired() const { return instructions_retired_; }

  // For tests: total IR instructions vs original bytecode instructions.
  double CompressionRatio() const;

 private:
  Value Execute(int fn_index, std::span<const Value> args, int depth);

  VM& vm_;
  std::vector<RFunction> functions_;
  std::uint64_t instructions_retired_ = 0;
};

// Translates one verified function (exposed for tests).
RFunction TranslateFunction(const Program& program, const FunctionCode& fn);

std::string DisassembleR(const RFunction& fn);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_REGIR_H_
