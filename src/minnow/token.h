// Minnow tokens.
//
// Minnow is GraftLab's downloadable extension language: a small, statically
// typed, C-flavoured language compiled to verified bytecode for an in-kernel
// VM — the role Java plays in the paper. The toolchain is deliberately
// complete (lexer -> parser -> type checker -> bytecode compiler -> load-time
// verifier -> interpreter / translated executor) because the paper's
// interpretation-cost numbers only mean something if the interpreter is real.

#ifndef GRAFTLAB_SRC_MINNOW_TOKEN_H_
#define GRAFTLAB_SRC_MINNOW_TOKEN_H_

#include <cstdint>
#include <string>

namespace minnow {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kIntLit,

  // keywords
  kFn,
  kVar,
  kStruct,
  kIf,
  kElse,
  kWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kTrue,
  kFalse,
  kNull,
  kNew,

  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kColon,
  kArrow,  // ->
  kDot,

  // operators
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kShl,
  kShr,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAndAnd,
  kOrOr,
  kBang,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // identifier spelling
  std::uint64_t int_value = 0;
  int line = 0;
  int column = 0;
};

const char* TokName(Tok kind);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_TOKEN_H_
