#include "src/minnow/jit.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <stdexcept>
#include <unordered_map>

#include "src/minnow/verifier.h"
#include "src/minnow/vm.h"

// The real backend needs x86-64 SysV, GNU-flavored toolchain bits, and mmap.
// Everything else builds this translation unit with Available() == false.
#if defined(GRAFTLAB_JIT) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__)) && defined(__linux__)
#define GRAFTLAB_JIT_X64 1
#else
#define GRAFTLAB_JIT_X64 0
#endif

#if GRAFTLAB_JIT_X64
#include <sys/mman.h>
#endif

namespace minnow {

#if GRAFTLAB_JIT_X64

namespace {

// ---------------------------------------------------------------------------
// Register file and instruction encoder. Just enough of x86-64 for the
// templates below — every emitter is a thin REX/ModRM/SIB wrapper, verified
// against the SDM encodings noted alongside.
// ---------------------------------------------------------------------------

enum Reg : std::uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition codes (the low nibble of 0F 8x / 0F 9x).
enum Cc : std::uint8_t {
  CC_O = 0x0, CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6,
  CC_A = 0x7, CC_S = 0x8, CC_NS = 0x9, CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE,
  CC_G = 0xF,
};

// /digit values for the 0x81 and 0xF7 / 0xD3 groups.
enum AluDigit : std::uint8_t {
  ALU_ADD = 0, ALU_OR = 1, ALU_AND = 4, ALU_SUB = 5, ALU_XOR = 6, ALU_CMP = 7,
};
enum GrpDigit : std::uint8_t {
  GRP_NOT = 2, GRP_NEG = 3, GRP_DIV = 6, GRP_IDIV = 7,
  SH_SHL = 4, SH_SHR = 5, SH_SAR = 7,
};

class Asm {
 public:
  std::vector<std::uint8_t> code;

  std::size_t pos() const { return code.size(); }
  void U8(std::uint8_t b) { code.push_back(b); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void PatchU32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) code[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  // Patches a rel32 at `at` to land on `target` (offsets within this buffer).
  void PatchRel32(std::size_t at, std::size_t target) {
    PatchU32(at, static_cast<std::uint32_t>(static_cast<std::int64_t>(target) -
                                            (static_cast<std::int64_t>(at) + 4)));
  }
  void PatchRel8(std::size_t at, std::size_t target) {
    code[at] = static_cast<std::uint8_t>(static_cast<std::int64_t>(target) -
                                         (static_cast<std::int64_t>(at) + 1));
  }

  void Rex(bool w, std::uint8_t reg, std::uint8_t index, std::uint8_t base) {
    const std::uint8_t rex = 0x40 | (w ? 8 : 0) | (((reg >> 3) & 1) << 2) |
                             (((index >> 3) & 1) << 1) | ((base >> 3) & 1);
    if (rex != 0x40) U8(rex);
  }

  // ModRM (+SIB) for [base + disp]. base==rsp/r12 forces a SIB byte;
  // base==rbp/r13 forces an explicit displacement even when zero.
  void Mem(std::uint8_t reg, std::uint8_t base, std::int32_t disp) {
    std::uint8_t mod;
    if (disp == 0 && (base & 7) != 5) {
      mod = 0;
    } else if (disp >= -128 && disp <= 127) {
      mod = 1;
    } else {
      mod = 2;
    }
    U8(static_cast<std::uint8_t>(mod << 6 | (reg & 7) << 3 | ((base & 7) == 4 ? 4 : (base & 7))));
    if ((base & 7) == 4) U8(0x24);  // SIB: no index, base in low bits
    if (mod == 1) U8(static_cast<std::uint8_t>(disp));
    if (mod == 2) U32(static_cast<std::uint32_t>(disp));
  }

  // ModRM+SIB for [base + index*2^scale + disp]. index must not be RSP.
  void MemSib(std::uint8_t reg, std::uint8_t base, std::uint8_t index, int scale,
              std::int32_t disp) {
    std::uint8_t mod;
    if (disp == 0 && (base & 7) != 5) {
      mod = 0;
    } else if (disp >= -128 && disp <= 127) {
      mod = 1;
    } else {
      mod = 2;
    }
    U8(static_cast<std::uint8_t>(mod << 6 | (reg & 7) << 3 | 4));
    U8(static_cast<std::uint8_t>(scale << 6 | (index & 7) << 3 | (base & 7)));
    if (mod == 1) U8(static_cast<std::uint8_t>(disp));
    if (mod == 2) U32(static_cast<std::uint32_t>(disp));
  }

  void ModReg(std::uint8_t reg, std::uint8_t rm) {
    U8(static_cast<std::uint8_t>(0xC0 | (reg & 7) << 3 | (rm & 7)));
  }

  // --- moves ---
  void MovRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x89); ModReg(src, dst); }
  void MovRR32(Reg dst, Reg src) { Rex(false, src, 0, dst); U8(0x89); ModReg(src, dst); }
  void Load64(Reg dst, Reg base, std::int32_t disp) {
    Rex(true, dst, 0, base); U8(0x8B); Mem(dst, base, disp);
  }
  void Store64(Reg base, std::int32_t disp, Reg src) {
    Rex(true, src, 0, base); U8(0x89); Mem(src, base, disp);
  }
  void Load32(Reg dst, Reg base, std::int32_t disp) {  // zero-extends
    Rex(false, dst, 0, base); U8(0x8B); Mem(dst, base, disp);
  }
  void Store32(Reg base, std::int32_t disp, Reg src) {
    Rex(false, src, 0, base); U8(0x89); Mem(src, base, disp);
  }
  void Load8Zx(Reg dst, Reg base, std::int32_t disp) {  // movzx r32, byte [..]
    Rex(false, dst, 0, base); U8(0x0F); U8(0xB6); Mem(dst, base, disp);
  }
  void Store8(Reg base, std::int32_t disp, Reg src) {  // src must encode sans REX: al/cl/dl/bl
    Rex(false, src, 0, base); U8(0x88); Mem(src, base, disp);
  }
  void Load64Sib(Reg dst, Reg base, Reg index, int scale, std::int32_t disp) {
    Rex(true, dst, index, base); U8(0x8B); MemSib(dst, base, index, scale, disp);
  }
  void Store64Sib(Reg base, Reg index, int scale, std::int32_t disp, Reg src) {
    Rex(true, src, index, base); U8(0x89); MemSib(src, base, index, scale, disp);
  }
  void Load32Sib(Reg dst, Reg base, Reg index, int scale, std::int32_t disp) {
    Rex(false, dst, index, base); U8(0x8B); MemSib(dst, base, index, scale, disp);
  }
  void Store32Sib(Reg base, Reg index, int scale, std::int32_t disp, Reg src) {
    Rex(false, src, index, base); U8(0x89); MemSib(src, base, index, scale, disp);
  }
  void Load8ZxSib(Reg dst, Reg base, Reg index, int scale, std::int32_t disp) {
    Rex(false, dst, index, base); U8(0x0F); U8(0xB6); MemSib(dst, base, index, scale, disp);
  }
  void Store8Sib(Reg base, Reg index, int scale, std::int32_t disp, Reg src) {
    Rex(false, src, index, base); U8(0x88); MemSib(src, base, index, scale, disp);
  }
  void MovImm64(Reg dst, std::uint64_t imm) {
    Rex(true, 0, 0, dst); U8(static_cast<std::uint8_t>(0xB8 | (dst & 7))); U64(imm);
  }
  void MovImm32Sx(Reg dst, std::int32_t imm) {  // mov r64, imm32 (sign-extends)
    Rex(true, 0, 0, dst); U8(0xC7); ModReg(0, dst); U32(static_cast<std::uint32_t>(imm));
  }
  void MovImm32(Reg dst, std::uint32_t imm) {  // mov r32, imm32 (zero-extends)
    Rex(false, 0, 0, dst); U8(static_cast<std::uint8_t>(0xB8 | (dst & 7))); U32(imm);
  }
  void StoreImm32Sx(Reg base, std::int32_t disp, std::int32_t imm) {  // mov qword [..], imm32
    Rex(true, 0, 0, base); U8(0xC7); Mem(0, base, disp); U32(static_cast<std::uint32_t>(imm));
  }
  // Loads an int64 with the shortest usable encoding.
  void MovImmAuto(Reg dst, std::int64_t imm) {
    if (imm >= INT32_MIN && imm <= INT32_MAX) {
      MovImm32Sx(dst, static_cast<std::int32_t>(imm));
    } else {
      MovImm64(dst, static_cast<std::uint64_t>(imm));
    }
  }

  // --- ALU, reg ← reg/mem forms (opcode 0x03-style: reg, r/m) ---
  void AddRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x03); Mem(dst, base, disp); }
  void SubRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x2B); Mem(dst, base, disp); }
  void AndRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x23); Mem(dst, base, disp); }
  void OrRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x0B); Mem(dst, base, disp); }
  void XorRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x33); Mem(dst, base, disp); }
  void ImulRM(Reg dst, Reg base, std::int32_t disp) { Rex(true, dst, 0, base); U8(0x0F); U8(0xAF); Mem(dst, base, disp); }
  void AddMR(Reg base, std::int32_t disp, Reg src) { Rex(true, src, 0, base); U8(0x01); Mem(src, base, disp); }
  void AddRM32(Reg dst, Reg base, std::int32_t disp) { Rex(false, dst, 0, base); U8(0x03); Mem(dst, base, disp); }
  void SubRM32(Reg dst, Reg base, std::int32_t disp) { Rex(false, dst, 0, base); U8(0x2B); Mem(dst, base, disp); }
  void ImulRM32(Reg dst, Reg base, std::int32_t disp) { Rex(false, dst, 0, base); U8(0x0F); U8(0xAF); Mem(dst, base, disp); }
  void ImulImm(Reg dst, Reg src, std::int32_t imm) {  // imul r64, r/m64, imm32
    Rex(true, dst, 0, src); U8(0x69); ModReg(dst, src); U32(static_cast<std::uint32_t>(imm));
  }
  void AddRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x01); ModReg(src, dst); }
  void SubRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x29); ModReg(src, dst); }
  void AndRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x21); ModReg(src, dst); }
  void OrRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x09); ModReg(src, dst); }
  void XorRR(Reg dst, Reg src) { Rex(true, src, 0, dst); U8(0x31); ModReg(src, dst); }
  void XorRR32(Reg dst, Reg src) { Rex(false, src, 0, dst); U8(0x31); ModReg(src, dst); }
  void ImulRR(Reg dst, Reg src) { Rex(true, dst, 0, src); U8(0x0F); U8(0xAF); ModReg(dst, src); }
  void CmpRR(Reg a, Reg b) { Rex(true, b, 0, a); U8(0x39); ModReg(b, a); }  // cmp a, b
  void CmpRM(Reg a, Reg base, std::int32_t disp) { Rex(true, a, 0, base); U8(0x3B); Mem(a, base, disp); }
  void TestRR(Reg a, Reg b) { Rex(true, b, 0, a); U8(0x85); ModReg(b, a); }
  void TestRR32(Reg a, Reg b) { Rex(false, b, 0, a); U8(0x85); ModReg(b, a); }

  // --- ALU with immediate (0x83 imm8 short form when it fits, else 0x81) ---
  static bool ImmFits8(std::int32_t imm) { return imm >= -128 && imm <= 127; }
  void AluImm(AluDigit digit, Reg rm, std::int32_t imm) {
    Rex(true, 0, 0, rm);
    if (ImmFits8(imm)) { U8(0x83); ModReg(digit, rm); U8(static_cast<std::uint8_t>(imm)); }
    else { U8(0x81); ModReg(digit, rm); U32(static_cast<std::uint32_t>(imm)); }
  }
  void AluMemImm(AluDigit digit, Reg base, std::int32_t disp, std::int32_t imm) {
    Rex(true, 0, 0, base);
    if (ImmFits8(imm)) { U8(0x83); Mem(digit, base, disp); U8(static_cast<std::uint8_t>(imm)); }
    else { U8(0x81); Mem(digit, base, disp); U32(static_cast<std::uint32_t>(imm)); }
  }
  void AluImm32(AluDigit digit, Reg rm, std::int32_t imm) {  // 32-bit form
    Rex(false, 0, 0, rm);
    if (ImmFits8(imm)) { U8(0x83); ModReg(digit, rm); U8(static_cast<std::uint8_t>(imm)); }
    else { U8(0x81); ModReg(digit, rm); U32(static_cast<std::uint32_t>(imm)); }
  }
  void CmpMemImm(Reg base, std::int32_t disp, std::int32_t imm) {  // cmp qword [..], imm32
    AluMemImm(ALU_CMP, base, disp, imm);
  }
  void CmpMemImm8u(Reg base, std::int32_t disp, std::uint8_t imm) {  // cmp byte [..], imm8
    Rex(false, 0, 0, base); U8(0x80); Mem(7, base, disp); U8(imm);
  }
  void Cmp32MemImm(Reg base, std::int32_t disp, std::int32_t imm) {  // cmp dword [..], imm32
    Rex(false, 0, 0, base); U8(0x81); Mem(7, base, disp); U32(static_cast<std::uint32_t>(imm));
  }

  // --- unary groups ---
  void Grp(GrpDigit digit, Reg rm, bool w = true) {  // F7 group: not/neg/div/idiv
    Rex(w, 0, 0, rm); U8(0xF7); ModReg(digit, rm);
  }
  void ShiftCl(GrpDigit digit, Reg rm, bool w = true) {  // D3 group by cl
    Rex(w, 0, 0, rm); U8(0xD3); ModReg(digit, rm);
  }
  void ShiftImm(GrpDigit digit, Reg rm, std::uint8_t count, bool w = true) {  // C1 group
    Rex(w, 0, 0, rm); U8(0xC1); ModReg(digit, rm); U8(count);
  }
  void NotR32(Reg rm) { Rex(false, 0, 0, rm); U8(0xF7); ModReg(GRP_NOT, rm); }
  void DecR(Reg rm) { Rex(true, 0, 0, rm); U8(0xFF); ModReg(1, rm); }
  void Cqo() { U8(0x48); U8(0x99); }
  void Cdq() { U8(0x99); }

  void Setcc(Cc cc, Reg rm8) {  // rm8 must be al/cl/dl/bl
    U8(0x0F); U8(static_cast<std::uint8_t>(0x90 | cc)); ModReg(0, rm8);
  }
  void MovzxR32R8(Reg dst, Reg src8) {
    Rex(false, dst, 0, src8); U8(0x0F); U8(0xB6); ModReg(dst, src8);
  }

  void Lea(Reg dst, Reg base, std::int32_t disp) {
    Rex(true, dst, 0, base); U8(0x8D); Mem(dst, base, disp);
  }
  void LeaSib(Reg dst, Reg base, Reg index, int scale, std::int32_t disp) {
    Rex(true, dst, index, base); U8(0x8D); MemSib(dst, base, index, scale, disp);
  }

  // --- control flow ---
  // Emits jcc rel32 and returns the patch position of the rel32.
  std::size_t Jcc(Cc cc) {
    U8(0x0F); U8(static_cast<std::uint8_t>(0x80 | cc)); const std::size_t at = pos(); U32(0);
    return at;
  }
  std::size_t Jmp() { U8(0xE9); const std::size_t at = pos(); U32(0); return at; }
  // Short forward jumps for intra-template skips; patch with PatchRel8.
  std::size_t Jcc8(Cc cc) { U8(static_cast<std::uint8_t>(0x70 | cc)); const std::size_t at = pos(); U8(0); return at; }
  std::size_t Jmp8() { U8(0xEB); const std::size_t at = pos(); U8(0); return at; }

  void CallR(Reg r) { Rex(false, 0, 0, r); U8(0xFF); ModReg(2, r); }
  void CallMem(Reg base, std::int32_t disp) { Rex(false, 0, 0, base); U8(0xFF); Mem(2, base, disp); }
  void Push(Reg r) { Rex(false, 0, 0, r); U8(static_cast<std::uint8_t>(0x50 | (r & 7))); }
  void Pop(Reg r) { Rex(false, 0, 0, r); U8(static_cast<std::uint8_t>(0x58 | (r & 7))); }
  void Ret() { U8(0xC3); }
};

// ---------------------------------------------------------------------------
// Runtime layout probes. Object and VM::Frame offsets are discovered from
// live instances instead of offsetof — Object holds std::vector members, so
// offsetof would be conditionally-supported and -Winvalid-offsetof trips
// -Werror builds. JitCtx is standard-layout, probed the same way for
// uniformity.
// ---------------------------------------------------------------------------

struct Layout {
  std::int32_t obj_kind, obj_jit_data, obj_jit_len, obj_jit_elem;
  std::int32_t ctx_stack, ctx_globals, ctx_frames, ctx_nframes, ctx_sp, ctx_fuel,
      ctx_retired, ctx_entry_frames, ctx_ret_bits;
};

template <typename T, typename M>
std::int32_t OffsetIn(const T& object, const M& member) {
  return static_cast<std::int32_t>(reinterpret_cast<const char*>(&member) -
                                   reinterpret_cast<const char*>(&object));
}

const Layout& ProbeLayout() {
  static const Layout layout = [] {
    Layout l{};
    static const Object obj{};
    l.obj_kind = OffsetIn(obj, obj.kind);
    l.obj_jit_data = OffsetIn(obj, obj.jit_data);
    l.obj_jit_len = OffsetIn(obj, obj.jit_len);
    l.obj_jit_elem = OffsetIn(obj, obj.jit_elem);
    static const JitCtx ctx{};
    l.ctx_stack = OffsetIn(ctx, ctx.stack);
    l.ctx_globals = OffsetIn(ctx, ctx.globals);
    l.ctx_frames = OffsetIn(ctx, ctx.frames);
    l.ctx_nframes = OffsetIn(ctx, ctx.nframes);
    l.ctx_sp = OffsetIn(ctx, ctx.sp);
    l.ctx_fuel = OffsetIn(ctx, ctx.fuel);
    l.ctx_retired = OffsetIn(ctx, ctx.retired);
    l.ctx_entry_frames = OffsetIn(ctx, ctx.entry_frames);
    l.ctx_ret_bits = OffsetIn(ctx, ctx.ret_bits);
    return l;
  }();
  return layout;
}

// VM::Frame is private; Jit (a friend) probes its layout and hands the plain
// offsets to the compiler below.
struct FrameOffsets {
  std::int32_t fn, pc, base, size;
};

namespace {

// ---------------------------------------------------------------------------
// Per-function compiler. Register roles (all callee-saved, so helper calls
// need no spills):
//   r14 = JitCtx*
//   r13 = locals base  (stack + 8*frame->base; operand slot i lives at
//                       [r13 + 8*(num_locals + i)])
//   r12 = stack base
//   rbx = globals base
//   rbp = current Frame*
// rax/rcx/rdx/rsi are template-local scratch. There is no stack-pointer
// register: the verifier proves one operand depth per pc, so every operand
// address is static and sp_ is materialized only at side exits and helper
// calls (sp = frame->base + num_locals + depth).
// ---------------------------------------------------------------------------

constexpr Reg CTX = R14;
constexpr Reg LOCALS = R13;
constexpr Reg STK = R12;
constexpr Reg GLB = RBX;
constexpr Reg FRM = RBP;
// The live fuel counter. ctx->fuel is authoritative only at sync points
// (prologue/epilogue, call boundaries); in between, block accounting runs
// against the register so the common path is one sub and one taken-never
// branch. Unlimited runs (negative ctx->fuel) bias r15 to INT64_MAX — the
// subtracts still happen but can never exhaust, and every sync skips the
// store so the sentinel survives.
constexpr Reg FUEL = R15;
constexpr std::uint64_t kFuelUnlimitedBias = 0x7fffffffffffffffull;

struct Eff {
  int pops = 0;
  int pushes = 0;
  bool branch = false;
  bool terminal = false;
  std::size_t target = 0;
};

// Stack effect + control shape per opcode — mirrors verifier.cc's table (the
// verifier already accepted this code; disagreement here means bail out).
bool EffectOf(const Program& program, const Insn& insn, Eff& e) {
  switch (insn.op) {
    case Op::kNop:
    case Op::kConstStore:
    case Op::kMoveLocal:
      break;
    case Op::kConstInt:
    case Op::kConstNull:
    case Op::kLoadLocal:
    case Op::kLoadGlobal:
    case Op::kNewStruct:
      e.pushes = 1;
      break;
    case Op::kStoreLocal:
    case Op::kStoreGlobal:
    case Op::kPop:
      e.pops = 1;
      break;
    case Op::kDup:
      e.pops = 1;
      e.pushes = 2;
      break;
    case Op::kNegI:
    case Op::kNotI:
    case Op::kNotU:
    case Op::kNotB:
    case Op::kCastU32:
    case Op::kCastByte:
    case Op::kArrayLen:
    case Op::kArrayLenNC:
    case Op::kNewArray:
    case Op::kLoadField:
    case Op::kLoadFieldNC:
    case Op::kLoadAddI:
    case Op::kAddConstI:
    case Op::kStoreLoad:
      e.pops = 1;
      e.pushes = 1;
      break;
    case Op::kAddI:
    case Op::kSubI:
    case Op::kMulI:
    case Op::kDivI:
    case Op::kModI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kShlI:
    case Op::kShrI:
    case Op::kAddU:
    case Op::kSubU:
    case Op::kMulU:
    case Op::kDivU:
    case Op::kModU:
    case Op::kShlU:
    case Op::kShrU:
    case Op::kEqI:
    case Op::kNeI:
    case Op::kLtI:
    case Op::kLeI:
    case Op::kGtI:
    case Op::kGeI:
    case Op::kLtU:
    case Op::kLeU:
    case Op::kGtU:
    case Op::kGeU:
    case Op::kEqRef:
    case Op::kNeRef:
    case Op::kLoadElem:
    case Op::kLoadElemNC:
    case Op::kDivNZ:
    case Op::kModNZ:
      e.pops = 2;
      e.pushes = 1;
      break;
    case Op::kStoreField:
    case Op::kStoreFieldNC:
      e.pops = 2;
      break;
    case Op::kStoreElem:
    case Op::kStoreElemNC:
      e.pops = 3;
      break;
    case Op::kJmp:
      e.branch = true;
      e.terminal = true;
      e.target = static_cast<std::size_t>(insn.operand);
      break;
    case Op::kJmpIfFalse:
    case Op::kJmpIfTrue:
      e.pops = 1;
      e.branch = true;
      e.target = static_cast<std::size_t>(insn.operand);
      break;
    case Op::kBrEqI:
    case Op::kBrNeI:
    case Op::kBrLtI:
    case Op::kBrLeI:
    case Op::kBrGtI:
    case Op::kBrGeI:
    case Op::kBrEqRef:
    case Op::kBrNeRef:
      e.pops = 2;
      e.branch = true;
      e.target = static_cast<std::size_t>(insn.operand);
      break;
    case Op::kBrEqImmI:
    case Op::kBrNeImmI:
    case Op::kBrLtImmI:
    case Op::kBrLeImmI:
    case Op::kBrGtImmI:
    case Op::kBrGeImmI:
      e.pops = 1;
      e.branch = true;
      e.target = static_cast<std::size_t>(ImmBranchTarget(insn.operand));
      break;
    case Op::kCall: {
      if (insn.operand < 0 ||
          static_cast<std::size_t>(insn.operand) >= program.functions.size()) {
        return false;
      }
      const auto& callee = program.functions[static_cast<std::size_t>(insn.operand)];
      e.pops = callee.num_params;
      e.pushes = callee.returns_value ? 1 : 0;
      break;
    }
    case Op::kCallHost: {
      if (insn.operand < 0 ||
          static_cast<std::size_t>(insn.operand) >= program.host_imports.size()) {
        return false;
      }
      const auto& host = program.host_imports[static_cast<std::size_t>(insn.operand)];
      e.pops = host.arity;
      e.pushes = host.returns_value ? 1 : 0;
      break;
    }
    case Op::kRet:
      e.pops = 1;
      e.terminal = true;
      break;
    case Op::kRetVoid:
    case Op::kTrap:
      e.terminal = true;
      break;
    case Op::kLoadLocal2:
    case Op::kLoadConstI:
    case Op::kLoadGlobalLocal:
      e.pushes = 2;
      break;
    default:
      return false;
  }
  return true;
}

bool IsBlockEnder(const Eff& e, Op op) {
  return e.branch || e.terminal || op == Op::kCall || op == Op::kCallHost;
}

struct Compiler {
  const Program& program;
  const FunctionCode& fn;
  const VmOptions& opts;
  const Layout& L;
  const FrameOffsets& F;
  const void** entry_table;  // &entries_[0]; kCall sites load through it
  // Out-of-line helper entry points (private Jit members, so Impl passes
  // their addresses in rather than the compiler naming them).
  const void* help_push_frame;
  const void* help_call_host;
  const void* help_new_struct;
  const void* help_new_array;
  // VM-lifetime capacities (fixed at construction, arena-backed, never
  // resized) — lets kCall inline PushFrame with immediate-folded checks.
  std::size_t frame_capacity;
  std::size_t stack_slots;

  Asm a{};
  std::vector<int> depth{};        // per pc; -1 = unreachable
  std::vector<char> leader{};
  std::vector<int> blk_leader{};   // pc -> its block's leader pc
  std::vector<int> blk_len{};      // leader pc -> instruction count
  std::vector<std::int64_t> pc_off{};  // pc -> native offset (-1 = not emitted)

  struct Fix {
    std::size_t at;
    std::size_t pc;
  };
  std::vector<Fix> fixes{};  // rel32 patches to bytecode-pc labels

  struct Exit {
    std::size_t at;      // rel32 patch position jumping to this stub
    std::uint32_t pc;    // faulting bytecode pc (reexec only)
    int depth;           // operand depth at the site (reexec sp commit)
    std::int64_t give;   // retired give-back (block overcharge)
    bool reexec;         // true: kDeopt + frame rebuild; false: exception passthrough
    std::int64_t fuel_give;  // fuel register give-back (differs at fuel exits)
    // Exits raised inside a spliced (inlined) callee: the stub materializes
    // the frame the hot path skipped, so pc/depth above are callee-relative
    // and the interpreter resumes inside the callee as if kCall had pushed.
    const FunctionCode* inl_callee = nullptr;
    std::int32_t inl_kk = 0;       // callee base - caller base, in slots
    std::int32_t inl_ret_pc = 0;   // caller pc after the kCall
  };
  std::vector<Exit> exits{};
  std::vector<std::size_t> epi_fixes{};  // rel32 patches to the epilogue
  std::size_t epilogue_off = 0;

  // --- slot addressing -----------------------------------------------------
  //
  // rax doubles as a one-entry value cache: `rax_slot_` names the operand
  // depth (`rax_local_` the local slot, `rax_global_` the global slot) whose
  // full 64-bit value rax is known to hold. Stack code is chains — one instruction's result is the
  // next one's left operand — so the cache turns the store+reload at every
  // link into a store alone, breaking the store-to-load forwarding chain
  // that would otherwise pace every template. The discipline: loads into
  // rax establish a claim, StoreSlot(., RAX) re-establishes one (so a raw
  // rax clobber followed by that store is self-correcting — the store
  // writes the clobbered value), memory writes that bypass StoreSlot kill
  // the matching claim, and templates that clobber rax without a closing
  // StoreSlot(., RAX) call KillRax() themselves. Block leaders always start
  // cold: control may arrive from any predecessor.
  int rax_slot_ = -1;
  std::int64_t rax_local_ = -1;
  std::int64_t rax_global_ = -1;
  void KillRax() {
    rax_slot_ = -1;
    rax_local_ = -1;
    rax_global_ = -1;
  }
  void KillSlot(int d) {
    if (rax_slot_ == d) rax_slot_ = -1;
  }
  void KillLocal(std::int64_t s) {
    if (inl_local_base_ >= 0) {
      KillSlot(inl_local_base_ + static_cast<int>(s));
      return;
    }
    if (rax_local_ == s) rax_local_ = -1;
  }
  void KillGlobal(std::int64_t g) {
    if (rax_global_ == g) rax_global_ = -1;
  }

  // --- leaf inlining (kCall) -----------------------------------------------
  //
  // A short leaf callee is spliced into the caller: its locals and operand
  // stack land exactly where its frame would have lived (local i -> caller
  // operand slot inl_local_base_ + i, operand j -> slot inl_op_bias_ + j),
  // so the templates — and the rax cache's claim space — work unchanged in
  // caller coordinates. The interpreter-identical depth, capacity, and
  // stack-overflow checks run first, but no frame is written on the hot
  // path: an exit raised inside the spliced region jumps to a stub that
  // materializes the callee frame (and the caller's resume pc) before
  // deopting, so the interpreter picks up at the exact callee instruction
  // with the state a real call would have produced.
  const FunctionCode* inl_fn_ = nullptr;  // non-null while splicing a callee
  std::vector<int> inl_depth_{};          // callee operand depth per pc
  std::vector<char> inl_leader_{};
  std::vector<int> inl_blk_leader_{};
  std::vector<int> inl_blk_len_{};
  std::vector<std::int64_t> inl_off_{};   // callee pc -> native offset
  std::vector<Fix> inl_fixes_{};          // intra-splice branches; target == n means "after the splice"
  int inl_local_base_ = -1;
  int inl_op_bias_ = 0;
  std::int32_t inl_kk_ = 0;
  std::int32_t inl_ret_pc_ = 0;
  static constexpr std::size_t kInlineMaxInsns = 48;

  // Ops the splicer accepts: templates that touch only locals, globals, and
  // the operand stack, plus intra-function control flow and kRet/kRetVoid.
  // Exit-raising ops (division) are fine — their stubs materialize the
  // frame. Helper calls (allocation, calls, hosts) and object accesses stay
  // out.
  static bool InlinableOp(Op op) {
    switch (op) {
      case Op::kNop: case Op::kPop: case Op::kConstInt: case Op::kConstNull:
      case Op::kLoadLocal: case Op::kStoreLocal: case Op::kLoadGlobal:
      case Op::kStoreGlobal: case Op::kDup:
      case Op::kAddI: case Op::kSubI: case Op::kMulI: case Op::kAndI:
      case Op::kOrI: case Op::kXorI: case Op::kShlI: case Op::kShrI:
      case Op::kNegI: case Op::kNotI:
      case Op::kDivI: case Op::kModI: case Op::kDivNZ: case Op::kModNZ:
      case Op::kAddU: case Op::kSubU: case Op::kMulU: case Op::kShlU:
      case Op::kShrU: case Op::kNotU: case Op::kNotB:
      case Op::kDivU: case Op::kModU:
      case Op::kCastU32: case Op::kCastByte:
      case Op::kEqI: case Op::kNeI: case Op::kLtI: case Op::kLeI:
      case Op::kGtI: case Op::kGeI: case Op::kLtU: case Op::kLeU:
      case Op::kGtU: case Op::kGeU: case Op::kEqRef: case Op::kNeRef:
      case Op::kJmp: case Op::kJmpIfFalse: case Op::kJmpIfTrue:
      case Op::kBrEqI: case Op::kBrNeI: case Op::kBrLtI: case Op::kBrLeI:
      case Op::kBrGtI: case Op::kBrGeI: case Op::kBrEqRef: case Op::kBrNeRef:
      case Op::kBrEqImmI: case Op::kBrNeImmI: case Op::kBrLtImmI:
      case Op::kBrLeImmI: case Op::kBrGtImmI: case Op::kBrGeImmI:
      case Op::kRet: case Op::kRetVoid:
      case Op::kLoadAddI: case Op::kAddConstI: case Op::kConstStore:
      case Op::kLoadLocal2: case Op::kLoadConstI: case Op::kMoveLocal:
      case Op::kStoreLoad: case Op::kLoadGlobalLocal:
        return true;
      default:
        return false;
    }
  }

  // True when `callee` is a splice candidate: short, every reachable insn
  // whitelisted (and not denied by the fuzzer's compile filter — those must
  // keep their forced-deopt seam), terminals only kRet/kRetVoid. Fills the
  // same depth/leader/block maps Analyze builds for the caller.
  bool PlanInline(const FunctionCode& callee, std::vector<int>& dep,
                  std::vector<char>& lead, std::vector<int>& bleader,
                  std::vector<int>& blen) {
    const std::size_t n = callee.code.size();
    if (n == 0 || n > kInlineMaxInsns) return false;
    dep.assign(n, -1);
    std::vector<std::size_t> work;
    dep[0] = 0;
    work.push_back(0);
    while (!work.empty()) {
      const std::size_t pc = work.back();
      work.pop_back();
      const Insn& ci = callee.code[pc];
      if (!InlinableOp(ci.op)) return false;
      if (opts.jit_compile_filter && !opts.jit_compile_filter(ci.op)) return false;
      Eff e;
      if (!EffectOf(program, ci, e)) return false;
      if (e.terminal && !e.branch && ci.op != Op::kRet && ci.op != Op::kRetVoid)
        return false;
      const int d = dep[pc];
      if (d < e.pops) return false;
      const int d2 = d - e.pops + e.pushes;
      if (d2 > callee.max_stack || d2 > kMaxStack) return false;
      const auto propagate = [&](std::size_t q, int dq) {
        if (q >= n) return false;
        if (dep[q] == -1) {
          dep[q] = dq;
          work.push_back(q);
          return true;
        }
        return dep[q] == dq;
      };
      if (e.branch && !propagate(e.target, d - e.pops)) return false;
      if (!e.terminal && !propagate(pc + 1, d2)) return false;
    }
    lead.assign(n, 0);
    lead[0] = 1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (dep[pc] < 0) continue;
      Eff e;
      EffectOf(program, callee.code[pc], e);
      if (IsBlockEnder(e, callee.code[pc].op) && pc + 1 < n) lead[pc + 1] = 1;
      if (e.branch) lead[e.target] = 1;
    }
    bleader.assign(n, -1);
    blen.assign(n, 0);
    int lp = -1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (dep[pc] < 0) {
        lp = -1;
        continue;
      }
      if (lead[pc]) lp = static_cast<int>(pc);
      if (lp < 0) return false;
      bleader[pc] = lp;
      blen[lp] = static_cast<int>(pc) - lp + 1;
      Eff e;
      EffectOf(program, callee.code[pc], e);
      if (IsBlockEnder(e, callee.code[pc].op)) lp = -1;
    }
    return true;
  }

  std::int32_t SlotDisp(int d) const { return 8 * (fn.num_locals + d); }
  void LoadSlot(Reg r, int d) {
    if (r == RAX) {
      if (rax_slot_ == d) return;
      a.Load64(RAX, LOCALS, SlotDisp(d));
      rax_slot_ = d;
      rax_local_ = -1;
      rax_global_ = -1;
      return;
    }
    if (rax_slot_ == d) {
      a.MovRR(r, RAX);  // cached: reg-reg beats a load-port round trip
      return;
    }
    a.Load64(r, LOCALS, SlotDisp(d));
  }
  // 32-bit consult: reuse rax when it caches the slot (32-bit ops read only
  // eax, so the upper bits are irrelevant), else load the low word. A 32-bit
  // load establishes no claim — the slot's upper bits may differ from rax's
  // zero extension.
  void LoadSlot32(int d) {
    if (rax_slot_ == d) return;
    a.Load32(RAX, LOCALS, SlotDisp(d));
    KillRax();
  }
  void StoreSlot(int d, Reg r) {
    a.Store64(LOCALS, SlotDisp(d), r);
    if (r == RAX) {
      // Re-establish only the slot claim: this is the self-correcting close
      // for templates that clobbered rax, so older claims may be stale.
      rax_slot_ = d;
      rax_local_ = -1;
      rax_global_ = -1;
    } else {
      KillSlot(d);
    }
  }
  void LoadLocalSlot(Reg r, std::int64_t s) {
    if (inl_local_base_ >= 0) {  // spliced callee: locals are caller slots
      LoadSlot(r, inl_local_base_ + static_cast<int>(s));
      return;
    }
    if (r == RAX) {
      if (rax_local_ == s) return;
      a.Load64(RAX, LOCALS, static_cast<std::int32_t>(8 * s));
      rax_local_ = s;
      rax_slot_ = -1;
      rax_global_ = -1;
      return;
    }
    if (rax_local_ == s) {
      a.MovRR(r, RAX);
      return;
    }
    a.Load64(r, LOCALS, static_cast<std::int32_t>(8 * s));
  }
  // Every caller keeps rax fresh between its load and this store, so an rax
  // store extends the claim to the local; other registers invalidate it.
  void StoreLocalSlot(std::int64_t s, Reg r) {
    if (inl_local_base_ >= 0) {
      StoreSlot(inl_local_base_ + static_cast<int>(s), r);
      return;
    }
    a.Store64(LOCALS, static_cast<std::int32_t>(8 * s), r);
    if (r == RAX) {
      rax_local_ = s;
    } else {
      KillLocal(s);
    }
  }
  // Globals live in their own array (GLB base), disjoint from locals and the
  // operand stack, and only kStoreGlobal writes them from jit code — calls
  // and hosts that might write them end blocks, and leaders start cold.
  void LoadGlobalSlot(Reg r, std::int64_t g) {
    if (r == RAX) {
      if (rax_global_ == g) return;
      a.Load64(RAX, GLB, static_cast<std::int32_t>(8 * g));
      rax_global_ = g;
      rax_slot_ = -1;
      rax_local_ = -1;
      return;
    }
    if (rax_global_ == g) {
      a.MovRR(r, RAX);
      return;
    }
    a.Load64(r, GLB, static_cast<std::int32_t>(8 * g));
  }
  // Callers keep rax fresh between their load and this store (same contract
  // as StoreLocalSlot), so an rax store extends the claim to the global.
  void StoreGlobalSlot(std::int64_t g, Reg r) {
    a.Store64(GLB, static_cast<std::int32_t>(8 * g), r);
    if (r == RAX) {
      rax_global_ = g;
    } else {
      KillGlobal(g);
    }
  }

  // --- side exits ----------------------------------------------------------
  // Every exit funnels through here so splice-mode exits pick up the frame
  // to materialize; pc and depth are callee-relative while inl_fn_ is set.
  void PushExit(std::size_t at, std::size_t pc, int d, std::int64_t give,
                bool reexec, std::int64_t fuel_give) {
    exits.push_back({at, static_cast<std::uint32_t>(pc), d, give, reexec,
                     fuel_give, inl_fn_, inl_kk_, inl_ret_pc_});
  }
  void AddExit(std::size_t at, std::size_t pc, bool reexec) {
    const bool inl = inl_fn_ != nullptr;
    const int lp = inl ? inl_blk_leader_[pc] : blk_leader[pc];
    const std::int64_t e = static_cast<std::int64_t>(pc) - lp;
    const std::int64_t len = inl ? inl_blk_len_[lp] : blk_len[lp];
    const std::int64_t give = reexec ? len - e : len - e - 1;
    PushExit(at, pc, inl ? inl_depth_[pc] : depth[pc], give, reexec, give);
  }
  // Conditional/unconditional jumps into a deopt-and-reexecute stub: the
  // interpreter resumes at `pc` and re-runs the faulting instruction, so the
  // trap message and unwind path are the interpreter's own.
  void JccExit(Cc cc, std::size_t pc) { AddExit(a.Jcc(cc), pc, true); }
  void JmpExit(std::size_t pc) { AddExit(a.Jmp(), pc, true); }
  // Exception passthrough: a helper already captured the exception and left
  // its status in eax; the stub only fixes the ledgers.
  void JccExcExit(Cc cc, std::size_t pc) { AddExit(a.Jcc(cc), pc, false); }

  // --- branch targets ------------------------------------------------------
  // While splicing, branch targets are callee pcs resolved against the
  // splice's own offset table (a target equal to the callee length means
  // "after the splice" — where kRet lands).
  void JmpPc(std::size_t target) {
    (inl_fn_ != nullptr ? inl_fixes_ : fixes).push_back({a.Jmp(), target});
  }
  void JccPc(Cc cc, std::size_t target) {
    (inl_fn_ != nullptr ? inl_fixes_ : fixes).push_back({a.Jcc(cc), target});
  }

  // Commits sp_ = frame->base + num_locals + d into the ctx mailbox.
  void CommitSp(int d) {
    a.Load64(RAX, FRM, F.base);
    const std::int32_t add = fn.num_locals + d;
    if (add != 0) a.AluImm(ALU_ADD, RAX, add);
    a.Store64(CTX, L.ctx_sp, RAX);
  }

  void SetFramePc(std::size_t pc) {
    a.StoreImm32Sx(FRM, F.pc, static_cast<std::int32_t>(pc));
  }

  void CallHelper(const void* helper) {
    a.MovImm64(RAX, reinterpret_cast<std::uint64_t>(helper));
    a.CallR(RAX);
  }

  // --- analysis ------------------------------------------------------------
  bool Propagate(std::size_t pc, int d, std::vector<std::size_t>& work) {
    if (pc >= fn.code.size()) return false;
    if (depth[pc] == -1) {
      depth[pc] = d;
      work.push_back(pc);
      return true;
    }
    return depth[pc] == d;
  }

  bool Analyze() {
    const auto& code = fn.code;
    const std::size_t n = code.size();
    if (n == 0) return false;
    depth.assign(n, -1);
    leader.assign(n, 0);
    std::vector<std::size_t> work;
    depth[0] = 0;
    work.push_back(0);
    while (!work.empty()) {
      const std::size_t pc = work.back();
      work.pop_back();
      Eff e;
      if (!EffectOf(program, code[pc], e)) return false;
      const int d = depth[pc];
      if (d < e.pops) return false;
      const int d2 = d - e.pops + e.pushes;
      if (d2 > fn.max_stack || d2 > kMaxStack) return false;
      if (e.branch && !Propagate(e.target, d - e.pops, work)) return false;
      if (!e.terminal && !Propagate(pc + 1, d2, work)) return false;
    }
    // Leaders: entry, branch targets, and the instruction after any ender.
    leader[0] = 1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (depth[pc] < 0) continue;
      Eff e;
      EffectOf(program, code[pc], e);
      if (IsBlockEnder(e, code[pc].op)) {
        if (pc + 1 < n) leader[pc + 1] = 1;
      }
      if (e.branch) leader[e.target] = 1;
    }
    // Blocks: from each leader to its first ender (or the next leader, when
    // control falls through into one).
    blk_leader.assign(n, -1);
    blk_len.assign(n, 0);
    int lp = -1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (depth[pc] < 0) {
        lp = -1;
        continue;
      }
      if (leader[pc]) lp = static_cast<int>(pc);
      if (lp < 0) return false;  // reachable code without a leader: impossible
      blk_leader[pc] = lp;
      blk_len[lp] = static_cast<int>(pc) - lp + 1;
      Eff e;
      EffectOf(program, code[pc], e);
      if (IsBlockEnder(e, code[pc].op)) lp = -1;
    }
    return true;
  }

  // One fuel/retired charge per block, against the fuel register: subtract
  // the block length and deopt to the block's first instruction if it went
  // negative (the stub gives the charge back) — the interpreter then meters
  // out the tail insn by insn and throws "fuel exhausted" at the exact
  // instruction an interpreted run would. Unlimited runs carry the bias
  // constant, which no real program can exhaust.
  void EmitBlockAccounting(std::size_t lp) {
    const bool inl = inl_fn_ != nullptr;
    const std::int32_t len = inl ? inl_blk_len_[lp] : blk_len[lp];
    a.AluImm(ALU_SUB, FUEL, len);
    PushExit(a.Jcc(CC_S), lp, inl ? inl_depth_[lp] : depth[lp], 0, true, len);
    a.AluMemImm(ALU_ADD, CTX, L.ctx_retired, len);
  }

  // ctx->fuel <- r15 unless unlimited (the stored sentinel stays negative).
  // Clobbers rax and flags.
  void EmitFuelSync() {
    a.Load64(RAX, CTX, L.ctx_fuel);
    a.TestRR(RAX, RAX);
    const std::size_t unlimited = a.Jcc8(CC_S);
    a.Store64(CTX, L.ctx_fuel, FUEL);
    a.PatchRel8(unlimited, a.pos());
  }
  // r15 <- ctx->fuel, biased when unlimited. Touches only r15 and flags, so
  // call sites may run it before testing a helper's status register.
  void EmitFuelReload() {
    a.Load64(FUEL, CTX, L.ctx_fuel);
    a.TestRR(FUEL, FUEL);
    const std::size_t limited = a.Jcc8(CC_NS);
    a.MovImm64(FUEL, kFuelUnlimitedBias);
    a.PatchRel8(limited, a.pos());
  }

  void EmitPrologue() {
    a.Push(RBP);
    a.Push(RBX);
    a.Push(R12);
    a.Push(R13);
    a.Push(R14);
    a.Push(R15);
    a.AluImm(ALU_SUB, RSP, 8);  // keep rsp 16-aligned at helper calls
    a.MovRR(CTX, RDI);
    a.Load64(STK, CTX, L.ctx_stack);
    a.Load64(GLB, CTX, L.ctx_globals);
    a.Load64(RAX, CTX, L.ctx_nframes);
    a.ImulImm(RAX, RAX, F.size);
    a.AddRM(RAX, CTX, L.ctx_frames);
    a.Lea(FRM, RAX, -F.size);  // rbp = &frames[nframes - 1]
    a.Load64(RAX, FRM, F.base);
    a.LeaSib(LOCALS, STK, RAX, 3, 0);  // r13 = stack + 8*frame->base
    EmitFuelReload();
  }

  void EmitEpilogue() {
    epilogue_off = a.pos();
    // Every exit funnels through here, so one fuel sync covers them all.
    // rcx is dead on all paths; rax carries the exit status and is preserved.
    a.Load64(RCX, CTX, L.ctx_fuel);
    a.TestRR(RCX, RCX);
    const std::size_t unlimited = a.Jcc8(CC_S);
    a.Store64(CTX, L.ctx_fuel, FUEL);
    a.PatchRel8(unlimited, a.pos());
    a.AluImm(ALU_ADD, RSP, 8);
    a.Pop(R15);
    a.Pop(R14);
    a.Pop(R13);
    a.Pop(R12);
    a.Pop(RBX);
    a.Pop(RBP);
    a.Ret();
  }

  void EmitStubs() {
    for (const Exit& e : exits) {
      a.PatchRel32(e.at, a.pos());
      if (e.reexec && e.inl_callee != nullptr) {
        // The exit fired inside a spliced callee whose frame was never
        // pushed. Materialize it now — fn/pc/base at frames[nframes], the
        // caller's resume pc, sp inside the callee — so the interpreter
        // resumes at callee pc `e.pc` exactly as if kCall had run. The
        // kCall-entry checks already proved frames[nframes] is in bounds,
        // and the splice region makes no calls, so nframes is unchanged.
        a.Load64(RAX, FRM, F.base);
        a.Lea(RDX, RAX, e.inl_kk);  // callee base (slot units)
        a.Load64(RCX, CTX, L.ctx_nframes);
        a.ImulImm(RSI, RCX, F.size);
        a.AddRM(RSI, CTX, L.ctx_frames);
        a.MovImm64(RDI, reinterpret_cast<std::uint64_t>(e.inl_callee));
        a.Store64(RSI, F.fn, RDI);
        a.StoreImm32Sx(RSI, F.pc, static_cast<std::int32_t>(e.pc));
        a.Store64(RSI, F.base, RDX);
        a.Lea(RCX, RCX, 1);
        a.Store64(CTX, L.ctx_nframes, RCX);
        a.StoreImm32Sx(FRM, F.pc, e.inl_ret_pc);
        a.Lea(RDX, RDX, e.inl_callee->num_locals + e.depth);
        a.Store64(CTX, L.ctx_sp, RDX);
      } else if (e.reexec) {
        CommitSp(e.depth);
        SetFramePc(e.pc);
      }
      if (e.give > 0) {
        a.AluMemImm(ALU_SUB, CTX, L.ctx_retired, static_cast<std::int32_t>(e.give));
      }
      if (e.fuel_give > 0) {
        // Adding to the biased constant is harmless on unlimited runs; the
        // epilogue sync drops the register either way.
        a.AluImm(ALU_ADD, FUEL, static_cast<std::int32_t>(e.fuel_give));
      }
      if (e.reexec) a.MovImm32(RAX, kJitDeopt);
      epi_fixes.push_back(a.Jmp());
    }
  }

  bool EmitInsn(std::size_t pc);  // jit_emit_x64.inc
  // Set by EmitInsn when it fused the following instruction(s) into one
  // template (compare+branch peepholes); Compile skips that many insns.
  // Fused-over insns are never block leaders, so they are never branch
  // targets and never need a pc_off entry.
  std::size_t fused_extra_ = 0;

  bool Compile() {
    if (!Analyze()) return false;
    const std::size_t n = fn.code.size();
    pc_off.assign(n, -1);
    EmitPrologue();
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (depth[pc] < 0) continue;
      pc_off[pc] = static_cast<std::int64_t>(a.pos());
      if (leader[pc]) {
        KillRax();  // predecessors left rax in unknown states
        EmitBlockAccounting(pc);
      }
      if (opts.jit_compile_filter && !opts.jit_compile_filter(fn.code[pc].op)) {
        // Filter-denied op (the fuzzer's forced-deopt mode): hand the rest
        // of this function to the interpreter right here.
        JmpExit(pc);
        KillRax();
        continue;
      }
      if (!EmitInsn(pc)) return false;
      pc += fused_extra_;
      fused_extra_ = 0;
    }
    EmitEpilogue();
    EmitStubs();
    for (const auto& fix : fixes) {
      if (pc_off[fix.pc] < 0) return false;
      a.PatchRel32(fix.at, static_cast<std::size_t>(pc_off[fix.pc]));
    }
    for (const std::size_t at : epi_fixes) {
      a.PatchRel32(at, epilogue_off);
    }
    return true;
  }
};

#include "src/minnow/jit_emit_x64.inc"

}  // namespace
}  // namespace

// ---------------------------------------------------------------------------
// Jit::Impl — the load-time driver. A member of Jit, so it sees VM's private
// Frame (Jit is a friend) and the jit's own private state.
// ---------------------------------------------------------------------------

struct Jit::Impl {
  static FrameOffsets ProbeFrame() {
    static const VM::Frame frame{};
    FrameOffsets f{};
    f.fn = OffsetIn(frame, frame.fn);
    f.pc = OffsetIn(frame, frame.pc);
    f.base = OffsetIn(frame, frame.base);
    f.size = static_cast<std::int32_t>(sizeof(VM::Frame));
    return f;
  }

  static std::unique_ptr<Jit> Build(VM& vm) {
    Program& program = vm.program_;
    const VmOptions& opts = vm.options_;
    // Verify-then-compile: native code is emitted only for bytecode that
    // passed the load-time verifier in this exact form (the eBPF contract).
    // VerifyProgram also fills max_stack, which the depth analysis bounds
    // against.
    const VerifyReport report = VerifyProgram(program);
    if (!report.ok) {
      return nullptr;
    }

    std::unique_ptr<Jit> jit(new Jit());
    const std::size_t nfns = program.functions.size();
    jit->compiled_.assign(nfns, false);
    // Sized once, never resized: kCall sites bake &entries_[i] into code.
    jit->entries_.assign(nfns, nullptr);

    const Layout& layout = ProbeLayout();
    const FrameOffsets frame_off = ProbeFrame();

    // Shared deopt trampoline: an uncompiled callee "returns" kJitDeopt
    // immediately, and the interpreter resumes at its freshly pushed frame.
    Asm tramp;
    tramp.MovImm32(RAX, kJitDeopt);
    tramp.Ret();

    const auto align16 = [](std::size_t n) { return (n + 15) & ~std::size_t{15}; };
    std::size_t total = align16(tramp.code.size());

    struct Unit {
      int fn;
      std::vector<std::uint8_t> code;
    };
    std::vector<Unit> units;
    for (const int fi : CompilationOrder(program, opts.jit_pair_profile)) {
      const FunctionCode& f = program.functions[static_cast<std::size_t>(fi)];
      if (f.code.size() > opts.jit_max_fn_insns) {
        ++jit->stats_.bailouts;
        continue;
      }
      Compiler c{program,
                 f,
                 opts,
                 layout,
                 frame_off,
                 jit->entries_.data(),
                 reinterpret_cast<const void*>(&Jit::HelpPushFrame),
                 reinterpret_cast<const void*>(&Jit::HelpCallHost),
                 reinterpret_cast<const void*>(&Jit::HelpNewStruct),
                 reinterpret_cast<const void*>(&Jit::HelpNewArray),
                 vm.frame_capacity_,
                 vm.stack_slots_};
      if (!c.Compile()) {
        ++jit->stats_.bailouts;
        continue;
      }
      const std::size_t sz = align16(c.a.code.size());
      if (total + sz > opts.jit_arena_max) {
        ++jit->stats_.bailouts;  // arena budget: hottest-first order decides
        continue;
      }
      total += sz;
      units.push_back({fi, std::move(c.a.code)});
    }
    if (units.empty()) {
      return nullptr;
    }

    // W^X: map writable, stitch, then flip to read+execute for good.
    void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      return nullptr;
    }
    auto* base = static_cast<std::uint8_t*>(mem);
    std::memcpy(base, tramp.code.data(), tramp.code.size());
    for (std::size_t i = 0; i < nfns; ++i) {
      jit->entries_[i] = base;  // trampoline until proven compiled
    }
    std::size_t off = align16(tramp.code.size());
    for (const Unit& u : units) {
      std::memcpy(base + off, u.code.data(), u.code.size());
      jit->entries_[static_cast<std::size_t>(u.fn)] = base + off;
      jit->compiled_[static_cast<std::size_t>(u.fn)] = true;
      ++jit->stats_.compiled_fns;
      jit->stats_.bytes += u.code.size();
      off += align16(u.code.size());
    }
    // Debugging seam: GRAFTLAB_JIT_DUMP=<path-prefix> writes each unit as a
    // raw code blob (objdump -D -b binary -m i386:x86-64 disassembles it).
    if (const char* dump = std::getenv("GRAFTLAB_JIT_DUMP")) {
      std::size_t doff = align16(tramp.code.size());
      for (const Unit& u : units) {
        const std::string path =
            std::string(dump) + ".fn" + std::to_string(u.fn) + ".bin";
        if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
          std::fwrite(base + doff, 1, u.code.size(), f);
          std::fclose(f);
          std::fprintf(stderr, "jit dump: fn %d (%zu insns, %zu bytes) -> %s\n", u.fn,
                       program.functions[static_cast<std::size_t>(u.fn)].code.size(),
                       u.code.size(), path.c_str());
        }
        doff += align16(u.code.size());
      }
    }
    if (mprotect(mem, total, PROT_READ | PROT_EXEC) != 0) {
      munmap(mem, total);
      return nullptr;
    }
    jit->arena_ = base;
    jit->arena_size_ = total;
    return jit;
  }
};

// ---------------------------------------------------------------------------
// Out-of-line helpers. Called from native code with the SysV ABI; every
// exception is captured here (native frames carry no unwind tables, so C++
// exceptions must never cross them) and rethrown by the runner.
// ---------------------------------------------------------------------------

Jit::HelperResult Jit::HelpNewStruct(JitCtx* ctx, std::uint64_t struct_idx) {
  VM& vm = *ctx->vm;
  vm.sp_ = ctx->sp;  // the conservative root scan reads sp_
  try {
    const auto& layout = vm.program_.structs[struct_idx];
    vm.MaybeCollect(static_cast<std::size_t>(layout.num_fields) * 8 + 64);
    Object* object = vm.heap_.NewStruct(layout, static_cast<int>(struct_idx));
    return {0, reinterpret_cast<std::uint64_t>(object)};
  } catch (...) {
    vm.jit_pending_ = std::current_exception();
    return {kJitException, 0};
  }
}

Jit::HelperResult Jit::HelpNewArray(JitCtx* ctx, std::uint64_t elem,
                                    std::uint64_t length) {
  VM& vm = *ctx->vm;
  vm.sp_ = ctx->sp;
  try {
    vm.MaybeCollect(static_cast<std::size_t>(length) * 8 + 64);
    Object* object =
        vm.heap_.NewArray(static_cast<TypeKind>(elem), static_cast<std::size_t>(length));
    return {0, reinterpret_cast<std::uint64_t>(object)};
  } catch (...) {
    vm.jit_pending_ = std::current_exception();
    return {kJitException, 0};
  }
}

Jit::HelperResult Jit::HelpCallHost(JitCtx* ctx, std::uint64_t import_idx) {
  VM& vm = *ctx->vm;
  const auto& import = vm.program_.host_imports[import_idx];
  const auto& host = vm.hosts_[import_idx];
  if (!host) {
    return {kJitDeopt, 0};  // unbound: deopt so the interpreter throws its trap
  }
  // The ledgers are exact here (kCallHost ends its block), so a host reading
  // fuel()/instructions_retired() — or a reentrant Call — sees interpreter-
  // identical state.
  vm.sp_ = ctx->sp;
  vm.nframes_ = ctx->nframes;
  vm.fuel_ = ctx->fuel;
  vm.instructions_retired_ = ctx->retired;
  try {
    const Value ret =
        host(vm, std::span<const Value>(vm.stack_ + vm.sp_,
                                        static_cast<std::size_t>(import.arity)));
    ctx->fuel = vm.fuel_;  // the host may SetFuel or burn fuel via reentry
    ctx->retired = vm.instructions_retired_;
    return {0, ret.bits};
  } catch (...) {
    vm.jit_pending_ = std::current_exception();
    ctx->fuel = vm.fuel_;
    ctx->retired = vm.instructions_retired_;
    return {kJitException, 0};
  }
}

std::uint64_t Jit::HelpPushFrame(JitCtx* ctx, std::uint64_t fn_idx) {
  VM& vm = *ctx->vm;
  vm.sp_ = ctx->sp;
  vm.nframes_ = ctx->nframes;
  try {
    vm.PushFrame(vm.program_.functions[fn_idx], ctx->entry_frames);
  } catch (...) {
    // PushFrame checks before it mutates, so the re-executed kCall in the
    // interpreter hits the identical trap with identical state.
    return 1;
  }
  ctx->sp = vm.sp_;
  ctx->nframes = vm.nframes_;
  return 0;
}

// ---------------------------------------------------------------------------
// Public surface (x86-64 build).
// ---------------------------------------------------------------------------

bool Jit::Available() { return true; }

std::unique_ptr<Jit> Jit::Compile(VM& vm) { return Impl::Build(vm); }

Jit::~Jit() {
  if (arena_ != nullptr) {
    munmap(arena_, arena_size_);
  }
}

std::uint32_t Jit::Enter(JitCtx& ctx, int fn_index) const {
  using NativeFn = std::uint32_t (*)(JitCtx*);
  const void* entry = entries_[static_cast<std::size_t>(fn_index)];
  return reinterpret_cast<NativeFn>(const_cast<void*>(entry))(&ctx);
}

#else  // !GRAFTLAB_JIT_X64

// ---------------------------------------------------------------------------
// Portable fallback: the header compiles everywhere, Available() reports
// false, and VmOptions::dispatch = kJit falls back to the interpreter.
// ---------------------------------------------------------------------------

bool Jit::Available() { return false; }

std::unique_ptr<Jit> Jit::Compile(VM&) { return nullptr; }

Jit::~Jit() = default;

std::uint32_t Jit::Enter(JitCtx&, int) const { return kJitDeopt; }

Jit::HelperResult Jit::HelpNewStruct(JitCtx*, std::uint64_t) { return {kJitDeopt, 0}; }
Jit::HelperResult Jit::HelpNewArray(JitCtx*, std::uint64_t, std::uint64_t) {
  return {kJitDeopt, 0};
}
Jit::HelperResult Jit::HelpCallHost(JitCtx*, std::uint64_t) { return {kJitDeopt, 0}; }
std::uint64_t Jit::HelpPushFrame(JitCtx*, std::uint64_t) { return 1; }

#endif  // GRAFTLAB_JIT_X64

// ---------------------------------------------------------------------------
// Compilation order (portable; exposed for tests/tools). Hot first: functions
// whose adjacent opcode pairs score high in the PR 3 fusion telemetry, then
// by static back-edge count (loopy code pays for native speed soonest), then
// by index for determinism.
// ---------------------------------------------------------------------------

namespace {

bool JumpTargetOf(const Insn& insn, std::size_t& target) {
  switch (insn.op) {
    case Op::kJmp:
    case Op::kJmpIfFalse:
    case Op::kJmpIfTrue:
    case Op::kBrEqI:
    case Op::kBrNeI:
    case Op::kBrLtI:
    case Op::kBrLeI:
    case Op::kBrGtI:
    case Op::kBrGeI:
    case Op::kBrEqRef:
    case Op::kBrNeRef:
      target = static_cast<std::size_t>(insn.operand);
      return true;
    case Op::kBrEqImmI:
    case Op::kBrNeImmI:
    case Op::kBrLtImmI:
    case Op::kBrLeImmI:
    case Op::kBrGtImmI:
    case Op::kBrGeImmI:
      target = ImmBranchTarget(insn.operand);
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<int> Jit::CompilationOrder(
    const Program& program,
    const std::vector<std::pair<std::string, std::uint64_t>>& pair_profile) {
  std::unordered_map<std::string, std::uint64_t> hot;
  for (const auto& [pair, count] : pair_profile) {
    hot[pair] += count;
  }
  struct Rank {
    std::uint64_t score;
    std::uint64_t back_edges;
    int index;
  };
  std::vector<Rank> ranks;
  ranks.reserve(program.functions.size());
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    const auto& fn = program.functions[i];
    Rank r{0, 0, static_cast<int>(i)};
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      if (!hot.empty() && pc + 1 < fn.code.size()) {
        const auto it = hot.find(std::string(OpName(fn.code[pc].op)) + ">" +
                                 OpName(fn.code[pc + 1].op));
        if (it != hot.end()) {
          r.score += it->second;
        }
      }
      std::size_t target = 0;
      if (JumpTargetOf(fn.code[pc], target) && target <= pc) {
        ++r.back_edges;
      }
    }
    ranks.push_back(r);
  }
  std::sort(ranks.begin(), ranks.end(), [](const Rank& a, const Rank& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.back_edges != b.back_edges) return a.back_edges > b.back_edges;
    return a.index < b.index;
  });
  std::vector<int> order;
  order.reserve(ranks.size());
  for (const Rank& r : ranks) {
    order.push_back(r.index);
  }
  return order;
}

}  // namespace minnow
