// The Minnow baseline JIT: verify-then-compile, interpreter as the oracle.
//
// A load-time template JIT in the eBPF mold. Bytecode that has passed the
// verifier (and optionally the check-elision pass) is compiled function by
// function into an mmap'd W^X code arena: the arena is mapped writable while
// templates are stitched, then flipped to read+execute before the first
// instruction runs, so at no point is memory both writable and executable.
//
// Per-opcode templates reproduce the exact semantics of vm_dispatch.inc.
// The operand stack keeps the interpreter's memory layout (locals, then
// operands above frame->base), but every slot address is static: the
// verifier proves a unique operand depth per pc, so operand i of a function
// with L locals lives at [locals_base + 8*(L+i)] — no stack-pointer register
// exists in compiled code at all. Safety checks are inlined (null,
// array-kind, bounds, divide); at sites the elision certificate proved safe
// the `.nc` opcode forms are emitted natively with no check instructions.
//
// Fuel and the retired-instruction ledger are batched per basic block: one
// compare-and-subtract charges the whole straight-line run. Every side exit
// carries a static correction so the ledgers an observer can read (fuel(),
// instructions_retired()) are bit-identical to an interpreted run.
//
// Deoptimization is the safety net. Any condition the native code does not
// handle — a trap check firing, fuel too low for the next block, an opcode
// the compile filter denied, a callee that failed to compile — side-exits
// through a stub that reconstructs the interpreter frame (sp_ committed from
// the static depth, frame->pc set to the faulting instruction, ledgers
// corrected) and unwinds the whole native call chain back to the runner,
// which resumes the interpreter on the same frame stack. Because operand
// slots ARE the interpreter's stack slots, there is no shadow state to
// materialize: deopt at any pc is a store, a store, and a return. Trapping
// instructions are re-executed by the interpreter so the trap message, the
// unwind path, and the ledgers come from the same code an interpreted run
// uses. Host calls and allocations run through helpers that commit VM state
// first; exceptions a helper observes are captured and rethrown from the
// runner (native frames carry no unwind tables, so C++ exceptions must
// never cross them).
//
// Portability: x86-64 SysV only, behind the GRAFTLAB_JIT CMake option. Other
// targets (and GRAFTLAB_JIT=OFF builds) compile this header and jit.cc but
// Jit::Available() returns false and VmOptions::dispatch = kJit silently
// falls back to the interpreter, mirroring the kThreaded fallback.

#ifndef GRAFTLAB_SRC_MINNOW_JIT_H_
#define GRAFTLAB_SRC_MINNOW_JIT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/minnow/bytecode.h"
#include "src/minnow/heap.h"

namespace minnow {

class VM;

// Counters exported through ExecutionProfile -> graftd telemetry -> obslab.
struct JitStats {
  std::uint64_t compiled_fns = 0;  // functions fully compiled to native code
  std::uint64_t bytes = 0;         // native bytes emitted into the arena
  std::uint64_t deopts = 0;        // runtime side exits to the interpreter
  std::uint64_t bailouts = 0;      // functions that stayed interpreted
};

// Status codes native code returns to the runner (and between compiled
// frames). Values are fixed: they are baked into emitted code. Helpers
// return 0 for "continue in native code".
enum : std::uint32_t {
  kJitFrameReturned = 1,  // callee frame returned to a compiled caller
  kJitEntryReturned = 2,  // the entry frame returned; result in JitCtx::ret_bits
  kJitDeopt = 3,          // interpreter must resume at frames[nframes-1]
  kJitException = 4,      // a helper captured an exception; runner rethrows
};

// The view of VM state native code works through. One instance lives on the
// runner's C++ stack per entry (so host-call reentry nests naturally); the
// pointer travels in a callee-saved register. Helpers sync the authoritative
// VM fields from this struct before doing interpreter-equivalent work and
// sync back after. Standard-layout: offsets are baked into emitted code.
struct JitCtx {
  VM* vm = nullptr;
  Value* stack = nullptr;
  Value* globals = nullptr;
  void* frames = nullptr;  // VM::Frame*
  std::uint64_t nframes = 0;
  std::uint64_t sp = 0;
  std::int64_t fuel = 0;
  std::uint64_t retired = 0;
  std::uint64_t entry_frames = 0;
  std::uint64_t ret_bits = 0;  // entry frame's return value
};

// Per-VM compiled code. Built once at load time by the VM constructor when
// VmOptions::dispatch resolves to kJit; immutable afterwards (the stats
// deopt counter aside).
class Jit {
 public:
  // True when this build can emit and run native code (x86-64 + mmap +
  // GRAFTLAB_JIT=ON). Everything else makes Compile() return null.
  static bool Available();

  // Verifies and compiles `vm`'s program per vm's VmOptions (jit_* fields).
  // Returns null — leaving the VM on the interpreter — when unavailable,
  // when verification fails, or when nothing compiled.
  static std::unique_ptr<Jit> Compile(VM& vm);

  // The order functions are compiled in: functions containing opcode pairs
  // hot in `pair_profile` first (PR 3's fusion telemetry, reused to aim the
  // arena at the hot path), then by static back-edge count, then by index.
  // Exposed for tests and tools.
  static std::vector<int> CompilationOrder(
      const Program& program,
      const std::vector<std::pair<std::string, std::uint64_t>>& pair_profile);

  ~Jit();
  Jit(const Jit&) = delete;
  Jit& operator=(const Jit&) = delete;

  bool compiled(int fn_index) const {
    return fn_index >= 0 && static_cast<std::size_t>(fn_index) < compiled_.size() &&
           compiled_[static_cast<std::size_t>(fn_index)];
  }

  // Runs the compiled body of `fn_index` (which must be compiled) on the
  // VM's current top frame, from pc 0. Returns one of the status codes
  // above; `ctx` must already mirror the VM.
  std::uint32_t Enter(JitCtx& ctx, int fn_index) const;

  const JitStats& stats() const { return stats_; }
  void CountDeopt() { ++stats_.deopts; }

 private:
  Jit() = default;

  // Out-of-line work compiled code calls into (SysV: ctx in rdi, operands in
  // rsi/rdx). Results travel in rax:rdx — status 0 means continue natively.
  struct HelperResult {
    std::uint64_t status;
    std::uint64_t value;
  };
  static HelperResult HelpNewStruct(JitCtx* ctx, std::uint64_t struct_idx);
  static HelperResult HelpNewArray(JitCtx* ctx, std::uint64_t elem, std::uint64_t length);
  static HelperResult HelpCallHost(JitCtx* ctx, std::uint64_t import_idx);
  static std::uint64_t HelpPushFrame(JitCtx* ctx, std::uint64_t fn_idx);

  struct Impl;

  std::vector<bool> compiled_;
  // Per-function native entry (or the shared deopt trampoline). kCall sites
  // load through this table, so compilation order never matters.
  std::vector<const void*> entries_;
  std::uint8_t* arena_ = nullptr;
  std::size_t arena_size_ = 0;
  JitStats stats_;
};

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_JIT_H_
