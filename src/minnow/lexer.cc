#include "src/minnow/lexer.h"

#include <cctype>
#include <unordered_map>

#include "src/minnow/diag.h"

namespace minnow {

const char* TokName(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFn: return "'fn'";
    case Tok::kVar: return "'var'";
    case Tok::kStruct: return "'struct'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kReturn: return "'return'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kTrue: return "'true'";
    case Tok::kFalse: return "'false'";
    case Tok::kNull: return "'null'";
    case Tok::kNew: return "'new'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kColon: return "':'";
    case Tok::kArrow: return "'->'";
    case Tok::kDot: return "'.'";
    case Tok::kAssign: return "'='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kBang: return "'!'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& Keywords() {
  static const auto* keywords = new std::unordered_map<std::string_view, Tok>{
      {"fn", Tok::kFn},           {"var", Tok::kVar},       {"struct", Tok::kStruct},
      {"if", Tok::kIf},           {"else", Tok::kElse},     {"while", Tok::kWhile},
      {"for", Tok::kFor},         {"return", Tok::kReturn}, {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"true", Tok::kTrue},   {"false", Tok::kFalse},
      {"null", Tok::kNull},       {"new", Tok::kNew},
  };
  return *keywords;
}

}  // namespace

std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  int column = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  auto make = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = column;
    return t;
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        advance();
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t = make(Tok::kIntLit);
      std::uint64_t value = 0;
      if (c == '0' && i + 1 < source.size() && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        advance(2);
        if (i >= source.size() || !std::isxdigit(static_cast<unsigned char>(source[i]))) {
          throw CompileError("malformed hex literal", line, column);
        }
        while (i < source.size() && std::isxdigit(static_cast<unsigned char>(source[i]))) {
          const char d = source[i];
          const std::uint64_t digit =
              std::isdigit(static_cast<unsigned char>(d))
                  ? static_cast<std::uint64_t>(d - '0')
                  : static_cast<std::uint64_t>(std::tolower(d) - 'a' + 10);
          value = value * 16 + digit;
          advance();
        }
      } else {
        while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i]))) {
          value = value * 10 + static_cast<std::uint64_t>(source[i] - '0');
          advance();
        }
      }
      if (i < source.size() &&
          (std::isalpha(static_cast<unsigned char>(source[i])) || source[i] == '_')) {
        throw CompileError("identifier may not start with a digit", line, column);
      }
      t.int_value = value;
      tokens.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t = make(Tok::kIdent);
      const std::size_t start = i;
      while (i < source.size() && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                                   source[i] == '_')) {
        advance();
      }
      t.text = std::string(source.substr(start, i - start));
      if (const auto it = Keywords().find(t.text); it != Keywords().end()) {
        t.kind = it->second;
      }
      tokens.push_back(t);
      continue;
    }

    // Punctuation and operators (longest match first).
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    Token t = make(Tok::kEof);
    if (two('-', '>')) {
      t.kind = Tok::kArrow;
      advance(2);
    } else if (two('<', '<')) {
      t.kind = Tok::kShl;
      advance(2);
    } else if (two('>', '>')) {
      t.kind = Tok::kShr;
      advance(2);
    } else if (two('<', '=')) {
      t.kind = Tok::kLe;
      advance(2);
    } else if (two('>', '=')) {
      t.kind = Tok::kGe;
      advance(2);
    } else if (two('=', '=')) {
      t.kind = Tok::kEq;
      advance(2);
    } else if (two('!', '=')) {
      t.kind = Tok::kNe;
      advance(2);
    } else if (two('&', '&')) {
      t.kind = Tok::kAndAnd;
      advance(2);
    } else if (two('|', '|')) {
      t.kind = Tok::kOrOr;
      advance(2);
    } else {
      switch (c) {
        case '(': t.kind = Tok::kLParen; break;
        case ')': t.kind = Tok::kRParen; break;
        case '{': t.kind = Tok::kLBrace; break;
        case '}': t.kind = Tok::kRBrace; break;
        case '[': t.kind = Tok::kLBracket; break;
        case ']': t.kind = Tok::kRBracket; break;
        case ',': t.kind = Tok::kComma; break;
        case ';': t.kind = Tok::kSemi; break;
        case ':': t.kind = Tok::kColon; break;
        case '.': t.kind = Tok::kDot; break;
        case '=': t.kind = Tok::kAssign; break;
        case '+': t.kind = Tok::kPlus; break;
        case '-': t.kind = Tok::kMinus; break;
        case '*': t.kind = Tok::kStar; break;
        case '/': t.kind = Tok::kSlash; break;
        case '%': t.kind = Tok::kPercent; break;
        case '&': t.kind = Tok::kAmp; break;
        case '|': t.kind = Tok::kPipe; break;
        case '^': t.kind = Tok::kCaret; break;
        case '~': t.kind = Tok::kTilde; break;
        case '<': t.kind = Tok::kLt; break;
        case '>': t.kind = Tok::kGt; break;
        case '!': t.kind = Tok::kBang; break;
        default:
          throw CompileError(std::string("unexpected character '") + c + "'", line, column);
      }
      advance();
    }
    tokens.push_back(t);
  }

  tokens.push_back(make(Tok::kEof));
  return tokens;
}

}  // namespace minnow
