#include "src/minnow/sema.h"

#include <utility>

#include "src/minnow/diag.h"

namespace minnow {

std::string TypeName(const Type& type, const std::vector<std::string>& struct_names) {
  switch (type.kind) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kInt: return "int";
    case TypeKind::kU32: return "u32";
    case TypeKind::kBool: return "bool";
    case TypeKind::kByte: return "byte";
    case TypeKind::kNull: return "null";
    case TypeKind::kStruct:
      return type.struct_id >= 0 && static_cast<std::size_t>(type.struct_id) < struct_names.size()
                 ? struct_names[static_cast<std::size_t>(type.struct_id)]
                 : "<struct>";
    case TypeKind::kArray:
      switch (type.elem) {
        case TypeKind::kInt: return "int[]";
        case TypeKind::kU32: return "u32[]";
        case TypeKind::kBool: return "bool[]";
        case TypeKind::kByte: return "byte[]";
        default: return "<array>";
      }
  }
  return "?";
}

namespace {

class Analyzer {
 public:
  Analyzer(Module& module, const std::vector<HostDecl>& hosts) : module_(module) {
    info_.hosts = hosts;
  }

  ProgramInfo Run() {
    CollectStructs();
    ResolveStructFields();
    CollectGlobals();
    CollectFunctions();
    for (auto& fn : module_.functions) {
      CheckFunction(fn);
    }
    CheckGlobalInits();
    return std::move(info_);
  }

 private:
  [[noreturn]] void Fail(const std::string& message, int line, int column = 0) const {
    throw CompileError(message, line, column);
  }

  std::string Name(const Type& type) const { return TypeName(type, info_.struct_names()); }

  // --- Type resolution ---

  Type ResolveSpec(const TypeSpec& spec) const {
    TypeKind base;
    if (spec.base == "int") {
      base = TypeKind::kInt;
    } else if (spec.base == "u32") {
      base = TypeKind::kU32;
    } else if (spec.base == "bool") {
      base = TypeKind::kBool;
    } else if (spec.base == "byte") {
      base = TypeKind::kByte;
    } else {
      const auto it = struct_ids_.find(spec.base);
      if (it == struct_ids_.end()) {
        Fail("unknown type '" + spec.base + "'", spec.line, spec.column);
      }
      if (spec.is_array) {
        Fail("arrays of structs are not supported; use parallel scalar arrays or a linked list",
             spec.line, spec.column);
      }
      return Type::Struct(it->second);
    }
    if (spec.is_array) {
      return Type::Array(base);
    }
    if (base == TypeKind::kByte) {
      Fail("'byte' is only usable as an array element or cast; use int", spec.line, spec.column);
    }
    return Type{base, -1, TypeKind::kVoid};
  }

  // --- Declaration collection ---

  void CollectStructs() {
    for (std::size_t i = 0; i < module_.structs.size(); ++i) {
      const auto& decl = module_.structs[i];
      if (!struct_ids_.emplace(decl.name, static_cast<int>(i)).second) {
        Fail("duplicate struct '" + decl.name + "'", decl.line);
      }
      ProgramInfo::StructInfo info;
      info.name = decl.name;
      info_.structs.push_back(std::move(info));
    }
  }

  void ResolveStructFields() {
    for (std::size_t i = 0; i < module_.structs.size(); ++i) {
      auto& decl = module_.structs[i];
      auto& info = info_.structs[i];
      for (auto& field : decl.fields) {
        for (const auto& existing : info.field_names) {
          if (existing == field.name) {
            Fail("duplicate field '" + field.name + "' in struct " + decl.name, decl.line);
          }
        }
        field.type = ResolveSpec(field.spec);
        info.field_names.push_back(field.name);
        info.field_types.push_back(field.type);
      }
    }
  }

  void CollectGlobals() {
    for (auto& decl : module_.globals) {
      if (global_ids_.contains(decl.name)) {
        Fail("duplicate global '" + decl.name + "'", decl.line);
      }
      decl.type = ResolveSpec(decl.spec);
      global_ids_.emplace(decl.name, static_cast<int>(info_.globals.size()));
      info_.globals.push_back({decl.name, decl.type});
    }
  }

  void CollectFunctions() {
    for (std::size_t h = 0; h < info_.hosts.size(); ++h) {
      host_ids_.emplace(info_.hosts[h].name, static_cast<int>(h));
    }
    for (auto& fn : module_.functions) {
      if (fn_ids_.contains(fn.name)) {
        Fail("duplicate function '" + fn.name + "'", fn.line);
      }
      if (host_ids_.contains(fn.name)) {
        Fail("function '" + fn.name + "' shadows a host function", fn.line);
      }
      ProgramInfo::FnInfo info;
      info.name = fn.name;
      for (auto& param : fn.params) {
        param.type = ResolveSpec(param.spec);
        info.params.push_back(param.type);
      }
      fn.return_type = fn.return_spec.base.empty() ? Type::Void() : ResolveSpec(fn.return_spec);
      info.ret = fn.return_type;
      fn_ids_.emplace(fn.name, static_cast<int>(info_.functions.size()));
      info_.functions.push_back(std::move(info));
    }
  }

  void CheckGlobalInits() {
    // Global initializers run in the synthesized @init function with no
    // locals in scope; they may reference earlier globals and call functions.
    scopes_.clear();
    current_fn_ = nullptr;
    for (auto& decl : module_.globals) {
      if (decl.init != nullptr) {
        const Type t = CheckExpr(*decl.init);
        if (!Assignable(decl.type, t)) {
          Fail("initializer of '" + decl.name + "' has type " + Name(t) + ", expected " +
                   Name(decl.type),
               decl.line);
        }
      }
    }
  }

  // --- Function body checking ---

  struct LocalVar {
    std::string name;
    Type type;
    int slot;
  };

  void CheckFunction(FnDecl& fn) {
    current_fn_ = &fn;
    scopes_.clear();
    next_slot_ = 0;
    max_slot_ = 0;
    loop_depth_ = 0;

    PushScope();
    for (const auto& param : fn.params) {
      DeclareLocal(param.name, param.type, fn.line);
    }
    for (auto& stmt : fn.body) {
      CheckStmt(*stmt);
    }
    PopScope();
    fn.num_locals = max_slot_;
    current_fn_ = nullptr;
  }

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() {
    next_slot_ -= static_cast<int>(scopes_.back().size());
    scopes_.pop_back();
  }

  int DeclareLocal(const std::string& name, const Type& type, int line) {
    for (const auto& var : scopes_.back()) {
      if (var.name == name) {
        Fail("duplicate variable '" + name + "' in scope", line);
      }
    }
    const int slot = next_slot_++;
    if (next_slot_ > max_slot_) {
      max_slot_ = next_slot_;
    }
    scopes_.back().push_back({name, type, slot});
    return slot;
  }

  const LocalVar* FindLocal(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (const auto& var : *scope) {
        if (var.name == name) {
          return &var;
        }
      }
    }
    return nullptr;
  }

  void CheckStmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        CheckExpr(*stmt.expr);
        break;
      case StmtKind::kVarDecl: {
        stmt.declared_type = ResolveSpec(stmt.var_spec);
        if (stmt.expr != nullptr) {
          const Type t = CheckExpr(*stmt.expr);
          if (!Assignable(stmt.declared_type, t)) {
            Fail("cannot initialize " + Name(stmt.declared_type) + " variable '" + stmt.var_name +
                     "' with " + Name(t),
                 stmt.line, stmt.column);
          }
        }
        stmt.slot = DeclareLocal(stmt.var_name, stmt.declared_type, stmt.line);
        break;
      }
      case StmtKind::kAssign: {
        const Type target = CheckAssignTarget(*stmt.target);
        const Type value = CheckExpr(*stmt.value);
        if (!Assignable(target, value)) {
          Fail("cannot assign " + Name(value) + " to " + Name(target), stmt.line, stmt.column);
        }
        break;
      }
      case StmtKind::kIf: {
        RequireBool(*stmt.expr, "if condition");
        PushScope();
        for (auto& s : stmt.then_body) {
          CheckStmt(*s);
        }
        PopScope();
        PushScope();
        for (auto& s : stmt.else_body) {
          CheckStmt(*s);
        }
        PopScope();
        break;
      }
      case StmtKind::kWhile: {
        RequireBool(*stmt.expr, "while condition");
        ++loop_depth_;
        PushScope();
        for (auto& s : stmt.body) {
          CheckStmt(*s);
        }
        PopScope();
        --loop_depth_;
        break;
      }
      case StmtKind::kFor: {
        PushScope();  // the for-init variable scopes over the whole loop
        if (stmt.init != nullptr) {
          CheckStmt(*stmt.init);
        }
        if (stmt.expr != nullptr) {
          RequireBool(*stmt.expr, "for condition");
        }
        ++loop_depth_;
        PushScope();
        for (auto& s : stmt.body) {
          CheckStmt(*s);
        }
        PopScope();
        --loop_depth_;
        if (stmt.step != nullptr) {
          CheckStmt(*stmt.step);
        }
        PopScope();
        break;
      }
      case StmtKind::kReturn: {
        const Type expected = current_fn_->return_type;
        if (stmt.expr == nullptr) {
          if (expected.kind != TypeKind::kVoid) {
            Fail("missing return value in '" + current_fn_->name + "'", stmt.line, stmt.column);
          }
        } else {
          const Type t = CheckExpr(*stmt.expr);
          if (expected.kind == TypeKind::kVoid) {
            Fail("void function '" + current_fn_->name + "' returns a value", stmt.line,
                 stmt.column);
          }
          if (!Assignable(expected, t)) {
            Fail("return type mismatch: " + Name(t) + " vs " + Name(expected), stmt.line,
                 stmt.column);
          }
        }
        break;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          Fail("break/continue outside a loop", stmt.line, stmt.column);
        }
        break;
      case StmtKind::kBlock:
        PushScope();
        for (auto& s : stmt.body) {
          CheckStmt(*s);
        }
        PopScope();
        break;
    }
  }

  void RequireBool(Expr& expr, const char* what) {
    const Type t = CheckExpr(expr);
    if (t.kind != TypeKind::kBool) {
      Fail(std::string(what) + " must be bool, found " + Name(t), expr.line, expr.column);
    }
  }

  Type CheckAssignTarget(Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kVarRef:
      case ExprKind::kField:
      case ExprKind::kIndex:
        return CheckExpr(expr);
      default:
        Fail("expression is not assignable", expr.line, expr.column);
    }
  }

  Type CheckExpr(Expr& expr) {
    expr.type = CheckExprInner(expr);
    return expr.type;
  }

  Type CheckExprInner(Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return Type::Int();
      case ExprKind::kBoolLit:
        return Type::Bool();
      case ExprKind::kNullLit:
        return Type::Null();
      case ExprKind::kVarRef: {
        if (const LocalVar* local = FindLocal(expr.name)) {
          expr.binding = Expr::Binding::kLocal;
          expr.slot = local->slot;
          return local->type;
        }
        if (const auto it = global_ids_.find(expr.name); it != global_ids_.end()) {
          expr.binding = Expr::Binding::kGlobal;
          expr.slot = it->second;
          return info_.globals[static_cast<std::size_t>(it->second)].type;
        }
        Fail("unknown variable '" + expr.name + "'", expr.line, expr.column);
      }
      case ExprKind::kBinary:
        return CheckBinary(expr);
      case ExprKind::kUnary: {
        const Type t = CheckExpr(*expr.lhs);
        if (expr.op == Tok::kBang) {
          if (t.kind != TypeKind::kBool) {
            Fail("'!' needs bool, found " + Name(t), expr.line, expr.column);
          }
          return Type::Bool();
        }
        if (t.kind != TypeKind::kInt && t.kind != TypeKind::kU32) {
          Fail("unary operator needs int or u32, found " + Name(t), expr.line, expr.column);
        }
        return t;
      }
      case ExprKind::kCall:
        return CheckCall(expr);
      case ExprKind::kCast: {
        const Type t = CheckExpr(*expr.lhs);
        if (t.kind != TypeKind::kInt && t.kind != TypeKind::kU32) {
          Fail("cast needs a numeric operand, found " + Name(t), expr.line, expr.column);
        }
        if (expr.name == "int") {
          return Type::Int();
        }
        if (expr.name == "u32") {
          return Type::U32();
        }
        return Type::Int();  // byte(x): masked to 8 bits, typed int
      }
      case ExprKind::kField: {
        const Type base = CheckExpr(*expr.lhs);
        if (base.kind != TypeKind::kStruct) {
          Fail("field access on non-struct " + Name(base), expr.line, expr.column);
        }
        const auto& info = info_.structs[static_cast<std::size_t>(base.struct_id)];
        for (std::size_t i = 0; i < info.field_names.size(); ++i) {
          if (info.field_names[i] == expr.name) {
            expr.field_index = static_cast<int>(i);
            return info.field_types[i];
          }
        }
        Fail("struct " + info.name + " has no field '" + expr.name + "'", expr.line, expr.column);
      }
      case ExprKind::kIndex: {
        const Type base = CheckExpr(*expr.lhs);
        if (base.kind != TypeKind::kArray) {
          Fail("indexing non-array " + Name(base), expr.line, expr.column);
        }
        const Type index = CheckExpr(*expr.rhs);
        if (index.kind != TypeKind::kInt) {
          Fail("array index must be int, found " + Name(index), expr.line, expr.column);
        }
        switch (base.elem) {
          case TypeKind::kInt:
          case TypeKind::kByte:
            return Type::Int();  // byte elements read as int
          case TypeKind::kU32:
            return Type::U32();
          case TypeKind::kBool:
            return Type::Bool();
          default:
            Fail("bad array element type", expr.line, expr.column);
        }
      }
      case ExprKind::kNewStruct: {
        const auto it = struct_ids_.find(expr.name);
        if (it == struct_ids_.end()) {
          Fail("unknown struct '" + expr.name + "'", expr.line, expr.column);
        }
        return Type::Struct(it->second);
      }
      case ExprKind::kNewArray: {
        TypeKind elem;
        if (expr.name == "int") {
          elem = TypeKind::kInt;
        } else if (expr.name == "u32") {
          elem = TypeKind::kU32;
        } else if (expr.name == "byte") {
          elem = TypeKind::kByte;
        } else if (expr.name == "bool") {
          elem = TypeKind::kBool;
        } else {
          Fail("arrays hold int, u32, byte, or bool; found '" + expr.name + "'", expr.line,
               expr.column);
        }
        const Type len = CheckExpr(*expr.rhs);
        if (len.kind != TypeKind::kInt) {
          Fail("array length must be int", expr.line, expr.column);
        }
        return Type::Array(elem);
      }
      case ExprKind::kArrayLen: {
        const Type base = CheckExpr(*expr.lhs);
        if (base.kind != TypeKind::kArray) {
          Fail("'.len' on non-array " + Name(base), expr.line, expr.column);
        }
        return Type::Int();
      }
    }
    Fail("unhandled expression", expr.line, expr.column);
  }

  Type CheckBinary(Expr& expr) {
    const Type lhs = CheckExpr(*expr.lhs);
    const Type rhs = CheckExpr(*expr.rhs);
    switch (expr.op) {
      case Tok::kAndAnd:
      case Tok::kOrOr:
        if (lhs.kind != TypeKind::kBool || rhs.kind != TypeKind::kBool) {
          Fail("logical operator needs bool operands", expr.line, expr.column);
        }
        return Type::Bool();
      case Tok::kEq:
      case Tok::kNe:
        if (lhs.IsReference() && rhs.IsReference()) {
          return Type::Bool();
        }
        if (lhs.kind == rhs.kind && lhs.IsScalar()) {
          return Type::Bool();
        }
        Fail("cannot compare " + Name(lhs) + " with " + Name(rhs), expr.line, expr.column);
      case Tok::kLt:
      case Tok::kLe:
      case Tok::kGt:
      case Tok::kGe:
        if (lhs.kind != rhs.kind ||
            (lhs.kind != TypeKind::kInt && lhs.kind != TypeKind::kU32)) {
          Fail("cannot order " + Name(lhs) + " with " + Name(rhs), expr.line, expr.column);
        }
        return Type::Bool();
      case Tok::kShl:
      case Tok::kShr:
        if (lhs.kind != TypeKind::kInt && lhs.kind != TypeKind::kU32) {
          Fail("shift needs int or u32, found " + Name(lhs), expr.line, expr.column);
        }
        if (rhs.kind != TypeKind::kInt) {
          Fail("shift count must be int", expr.line, expr.column);
        }
        return lhs;
      default:
        // +, -, *, /, %, &, |, ^
        if (lhs.kind != rhs.kind ||
            (lhs.kind != TypeKind::kInt && lhs.kind != TypeKind::kU32)) {
          Fail("arithmetic needs matching int or u32 operands, found " + Name(lhs) + " and " +
                   Name(rhs),
               expr.line, expr.column);
        }
        return lhs;
    }
  }

  Type CheckCall(Expr& expr) {
    const std::vector<Type>* params = nullptr;
    Type ret;
    if (const auto it = fn_ids_.find(expr.name); it != fn_ids_.end()) {
      expr.fn_index = it->second;
      params = &info_.functions[static_cast<std::size_t>(it->second)].params;
      ret = info_.functions[static_cast<std::size_t>(it->second)].ret;
    } else if (const auto hit = host_ids_.find(expr.name); hit != host_ids_.end()) {
      expr.host_index = hit->second;
      params = &info_.hosts[static_cast<std::size_t>(hit->second)].params;
      ret = info_.hosts[static_cast<std::size_t>(hit->second)].ret;
    } else {
      Fail("unknown function '" + expr.name + "'", expr.line, expr.column);
    }
    if (expr.args.size() != params->size()) {
      Fail("'" + expr.name + "' expects " + std::to_string(params->size()) + " arguments, got " +
               std::to_string(expr.args.size()),
           expr.line, expr.column);
    }
    for (std::size_t i = 0; i < expr.args.size(); ++i) {
      const Type arg = CheckExpr(*expr.args[i]);
      if (!Assignable((*params)[i], arg)) {
        Fail("argument " + std::to_string(i + 1) + " of '" + expr.name + "' has type " +
                 Name(arg) + ", expected " + Name((*params)[i]),
             expr.line, expr.column);
      }
    }
    return ret;
  }

  Module& module_;
  ProgramInfo info_;
  std::unordered_map<std::string, int> struct_ids_;
  std::unordered_map<std::string, int> global_ids_;
  std::unordered_map<std::string, int> fn_ids_;
  std::unordered_map<std::string, int> host_ids_;

  FnDecl* current_fn_ = nullptr;
  std::vector<std::vector<LocalVar>> scopes_;
  int next_slot_ = 0;
  int max_slot_ = 0;
  int loop_depth_ = 0;
};

}  // namespace

ProgramInfo Analyze(Module& module, const std::vector<HostDecl>& hosts) {
  Analyzer analyzer(module, hosts);
  return analyzer.Run();
}

}  // namespace minnow
