// Minnow code generation and the one-call compile pipeline.

#ifndef GRAFTLAB_SRC_MINNOW_COMPILER_H_
#define GRAFTLAB_SRC_MINNOW_COMPILER_H_

#include <string_view>
#include <vector>

#include "src/minnow/bytecode.h"
#include "src/minnow/sema.h"

namespace minnow {

// Lowers a checked module to bytecode. Global initializers are gathered into
// a synthesized "@init" function the VM runs at load time.
Program CodeGen(Module& module, const ProgramInfo& info);

// Full pipeline: lex -> parse -> analyze -> codegen -> verify. Throws
// CompileError or VerifyError. The returned Program is ready to load.
Program Compile(std::string_view source, const std::vector<HostDecl>& hosts = {});

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_COMPILER_H_
