#include "src/minnow/parser.h"

#include <utility>

#include "src/minnow/diag.h"
#include "src/minnow/lexer.h"

namespace minnow {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module ParseModule() {
    Module module;
    while (!At(Tok::kEof)) {
      if (At(Tok::kStruct)) {
        module.structs.push_back(ParseStruct());
      } else if (At(Tok::kVar)) {
        module.globals.push_back(ParseGlobal());
      } else if (At(Tok::kFn)) {
        module.functions.push_back(ParseFn());
      } else {
        Fail("expected 'struct', 'var', or 'fn' at top level");
      }
    }
    return module;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(Tok kind) const { return Peek().kind == kind; }

  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Token Expect(Tok kind) {
    if (!At(kind)) {
      Fail(std::string("expected ") + TokName(kind) + ", found " + TokName(Peek().kind));
    }
    return Take();
  }

  bool Accept(Tok kind) {
    if (At(kind)) {
      Take();
      return true;
    }
    return false;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw CompileError(message, Peek().line, Peek().column);
  }

  TypeSpec ParseTypeSpec() {
    const Token name = Expect(Tok::kIdent);
    TypeSpec spec;
    spec.base = name.text;
    spec.line = name.line;
    spec.column = name.column;
    if (Accept(Tok::kLBracket)) {
      Expect(Tok::kRBracket);
      spec.is_array = true;
    }
    return spec;
  }

  StructDecl ParseStruct() {
    StructDecl decl;
    decl.line = Expect(Tok::kStruct).line;
    decl.name = Expect(Tok::kIdent).text;
    Expect(Tok::kLBrace);
    while (!Accept(Tok::kRBrace)) {
      FieldDecl field;
      field.name = Expect(Tok::kIdent).text;
      Expect(Tok::kColon);
      field.spec = ParseTypeSpec();
      Expect(Tok::kSemi);
      decl.fields.push_back(std::move(field));
    }
    return decl;
  }

  GlobalDecl ParseGlobal() {
    GlobalDecl decl;
    decl.line = Expect(Tok::kVar).line;
    decl.name = Expect(Tok::kIdent).text;
    Expect(Tok::kColon);
    decl.spec = ParseTypeSpec();
    if (Accept(Tok::kAssign)) {
      decl.init = ParseExpr();
    }
    Expect(Tok::kSemi);
    return decl;
  }

  FnDecl ParseFn() {
    FnDecl fn;
    fn.line = Expect(Tok::kFn).line;
    fn.name = Expect(Tok::kIdent).text;
    Expect(Tok::kLParen);
    if (!At(Tok::kRParen)) {
      do {
        Param param;
        param.name = Expect(Tok::kIdent).text;
        Expect(Tok::kColon);
        param.spec = ParseTypeSpec();
        fn.params.push_back(std::move(param));
      } while (Accept(Tok::kComma));
    }
    Expect(Tok::kRParen);
    if (Accept(Tok::kArrow)) {
      fn.return_spec = ParseTypeSpec();
    }
    fn.body = ParseBlock();
    return fn;
  }

  std::vector<StmtPtr> ParseBlock() {
    Expect(Tok::kLBrace);
    std::vector<StmtPtr> body;
    while (!Accept(Tok::kRBrace)) {
      body.push_back(ParseStmt());
    }
    return body;
  }

  StmtPtr MakeStmt(StmtKind kind) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    return stmt;
  }

  StmtPtr ParseStmt() {
    if (At(Tok::kVar)) {
      return ParseVarDecl(/*consume_semi=*/true);
    }
    if (At(Tok::kIf)) {
      return ParseIf();
    }
    if (At(Tok::kWhile)) {
      auto stmt = MakeStmt(StmtKind::kWhile);
      Take();
      Expect(Tok::kLParen);
      stmt->expr = ParseExpr();
      Expect(Tok::kRParen);
      stmt->body = ParseBlock();
      return stmt;
    }
    if (At(Tok::kFor)) {
      return ParseFor();
    }
    if (At(Tok::kReturn)) {
      auto stmt = MakeStmt(StmtKind::kReturn);
      Take();
      if (!At(Tok::kSemi)) {
        stmt->expr = ParseExpr();
      }
      Expect(Tok::kSemi);
      return stmt;
    }
    if (At(Tok::kBreak)) {
      auto stmt = MakeStmt(StmtKind::kBreak);
      Take();
      Expect(Tok::kSemi);
      return stmt;
    }
    if (At(Tok::kContinue)) {
      auto stmt = MakeStmt(StmtKind::kContinue);
      Take();
      Expect(Tok::kSemi);
      return stmt;
    }
    if (At(Tok::kLBrace)) {
      auto stmt = MakeStmt(StmtKind::kBlock);
      stmt->body = ParseBlock();
      return stmt;
    }
    return ParseExprOrAssign(/*consume_semi=*/true);
  }

  StmtPtr ParseVarDecl(bool consume_semi) {
    auto stmt = MakeStmt(StmtKind::kVarDecl);
    Expect(Tok::kVar);
    stmt->var_name = Expect(Tok::kIdent).text;
    Expect(Tok::kColon);
    stmt->var_spec = ParseTypeSpec();
    if (Accept(Tok::kAssign)) {
      stmt->expr = ParseExpr();
    }
    if (consume_semi) {
      Expect(Tok::kSemi);
    }
    return stmt;
  }

  StmtPtr ParseIf() {
    auto stmt = MakeStmt(StmtKind::kIf);
    Expect(Tok::kIf);
    Expect(Tok::kLParen);
    stmt->expr = ParseExpr();
    Expect(Tok::kRParen);
    stmt->then_body = ParseBlock();
    if (Accept(Tok::kElse)) {
      if (At(Tok::kIf)) {
        stmt->else_body.push_back(ParseIf());
      } else {
        stmt->else_body = ParseBlock();
      }
    }
    return stmt;
  }

  StmtPtr ParseFor() {
    auto stmt = MakeStmt(StmtKind::kFor);
    Expect(Tok::kFor);
    Expect(Tok::kLParen);
    if (!At(Tok::kSemi)) {
      stmt->init = At(Tok::kVar) ? ParseVarDecl(/*consume_semi=*/false)
                                 : ParseExprOrAssign(/*consume_semi=*/false);
    }
    Expect(Tok::kSemi);
    if (!At(Tok::kSemi)) {
      stmt->expr = ParseExpr();
    }
    Expect(Tok::kSemi);
    if (!At(Tok::kRParen)) {
      stmt->step = ParseExprOrAssign(/*consume_semi=*/false);
    }
    Expect(Tok::kRParen);
    stmt->body = ParseBlock();
    return stmt;
  }

  StmtPtr ParseExprOrAssign(bool consume_semi) {
    auto stmt = MakeStmt(StmtKind::kExpr);
    ExprPtr first = ParseExpr();
    if (Accept(Tok::kAssign)) {
      stmt->kind = StmtKind::kAssign;
      stmt->target = std::move(first);
      stmt->value = ParseExpr();
    } else {
      stmt->expr = std::move(first);
    }
    if (consume_semi) {
      Expect(Tok::kSemi);
    }
    return stmt;
  }

  // --- Expressions (precedence climbing) ---

  ExprPtr MakeExpr(ExprKind kind) {
    auto expr = std::make_unique<Expr>();
    expr->kind = kind;
    expr->line = Peek().line;
    expr->column = Peek().column;
    return expr;
  }

  static int Precedence(Tok op) {
    switch (op) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq:
      case Tok::kNe: return 6;
      case Tok::kLt:
      case Tok::kLe:
      case Tok::kGt:
      case Tok::kGe: return 7;
      case Tok::kShl:
      case Tok::kShr: return 8;
      case Tok::kPlus:
      case Tok::kMinus: return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  ExprPtr ParseExpr() { return ParseBinary(1); }

  ExprPtr ParseBinary(int min_prec) {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      const Tok op = Peek().kind;
      const int prec = Precedence(op);
      if (prec < min_prec) {
        return lhs;
      }
      Take();
      ExprPtr rhs = ParseBinary(prec + 1);  // all binary ops left-associative
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = lhs->line;
      node->column = lhs->column;
      node->op = op;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
  }

  ExprPtr ParseUnary() {
    if (At(Tok::kMinus) || At(Tok::kBang) || At(Tok::kTilde)) {
      auto node = MakeExpr(ExprKind::kUnary);
      node->op = Take().kind;
      node->lhs = ParseUnary();
      return node;
    }
    return ParsePostfix();
  }

  ExprPtr ParsePostfix() {
    ExprPtr expr = ParsePrimary();
    for (;;) {
      if (Accept(Tok::kDot)) {
        const Token field = Expect(Tok::kIdent);
        if (field.text == "len") {
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kArrayLen;
          node->line = field.line;
          node->column = field.column;
          node->lhs = std::move(expr);
          expr = std::move(node);
        } else {
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kField;
          node->line = field.line;
          node->column = field.column;
          node->name = field.text;
          node->lhs = std::move(expr);
          expr = std::move(node);
        }
      } else if (Accept(Tok::kLBracket)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIndex;
        node->line = expr->line;
        node->column = expr->column;
        node->lhs = std::move(expr);
        node->rhs = ParseExpr();
        Expect(Tok::kRBracket);
        expr = std::move(node);
      } else {
        return expr;
      }
    }
  }

  ExprPtr ParsePrimary() {
    if (At(Tok::kIntLit)) {
      auto node = MakeExpr(ExprKind::kIntLit);
      node->int_value = Take().int_value;
      return node;
    }
    if (At(Tok::kTrue) || At(Tok::kFalse)) {
      auto node = MakeExpr(ExprKind::kBoolLit);
      node->bool_value = Take().kind == Tok::kTrue;
      return node;
    }
    if (Accept(Tok::kNull)) {
      return MakeExpr(ExprKind::kNullLit);
    }
    if (Accept(Tok::kLParen)) {
      ExprPtr inner = ParseExpr();
      Expect(Tok::kRParen);
      return inner;
    }
    if (At(Tok::kNew)) {
      return ParseNew();
    }
    if (At(Tok::kIdent)) {
      const Token name = Take();
      if (At(Tok::kLParen)) {
        // Call or cast: int(x), u32(x), byte(x) are casts.
        if (name.text == "int" || name.text == "u32" || name.text == "byte") {
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kCast;
          node->line = name.line;
          node->column = name.column;
          node->name = name.text;
          Expect(Tok::kLParen);
          node->lhs = ParseExpr();
          Expect(Tok::kRParen);
          return node;
        }
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCall;
        node->line = name.line;
        node->column = name.column;
        node->name = name.text;
        Expect(Tok::kLParen);
        if (!At(Tok::kRParen)) {
          do {
            node->args.push_back(ParseExpr());
          } while (Accept(Tok::kComma));
        }
        Expect(Tok::kRParen);
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kVarRef;
      node->line = name.line;
      node->column = name.column;
      node->name = name.text;
      return node;
    }
    Fail(std::string("expected expression, found ") + TokName(Peek().kind));
  }

  ExprPtr ParseNew() {
    const Token kw = Expect(Tok::kNew);
    const Token name = Expect(Tok::kIdent);
    if (Accept(Tok::kLBracket)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNewArray;
      node->line = kw.line;
      node->column = kw.column;
      node->name = name.text;  // element type name
      node->rhs = ParseExpr();
      Expect(Tok::kRBracket);
      return node;
    }
    Expect(Tok::kLParen);
    Expect(Tok::kRParen);
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kNewStruct;
    node->line = kw.line;
    node->column = kw.column;
    node->name = name.text;
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Module Parse(std::string_view source) {
  Parser parser(Lex(source));
  return parser.ParseModule();
}

}  // namespace minnow
