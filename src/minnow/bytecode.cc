#include "src/minnow/bytecode.h"

#include <sstream>

namespace minnow {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kConstInt: return "const.i";
    case Op::kConstNull: return "const.null";
    case Op::kLoadLocal: return "load.local";
    case Op::kStoreLocal: return "store.local";
    case Op::kLoadGlobal: return "load.global";
    case Op::kStoreGlobal: return "store.global";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kAddI: return "add.i";
    case Op::kSubI: return "sub.i";
    case Op::kMulI: return "mul.i";
    case Op::kDivI: return "div.i";
    case Op::kModI: return "mod.i";
    case Op::kNegI: return "neg.i";
    case Op::kAndI: return "and.i";
    case Op::kOrI: return "or.i";
    case Op::kXorI: return "xor.i";
    case Op::kShlI: return "shl.i";
    case Op::kShrI: return "shr.i";
    case Op::kNotI: return "not.i";
    case Op::kAddU: return "add.u";
    case Op::kSubU: return "sub.u";
    case Op::kMulU: return "mul.u";
    case Op::kDivU: return "div.u";
    case Op::kModU: return "mod.u";
    case Op::kShlU: return "shl.u";
    case Op::kShrU: return "shr.u";
    case Op::kNotU: return "not.u";
    case Op::kEqI: return "eq.i";
    case Op::kNeI: return "ne.i";
    case Op::kLtI: return "lt.i";
    case Op::kLeI: return "le.i";
    case Op::kGtI: return "gt.i";
    case Op::kGeI: return "ge.i";
    case Op::kLtU: return "lt.u";
    case Op::kLeU: return "le.u";
    case Op::kGtU: return "gt.u";
    case Op::kGeU: return "ge.u";
    case Op::kEqRef: return "eq.ref";
    case Op::kNeRef: return "ne.ref";
    case Op::kNotB: return "not.b";
    case Op::kCastU32: return "cast.u32";
    case Op::kCastByte: return "cast.byte";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmp.false";
    case Op::kJmpIfTrue: return "jmp.true";
    case Op::kCall: return "call";
    case Op::kCallHost: return "call.host";
    case Op::kRet: return "ret";
    case Op::kRetVoid: return "ret.void";
    case Op::kNewStruct: return "new.struct";
    case Op::kNewArray: return "new.array";
    case Op::kLoadField: return "load.field";
    case Op::kStoreField: return "store.field";
    case Op::kLoadElem: return "load.elem";
    case Op::kStoreElem: return "store.elem";
    case Op::kArrayLen: return "array.len";
    case Op::kTrap: return "trap";
    case Op::kLoadAddI: return "load+add.i";
    case Op::kAddConstI: return "add.const.i";
    case Op::kConstStore: return "const+store";
    case Op::kBrEqI: return "br.eq.i";
    case Op::kBrNeI: return "br.ne.i";
    case Op::kBrLtI: return "br.lt.i";
    case Op::kBrLeI: return "br.le.i";
    case Op::kBrGtI: return "br.gt.i";
    case Op::kBrGeI: return "br.ge.i";
    case Op::kBrEqRef: return "br.eq.ref";
    case Op::kBrNeRef: return "br.ne.ref";
    case Op::kBrEqImmI: return "br.eq.imm.i";
    case Op::kBrNeImmI: return "br.ne.imm.i";
    case Op::kBrLtImmI: return "br.lt.imm.i";
    case Op::kBrLeImmI: return "br.le.imm.i";
    case Op::kBrGtImmI: return "br.gt.imm.i";
    case Op::kBrGeImmI: return "br.ge.imm.i";
    case Op::kLoadLocal2: return "load.local2";
    case Op::kLoadConstI: return "load+const.i";
    case Op::kMoveLocal: return "move.local";
    case Op::kStoreLoad: return "store+load";
    case Op::kLoadGlobalLocal: return "load.global+local";
    case Op::kLoadElemNC: return "load.arr.nc";
    case Op::kStoreElemNC: return "store.arr.nc";
    case Op::kLoadFieldNC: return "deref.nc";
    case Op::kStoreFieldNC: return "deref.store.nc";
    case Op::kDivNZ: return "div.nz";
    case Op::kModNZ: return "mod.nz";
    case Op::kArrayLenNC: return "len.nc";
  }
  return "?";
}

std::string Disassemble(const FunctionCode& fn) {
  std::ostringstream out;
  out << "fn " << fn.name << " params=" << fn.num_params << " locals=" << fn.num_locals
      << " max_stack=" << fn.max_stack << "\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    out << "  " << pc << ": " << OpName(fn.code[pc].op);
    switch (fn.code[pc].op) {
      case Op::kConstInt:
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kLoadGlobal:
      case Op::kStoreGlobal:
      case Op::kJmp:
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue:
      case Op::kCall:
      case Op::kCallHost:
      case Op::kNewStruct:
      case Op::kNewArray:
      case Op::kLoadField:
      case Op::kStoreField:
      case Op::kLoadElem:
      case Op::kStoreElem:
      case Op::kLoadElemNC:
      case Op::kStoreElemNC:
      case Op::kLoadFieldNC:
      case Op::kStoreFieldNC:
      case Op::kTrap:
      case Op::kLoadAddI:
      case Op::kAddConstI:
      case Op::kBrEqI:
      case Op::kBrNeI:
      case Op::kBrLtI:
      case Op::kBrLeI:
      case Op::kBrGtI:
      case Op::kBrGeI:
      case Op::kBrEqRef:
      case Op::kBrNeRef:
        out << " " << fn.code[pc].operand;
        break;
      case Op::kConstStore:
        out << " " << ConstStoreValue(fn.code[pc].operand) << " -> local "
            << ConstStoreSlot(fn.code[pc].operand);
        break;
      case Op::kBrEqImmI:
      case Op::kBrNeImmI:
      case Op::kBrLtImmI:
      case Op::kBrLeImmI:
      case Op::kBrGtImmI:
      case Op::kBrGeImmI:
        out << " " << ImmBranchValue(fn.code[pc].operand) << " -> "
            << ImmBranchTarget(fn.code[pc].operand);
        break;
      case Op::kLoadConstI:
        out << " local " << ConstStoreSlot(fn.code[pc].operand) << ", "
            << ConstStoreValue(fn.code[pc].operand);
        break;
      case Op::kLoadLocal2:
      case Op::kMoveLocal:
      case Op::kStoreLoad:
      case Op::kLoadGlobalLocal:
        out << " " << SlotPairA(fn.code[pc].operand) << ", " << SlotPairB(fn.code[pc].operand);
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace minnow
