#include "src/minnow/bytecode.h"

#include <sstream>

namespace minnow {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kConstInt: return "const.i";
    case Op::kConstNull: return "const.null";
    case Op::kLoadLocal: return "load.local";
    case Op::kStoreLocal: return "store.local";
    case Op::kLoadGlobal: return "load.global";
    case Op::kStoreGlobal: return "store.global";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kAddI: return "add.i";
    case Op::kSubI: return "sub.i";
    case Op::kMulI: return "mul.i";
    case Op::kDivI: return "div.i";
    case Op::kModI: return "mod.i";
    case Op::kNegI: return "neg.i";
    case Op::kAndI: return "and.i";
    case Op::kOrI: return "or.i";
    case Op::kXorI: return "xor.i";
    case Op::kShlI: return "shl.i";
    case Op::kShrI: return "shr.i";
    case Op::kNotI: return "not.i";
    case Op::kAddU: return "add.u";
    case Op::kSubU: return "sub.u";
    case Op::kMulU: return "mul.u";
    case Op::kDivU: return "div.u";
    case Op::kModU: return "mod.u";
    case Op::kShlU: return "shl.u";
    case Op::kShrU: return "shr.u";
    case Op::kNotU: return "not.u";
    case Op::kEqI: return "eq.i";
    case Op::kNeI: return "ne.i";
    case Op::kLtI: return "lt.i";
    case Op::kLeI: return "le.i";
    case Op::kGtI: return "gt.i";
    case Op::kGeI: return "ge.i";
    case Op::kLtU: return "lt.u";
    case Op::kLeU: return "le.u";
    case Op::kGtU: return "gt.u";
    case Op::kGeU: return "ge.u";
    case Op::kEqRef: return "eq.ref";
    case Op::kNeRef: return "ne.ref";
    case Op::kNotB: return "not.b";
    case Op::kCastU32: return "cast.u32";
    case Op::kCastByte: return "cast.byte";
    case Op::kJmp: return "jmp";
    case Op::kJmpIfFalse: return "jmp.false";
    case Op::kJmpIfTrue: return "jmp.true";
    case Op::kCall: return "call";
    case Op::kCallHost: return "call.host";
    case Op::kRet: return "ret";
    case Op::kRetVoid: return "ret.void";
    case Op::kNewStruct: return "new.struct";
    case Op::kNewArray: return "new.array";
    case Op::kLoadField: return "load.field";
    case Op::kStoreField: return "store.field";
    case Op::kLoadElem: return "load.elem";
    case Op::kStoreElem: return "store.elem";
    case Op::kArrayLen: return "array.len";
    case Op::kTrap: return "trap";
  }
  return "?";
}

std::string Disassemble(const FunctionCode& fn) {
  std::ostringstream out;
  out << "fn " << fn.name << " params=" << fn.num_params << " locals=" << fn.num_locals
      << " max_stack=" << fn.max_stack << "\n";
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    out << "  " << pc << ": " << OpName(fn.code[pc].op);
    switch (fn.code[pc].op) {
      case Op::kConstInt:
      case Op::kLoadLocal:
      case Op::kStoreLocal:
      case Op::kLoadGlobal:
      case Op::kStoreGlobal:
      case Op::kJmp:
      case Op::kJmpIfFalse:
      case Op::kJmpIfTrue:
      case Op::kCall:
      case Op::kCallHost:
      case Op::kNewStruct:
      case Op::kNewArray:
      case Op::kLoadField:
      case Op::kStoreField:
      case Op::kLoadElem:
      case Op::kStoreElem:
      case Op::kTrap:
        out << " " << fn.code[pc].operand;
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace minnow
