// Minnow load-time bytecode verifier.
//
// The kernel must not trust the compiler that produced a downloaded graft
// (paper §4.2-4.3): before a Program is executed, every function is checked
// by a linear dataflow pass that proves
//
//   * all jump targets land inside the function;
//   * the operand stack depth is consistent at every program point (the
//     same depth on every path into an instruction, no underflow, bounded
//     above by kMaxStack);
//   * every slot/global/function/host/struct/field/element-kind operand is
//     in range;
//   * control cannot fall off the end of a function.
//
// The pass also computes each function's max_stack so the interpreter can
// preallocate frames. Verification is O(code size) — each instruction is
// visited once with constant work, matching the paper's load-time-check
// model.

#ifndef GRAFTLAB_SRC_MINNOW_VERIFIER_H_
#define GRAFTLAB_SRC_MINNOW_VERIFIER_H_

#include <cstddef>
#include <string>

#include "src/minnow/bytecode.h"

namespace minnow {

inline constexpr int kMaxStack = 1024;

struct VerifyReport {
  bool ok = true;
  std::string message;
  int function = -1;   // offending function index when !ok
  std::size_t pc = 0;  // offending instruction when !ok
};

// Verifies every function and fills in FunctionCode::max_stack.
VerifyReport VerifyProgram(Program& program);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_VERIFIER_H_
