// Minnow diagnostics: compile-time and run-time error types.

#ifndef GRAFTLAB_SRC_MINNOW_DIAG_H_
#define GRAFTLAB_SRC_MINNOW_DIAG_H_

#include <stdexcept>
#include <string>

namespace minnow {

// Lexer/parser/type-checker failure; carries source position.
class CompileError : public std::runtime_error {
 public:
  CompileError(const std::string& message, int line, int column)
      : std::runtime_error(message + " (line " + std::to_string(line) + ", col " +
                           std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

// Bytecode rejected by the load-time verifier.
class VerifyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// VM trap: null dereference, bounds, division by zero, stack overflow,
// fuel exhaustion. The kernel treats these like any other extension fault.
class Trap : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_DIAG_H_
