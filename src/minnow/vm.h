// The Minnow virtual machine: a bytecode interpreter with a garbage-collected
// heap, host-call bridge, and fuel-based preemption.
//
// This is the paper's "Java" technology: verified bytecode executed by an
// in-kernel interpreter. Every array access is bounds-checked, every
// reference dereference null-checked, division and shift inputs validated —
// the VM is the safety boundary, so nothing the bytecode does can corrupt
// the host. Fuel gives the kernel the preemption guarantee of §4: each
// instruction costs one unit, and exhaustion raises a Trap the kernel
// catches like any other extension fault.
//
// The hot loop is built once (vm_dispatch.inc) and compiled into two
// dispatchers sharing every opcode body: a token-threaded computed-goto loop
// (GCC/Clang, behind the GRAFTLAB_THREADED_DISPATCH CMake option) and a
// portable switch loop. Which one runs is chosen per VM via
// VmOptions::dispatch, so a single binary can differentially test and
// benchmark both. Frames and the operand stack live in one envs::Arena
// allocation made at construction — calls never touch the allocator.
//
// regir.h layers the paper's "runtime code generation" future-work variant
// on top: the same Program translated at load time to a faster register IR.

#ifndef GRAFTLAB_SRC_MINNOW_VM_H_
#define GRAFTLAB_SRC_MINNOW_VM_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/envs/arena.h"
#include "src/minnow/bytecode.h"
#include "src/minnow/heap.h"

namespace minnow {

class VM;
class Jit;
struct JitStats;

// A kernel function exposed to extension code. Receives the argument slots;
// must return a Value (ignored for void imports).
using HostFn = std::function<Value(VM&, std::span<const Value>)>;

// How the interpreter's inner loop dispatches opcodes. kDefault resolves to
// kThreaded when the build supports computed goto, else kSwitch; asking for
// kThreaded in a switch-only build silently falls back (the two loops are
// semantically identical — that equivalence is what tests/
// minnow_dispatch_fuzz_test.cc enforces). kJit additionally compiles verified
// functions to native code at load time (jit.h); anything the JIT cannot or
// chooses not to handle deoptimizes back to the interpreter, and builds
// without JIT support (non-x86-64, GRAFTLAB_JIT=OFF) fall back the same way
// kThreaded does.
enum class DispatchMode {
  kDefault,
  kSwitch,
  kThreaded,
  kJit,
};

struct VmOptions {
  std::size_t stack_slots = 16 * 1024;   // operand + locals, all frames
  std::size_t heap_limit = 64u << 20;    // extension memory cap
  std::int64_t fuel = -1;                // instructions allowed; -1 = unlimited
  std::size_t max_call_depth = 256;
  DispatchMode dispatch = DispatchMode::kDefault;
  bool profile_opcodes = false;  // count retired opcodes and adjacent pairs
  // Run elide.h's check-elision pass at load time: accesses whose safety
  // checks the abstract interpreter proves dead execute as unchecked opcode
  // variants. A certified program refuses Call before RunInit and host-side
  // SetGlobal — both would invalidate the proof's global invariants.
  bool elide_checks = false;
  // --- kJit tuning (ignored by the interpreter dispatchers) ---
  // Functions longer than this stay interpreted (compile-time bound).
  std::size_t jit_max_fn_insns = 16384;
  // Total native-code budget; functions are compiled hottest-first (see
  // Jit::CompilationOrder) until the arena is full.
  std::size_t jit_arena_max = 8u << 20;
  // When set, opcodes the filter rejects are compiled as unconditional deopt
  // exits instead of native templates. Exists to force the deopt machinery in
  // tests; production leaves it empty.
  std::function<bool(Op)> jit_compile_filter;
  // Adjacent-pair telemetry ("load.local>add.i" -> count) from a profiling
  // run (VM::OpcodePairCounts), reused to order compilation hottest-first.
  std::vector<std::pair<std::string, std::uint64_t>> jit_pair_profile;
};

class VM : public Heap::RootProvider {
 public:
  explicit VM(Program program, const VmOptions& options = VmOptions{});
  ~VM() override;  // out of line: jit.h stays a vm.cc implementation detail

  // Binds a host import by name. Every import must be bound before Run/Call;
  // unbound imports trap on first use.
  void BindHost(const std::string& name, HostFn fn);

  // Runs the synthesized @init function (global initializers). Call once
  // after binding hosts.
  void RunInit();

  // Calls a function by name. Throws Trap on runtime faults and
  // std::invalid_argument for unknown names / arity mismatches.
  Value Call(const std::string& name, std::span<const Value> args);
  Value Call(const std::string& name, std::initializer_list<Value> args) {
    return Call(name, std::span<const Value>(args.begin(), args.size()));
  }
  Value CallIndex(int fn_index, std::span<const Value> args);

  // --- fuel / preemption ---
  void SetFuel(std::int64_t fuel) { fuel_ = fuel; }
  std::int64_t fuel() const { return fuel_; }

  // --- host-side heap helpers ---
  Object* NewByteArray(std::span<const std::uint8_t> data);
  Object* NewIntArray(std::span<const std::int64_t> data);
  Object* NewU32Array(std::size_t length);

  // Pins keep host-held objects alive across collections.
  void Pin(Object* object) { pinned_.push_back(object); }
  void UnpinAll() { pinned_.clear(); }

  Heap& heap() { return heap_; }
  const Program& program() const { return program_; }

  // Reads a global by name (host-side inspection, e.g. in tests).
  Value GetGlobal(const std::string& name) const;
  void SetGlobal(const std::string& name, Value value);

  // Heap::RootProvider: globals (precise) + stack (conservative) + pins.
  void EnumerateRoots(Heap& heap) override;

  // Statistics.
  std::uint64_t instructions_retired() const { return instructions_retired_; }

  // True when this build carries the computed-goto loop.
  static bool ThreadedDispatchAvailable();
  // True when this build can compile bytecode to native code (jit.h).
  static bool JitDispatchAvailable();
  // The dispatcher this VM actually runs (kDefault already resolved; kJit
  // only when native code was actually built).
  DispatchMode dispatch() const {
    if (jit_ != nullptr) {
      return DispatchMode::kJit;
    }
    return threaded_ ? DispatchMode::kThreaded : DispatchMode::kSwitch;
  }
  // Compilation/deopt counters; null unless dispatch() == kJit.
  const JitStats* jit_stats() const;

  // --- opcode profiling (VmOptions::profile_opcodes) ---
  bool profiling() const { return op_counts_ != nullptr; }
  // Retired-count per opcode name, descending. Empty unless profiling.
  std::vector<std::pair<std::string, std::uint64_t>> OpcodeCounts() const;
  // Adjacent-pair counts ("load.local>add.i"), descending — the data the
  // superinstruction fusion set is chosen from. Empty unless profiling.
  std::vector<std::pair<std::string, std::uint64_t>> OpcodePairCounts(std::size_t top_n = 16) const;

 private:
  friend class RegExecutor;
  friend class Jit;  // the JIT compiles against — and deopts into — VM state

  struct Frame {
    const FunctionCode* fn;
    std::size_t pc;
    std::size_t base;  // locals start in stack_
  };

  Value Execute(int fn_index, std::span<const Value> args);
  Value RunSwitch(std::size_t entry_frames);
  Value RunThreaded(std::size_t entry_frames);
  // Runs the entry natively when compiled; on deopt the interpreter finishes
  // the entry on the frame state native code reconstructed.
  Value RunJit(int fn_index, std::size_t entry_frames);
  // Moves the top num_params stack slots into a fresh callee frame.
  void PushFrame(const FunctionCode& fn, std::size_t entry_frames);
  void MaybeCollect(std::size_t incoming_bytes);

  Program program_;
  VmOptions options_;
  Heap heap_;
  envs::Arena arena_;        // backs stack_, frames_, and the profile tables
  Value* stack_ = nullptr;   // options_.stack_slots entries
  std::size_t stack_slots_ = 0;
  std::size_t sp_ = 0;       // first free slot
  Frame* frames_ = nullptr;  // frame_capacity_ entries
  std::size_t frame_capacity_ = 0;
  std::size_t nframes_ = 0;
  std::vector<HostFn> hosts_;  // by import index
  std::vector<Value> globals_;
  std::vector<Object*> pinned_;
  std::int64_t fuel_ = -1;
  std::uint64_t instructions_retired_ = 0;
  bool init_ran_ = false;
  bool threaded_ = false;
  // Native code (null unless kJit compiled something) and the exception a
  // JIT helper captured for the runner to rethrow — C++ exceptions must
  // never unwind through native frames.
  std::unique_ptr<Jit> jit_;
  std::exception_ptr jit_pending_;
  // Profile tables (arena-backed, null unless profiling): op_counts_[op] and
  // pair_counts_[prev * kNumOps + op], with row kNumOps as the no-predecessor
  // sentinel.
  std::uint64_t* op_counts_ = nullptr;
  std::uint64_t* pair_counts_ = nullptr;
};

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_VM_H_
