// Minnow semantic analysis: name resolution and type checking.
//
// Annotates the AST in place (bindings, slots, resolved types, call
// targets) and produces the symbol tables the code generator needs. All
// type errors are CompileErrors with source positions.
//
// Typing rules (kept deliberately Java-flavoured):
//   * int is signed 64-bit; u32 wraps modulo 2^32; they never mix without
//     an explicit cast (int(x) / u32(x)).
//   * `byte` exists only as an array element and cast target; loading a
//     byte element yields int (0..255), storing masks to 8 bits.
//   * bool comes from literals and comparisons; conditions must be bool;
//     && and || short-circuit.
//   * struct and array types are nullable references; null compares with
//     == / != and assigns into any reference slot.
//   * shifts take an int count; u32 shifts are logical, int shifts
//     arithmetic.

#ifndef GRAFTLAB_SRC_MINNOW_SEMA_H_
#define GRAFTLAB_SRC_MINNOW_SEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/minnow/ast.h"
#include "src/minnow/types.h"

namespace minnow {

// A host (kernel) function visible to extension code.
struct HostDecl {
  std::string name;
  std::vector<Type> params;
  Type ret = Type::Void();
};

// Symbol tables produced by analysis, consumed by the code generator.
struct ProgramInfo {
  struct StructInfo {
    std::string name;
    std::vector<std::string> field_names;
    std::vector<Type> field_types;
  };
  struct GlobalInfo {
    std::string name;
    Type type;
  };
  struct FnInfo {
    std::string name;
    std::vector<Type> params;
    Type ret;
  };

  std::vector<StructInfo> structs;
  std::vector<GlobalInfo> globals;
  std::vector<FnInfo> functions;
  std::vector<HostDecl> hosts;

  std::vector<std::string> struct_names() const {
    std::vector<std::string> names;
    names.reserve(structs.size());
    for (const auto& s : structs) {
      names.push_back(s.name);
    }
    return names;
  }
};

// Checks `module`, annotating it. Throws CompileError on any violation.
ProgramInfo Analyze(Module& module, const std::vector<HostDecl>& hosts);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_SEMA_H_
