// Minnow's garbage-collected heap.
//
// Two object shapes: structs (64-bit slots with a per-class reference map)
// and scalar arrays (int/u32/bool/byte element storage). Collection is
// mark-and-sweep, triggered by allocation volume: roots are the globals'
// reference slots (precise), the VM's operand/local stack (scanned
// conservatively against the live-object set, as several real collectors of
// the paper's era did), and host-pinned handles.
//
// Modula-3's safety story in the paper leans on exactly this: no dangling
// pointers, no pointer forging. The heap enforces the first by never freeing
// a reachable object; the verifier and typed opcodes enforce the second.

#ifndef GRAFTLAB_SRC_MINNOW_HEAP_H_
#define GRAFTLAB_SRC_MINNOW_HEAP_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/minnow/bytecode.h"
#include "src/minnow/diag.h"
#include "src/minnow/types.h"

namespace minnow {

// One VM value: a 64-bit slot. References hold an Object*.
struct Value {
  std::uint64_t bits = 0;

  static Value Int(std::int64_t v) { return {static_cast<std::uint64_t>(v)}; }
  static Value Ref(void* p) { return {reinterpret_cast<std::uint64_t>(p)}; }
  static Value Null() { return {0}; }

  std::int64_t AsInt() const { return static_cast<std::int64_t>(bits); }
  std::uint32_t AsU32() const { return static_cast<std::uint32_t>(bits); }
  bool AsBool() const { return bits != 0; }
};

class Object {
 public:
  enum class Kind : std::uint8_t { kStruct, kArray };

  Kind kind;
  bool marked = false;

  // kStruct
  int struct_id = -1;
  std::vector<Value> fields;

  // kArray
  TypeKind elem = TypeKind::kVoid;
  std::vector<std::uint8_t> bytes;    // kByte / kBool
  std::vector<std::uint32_t> words;   // kU32
  std::vector<std::int64_t> longs;    // kInt

  // JIT access cache (jit.cc): element storage resolved once at allocation so
  // compiled code can reach data without knowing std::vector's layout. Legal
  // because both shapes are fixed-size after creation: arrays never resize
  // (kNewArray picks the length) and a struct's field count is its layout's.
  // For structs, jit_data/jit_len describe the fields vector and jit_elem is
  // kVoid; for arrays they describe the element vector.
  void* jit_data = nullptr;
  std::uint32_t jit_len = 0;
  TypeKind jit_elem = TypeKind::kVoid;

  void RefreshJitCache() {
    if (kind == Kind::kStruct) {
      jit_data = fields.data();
      jit_len = static_cast<std::uint32_t>(fields.size());
      jit_elem = TypeKind::kVoid;
      return;
    }
    jit_elem = elem;
    switch (elem) {
      case TypeKind::kInt:
        jit_data = longs.data();
        jit_len = static_cast<std::uint32_t>(longs.size());
        break;
      case TypeKind::kU32:
        jit_data = words.data();
        jit_len = static_cast<std::uint32_t>(words.size());
        break;
      default:
        jit_data = bytes.data();
        jit_len = static_cast<std::uint32_t>(bytes.size());
        break;
    }
  }

  std::size_t array_length() const {
    switch (elem) {
      case TypeKind::kInt: return longs.size();
      case TypeKind::kU32: return words.size();
      default: return bytes.size();
    }
  }

  std::size_t heap_bytes() const {
    return sizeof(Object) + fields.size() * sizeof(Value) + bytes.size() +
           words.size() * sizeof(std::uint32_t) + longs.size() * sizeof(std::int64_t);
  }
};

class Heap {
 public:
  // `limit_bytes` bounds total live+garbage heap; exceeding it after a
  // collection traps (the kernel caps extension memory).
  explicit Heap(std::size_t limit_bytes = 64u << 20) : limit_bytes_(limit_bytes) {}

  Object* NewStruct(const StructLayout& layout, int struct_id);
  Object* NewArray(TypeKind elem, std::size_t length);

  // True if `candidate` is a live object pointer (conservative root test).
  bool IsObject(const void* candidate) const {
    return objects_set_.contains(const_cast<void*>(candidate));
  }

  // Mark phase entry points.
  void Mark(Object* object);

  // Collects garbage. Root sets are supplied by the VM.
  struct RootProvider {
    virtual ~RootProvider() = default;
    virtual void EnumerateRoots(Heap& heap) = 0;
  };
  void Collect(RootProvider& roots);

  // Returns true if an allocation of `incoming` bytes should trigger GC.
  bool ShouldCollect(std::size_t incoming) const {
    return allocated_bytes_ + incoming > gc_threshold_;
  }

  std::size_t allocated_bytes() const { return allocated_bytes_; }
  std::size_t num_objects() const { return objects_.size(); }
  std::uint64_t collections() const { return collections_; }

 private:
  void Register(std::unique_ptr<Object> object);

  std::size_t limit_bytes_;
  std::size_t gc_threshold_ = 1u << 20;
  std::size_t allocated_bytes_ = 0;
  std::uint64_t collections_ = 0;
  std::vector<std::unique_ptr<Object>> objects_;
  std::unordered_set<void*> objects_set_;
  std::vector<Object*> mark_stack_;
};

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_HEAP_H_
