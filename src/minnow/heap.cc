#include "src/minnow/heap.h"

#include <algorithm>

namespace minnow {

Object* Heap::NewStruct(const StructLayout& layout, int struct_id) {
  auto object = std::make_unique<Object>();
  object->kind = Object::Kind::kStruct;
  object->struct_id = struct_id;
  object->fields.resize(static_cast<std::size_t>(layout.num_fields));
  object->RefreshJitCache();
  Object* raw = object.get();
  Register(std::move(object));
  return raw;
}

Object* Heap::NewArray(TypeKind elem, std::size_t length) {
  auto object = std::make_unique<Object>();
  object->kind = Object::Kind::kArray;
  object->elem = elem;
  switch (elem) {
    case TypeKind::kInt:
      object->longs.resize(length);
      break;
    case TypeKind::kU32:
      object->words.resize(length);
      break;
    case TypeKind::kByte:
    case TypeKind::kBool:
      object->bytes.resize(length);
      break;
    default:
      throw Trap("new array of unsupported element type");
  }
  object->RefreshJitCache();
  Object* raw = object.get();
  Register(std::move(object));
  return raw;
}

void Heap::Register(std::unique_ptr<Object> object) {
  allocated_bytes_ += object->heap_bytes();
  if (allocated_bytes_ > limit_bytes_) {
    throw Trap("extension heap limit exceeded");
  }
  objects_set_.insert(object.get());
  objects_.push_back(std::move(object));
}

void Heap::Mark(Object* object) {
  if (object == nullptr || object->marked) {
    return;
  }
  object->marked = true;
  mark_stack_.push_back(object);
  while (!mark_stack_.empty()) {
    Object* current = mark_stack_.back();
    mark_stack_.pop_back();
    if (current->kind == Object::Kind::kStruct) {
      // Struct fields may hold references; the conservative test against the
      // live-object set makes the field map unnecessary during marking (the
      // layout's map is still used for precise global roots).
      for (const Value& field : current->fields) {
        void* candidate = reinterpret_cast<void*>(field.bits);
        if (candidate != nullptr && IsObject(candidate)) {
          Object* child = static_cast<Object*>(candidate);
          if (!child->marked) {
            child->marked = true;
            mark_stack_.push_back(child);
          }
        }
      }
    }
  }
}

void Heap::Collect(RootProvider& roots) {
  ++collections_;
  for (const auto& object : objects_) {
    object->marked = false;
  }
  roots.EnumerateRoots(*this);

  std::size_t surviving = 0;
  std::vector<std::unique_ptr<Object>> live;
  live.reserve(objects_.size());
  for (auto& object : objects_) {
    if (object->marked) {
      surviving += object->heap_bytes();
      live.push_back(std::move(object));
    } else {
      objects_set_.erase(object.get());
    }
  }
  objects_ = std::move(live);
  allocated_bytes_ = surviving;
  // Next collection when the heap doubles, with a floor.
  gc_threshold_ = std::max<std::size_t>(surviving * 2, 1u << 20);
}

}  // namespace minnow
