#include "src/minnow/compiler.h"

#include <cassert>
#include <utility>

#include "src/minnow/diag.h"
#include "src/minnow/parser.h"
#include "src/minnow/verifier.h"

namespace minnow {

namespace {

class FnCompiler {
 public:
  FnCompiler(const ProgramInfo& info, FunctionCode& out) : info_(info), out_(out) {}

  void CompileBody(const std::vector<StmtPtr>& body) {
    for (const auto& stmt : body) {
      EmitStmt(*stmt);
    }
  }

  void EmitStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        EmitExpr(*stmt.expr);
        if (stmt.expr->type.kind != TypeKind::kVoid) {
          Emit(Op::kPop);
        }
        break;
      case StmtKind::kVarDecl:
        if (stmt.expr != nullptr) {
          EmitExpr(*stmt.expr);
        } else {
          // Zero/null default.
          if (stmt.declared_type.IsReference()) {
            Emit(Op::kConstNull);
          } else {
            Emit(Op::kConstInt, 0);
          }
        }
        Emit(Op::kStoreLocal, stmt.slot);
        break;
      case StmtKind::kAssign:
        EmitAssign(*stmt.target, *stmt.value);
        break;
      case StmtKind::kIf: {
        EmitExpr(*stmt.expr);
        const std::size_t jump_else = EmitPatchable(Op::kJmpIfFalse);
        for (const auto& s : stmt.then_body) {
          EmitStmt(*s);
        }
        if (stmt.else_body.empty()) {
          Patch(jump_else, Here());
        } else {
          const std::size_t jump_end = EmitPatchable(Op::kJmp);
          Patch(jump_else, Here());
          for (const auto& s : stmt.else_body) {
            EmitStmt(*s);
          }
          Patch(jump_end, Here());
        }
        break;
      }
      case StmtKind::kWhile: {
        const std::size_t top = Here();
        EmitExpr(*stmt.expr);
        const std::size_t jump_out = EmitPatchable(Op::kJmpIfFalse);
        loops_.push_back({top, {}, {}});
        for (const auto& s : stmt.body) {
          EmitStmt(*s);
        }
        Emit(Op::kJmp, static_cast<std::int64_t>(top));
        Patch(jump_out, Here());
        FinishLoop();
        break;
      }
      case StmtKind::kFor: {
        if (stmt.init != nullptr) {
          EmitStmt(*stmt.init);
        }
        const std::size_t top = Here();
        std::size_t jump_out = static_cast<std::size_t>(-1);
        if (stmt.expr != nullptr) {
          EmitExpr(*stmt.expr);
          jump_out = EmitPatchable(Op::kJmpIfFalse);
        }
        loops_.push_back({static_cast<std::size_t>(-1), {}, {}});  // continue target patched below
        for (const auto& s : stmt.body) {
          EmitStmt(*s);
        }
        const std::size_t step_at = Here();
        loops_.back().continue_target = step_at;
        if (stmt.step != nullptr) {
          EmitStmt(*stmt.step);
        }
        Emit(Op::kJmp, static_cast<std::int64_t>(top));
        if (jump_out != static_cast<std::size_t>(-1)) {
          Patch(jump_out, Here());
        }
        FinishLoop();
        break;
      }
      case StmtKind::kReturn:
        if (stmt.expr != nullptr) {
          EmitExpr(*stmt.expr);
          Emit(Op::kRet);
        } else {
          Emit(Op::kRetVoid);
        }
        break;
      case StmtKind::kBreak:
        loops_.back().break_patches.push_back(EmitPatchable(Op::kJmp));
        break;
      case StmtKind::kContinue:
        loops_.back().continue_patches.push_back(EmitPatchable(Op::kJmp));
        break;
      case StmtKind::kBlock:
        for (const auto& s : stmt.body) {
          EmitStmt(*s);
        }
        break;
    }
  }

 private:
  struct LoopCtx {
    std::size_t continue_target;
    std::vector<std::size_t> break_patches;
    std::vector<std::size_t> continue_patches;
  };

  std::size_t Here() const { return out_.code.size(); }

  void Emit(Op op, std::int64_t operand = 0) { out_.code.push_back({op, operand}); }

  std::size_t EmitPatchable(Op op) {
    out_.code.push_back({op, -1});
    return out_.code.size() - 1;
  }

  void Patch(std::size_t at, std::size_t target) {
    out_.code[at].operand = static_cast<std::int64_t>(target);
  }

  void FinishLoop() {
    LoopCtx loop = std::move(loops_.back());
    loops_.pop_back();
    for (const std::size_t at : loop.break_patches) {
      Patch(at, Here());
    }
    for (const std::size_t at : loop.continue_patches) {
      Patch(at, loop.continue_target);
    }
  }

  void EmitAssign(const Expr& target, const Expr& value) {
    switch (target.kind) {
      case ExprKind::kVarRef:
        EmitExpr(value);
        Emit(target.binding == Expr::Binding::kLocal ? Op::kStoreLocal : Op::kStoreGlobal,
             target.slot);
        break;
      case ExprKind::kField:
        EmitExpr(*target.lhs);
        EmitExpr(value);
        Emit(Op::kStoreField, target.field_index);
        break;
      case ExprKind::kIndex: {
        EmitExpr(*target.lhs);
        EmitExpr(*target.rhs);
        EmitExpr(value);
        Emit(Op::kStoreElem, static_cast<std::int64_t>(target.lhs->type.elem));
        break;
      }
      default:
        assert(false && "sema admits only assignable targets");
    }
  }

  void EmitExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        Emit(Op::kConstInt, static_cast<std::int64_t>(expr.int_value));
        break;
      case ExprKind::kBoolLit:
        Emit(Op::kConstInt, expr.bool_value ? 1 : 0);
        break;
      case ExprKind::kNullLit:
        Emit(Op::kConstNull);
        break;
      case ExprKind::kVarRef:
        Emit(expr.binding == Expr::Binding::kLocal ? Op::kLoadLocal : Op::kLoadGlobal, expr.slot);
        break;
      case ExprKind::kBinary:
        EmitBinary(expr);
        break;
      case ExprKind::kUnary:
        EmitExpr(*expr.lhs);
        if (expr.op == Tok::kMinus) {
          Emit(Op::kNegI);
          if (expr.type.kind == TypeKind::kU32) {
            Emit(Op::kCastU32);
          }
        } else if (expr.op == Tok::kTilde) {
          Emit(expr.type.kind == TypeKind::kU32 ? Op::kNotU : Op::kNotI);
        } else {
          Emit(Op::kNotB);
        }
        break;
      case ExprKind::kCall:
        for (const auto& arg : expr.args) {
          EmitExpr(*arg);
        }
        if (expr.fn_index >= 0) {
          Emit(Op::kCall, expr.fn_index);
        } else {
          Emit(Op::kCallHost, expr.host_index);
        }
        break;
      case ExprKind::kCast:
        EmitExpr(*expr.lhs);
        if (expr.name == "u32") {
          Emit(Op::kCastU32);
        } else if (expr.name == "byte") {
          Emit(Op::kCastByte);
        }
        // int(x) from u32 is value-preserving (u32 slots are zero-extended).
        break;
      case ExprKind::kField:
        EmitExpr(*expr.lhs);
        Emit(Op::kLoadField, expr.field_index);
        break;
      case ExprKind::kIndex:
        EmitExpr(*expr.lhs);
        EmitExpr(*expr.rhs);
        Emit(Op::kLoadElem, static_cast<std::int64_t>(expr.lhs->type.elem));
        break;
      case ExprKind::kNewStruct:
        Emit(Op::kNewStruct, expr.type.struct_id);
        break;
      case ExprKind::kNewArray:
        EmitExpr(*expr.rhs);
        Emit(Op::kNewArray, static_cast<std::int64_t>(expr.type.elem));
        break;
      case ExprKind::kArrayLen:
        EmitExpr(*expr.lhs);
        Emit(Op::kArrayLen);
        break;
    }
  }

  void EmitBinary(const Expr& expr) {
    // Short-circuit forms first.
    if (expr.op == Tok::kAndAnd) {
      EmitExpr(*expr.lhs);
      Emit(Op::kDup);
      const std::size_t skip = EmitPatchable(Op::kJmpIfFalse);
      Emit(Op::kPop);
      EmitExpr(*expr.rhs);
      Patch(skip, Here());
      return;
    }
    if (expr.op == Tok::kOrOr) {
      EmitExpr(*expr.lhs);
      Emit(Op::kDup);
      const std::size_t skip = EmitPatchable(Op::kJmpIfTrue);
      Emit(Op::kPop);
      EmitExpr(*expr.rhs);
      Patch(skip, Here());
      return;
    }

    EmitExpr(*expr.lhs);
    EmitExpr(*expr.rhs);
    const TypeKind operand_kind = expr.lhs->type.kind;
    const bool is_u32 = operand_kind == TypeKind::kU32;
    switch (expr.op) {
      case Tok::kPlus: Emit(is_u32 ? Op::kAddU : Op::kAddI); break;
      case Tok::kMinus: Emit(is_u32 ? Op::kSubU : Op::kSubI); break;
      case Tok::kStar: Emit(is_u32 ? Op::kMulU : Op::kMulI); break;
      case Tok::kSlash: Emit(is_u32 ? Op::kDivU : Op::kDivI); break;
      case Tok::kPercent: Emit(is_u32 ? Op::kModU : Op::kModI); break;
      case Tok::kAmp: Emit(Op::kAndI); break;  // u32 inputs stay masked
      case Tok::kPipe: Emit(Op::kOrI); break;
      case Tok::kCaret: Emit(Op::kXorI); break;
      case Tok::kShl: Emit(is_u32 ? Op::kShlU : Op::kShlI); break;
      case Tok::kShr: Emit(is_u32 ? Op::kShrU : Op::kShrI); break;
      case Tok::kEq:
        Emit(expr.lhs->type.IsReference() ? Op::kEqRef : Op::kEqI);
        break;
      case Tok::kNe:
        Emit(expr.lhs->type.IsReference() ? Op::kNeRef : Op::kNeI);
        break;
      case Tok::kLt: Emit(is_u32 ? Op::kLtU : Op::kLtI); break;
      case Tok::kLe: Emit(is_u32 ? Op::kLeU : Op::kLeI); break;
      case Tok::kGt: Emit(is_u32 ? Op::kGtU : Op::kGtI); break;
      case Tok::kGe: Emit(is_u32 ? Op::kGeU : Op::kGeI); break;
      default:
        assert(false && "unexpected binary operator");
    }
  }

  const ProgramInfo& info_;
  FunctionCode& out_;
  std::vector<LoopCtx> loops_;
};

}  // namespace

Program CodeGen(Module& module, const ProgramInfo& info) {
  Program program;

  for (const auto& s : info.structs) {
    StructLayout layout;
    layout.name = s.name;
    layout.num_fields = static_cast<int>(s.field_types.size());
    for (const auto& t : s.field_types) {
      layout.field_is_ref.push_back(t.IsReference());
    }
    program.structs.push_back(std::move(layout));
  }
  for (const auto& g : info.globals) {
    program.globals.push_back({g.name, g.type.IsReference()});
  }
  for (const auto& h : info.hosts) {
    program.host_imports.push_back(
        {h.name, static_cast<int>(h.params.size()), h.ret.kind != TypeKind::kVoid});
  }

  for (const auto& fn : module.functions) {
    FunctionCode code;
    code.name = fn.name;
    code.num_params = static_cast<int>(fn.params.size());
    code.num_locals = fn.num_locals;
    code.returns_value = fn.return_type.kind != TypeKind::kVoid;
    FnCompiler compiler(info, code);
    compiler.CompileBody(fn.body);
    if (code.returns_value) {
      code.code.push_back({Op::kTrap, 0});  // fell off the end of a valued fn
    } else {
      code.code.push_back({Op::kRetVoid, 0});
    }
    program.functions.push_back(std::move(code));
  }

  // Synthesize @init for global initializers.
  {
    FunctionCode init;
    init.name = "@init";
    init.num_params = 0;
    init.num_locals = 0;
    init.returns_value = false;
    FnCompiler compiler(info, init);
    for (std::size_t g = 0; g < module.globals.size(); ++g) {
      const auto& decl = module.globals[g];
      if (decl.init != nullptr) {
        Stmt assign;
        assign.kind = StmtKind::kAssign;
        auto target = std::make_unique<Expr>();
        target->kind = ExprKind::kVarRef;
        target->binding = Expr::Binding::kGlobal;
        target->slot = static_cast<int>(g);
        target->type = decl.type;
        // EmitAssign reads target + value from the statement fields.
        assign.target = std::move(target);
        // The value expression is borrowed from the AST; clone not needed as
        // we only read it.
        assign.value = std::move(const_cast<GlobalDecl&>(decl).init);
        compiler.EmitStmt(assign);
        const_cast<GlobalDecl&>(decl).init = std::move(assign.value);
      }
    }
    init.code.push_back({Op::kRetVoid, 0});
    program.functions.push_back(std::move(init));
  }

  return program;
}

Program Compile(std::string_view source, const std::vector<HostDecl>& hosts) {
  Module module = Parse(source);
  const ProgramInfo info = Analyze(module, hosts);
  Program program = CodeGen(module, info);
  const VerifyReport report = VerifyProgram(program);
  if (!report.ok) {
    throw VerifyError("compiler produced unverifiable code: " + report.message);
  }
  return program;
}

}  // namespace minnow
