#include "src/minnow/vm.h"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace minnow {

namespace {

constexpr std::uint64_t kU32Mask = 0xFFFFFFFFull;

Object* AsObject(Value v) { return reinterpret_cast<Object*>(v.bits); }

Object* RequireObject(Value v, const char* what) {
  Object* object = AsObject(v);
  if (object == nullptr) {
    throw Trap(std::string("null dereference in ") + what);
  }
  return object;
}

std::size_t CheckIndex(const Object* array, std::int64_t index) {
  const std::size_t length = array->array_length();
  if (index < 0 || static_cast<std::size_t>(index) >= length) {
    throw Trap("array index " + std::to_string(index) + " out of bounds [0, " +
               std::to_string(length) + ")");
  }
  return static_cast<std::size_t>(index);
}

}  // namespace

VM::VM(Program program, const VmOptions& options)
    : program_(std::move(program)),
      options_(options),
      heap_(options.heap_limit),
      stack_(options.stack_slots),
      hosts_(program_.host_imports.size()),
      globals_(program_.globals.size()),
      fuel_(options.fuel) {}

void VM::BindHost(const std::string& name, HostFn fn) {
  for (std::size_t i = 0; i < program_.host_imports.size(); ++i) {
    if (program_.host_imports[i].name == name) {
      hosts_[i] = std::move(fn);
      return;
    }
  }
  throw std::invalid_argument("no host import named '" + name + "'");
}

void VM::RunInit() {
  const int init = program_.FindFunction("@init");
  if (init >= 0) {
    Execute(init, {});
  }
  init_ran_ = true;
}

Value VM::Call(const std::string& name, std::span<const Value> args) {
  const int index = program_.FindFunction(name);
  if (index < 0) {
    throw std::invalid_argument("no function named '" + name + "'");
  }
  return CallIndex(index, args);
}

Value VM::CallIndex(int fn_index, std::span<const Value> args) {
  if (fn_index < 0 || static_cast<std::size_t>(fn_index) >= program_.functions.size()) {
    throw std::invalid_argument("function index out of range");
  }
  const auto& fn = program_.functions[static_cast<std::size_t>(fn_index)];
  if (static_cast<int>(args.size()) != fn.num_params) {
    throw std::invalid_argument("'" + fn.name + "' expects " + std::to_string(fn.num_params) +
                                " arguments");
  }
  return Execute(fn_index, args);
}

void VM::MaybeCollect(std::size_t incoming_bytes) {
  if (heap_.ShouldCollect(incoming_bytes)) {
    heap_.Collect(*this);
  }
}

void VM::EnumerateRoots(Heap& heap) {
  // Precise: reference globals.
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].is_ref) {
      void* candidate = reinterpret_cast<void*>(globals_[g].bits);
      if (candidate != nullptr && heap.IsObject(candidate)) {
        heap.Mark(static_cast<Object*>(candidate));
      }
    }
  }
  // Conservative: every live stack slot.
  for (std::size_t i = 0; i < sp_; ++i) {
    void* candidate = reinterpret_cast<void*>(stack_[i].bits);
    if (candidate != nullptr && heap.IsObject(candidate)) {
      heap.Mark(static_cast<Object*>(candidate));
    }
  }
  // Host pins.
  for (Object* object : pinned_) {
    heap.Mark(object);
  }
}

Object* VM::NewByteArray(std::span<const std::uint8_t> data) {
  MaybeCollect(data.size());
  Object* array = heap_.NewArray(TypeKind::kByte, data.size());
  std::memcpy(array->bytes.data(), data.data(), data.size());
  return array;
}

Object* VM::NewIntArray(std::span<const std::int64_t> data) {
  MaybeCollect(data.size() * 8);
  Object* array = heap_.NewArray(TypeKind::kInt, data.size());
  std::memcpy(array->longs.data(), data.data(), data.size() * sizeof(std::int64_t));
  return array;
}

Object* VM::NewU32Array(std::size_t length) {
  MaybeCollect(length * 4);
  return heap_.NewArray(TypeKind::kU32, length);
}

Value VM::GetGlobal(const std::string& name) const {
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].name == name) {
      return globals_[g];
    }
  }
  throw std::invalid_argument("no global named '" + name + "'");
}

void VM::SetGlobal(const std::string& name, Value value) {
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].name == name) {
      globals_[g] = value;
      return;
    }
  }
  throw std::invalid_argument("no global named '" + name + "'");
}

Value VM::Execute(int fn_index, std::span<const Value> args) {
  const std::size_t entry_sp = sp_;
  const std::size_t entry_frames = frames_.size();

  auto push_frame = [&](int index, std::span<const Value> call_args) {
    const auto& fn = program_.functions[static_cast<std::size_t>(index)];
    if (frames_.size() - entry_frames >= options_.max_call_depth) {
      throw Trap("call depth limit exceeded");
    }
    const std::size_t base = sp_;
    const std::size_t needed =
        static_cast<std::size_t>(fn.num_locals) + static_cast<std::size_t>(fn.max_stack);
    if (base + needed > stack_.size()) {
      throw Trap("VM stack overflow");
    }
    for (std::size_t i = 0; i < call_args.size(); ++i) {
      stack_[base + i] = call_args[i];
    }
    for (std::size_t i = call_args.size(); i < static_cast<std::size_t>(fn.num_locals); ++i) {
      stack_[base + i] = Value::Null();
    }
    sp_ = base + static_cast<std::size_t>(fn.num_locals);
    frames_.push_back({&fn, 0, base});
  };

  try {
    push_frame(fn_index, args);

    Value result = Value::Null();
    while (frames_.size() > entry_frames) {
      Frame& frame = frames_.back();
      const Insn insn = frame.fn->code[frame.pc];
      ++frame.pc;
      ++instructions_retired_;
      if (fuel_ >= 0 && fuel_-- == 0) {
        throw Trap("fuel exhausted: graft preempted");
      }

      switch (insn.op) {
        case Op::kNop:
          break;
        case Op::kConstInt:
          stack_[sp_++] = Value::Int(insn.operand);
          break;
        case Op::kConstNull:
          stack_[sp_++] = Value::Null();
          break;
        case Op::kLoadLocal:
          stack_[sp_++] = stack_[frame.base + static_cast<std::size_t>(insn.operand)];
          break;
        case Op::kStoreLocal:
          stack_[frame.base + static_cast<std::size_t>(insn.operand)] = stack_[--sp_];
          break;
        case Op::kLoadGlobal:
          stack_[sp_++] = globals_[static_cast<std::size_t>(insn.operand)];
          break;
        case Op::kStoreGlobal:
          globals_[static_cast<std::size_t>(insn.operand)] = stack_[--sp_];
          break;
        case Op::kPop:
          --sp_;
          break;
        case Op::kDup:
          stack_[sp_] = stack_[sp_ - 1];
          ++sp_;
          break;

#define GRAFTLAB_BIN_I(OP)                                                       \
  {                                                                              \
    const std::int64_t b = stack_[--sp_].AsInt();                                \
    const std::int64_t a = stack_[sp_ - 1].AsInt();                              \
    stack_[sp_ - 1] = Value::Int(OP);                                            \
  }                                                                              \
  break

        case Op::kAddI:
          GRAFTLAB_BIN_I(static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                                   static_cast<std::uint64_t>(b)));
        case Op::kSubI:
          GRAFTLAB_BIN_I(static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                                   static_cast<std::uint64_t>(b)));
        case Op::kMulI:
          GRAFTLAB_BIN_I(static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                                   static_cast<std::uint64_t>(b)));
        case Op::kDivI: {
          const std::int64_t b = stack_[--sp_].AsInt();
          const std::int64_t a = stack_[sp_ - 1].AsInt();
          if (b == 0) {
            throw Trap("integer division by zero");
          }
          if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
            throw Trap("integer division overflow");
          }
          stack_[sp_ - 1] = Value::Int(a / b);
          break;
        }
        case Op::kModI: {
          const std::int64_t b = stack_[--sp_].AsInt();
          const std::int64_t a = stack_[sp_ - 1].AsInt();
          if (b == 0) {
            throw Trap("integer modulo by zero");
          }
          if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
            throw Trap("integer modulo overflow");
          }
          stack_[sp_ - 1] = Value::Int(a % b);
          break;
        }
        case Op::kNegI:
          stack_[sp_ - 1] =
              Value::Int(static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(
                                                           stack_[sp_ - 1].AsInt())));
          break;
        case Op::kAndI:
          GRAFTLAB_BIN_I(a & b);
        case Op::kOrI:
          GRAFTLAB_BIN_I(a | b);
        case Op::kXorI:
          GRAFTLAB_BIN_I(a ^ b);
        case Op::kShlI:
          GRAFTLAB_BIN_I(static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                                   << (static_cast<std::uint64_t>(b) & 63)));
        case Op::kShrI:
          GRAFTLAB_BIN_I(a >> (static_cast<std::uint64_t>(b) & 63));
        case Op::kNotI:
          stack_[sp_ - 1] = Value::Int(~stack_[sp_ - 1].AsInt());
          break;

#define GRAFTLAB_BIN_U(EXPR)                                  \
  {                                                           \
    const std::uint64_t b = stack_[--sp_].bits & kU32Mask;    \
    const std::uint64_t a = stack_[sp_ - 1].bits & kU32Mask;  \
    stack_[sp_ - 1].bits = (EXPR) & kU32Mask;                 \
  }                                                           \
  break

        case Op::kAddU:
          GRAFTLAB_BIN_U(a + b);
        case Op::kSubU:
          GRAFTLAB_BIN_U(a - b);
        case Op::kMulU:
          GRAFTLAB_BIN_U(a * b);
        case Op::kDivU: {
          const std::uint64_t b = stack_[--sp_].bits & kU32Mask;
          const std::uint64_t a = stack_[sp_ - 1].bits & kU32Mask;
          if (b == 0) {
            throw Trap("u32 division by zero");
          }
          stack_[sp_ - 1].bits = a / b;
          break;
        }
        case Op::kModU: {
          const std::uint64_t b = stack_[--sp_].bits & kU32Mask;
          const std::uint64_t a = stack_[sp_ - 1].bits & kU32Mask;
          if (b == 0) {
            throw Trap("u32 modulo by zero");
          }
          stack_[sp_ - 1].bits = a % b;
          break;
        }
        case Op::kShlU:
          GRAFTLAB_BIN_U(a << (b & 31));
        case Op::kShrU:
          GRAFTLAB_BIN_U(a >> (b & 31));
        case Op::kNotU:
          stack_[sp_ - 1].bits = (~stack_[sp_ - 1].bits) & kU32Mask;
          break;

#define GRAFTLAB_CMP(TYPE, EXPR)                   \
  {                                                \
    const TYPE b = static_cast<TYPE>(stack_[--sp_].bits); \
    const TYPE a = static_cast<TYPE>(stack_[sp_ - 1].bits); \
    stack_[sp_ - 1] = Value::Int((EXPR) ? 1 : 0);  \
  }                                                \
  break

        case Op::kEqI:
          GRAFTLAB_CMP(std::int64_t, a == b);
        case Op::kNeI:
          GRAFTLAB_CMP(std::int64_t, a != b);
        case Op::kLtI:
          GRAFTLAB_CMP(std::int64_t, a < b);
        case Op::kLeI:
          GRAFTLAB_CMP(std::int64_t, a <= b);
        case Op::kGtI:
          GRAFTLAB_CMP(std::int64_t, a > b);
        case Op::kGeI:
          GRAFTLAB_CMP(std::int64_t, a >= b);
        case Op::kLtU:
          GRAFTLAB_CMP(std::uint64_t, a < b);
        case Op::kLeU:
          GRAFTLAB_CMP(std::uint64_t, a <= b);
        case Op::kGtU:
          GRAFTLAB_CMP(std::uint64_t, a > b);
        case Op::kGeU:
          GRAFTLAB_CMP(std::uint64_t, a >= b);
        case Op::kEqRef:
          GRAFTLAB_CMP(std::uint64_t, a == b);
        case Op::kNeRef:
          GRAFTLAB_CMP(std::uint64_t, a != b);
        case Op::kNotB:
          stack_[sp_ - 1] = Value::Int(stack_[sp_ - 1].bits == 0 ? 1 : 0);
          break;

        case Op::kCastU32:
          stack_[sp_ - 1].bits &= kU32Mask;
          break;
        case Op::kCastByte:
          stack_[sp_ - 1].bits &= 0xFF;
          break;

        case Op::kJmp:
          frame.pc = static_cast<std::size_t>(insn.operand);
          break;
        case Op::kJmpIfFalse: {
          const Value v = stack_[--sp_];
          if (v.bits == 0) {
            frame.pc = static_cast<std::size_t>(insn.operand);
          }
          break;
        }
        case Op::kJmpIfTrue: {
          const Value v = stack_[--sp_];
          if (v.bits != 0) {
            frame.pc = static_cast<std::size_t>(insn.operand);
          }
          break;
        }

        case Op::kCall: {
          const auto& callee = program_.functions[static_cast<std::size_t>(insn.operand)];
          const std::size_t argc = static_cast<std::size_t>(callee.num_params);
          sp_ -= argc;
          // Args are copied into the callee frame from the current stack top.
          push_frame(static_cast<int>(insn.operand),
                     std::span<const Value>(&stack_[sp_], argc));
          break;
        }
        case Op::kCallHost: {
          const auto& import = program_.host_imports[static_cast<std::size_t>(insn.operand)];
          const auto& host = hosts_[static_cast<std::size_t>(insn.operand)];
          if (!host) {
            throw Trap("unbound host import '" + import.name + "'");
          }
          const std::size_t argc = static_cast<std::size_t>(import.arity);
          sp_ -= argc;
          const Value ret = host(*this, std::span<const Value>(&stack_[sp_], argc));
          if (import.returns_value) {
            stack_[sp_++] = ret;
          }
          break;
        }
        case Op::kRet: {
          const Value ret = stack_[--sp_];
          sp_ = frame.base;
          frames_.pop_back();
          if (frames_.size() > entry_frames) {
            stack_[sp_++] = ret;
          } else {
            result = ret;
          }
          break;
        }
        case Op::kRetVoid:
          sp_ = frame.base;
          frames_.pop_back();
          break;

        case Op::kNewStruct: {
          const auto& layout = program_.structs[static_cast<std::size_t>(insn.operand)];
          MaybeCollect(static_cast<std::size_t>(layout.num_fields) * 8 + 64);
          stack_[sp_++] = Value::Ref(heap_.NewStruct(layout, static_cast<int>(insn.operand)));
          break;
        }
        case Op::kNewArray: {
          const std::int64_t length = stack_[--sp_].AsInt();
          if (length < 0 || length > (1 << 28)) {
            throw Trap("bad array length " + std::to_string(length));
          }
          MaybeCollect(static_cast<std::size_t>(length) * 8 + 64);
          stack_[sp_++] = Value::Ref(
              heap_.NewArray(static_cast<TypeKind>(insn.operand),
                             static_cast<std::size_t>(length)));
          break;
        }
        case Op::kLoadField: {
          Object* object = RequireObject(stack_[sp_ - 1], "field load");
          const std::size_t index = static_cast<std::size_t>(insn.operand);
          if (object->kind != Object::Kind::kStruct || index >= object->fields.size()) {
            throw Trap("bad field access");
          }
          stack_[sp_ - 1] = object->fields[index];
          break;
        }
        case Op::kStoreField: {
          const Value value = stack_[--sp_];
          Object* object = RequireObject(stack_[--sp_], "field store");
          const std::size_t index = static_cast<std::size_t>(insn.operand);
          if (object->kind != Object::Kind::kStruct || index >= object->fields.size()) {
            throw Trap("bad field access");
          }
          object->fields[index] = value;
          break;
        }
        case Op::kLoadElem: {
          const std::int64_t raw_index = stack_[--sp_].AsInt();
          Object* array = RequireObject(stack_[sp_ - 1], "array load");
          if (array->kind != Object::Kind::kArray) {
            throw Trap("element load from non-array");
          }
          const std::size_t index = CheckIndex(array, raw_index);
          Value out;
          switch (array->elem) {
            case TypeKind::kInt:
              out = Value::Int(array->longs[index]);
              break;
            case TypeKind::kU32:
              out.bits = array->words[index];
              break;
            default:
              out = Value::Int(array->bytes[index]);
              break;
          }
          stack_[sp_ - 1] = out;
          break;
        }
        case Op::kStoreElem: {
          const Value value = stack_[--sp_];
          const std::int64_t raw_index = stack_[--sp_].AsInt();
          Object* array = RequireObject(stack_[--sp_], "array store");
          if (array->kind != Object::Kind::kArray) {
            throw Trap("element store to non-array");
          }
          const std::size_t index = CheckIndex(array, raw_index);
          switch (array->elem) {
            case TypeKind::kInt:
              array->longs[index] = value.AsInt();
              break;
            case TypeKind::kU32:
              array->words[index] = value.AsU32();
              break;
            case TypeKind::kBool:
              array->bytes[index] = value.bits != 0 ? 1 : 0;
              break;
            default:
              array->bytes[index] = static_cast<std::uint8_t>(value.bits);
              break;
          }
          break;
        }
        case Op::kArrayLen: {
          Object* array = RequireObject(stack_[sp_ - 1], "array length");
          if (array->kind != Object::Kind::kArray) {
            throw Trap("length of non-array");
          }
          stack_[sp_ - 1] = Value::Int(static_cast<std::int64_t>(array->array_length()));
          break;
        }
        case Op::kTrap:
          throw Trap("function fell off the end without returning a value");
      }
    }

#undef GRAFTLAB_BIN_I
#undef GRAFTLAB_BIN_U
#undef GRAFTLAB_CMP

    return result;
  } catch (...) {
    // Unwind to the caller's state so the VM stays usable after a trap.
    frames_.resize(entry_frames);
    sp_ = entry_sp;
    throw;
  }
}

}  // namespace minnow
