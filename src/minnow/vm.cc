#include "src/minnow/vm.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/minnow/elide.h"
#include "src/minnow/jit.h"

// The computed-goto dispatcher needs GNU labels-as-values; the CMake option
// GRAFTLAB_THREADED_DISPATCH (on by default) injects the macro, and the
// compiler check keeps non-GNU builds on the portable switch loop.
#if defined(GRAFTLAB_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define GRAFTLAB_VM_COMPUTED_GOTO 1
#else
#define GRAFTLAB_VM_COMPUTED_GOTO 0
#endif

namespace minnow {

namespace {

constexpr std::uint64_t kU32Mask = 0xFFFFFFFFull;

Object* AsObject(Value v) { return reinterpret_cast<Object*>(v.bits); }

Object* RequireObject(Value v, const char* what) {
  Object* object = AsObject(v);
  if (object == nullptr) {
    throw Trap(std::string("null dereference in ") + what);
  }
  return object;
}

std::size_t CheckIndex(const Object* array, std::int64_t index) {
  const std::size_t length = array->array_length();
  if (index < 0 || static_cast<std::size_t>(index) >= length) {
    throw Trap("array index " + std::to_string(index) + " out of bounds [0, " +
               std::to_string(length) + ")");
  }
  return static_cast<std::size_t>(index);
}

// Extra frame slots beyond max_call_depth: the per-entry depth limit is
// relative to the entry frame, so a host function that reenters the VM may
// legitimately stack a few more frames than one entry alone could.
constexpr std::size_t kReentrySlack = 64;

std::vector<std::pair<std::string, std::uint64_t>> SortedCounts(
    std::vector<std::pair<std::string, std::uint64_t>> counts) {
  std::sort(counts.begin(), counts.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return counts;
}

}  // namespace

VM::VM(Program program, const VmOptions& options)
    : program_(std::move(program)),
      options_(options),
      heap_(options.heap_limit),
      arena_(options.stack_slots * sizeof(Value) +
             (options.max_call_depth + kReentrySlack) * sizeof(Frame) +
             (options.profile_opcodes ? (kNumOps + 2) * kNumOps * sizeof(std::uint64_t) : 0) +
             256),
      hosts_(program_.host_imports.size()),
      globals_(program_.globals.size()),
      fuel_(options.fuel) {
  stack_ = arena_.NewArray<Value>(options.stack_slots);
  stack_slots_ = options.stack_slots;
  frame_capacity_ = options.max_call_depth + kReentrySlack;
  frames_ = arena_.NewArray<Frame>(frame_capacity_);
  if (options.profile_opcodes) {
    op_counts_ = arena_.NewArray<std::uint64_t>(kNumOps);
    pair_counts_ = arena_.NewArray<std::uint64_t>((kNumOps + 1) * kNumOps);
  }
  threaded_ = options.dispatch != DispatchMode::kSwitch && ThreadedDispatchAvailable();
  if (options.elide_checks && !program_.elision.attached) {
    ElideChecks(program_);
  } else if (program_.elision.attached && !ElisionCertificateValid(program_)) {
    // A stamped program whose code no longer matches its proof is refused
    // outright — running it would execute unchecked accesses unproven.
    throw std::invalid_argument("elision certificate does not match the code");
  }
  // Native compilation happens after elision so `.nc` sites the certificate
  // proved safe are emitted without check instructions. Profiling VMs stay on
  // the interpreter: native code does not feed the opcode/pair tables.
  if (options.dispatch == DispatchMode::kJit && !options.profile_opcodes &&
      Jit::Available()) {
    jit_ = Jit::Compile(*this);
  }
}

VM::~VM() = default;

bool VM::JitDispatchAvailable() { return Jit::Available(); }

const JitStats* VM::jit_stats() const {
  return jit_ != nullptr ? &jit_->stats() : nullptr;
}

bool VM::ThreadedDispatchAvailable() {
#if GRAFTLAB_VM_COMPUTED_GOTO
  return true;
#else
  return false;
#endif
}

void VM::BindHost(const std::string& name, HostFn fn) {
  for (std::size_t i = 0; i < program_.host_imports.size(); ++i) {
    if (program_.host_imports[i].name == name) {
      hosts_[i] = std::move(fn);
      return;
    }
  }
  throw std::invalid_argument("no host import named '" + name + "'");
}

void VM::RunInit() {
  const int init = program_.FindFunction("@init");
  if (init >= 0) {
    Execute(init, {});
  }
  init_ran_ = true;
}

Value VM::Call(const std::string& name, std::span<const Value> args) {
  const int index = program_.FindFunction(name);
  if (index < 0) {
    throw std::invalid_argument("no function named '" + name + "'");
  }
  return CallIndex(index, args);
}

Value VM::CallIndex(int fn_index, std::span<const Value> args) {
  if (fn_index < 0 || static_cast<std::size_t>(fn_index) >= program_.functions.size()) {
    throw std::invalid_argument("function index out of range");
  }
  const auto& fn = program_.functions[static_cast<std::size_t>(fn_index)];
  if (static_cast<int>(args.size()) != fn.num_params) {
    throw std::invalid_argument("'" + fn.name + "' expects " + std::to_string(fn.num_params) +
                                " arguments");
  }
  // The elision proof's global invariants assume initialized globals; a
  // certified program may not run anything before RunInit.
  if (program_.elision.attached && !init_ran_) {
    throw Trap("certified program called before RunInit");
  }
  return Execute(fn_index, args);
}

void VM::MaybeCollect(std::size_t incoming_bytes) {
  if (heap_.ShouldCollect(incoming_bytes)) {
    heap_.Collect(*this);
  }
}

void VM::EnumerateRoots(Heap& heap) {
  // Precise: reference globals.
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].is_ref) {
      void* candidate = reinterpret_cast<void*>(globals_[g].bits);
      if (candidate != nullptr && heap.IsObject(candidate)) {
        heap.Mark(static_cast<Object*>(candidate));
      }
    }
  }
  // Conservative: every live stack slot.
  for (std::size_t i = 0; i < sp_; ++i) {
    void* candidate = reinterpret_cast<void*>(stack_[i].bits);
    if (candidate != nullptr && heap.IsObject(candidate)) {
      heap.Mark(static_cast<Object*>(candidate));
    }
  }
  // Host pins.
  for (Object* object : pinned_) {
    heap.Mark(object);
  }
}

Object* VM::NewByteArray(std::span<const std::uint8_t> data) {
  MaybeCollect(data.size());
  Object* array = heap_.NewArray(TypeKind::kByte, data.size());
  std::memcpy(array->bytes.data(), data.data(), data.size());
  return array;
}

Object* VM::NewIntArray(std::span<const std::int64_t> data) {
  MaybeCollect(data.size() * 8);
  Object* array = heap_.NewArray(TypeKind::kInt, data.size());
  std::memcpy(array->longs.data(), data.data(), data.size() * sizeof(std::int64_t));
  return array;
}

Object* VM::NewU32Array(std::size_t length) {
  MaybeCollect(length * 4);
  return heap_.NewArray(TypeKind::kU32, length);
}

Value VM::GetGlobal(const std::string& name) const {
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].name == name) {
      return globals_[g];
    }
  }
  throw std::invalid_argument("no global named '" + name + "'");
}

void VM::SetGlobal(const std::string& name, Value value) {
  // Host writes bypass the dataflow that established the elision proof's
  // global invariants, so certified programs refuse them.
  if (program_.elision.attached) {
    throw std::invalid_argument("SetGlobal on a certified (check-elided) program");
  }
  for (std::size_t g = 0; g < globals_.size(); ++g) {
    if (program_.globals[g].name == name) {
      globals_[g] = value;
      return;
    }
  }
  throw std::invalid_argument("no global named '" + name + "'");
}

std::vector<std::pair<std::string, std::uint64_t>> VM::OpcodeCounts() const {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  if (op_counts_ == nullptr) {
    return counts;
  }
  for (std::size_t op = 0; op < kNumOps; ++op) {
    if (op_counts_[op] > 0) {
      counts.emplace_back(OpName(static_cast<Op>(op)), op_counts_[op]);
    }
  }
  return SortedCounts(std::move(counts));
}

std::vector<std::pair<std::string, std::uint64_t>> VM::OpcodePairCounts(std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  if (pair_counts_ == nullptr) {
    return counts;
  }
  // Row kNumOps is the entry sentinel (no predecessor) — not a real pair.
  for (std::size_t prev = 0; prev < kNumOps; ++prev) {
    for (std::size_t cur = 0; cur < kNumOps; ++cur) {
      const std::uint64_t n = pair_counts_[prev * kNumOps + cur];
      if (n > 0) {
        counts.emplace_back(std::string(OpName(static_cast<Op>(prev))) + ">" +
                                OpName(static_cast<Op>(cur)),
                            n);
      }
    }
  }
  counts = SortedCounts(std::move(counts));
  if (counts.size() > top_n) {
    counts.resize(top_n);
  }
  return counts;
}

void VM::PushFrame(const FunctionCode& fn, std::size_t entry_frames) {
  if (nframes_ - entry_frames >= options_.max_call_depth || nframes_ == frame_capacity_) {
    throw Trap("call depth limit exceeded");
  }
  const std::size_t base = sp_ - static_cast<std::size_t>(fn.num_params);
  const std::size_t needed =
      static_cast<std::size_t>(fn.num_locals) + static_cast<std::size_t>(fn.max_stack);
  if (base + needed > stack_slots_) {
    throw Trap("VM stack overflow");
  }
  // The args already sit at base..base+num_params; null the rest.
  for (std::size_t i = static_cast<std::size_t>(fn.num_params);
       i < static_cast<std::size_t>(fn.num_locals); ++i) {
    stack_[base + i] = Value::Null();
  }
  sp_ = base + static_cast<std::size_t>(fn.num_locals);
  frames_[nframes_++] = Frame{&fn, 0, base};
}

Value VM::Execute(int fn_index, std::span<const Value> args) {
  const std::size_t entry_sp = sp_;
  const std::size_t entry_frames = nframes_;
  try {
    const auto& fn = program_.functions[static_cast<std::size_t>(fn_index)];
    if (sp_ + args.size() > stack_slots_) {
      throw Trap("VM stack overflow");
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      stack_[sp_ + i] = args[i];
    }
    sp_ += args.size();
    PushFrame(fn, entry_frames);
    if (jit_ != nullptr) {
      return RunJit(fn_index, entry_frames);
    }
    return threaded_ ? RunThreaded(entry_frames) : RunSwitch(entry_frames);
  } catch (...) {
    // Unwind to the caller's state so the VM stays usable after a trap.
    nframes_ = entry_frames;
    sp_ = entry_sp;
    throw;
  }
}

Value VM::RunJit(int fn_index, std::size_t entry_frames) {
  if (jit_->compiled(fn_index)) {
    // ctx is authoritative for the mutable registers of execution while
    // native code runs; the entry frame was already pushed by Execute.
    JitCtx ctx;
    ctx.vm = this;
    ctx.stack = stack_;
    ctx.globals = globals_.data();
    ctx.frames = frames_;
    ctx.nframes = nframes_;
    ctx.sp = sp_;
    ctx.fuel = fuel_;
    ctx.retired = instructions_retired_;
    ctx.entry_frames = entry_frames;
    const std::uint32_t status = jit_->Enter(ctx, fn_index);
    nframes_ = ctx.nframes;
    sp_ = ctx.sp;
    fuel_ = ctx.fuel;
    instructions_retired_ = ctx.retired;
    if (status == kJitEntryReturned) {
      return Value{ctx.ret_bits};
    }
    if (status == kJitException) {
      std::exception_ptr pending = std::move(jit_pending_);
      jit_pending_ = nullptr;
      std::rethrow_exception(pending);
    }
    // kJitDeopt: native code reconstructed interpreter frame state (pc at the
    // instruction to re-execute, sp committed, ledgers corrected). Deopt is
    // wholesale — the rest of this entry runs interpreted, which keeps the
    // exit protocol trivial and the interpreter the single source of truth
    // for every slow path.
    jit_->CountDeopt();
  }
  return threaded_ ? RunThreaded(entry_frames) : RunSwitch(entry_frames);
}

// Shared per-instruction bookkeeping: retire, charge fuel, profile. `ip` must
// already point at the fetched instruction.
#define GRAFTLAB_VM_PRELUDE()                                          \
  do {                                                                 \
    ++instructions_retired_;                                           \
    if (fuel_ >= 0 && fuel_-- == 0) {                                  \
      throw Trap("fuel exhausted: graft preempted");                   \
    }                                                                  \
    if (op_counts_ != nullptr) {                                       \
      const auto cur = static_cast<std::size_t>(ip->op);               \
      ++op_counts_[cur];                                               \
      ++pair_counts_[prev_op * kNumOps + cur];                         \
      prev_op = cur;                                                   \
    }                                                                  \
  } while (0)

Value VM::RunSwitch(std::size_t entry_frames) {
  Frame* frame = &frames_[nframes_ - 1];
  const Insn* code = frame->fn->code.data();
  std::size_t pc = frame->pc;
  Value* const stack = stack_;
  std::size_t sp = sp_;
  std::size_t prev_op = kNumOps;  // profile sentinel: no predecessor yet
  const Insn* ip;

  for (;;) {
    ip = &code[pc++];
    GRAFTLAB_VM_PRELUDE();
    switch (ip->op) {
#define GRAFTLAB_VM_OP(name) case Op::name:
#define GRAFTLAB_VM_END_OP break;
#include "src/minnow/vm_dispatch.inc"
#undef GRAFTLAB_VM_OP
#undef GRAFTLAB_VM_END_OP
    }
  }
}

Value VM::RunThreaded(std::size_t entry_frames) {
#if GRAFTLAB_VM_COMPUTED_GOTO
  // One label per opcode, generated from the same X-macro as the enum, so
  // the table cannot drift out of order.
  static const void* const kLabels[] = {
#define GRAFTLAB_MINNOW_LABEL_ENTRY(name) &&Lbl_##name,
      GRAFTLAB_MINNOW_OPS(GRAFTLAB_MINNOW_LABEL_ENTRY)
#undef GRAFTLAB_MINNOW_LABEL_ENTRY
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumOps);

  Frame* frame = &frames_[nframes_ - 1];
  const Insn* code = frame->fn->code.data();
  std::size_t pc = frame->pc;
  Value* const stack = stack_;
  std::size_t sp = sp_;
  std::size_t prev_op = kNumOps;
  const Insn* ip;

// The dispatch is replicated at the end of every opcode body (instead of
// jumping back to one shared site) so the branch predictor sees one indirect
// branch per opcode — the classic win of token threading over switch.
#define GRAFTLAB_VM_DISPATCH()                           \
  do {                                                   \
    ip = &code[pc++];                                    \
    GRAFTLAB_VM_PRELUDE();                               \
    goto* kLabels[static_cast<std::size_t>(ip->op)];     \
  } while (0)

  GRAFTLAB_VM_DISPATCH();

#define GRAFTLAB_VM_OP(name) Lbl_##name:
#define GRAFTLAB_VM_END_OP GRAFTLAB_VM_DISPATCH();
#include "src/minnow/vm_dispatch.inc"
#undef GRAFTLAB_VM_OP
#undef GRAFTLAB_VM_END_OP
#undef GRAFTLAB_VM_DISPATCH

  __builtin_unreachable();
#else
  return RunSwitch(entry_frames);
#endif
}

#undef GRAFTLAB_VM_PRELUDE

}  // namespace minnow
