// Load-time check elision for verified Minnow bytecode.
//
// The paper's safety tax is paid one check at a time: every array access is
// bounds-checked, every dereference null-checked, every division validated.
// ElideChecks is the 2020s answer (Rex/MOAT-style): an abstract interpreter
// runs over the *verified* bytecode at load time, computes per-instruction
// facts — value ranges, nullability, array-ness and array-length lower
// bounds — by forward dataflow, and rewrites accesses whose checks it can
// prove dead to the unchecked opcode variants (load.arr.nc, store.arr.nc,
// deref.nc, div.nz, ...). The rewrite is strictly 1:1, so fuel accounting
// and retired-instruction counts are bit-identical to the checked program —
// the differential fuzzer asserts exactly that.
//
// Soundness rests on four pillars:
//
//   1. The program has passed VerifyProgram, so stack depths are consistent
//      and every reachable merge point has one static shape. ElideChecks
//      re-verifies and refuses programs that do not hold up.
//   2. Function parameters are TOP: the host may call any function by name
//      with arbitrary arguments, so nothing is assumed about them.
//   3. Global facts are program-wide invariants: the join of the @init end
//      state and every value any function ever stores to the global,
//      iterated to fixpoint (with widening). Flow-sensitive refinement of a
//      global is killed back to its invariant at every call, because the
//      callee may store to it. If @init itself calls a function, all global
//      invariants are dropped — code would run before initialization
//      completed. The certificate therefore carries a precondition the VM
//      enforces: a certified program refuses Call before RunInit, and
//      refuses host-side SetGlobal outright.
//   4. An elided check must imply exactly what the runtime check tested:
//      nonnull means bits != 0 (what RequireObject tests), in-bounds means
//      0 <= index < a provable lower bound on the array's length (lengths
//      are immutable after kNewArray), and div.nz requires both a nonzero
//      divisor *and* ruling out INT64_MIN / -1.
//
// The proof is bound to the rewritten code by an FNV-1a hash stamped into
// Program::elision; VerifyProgram and the regir translator refuse unchecked
// opcodes whose certificate is missing or stale.

#ifndef GRAFTLAB_SRC_MINNOW_ELIDE_H_
#define GRAFTLAB_SRC_MINNOW_ELIDE_H_

#include <cstdint>
#include <string>

#include "src/minnow/bytecode.h"
#include "src/minnow/types.h"

namespace minnow {

// One abstract 64-bit VM slot. A single lattice covers both interpretations
// of a slot: [lo, hi] is the signed range of the raw bits, nonnull means the
// bits are provably nonzero (the exact predicate the elided null check would
// have tested), and the array facts describe the object the bits point at
// when the slot holds a reference the checked VM would have accepted.
struct AbsVal {
  std::int64_t lo = INT64_MIN;
  std::int64_t hi = INT64_MAX;
  bool nonnull = false;      // bits != 0 proven
  bool is_array = false;     // proven reference to an array object
  bool elem_known = false;   // is_array and the element kind is proven
  TypeKind elem = TypeKind::kVoid;
  std::int64_t len_lo = 0;   // proven lower bound on the array's length

  static AbsVal Top() { return AbsVal{}; }
  static AbsVal Const(std::int64_t v) {
    AbsVal out;
    out.lo = v;
    out.hi = v;
    out.nonnull = v != 0;
    return out;
  }
  static AbsVal Null() { return Const(0); }
  // An integer known only by range; nonnull follows from the range.
  static AbsVal Range(std::int64_t lo, std::int64_t hi) {
    AbsVal out;
    out.lo = lo;
    out.hi = hi;
    out.nonnull = lo > 0 || hi < 0;
    return out;
  }

  bool ExcludesZero() const { return lo > 0 || hi < 0; }

  friend bool operator==(const AbsVal& a, const AbsVal& b) {
    return a.lo == b.lo && a.hi == b.hi && a.nonnull == b.nonnull &&
           a.is_array == b.is_array && a.elem_known == b.elem_known && a.elem == b.elem &&
           a.len_lo == b.len_lo;
  }
};

// Least upper bound: the fact that holds on either path into a merge.
AbsVal Join(const AbsVal& a, const AbsVal& b);

// Widening for loop heads: `next` must be Join(prev, incoming). Any bound
// still growing is blown to its extreme so fixpoints terminate; facts that
// only shrink (nonnull, is_array, len_lo toward 0) need no acceleration.
AbsVal Widen(const AbsVal& prev, const AbsVal& next);

// Static rewrite counts from one ElideChecks run.
struct ElideStats {
  std::uint64_t checks_elided = 0;
  std::uint64_t checks_retained = 0;
  std::uint64_t elem_loads_elided = 0;
  std::uint64_t elem_stores_elided = 0;
  std::uint64_t field_accesses_elided = 0;
  std::uint64_t divs_elided = 0;
  std::uint64_t array_lens_elided = 0;
};

// Analyzes `program` (which must pass VerifyProgram and contain no unchecked
// opcodes) and rewrites proven-safe sites to their unchecked variants,
// stamping Program::elision with the counts and the post-rewrite code hash.
// Idempotent on an already-certified program. Throws std::invalid_argument
// on verification failure or on unchecked opcodes without a certificate.
ElideStats ElideChecks(Program& program);

// FNV-1a over the opcode stream (plus the layout facts the proof depends
// on); what the certificate binds the proof to.
std::uint64_t ElisionCodeHash(const Program& program);

// True when the certificate is attached and matches the current code.
bool ElisionCertificateValid(const Program& program);

// Per-function listing of every candidate site and its elided/retained
// outcome, derived from the rewritten program — the golden-file format the
// precision-regression tests pin down.
std::string DumpElision(const Program& program);

}  // namespace minnow

#endif  // GRAFTLAB_SRC_MINNOW_ELIDE_H_
